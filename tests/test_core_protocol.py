"""Tests for the §2.1 side-by-side protocol and placement helpers."""

import pytest

from repro.core.placement import (
    ALL_PLACEMENTS, Placement, comm_core_for, compute_core_ids,
    data_numa_for,
)
from repro.core.results import ExperimentResult, Series
from repro.core.sidebyside import (
    SideBySideConfig, build_world, run_duration_protocol,
    run_throughput_protocol,
)
from repro.hardware import Cluster, HENRI
from repro.kernels import prime_kernel, triad_kernel
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE


# -- placement ----------------------------------------------------------

def test_placement_validation():
    with pytest.raises(ValueError):
        Placement("nearby", "far")
    with pytest.raises(ValueError):
        Placement("near", "remote")
    assert Placement("near", "far").key == "data_near_thread_far"
    assert len(ALL_PLACEMENTS) == 4


def test_comm_core_for():
    m = Cluster(HENRI, 1).machine(0)
    near = comm_core_for(m, "near")
    far = comm_core_for(m, "far")
    assert m.cores[near].socket_id == m.nic_numa.socket_id
    assert m.cores[far].socket_id != m.nic_numa.socket_id
    with pytest.raises(ValueError):
        comm_core_for(m, "middle")


def test_data_numa_for():
    m = Cluster(HENRI, 1).machine(0)
    assert data_numa_for(m, "near") == m.nic_numa.id
    far = data_numa_for(m, "far")
    assert m.numa_nodes[far].socket_id != m.nic_numa.socket_id
    with pytest.raises(ValueError):
        data_numa_for(m, "elsewhere")


def test_compute_core_ids_skip_comm_core():
    m = Cluster(HENRI, 1).machine(0)
    cores = compute_core_ids(m, 10, comm_core=3)
    assert 3 not in cores
    assert cores == [0, 1, 2, 4, 5, 6, 7, 8, 9, 10]
    assert compute_core_ids(m, 0, comm_core=0) == []
    with pytest.raises(ValueError):
        compute_core_ids(m, 36, comm_core=0)  # only 35 left
    with pytest.raises(ValueError):
        compute_core_ids(m, -1, comm_core=0)


# -- results containers ---------------------------------------------------

def test_series_add_and_at():
    s = Series(label="test")
    s.add(1.0, [1.0, 2.0, 3.0])
    s.add_value(2.0, 5.0)
    assert len(s) == 2
    assert s.median == [2.0, 5.0]
    assert s.at(1.1) == 2.0
    assert s.at(1.9) == 5.0
    assert s.p10[1] == s.p90[1] == 5.0


def test_series_empty_at_rejected():
    with pytest.raises(ValueError):
        Series(label="empty").at(0.0)


def test_experiment_result_series_management():
    res = ExperimentResult(name="x", title="X")
    s = res.new_series("a", xlabel="n")
    assert res["a"] is s
    res.observe("k", 42)
    assert res.observations["k"] == 42


# -- protocols ----------------------------------------------------------

def test_build_world_respects_placement():
    cfg = SideBySideConfig(placement=Placement("far", "near"))
    cluster, world, pingpong = build_world(cfg)
    m = cluster.machine(0)
    assert m.cores[world.rank(0).comm_core].socket_id == \
        m.nic_numa.socket_id
    assert pingpong.data_numa_a == data_numa_for(m, "far")


def test_throughput_protocol_no_compute():
    cfg = SideBySideConfig(n_compute_cores=0, reps=5)
    out = run_throughput_protocol(cfg)
    assert out.comm_together is None
    assert out.compute_alone_bw_per_core == []
    assert 1e-6 < out.comm_alone.median_latency < 3e-6


def test_throughput_protocol_with_compute():
    cfg = SideBySideConfig(
        n_compute_cores=5, reps=5, window=0.02, window_warmup=0.005,
        kernel_factory=lambda: triad_kernel(elems=1_000_000))
    out = run_throughput_protocol(cfg)
    assert len(out.compute_alone_bw_per_core) == 10  # 5 cores x 2 nodes
    assert out.compute_alone_bw > 1e9
    # Latency messages barely touch STREAM (§4.2).
    assert out.compute_together_bw == pytest.approx(
        out.compute_alone_bw, rel=0.1)
    assert out.comm_together is not None


def test_throughput_protocol_bandwidth_contention():
    cfg = SideBySideConfig(
        n_compute_cores=5, reps=4, message_size=BANDWIDTH_SIZE,
        window=0.05, window_warmup=0.01,
        kernel_factory=lambda: triad_kernel(elems=1_000_000))
    out = run_throughput_protocol(cfg)
    # 64 MB messages hurt STREAM (§4.3: up to 25 % at 5 cores).
    assert out.compute_together_bw < 0.95 * out.compute_alone_bw
    # And STREAM hurts the network.
    assert out.comm_together.median_latency > out.comm_alone.median_latency


def test_duration_protocol_requires_compute():
    with pytest.raises(ValueError):
        run_duration_protocol(SideBySideConfig(n_compute_cores=0))


def test_duration_protocol_cpu_bound_kernel():
    cfg = SideBySideConfig(
        n_compute_cores=4, reps=5,
        kernel_factory=lambda: prime_kernel(n=400_000), sweeps=1)
    out = run_duration_protocol(cfg)
    assert out.compute_alone_duration > 0
    # CPU-bound compute does not degrade latency (§3.2) - if anything the
    # uncore ramp improves it slightly.
    assert out.comm_together.median_latency <= \
        out.comm_alone.median_latency * 1.05
    # And communications do not slow the CPU-bound compute.
    assert out.compute_together_duration == pytest.approx(
        out.compute_alone_duration, rel=0.05)
    assert out.compute_together_makespan >= out.compute_together_duration


def test_protocol_determinism():
    cfg = SideBySideConfig(n_compute_cores=3, reps=4, seed=5,
                           window=0.01, window_warmup=0.002,
                           kernel_factory=lambda: triad_kernel(
                               elems=500_000))
    a = run_throughput_protocol(cfg)
    b = run_throughput_protocol(cfg)
    assert a.comm_alone.median_latency == b.comm_alone.median_latency
    assert a.compute_alone_bw == b.compute_alone_bw


def test_config_spec_resolution():
    assert SideBySideConfig(spec="henri").resolved_spec() is HENRI
    assert SideBySideConfig(spec=HENRI).resolved_spec() is HENRI
