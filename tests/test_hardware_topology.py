"""Tests for the machine/cluster topology layer."""

import pytest

from repro.hardware import (
    BILLY, BORA, HENRI, PYXIS, Cluster, available_presets, get_preset,
)


@pytest.fixture
def cluster():
    return Cluster(HENRI, n_nodes=2)


def test_preset_lookup():
    assert get_preset("henri") is HENRI
    assert get_preset("HENRI") is HENRI
    with pytest.raises(KeyError):
        get_preset("nonexistent")
    assert set(available_presets()) == {"henri", "bora", "billy", "pyxis"}


@pytest.mark.parametrize("spec,cores,numa", [
    (HENRI, 36, 4), (BORA, 36, 2), (BILLY, 64, 8), (PYXIS, 64, 2),
])
def test_preset_core_and_numa_counts_match_paper(spec, cores, numa):
    assert spec.n_cores == cores
    assert spec.n_numa == numa


def test_machine_structure(cluster):
    m = cluster.machine(0)
    assert len(m.cores) == 36
    assert len(m.numa_nodes) == 4
    assert len(m.sockets) == 2
    # Logical core ordering: NUMA node by NUMA node.
    assert [c.numa_id for c in m.cores[:9]] == [0] * 9
    assert [c.numa_id for c in m.cores[9:18]] == [1] * 9
    assert m.cores[18].socket_id == 1
    assert m.numa_of_core(0).id == 0
    assert m.numa_of_core(35).id == 3


def test_nic_attachment(cluster):
    m = cluster.machine(0)
    assert m.nic_numa.id == 0
    far = m.far_numa_from_nic()
    assert far.socket_id != m.nic_numa.socket_id


def test_last_core_of_numa(cluster):
    m = cluster.machine(0)
    assert m.last_core_of_numa(3).id == 35
    assert m.last_core_of_numa(0).id == 8


def test_load_path_local(cluster):
    m = cluster.machine(0)
    path = m.load_path(0, 0)
    assert path == [m.numa_nodes[0].controller]


def test_load_path_same_socket_other_numa(cluster):
    m = cluster.machine(0)
    path = m.load_path(0, 1)
    assert m.sockets[0].mesh in path
    assert m.numa_nodes[1].controller in path
    assert len(path) == 2


def test_load_path_cross_socket(cluster):
    m = cluster.machine(0)
    path = m.load_path(0, 3)
    # Read-dominated streaming: payload flows data (socket 1) -> core
    # (socket 0).
    assert m.socket_link(1, 0) in path
    assert m.socket_link(0, 1) not in path
    assert m.numa_nodes[3].controller in path


def test_dma_path_near_and_far(cluster):
    m = cluster.machine(0)
    near = m.dma_path(0)
    assert near[0] is m.numa_nodes[0].controller
    assert near[-1] is m.pcie
    assert m.socket_link(0, 1) not in near and m.socket_link(1, 0) not in near
    far = m.dma_path(3)
    # Data on socket 1 flows towards the NIC on socket 0.
    assert m.socket_link(1, 0) in far


def test_pio_route_kinds(cluster):
    m = cluster.machine(0)
    near = m.pio_route(0)
    assert [kind for _, kind in near] == ["mc"]
    far = m.pio_route(35)
    assert [kind for _, kind in far] == ["link", "mc"]
    assert m.pio_extra_hops(0) == 0
    assert m.pio_extra_hops(35) == 1


def test_socket_links_are_directional(cluster):
    m = cluster.machine(0)
    assert m.socket_link(0, 1) is not m.socket_link(1, 0)
    with pytest.raises(ValueError):
        m.socket_link(0, 0)


def test_cluster_wires_are_directional(cluster):
    w01 = cluster.wire(0, 1)
    w10 = cluster.wire(1, 0)
    assert w01 is not w10
    assert w01.capacity == HENRI.nic.wire_bw


def test_pio_delay_zero_when_idle(cluster):
    m = cluster.machine(0)
    assert m.pio_delay(0) == 0.0
    assert m.pio_delay(35) == 0.0


def test_pio_delay_tracks_colocated_streaming_cores(cluster):
    m = cluster.machine(0)
    # Streaming cores on socket 0 penalise a socket-0 comm thread ...
    for i in range(6):
        m.set_streaming(i, True)
    near = m.pio_delay(8)        # socket 0, same as NIC
    far = m.pio_delay(35)        # socket 1
    assert near > 0
    # ... but not a socket-1 comm thread (no co-located streamers there).
    assert far == 0.0
    # Streaming cores on socket 1 hit the far thread, amplified by the
    # inter-socket hop.
    for i in range(18, 24):
        m.set_streaming(i, True)
    assert m.pio_delay(35) > m.pio_delay(8)
    # Clearing the flags removes the penalty.
    for i in range(24):
        m.set_streaming(i, False)
    assert m.pio_delay(35) == 0.0


def test_pio_delay_ignores_non_streaming_compute(cluster):
    """CPU-bound kernels (prime counting, AVX) do not delay PIO (§3)."""
    from repro.hardware import CoreActivity
    m = cluster.machine(0)
    for i in range(17):
        m.set_core_activity(i, CoreActivity.AVX512)
    assert m.pio_delay(8) == 0.0


def test_cluster_invalid_size():
    with pytest.raises(ValueError):
        Cluster(HENRI, n_nodes=0)


def test_cluster_from_preset_name():
    c = Cluster("billy", n_nodes=2)
    assert c.spec is BILLY
    assert len(c) == 2


def test_contention_spec_penalty_monotone():
    spec = HENRI.contention
    delays = [spec.pio_penalty(f, 0) for f in (0.0, 0.3, 0.6, 0.9, 1.0)]
    assert delays == sorted(delays)
    assert delays[0] == 0.0
    # Crossing a socket amplifies the penalty.
    assert spec.pio_penalty(1.0, 1) > spec.pio_penalty(1.0, 0)
    # Clamped outside [0, 1].
    assert spec.pio_penalty(5.0, 0) == spec.pio_penalty(1.0, 0)
    assert spec.pio_penalty(-1.0, 0) == 0.0


def test_turbo_table_validation():
    from repro.hardware import TurboTable
    with pytest.raises(ValueError):
        TurboTable(())
    with pytest.raises(ValueError):
        TurboTable(((4, 3.0e9), (2, 3.5e9)))
    table = TurboTable(((2, 3.7e9), (8, 3.0e9)))
    assert table.frequency(1) == 3.7e9
    assert table.frequency(2) == 3.7e9
    assert table.frequency(3) == 3.0e9
    assert table.frequency(100) == 3.0e9  # beyond last bin
    assert table.frequency(0) == 3.7e9
    assert table.max_frequency == 3.7e9
    assert table.min_frequency == 3.0e9


def test_spec_overrides():
    spec = HENRI.with_overrides(noise=0.5)
    assert spec.noise == 0.5
    assert spec.name == HENRI.name
