"""Unit + property tests for the fluid bandwidth-sharing model."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Flow, FluidNetwork, Resource, Simulator


def make_net():
    sim = Simulator()
    return sim, FluidNetwork(sim)


def test_single_flow_full_capacity():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=1000.0, label="f")
    assert flow.rate == pytest.approx(100.0)
    sim.run()
    assert flow.done.triggered
    assert sim.now == pytest.approx(10.0)


def test_demand_cap_limits_rate():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=100.0, demand=20.0)
    assert flow.rate == pytest.approx(20.0)
    sim.run()
    assert sim.now == pytest.approx(5.0)


def test_equal_sharing_two_flows():
    sim, net = make_net()
    link = Resource("link", 100.0)
    f1 = net.transfer([link], size=500.0)
    f2 = net.transfer([link], size=500.0)
    assert f1.rate == pytest.approx(50.0)
    assert f2.rate == pytest.approx(50.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_weighted_sharing():
    sim, net = make_net()
    link = Resource("link", 90.0)
    f1 = net.transfer([link], size=1e9, weight=2.0)
    f2 = net.transfer([link], size=1e9, weight=1.0)
    assert f1.rate == pytest.approx(60.0)
    assert f2.rate == pytest.approx(30.0)


def test_demand_limited_flow_releases_capacity():
    sim, net = make_net()
    link = Resource("link", 100.0)
    f1 = net.transfer([link], size=1e9, demand=10.0)
    f2 = net.transfer([link], size=1e9)
    assert f1.rate == pytest.approx(10.0)
    assert f2.rate == pytest.approx(90.0)


def test_usage_multiplier_consumes_more_capacity():
    sim, net = make_net()
    link = Resource("link", 100.0)
    dma = net.transfer([link], size=1e9, usage=2.0)
    # Alone: rate limited so that usage (2x rate) == capacity.
    assert dma.rate == pytest.approx(50.0)
    stream = net.transfer([link], size=1e9)
    # Fair level u solves u*(2*1) + u*1 = 100 -> u = 100/3.
    assert dma.rate == pytest.approx(100.0 / 3.0)
    assert stream.rate == pytest.approx(100.0 / 3.0)
    assert net.utilization(link) == pytest.approx(1.0)


def test_multi_resource_path_bottleneck():
    sim, net = make_net()
    wide = Resource("wide", 1000.0)
    narrow = Resource("narrow", 10.0)
    flow = net.transfer([wide, narrow], size=100.0)
    assert flow.rate == pytest.approx(10.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_crossing_flows_different_bottlenecks():
    sim, net = make_net()
    r1 = Resource("r1", 100.0)
    r2 = Resource("r2", 30.0)
    fa = net.transfer([r1], size=1e9)          # only r1
    fb = net.transfer([r1, r2], size=1e9)      # r1 and r2
    # fb limited by r2 at 30; fa then gets the rest of r1 (70).
    assert fb.rate == pytest.approx(30.0)
    assert fa.rate == pytest.approx(70.0)


def test_rates_recomputed_when_flow_finishes():
    sim, net = make_net()
    link = Resource("link", 100.0)
    short = net.transfer([link], size=100.0)   # 2 s at 50 B/s
    long = net.transfer([link], size=200.0)    # 2 s at 50, then 100
    assert short.rate == long.rate == pytest.approx(50.0)
    sim.run()
    # short finishes at t=2 (100B at 50), long has 100B left -> 1s at 100.
    assert short.done.value == pytest.approx(2.0)
    assert long.done.value == pytest.approx(3.0)


def test_continuous_flow_and_stop():
    sim, net = make_net()
    link = Resource("link", 40.0)
    bg = Flow([link], size=None, label="background")
    net.start_flow(bg)
    sim.run(until=2.5)
    transferred = net.stop_flow(bg)
    assert transferred == pytest.approx(100.0)
    assert not bg.active


def test_set_demand_midflight():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=100.0, demand=10.0)
    sim.run(until=5.0)  # 50 B transferred
    net.set_demand(flow, 50.0)
    sim.run()
    # Remaining 50 B at 50 B/s -> 1 s more.
    assert flow.done.value == pytest.approx(6.0)


def test_capacity_change_triggers_recompute():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=100.0)
    sim.run(until=0.5)  # 50 B done
    link.set_capacity(25.0)
    sim.run()
    assert flow.done.value == pytest.approx(0.5 + 50.0 / 25.0)


def test_empty_path_requires_finite_demand():
    with pytest.raises(ValueError):
        Flow([], size=10.0)


def test_empty_path_flow_runs_at_demand():
    sim, net = make_net()
    flow = net.transfer([], size=100.0, demand=10.0)
    assert flow.rate == pytest.approx(10.0)
    sim.run()
    assert sim.now == pytest.approx(10.0)


def test_zero_size_flow_completes_immediately():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=0.0)
    assert flow.done.triggered
    assert flow.remaining == 0.0


def test_utilization_reporting():
    sim, net = make_net()
    link = Resource("link", 100.0)
    net.transfer([link], size=1e9, demand=30.0)
    assert net.utilization(link) == pytest.approx(0.3)
    net.transfer([link], size=1e9, demand=30.0)
    assert net.utilization(link) == pytest.approx(0.6)


def test_invalid_parameters_rejected():
    with pytest.raises(ValueError):
        Resource("r", 0.0)
    link = Resource("link", 1.0)
    with pytest.raises(ValueError):
        Flow([link], size=-1.0)
    with pytest.raises(ValueError):
        Flow([link], weight=0.0)
    with pytest.raises(ValueError):
        Flow([link], demand=0.0)


def test_resource_shared_between_networks_rejected():
    sim = Simulator()
    net1 = FluidNetwork(sim)
    net2 = FluidNetwork(sim)
    link = Resource("link", 10.0)
    net1.transfer([link], size=1.0)
    with pytest.raises(Exception):
        net2.transfer([link], size=1.0)


# ---------------------------------------------------------------------------
# Property-based tests: invariants of max-min fairness.
# ---------------------------------------------------------------------------

flow_spec = st.tuples(
    st.floats(min_value=0.1, max_value=100.0),   # demand
    st.floats(min_value=0.1, max_value=4.0),     # weight
    st.floats(min_value=0.5, max_value=3.0),     # usage multiplier
    st.lists(st.integers(min_value=0, max_value=3), min_size=1, max_size=3,
             unique=True),                        # resource indices
)


@settings(max_examples=120, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=200.0),
                  min_size=4, max_size=4),
    specs=st.lists(flow_spec, min_size=1, max_size=8),
)
def test_maxmin_allocation_invariants(caps, specs):
    sim = Simulator()
    net = FluidNetwork(sim)
    resources = [Resource(f"r{i}", caps[i]) for i in range(4)]
    flows = []
    for demand, weight, usage, idxs in specs:
        path = [resources[i] for i in idxs]
        flows.append(net.transfer(path, size=1e12, demand=demand,
                                  weight=weight, usage=usage))

    # Invariant 1: no resource is over capacity.
    for res in resources:
        used = sum(f.rate * f.usage_on(res) for f in flows
                   if res in f.resources)
        assert used <= res.capacity * (1 + 1e-6)

    # Invariant 2: no flow exceeds its demand.
    for f in flows:
        assert f.rate <= f.demand * (1 + 1e-6)

    # Invariant 3: every flow is either demand-limited or crosses at least
    # one saturated resource (Pareto optimality of max-min).
    for f in flows:
        if f.rate >= f.demand * (1 - 1e-6):
            continue
        saturated = any(
            sum(g.rate * g.usage_on(res) for g in flows
                if res in g.resources) >= res.capacity * (1 - 1e-6)
            for res in f.resources)
        assert saturated, f"flow {f} is neither demand- nor resource-limited"

    # Invariant 4: all rates are strictly positive (no starvation).
    for f in flows:
        assert f.rate > 0


@settings(max_examples=60, deadline=None)
@given(
    cap=st.floats(min_value=10.0, max_value=1000.0),
    sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0),
                   min_size=1, max_size=6),
)
def test_conservation_of_bytes(cap, sizes):
    """Total bytes delivered equals total bytes requested."""
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", cap)
    flows = [net.transfer([link], size=s) for s in sizes]
    sim.run()
    for f, s in zip(flows, sizes):
        assert f.done.triggered
        assert f.transferred == pytest.approx(s, rel=1e-6)
    # Makespan >= serial lower bound (capacity conservation).
    assert sim.now * cap >= sum(sizes) * (1 - 1e-6)
    assert sim.now * cap == pytest.approx(sum(sizes), rel=1e-6)
