"""Tests for the ASCII chart renderer."""

import pytest

from repro.core.plotting import ascii_plot, plot_experiment
from repro.core.results import ExperimentResult, Series


def make_series(label="s", xs=(1, 2, 3), ys=(1.0, 4.0, 9.0)):
    s = Series(label=label)
    for x, y in zip(xs, ys):
        s.add_value(x, y)
    return s


def test_empty_plot():
    assert ascii_plot([]) == "(no data)\n"
    assert ascii_plot([Series(label="empty")]) == "(no data)\n"


def test_plot_contains_glyphs_and_legend():
    text = ascii_plot([make_series("alpha"), make_series("beta",
                                                         ys=(9, 4, 1))],
                      width=40, height=10, title="demo")
    assert "demo" in text
    assert "o alpha" in text and "x beta" in text
    assert "o" in text and "x" in text
    assert "+" + "-" * 40 in text


def test_plot_monotone_series_orientation():
    text = ascii_plot([make_series(ys=(1, 2, 3))], width=30, height=8)
    lines = [l.split("|", 1)[1] for l in text.splitlines()
             if "|" in l]
    # Highest value's glyph is on the top row, lowest on the bottom.
    assert "o" in lines[0]
    assert "o" in lines[-1]
    top_col = lines[0].index("o")
    bottom_col = lines[-1].index("o")
    assert top_col > bottom_col     # rising curve


def test_log_axes_safe_with_nonpositive_values():
    s = make_series(xs=(0, 1, 2), ys=(0.0, 1.0, 2.0))
    text = ascii_plot([s], log_x=True, log_y=True)
    assert "(no data)" not in text  # silently falls back to linear


def test_single_point_series():
    s = make_series(xs=(5,), ys=(7.0,))
    text = ascii_plot([s], width=20, height=5)
    assert "o" in text


def test_plot_experiment_autolog():
    res = ExperimentResult(name="figX", title="demo sweep")
    s = res.new_series("comm_alone")
    for size in (4, 1024, 1 << 20, 64 << 20):
        s.add_value(size, size / 1e9 + 1e-6)
    text = plot_experiment(res)
    assert "figX" in text
    assert "comm_alone" in text


def test_plot_experiment_respects_keys():
    res = ExperimentResult(name="f", title="t")
    res.new_series("a").add_value(1, 1)
    res.new_series("b").add_value(1, 2)
    text = plot_experiment(res, keys=["b"])
    assert "b" in text and " a" not in text.split("\n")[-2]


def test_cli_plot_flag(capsys):
    from repro.cli import main
    assert main(["run", "fig8", "--fast", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "|" in out  # chart axis rendered
