"""Multi-seed trial campaigns: journal shape, determinism, rendering.

The trial contract (docs/OBSERVABILITY.md "Multi-seed statistics"):
``--trials N`` fans every sweep point into N seeded trials journaled
trial-major, trial 0 stays byte-identical to a plain run, trials
compose with resume/caching/``--jobs``, and failed trials surface in
both the text report and the HTML report.
"""

import hashlib
import json

import pytest

from repro.cli import main
from repro.core.campaign import CampaignJournal
from repro.core.executor import (ExecutionPolicy, PointSpec,
                                 executor_context, point_fingerprint)
from repro.core.experiments import fig1a

KW = dict(sizes=[4, 64], reps=3)


def _sha(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _run(tmp_path, tag, trials, jobs=1, resume=False):
    path = tmp_path / f"{tag}.jsonl"
    with CampaignJournal(path, resume=resume) as journal:
        with executor_context(jobs, ExecutionPolicy(trials=trials)):
            result = fig1a(journal=journal, **KW)
    return result, path


def test_trials_journal_trial_major(tmp_path):
    result, path = _run(tmp_path, "t3", trials=3)
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert len(lines) == 24                     # 8 points x 3 trials
    assert result.meta["sweep"] == {
        "points": 8, "replayed": 0, "failed": 0, "degraded": 0,
        "trials": 3, "executed": 24}
    # Trial-major: the first 8 records carry no trial key (trial 0),
    # then a full pass of trial 1, then trial 2.
    assert all("trial" not in l for l in lines[:8])
    assert [l["trial"] for l in lines[8:16]] == [1] * 8
    assert [l["trial"] for l in lines[16:]] == [2] * 8
    assert [l["key"] for l in lines[:8]] == [l["key"] for l in lines[8:16]]


def test_trial0_prefix_is_the_single_trial_journal(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pin")
    _, single = _run(tmp_path, "t1", trials=1)
    _, multi = _run(tmp_path, "t3", trials=3)
    single_lines = single.read_text().splitlines()
    assert multi.read_text().splitlines()[:len(single_lines)] \
        == single_lines


def test_trials_vary_the_simulation_noise(tmp_path):
    _, path = _run(tmp_path, "t3", trials=3)
    medians = {}
    for line in path.read_text().splitlines():
        e = json.loads(line)
        series = next(iter(e["series"].values()))
        medians.setdefault(e["key"], []).append(series[0][1])
    for key, vals in medians.items():
        assert len(vals) == 3
        assert len(set(vals)) > 1, f"{key}: trials identical"


def test_fingerprint_stable_per_trial(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pin")
    spec = PointSpec(experiment="figX", key="k", runner="m:f",
                     params={"size": 4})
    fps = [point_fingerprint(PointSpec(experiment="figX", key="k",
                                       runner="m:f", params={"size": 4},
                                       trial=t)) for t in range(3)]
    # Trial 0 hashes exactly like the pre-trial payload...
    assert fps[0] == point_fingerprint(spec)
    # ...and each later trial gets its own stable fingerprint.
    assert len(set(fps)) == 3
    assert fps[1] == point_fingerprint(
        PointSpec(experiment="figX", key="k", runner="m:f",
                  params={"size": 4}, trial=1))


def test_resume_mid_trial_replays_and_completes(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pin")
    full, path = _run(tmp_path, "full", trials=3)
    lines = path.read_text().splitlines()
    # Truncate mid trial 1: trial 0 complete, 3 of 8 trial-1 records.
    cut = tmp_path / "cut.jsonl"
    cut.write_text("\n".join(lines[:11]) + "\n", encoding="utf-8")
    with CampaignJournal(cut, resume=True) as journal:
        with executor_context(1, ExecutionPolicy(trials=3)):
            resumed = fig1a(journal=journal, **KW)
    assert resumed.meta["sweep"]["replayed"] == 11
    assert resumed.meta["sweep"]["executed"] == 24
    # The resumed campaign reconverges on the uninterrupted journal.
    assert cut.read_text() == path.read_text()
    for key, s in full.series.items():
        assert resumed.series[key].median == s.median


def test_trial_records_identical_serial_vs_jobs2(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "pin")
    shas = {}
    for jobs in (1, 2):
        d = tmp_path / f"j{jobs}"
        d.mkdir()
        argv = ["run", "fig1a", "--fast", "--trials", "2",
                "--journal", str(d / "c.jsonl"),
                "--out", str(d / "r.md")]
        if jobs != 1:
            argv += ["--jobs", "2"]
        assert main(argv) == 0
        shas[jobs] = (_sha(d / "c.jsonl"), _sha(d / "r.md"))
    assert shas[1] == shas[2]


# -- failed trials in reports ----------------------------------------------

def _fails_on_trial1(params: dict) -> dict:
    from repro.faults.context import active_point_scope
    scope = active_point_scope()
    if scope is not None and scope[1].endswith("#t1"):
        raise RuntimeError(f"injected trial failure at {scope[1]}")
    x = float(params["x"])
    return {"s": [[x, x * 2.0, x * 1.9, x * 2.1]]}


def _run_flaky(tmp_path):
    from repro.core.campaign import SweepGuard
    from repro.core.results import ExperimentResult

    path = tmp_path / "flaky.jsonl"
    result = ExperimentResult(name="expF", title="flaky")
    result.new_series("s")
    with CampaignJournal(path) as journal:
        guard = SweepGuard(result, journal)
        with executor_context(1, ExecutionPolicy(trials=2)):
            guard.run_specs([
                PointSpec(experiment="expF", key=f"x={x}",
                          runner="tests.test_campaign_trials:"
                                 "_fails_on_trial1",
                          params={"x": x})
                for x in (1, 2)])
    return result, path


def test_failed_trial_renders_in_text_report(tmp_path):
    from repro.core.report import render_experiment

    result, path = _run_flaky(tmp_path)
    assert result.meta["sweep"]["failed"] == 2
    # Trial 0 succeeded everywhere, so every point still has a row.
    assert result.series["s"].x == [1.0, 2.0]
    text = render_experiment(result)
    assert "(2 seeded trials per point" in text
    assert "x=1#t1" in text and "injected trial failure" in text
    entries = [json.loads(l) for l in path.read_text().splitlines()]
    failed = [e for e in entries if e["status"] == "failed"]
    assert [e["trial"] for e in failed] == [1, 1]


def test_failed_trial_renders_in_html_report(tmp_path):
    from repro.analysis.stats import CampaignResults
    from repro.core.htmlreport import (render_html_report,
                                       validate_html_report)

    _, path = _run_flaky(tmp_path)
    html = render_html_report(CampaignResults.from_journal(path))
    assert validate_html_report(html) == []
    assert 'id="failures"' in html
    assert "injected trial failure" in html
    assert "x=1#t1" in html
