"""Tests for the overlap benchmark extension."""

import pytest

from repro.core.overlap import (
    OverlapResult, measure_overlap, overlap_experiment,
)
from repro.kernels import prime_kernel, tunable_triad


def test_overlap_result_metrics():
    res = OverlapResult(message_size=100, n_compute_cores=1,
                        t_comm=1.0, t_comp=3.0, t_overlap=3.0)
    assert res.overlap_ratio == pytest.approx(1.0)   # fully hidden
    assert res.slowdown == pytest.approx(1.0)
    serial = OverlapResult(message_size=100, n_compute_cores=1,
                           t_comm=1.0, t_comp=3.0, t_overlap=4.0)
    assert serial.overlap_ratio == pytest.approx(0.0)


def test_cpu_bound_compute_overlaps_fully():
    """A dedicated comm thread hides a message behind CPU-bound compute."""
    res = measure_overlap(
        message_size=1 << 20, n_compute_cores=4,
        kernel_factory=lambda: prime_kernel(n=2_000_000))
    assert res.t_comp > res.t_comm       # compute dominates
    assert res.overlap_ratio > 0.85
    assert res.slowdown < 1.1


def test_memory_bound_compute_limits_overlap():
    """§4's coupling: the message and the kernels share the memory bus,
    so overlapping them is slower than the ideal max()."""
    res = measure_overlap(
        message_size=64 << 20, n_compute_cores=12,
        kernel_factory=lambda: tunable_triad(1, elems=2_000_000))
    assert res.slowdown > 1.1


def test_overlap_experiment_series():
    result = overlap_experiment(sizes=[65536, 8 << 20],
                                n_compute_cores=6)
    assert len(result["overlap_ratio"]) == 2
    assert 0 <= result.observations["min_overlap_ratio"] <= 1.05
    assert result.observations["max_slowdown"] >= 1.0
