"""Tests for the NetPIPE characterisation helpers."""

import numpy as np
import pytest

from repro.analysis.netpipe import (
    NetPipeCurve, fit_postal, measure_netpipe, n_half,
)
from repro.hardware import HENRI


@pytest.fixture(scope="module")
def curve():
    sizes = [1 << i for i in range(2, 27, 2)]
    return measure_netpipe(HENRI, sizes=sizes, reps=6)


def test_curve_shape(curve):
    # Latency monotone in size; bandwidth monotone too.
    assert list(curve.latencies) == sorted(curve.latencies)
    bws = curve.bandwidths
    assert bws[-1] > bws[0]
    assert curve.zero_latency == pytest.approx(1.41e-6, rel=0.1)
    assert curve.asymptotic_bandwidth == pytest.approx(10.4e9, rel=0.05)


def test_postal_fit_recovers_wire_bandwidth(curve):
    alpha, beta = fit_postal(curve,
                             min_size=HENRI.nic.eager_threshold * 2)
    # β approaches the wire goodput; α stays in the tens of microseconds
    # (handshake + registration-free rendezvous startup).
    assert beta == pytest.approx(curve.asymptotic_bandwidth, rel=0.1)
    assert 0 < alpha < 50e-6


def test_postal_fit_validation():
    c = NetPipeCurve(sizes=np.array([4.0]),
                     latencies=np.array([1e-6]))
    with pytest.raises(ValueError):
        fit_postal(c)


def test_n_half_between_latency_and_bandwidth_regimes(curve):
    nh = n_half(curve)
    # Half performance is reached somewhere between the eager threshold
    # and a few MB — the classic IB regime.
    assert 8 * 1024 < nh < 8 * 1024 * 1024


def test_row_accessor(curve):
    size, lat, bw = curve.row(0)
    assert size == 4
    assert bw == pytest.approx(size / lat)
