"""Metrics registry: instrument semantics, snapshot/delta, exports."""

import json

import pytest

from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               metric_key)


def test_metric_key_rendering():
    assert metric_key("net.transfers", ()) == "net.transfers"
    assert metric_key("net.transfers", (("protocol", "eager"),)) == \
        "net.transfers{protocol=eager}"


def test_counter_accumulates_and_rejects_negative():
    reg = MetricsRegistry()
    c = reg.counter("sim.events")
    c.inc()
    c.inc(2.5)
    assert c.value == 3.5
    with pytest.raises(ValueError):
        c.inc(-1)


def test_same_name_different_labels_coexist():
    reg = MetricsRegistry()
    reg.counter("net.transfers", protocol="eager").inc()
    reg.counter("net.transfers", protocol="rendezvous").inc(2)
    assert reg.counter("net.transfers", protocol="eager").value == 1
    assert reg.counter("net.transfers", protocol="rendezvous").value == 2
    assert len(reg) == 2


def test_instrument_identity_is_stable():
    reg = MetricsRegistry()
    assert reg.counter("a", x=1) is reg.counter("a", x=1)
    assert reg.gauge("g") is reg.gauge("g")


def test_kind_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("a")
    with pytest.raises(TypeError):
        reg.gauge("a")


def test_gauge_set_inc_dec():
    g = Gauge()
    g.set(4.0)
    g.inc()
    g.dec(2.0)
    assert g.value == 3.0


def test_histogram_buckets_sum_count():
    h = Histogram(bounds=[1.0, 10.0])
    for v in (0.5, 5.0, 50.0, 0.2):
        h.observe(v)
    assert h.count == 4
    assert h.sum == pytest.approx(55.7)
    assert h.counts == [2, 1, 1]       # <=1, <=10, overflow
    assert h.mean == pytest.approx(55.7 / 4)


def test_snapshot_and_delta():
    reg = MetricsRegistry()
    reg.counter("c").inc(5)
    reg.gauge("g").set(7)
    reg.histogram("h", buckets=[1.0]).observe(0.5)
    before = reg.snapshot()

    reg.counter("c").inc(3)
    reg.gauge("g").set(9)
    reg.histogram("h", buckets=[1.0]).observe(2.0)
    delta = reg.delta(before)

    assert delta["c"] == {"type": "counter", "value": 3}
    assert delta["g"] == {"type": "gauge", "value": 9}
    assert delta["h"]["value"]["count"] == 1
    assert delta["h"]["value"]["buckets"] == [0, 1]


def test_delta_omits_unchanged_counters():
    reg = MetricsRegistry()
    reg.counter("quiet").inc(2)
    before = reg.snapshot()
    reg.counter("busy").inc()
    delta = reg.delta(before)
    assert "quiet" not in delta
    assert delta["busy"]["value"] == 1


def test_export_is_deterministic_and_parseable(tmp_path):
    def build():
        reg = MetricsRegistry()
        reg.counter("z.last").inc()
        reg.counter("a.first", k="v").inc(2)
        reg.gauge("mid").set(1.5)
        return reg

    a, b = build().to_json(), build().to_json()
    assert a == b
    doc = json.loads(a)
    assert doc["metrics"]["a.first{k=v}"]["value"] == 2

    path = tmp_path / "m.json"
    build().export(path, extra={"note": "hi"})
    on_disk = json.loads(path.read_text())
    assert on_disk["note"] == "hi"
    assert on_disk["metrics"] == doc["metrics"]


def test_histogram_state_carries_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 1.5, 3.0):
        h.observe(v)
    state = h.to_state()
    q = state["quantiles"]
    assert set(q) == {"p50", "p95", "p99"}
    # Rank interpolation: p50 target rank 2 lands in the (1, 2] bucket.
    assert 1.0 <= q["p50"] <= 2.0
    assert 2.0 <= q["p95"] <= 4.0
    assert q["p50"] <= q["p95"] <= q["p99"]


def test_empty_histogram_quantiles_are_zero():
    reg = MetricsRegistry()
    q = reg.histogram("h").to_state()["quantiles"]
    assert q == {"p50": 0.0, "p95": 0.0, "p99": 0.0}


def test_delta_quantiles_reflect_only_the_delta():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=[1.0, 10.0, 100.0])
    h.observe(0.5)                       # pre-existing small observation
    before = reg.snapshot()
    h.observe(50.0)
    h.observe(50.0)
    delta = reg.delta(before)["h"]["value"]
    assert delta["count"] == 2
    # Both delta observations sit in the (10, 100] bucket.
    assert 10.0 <= delta["quantiles"]["p50"] <= 100.0


def test_merge_delta_ignores_quantiles_and_rederives():
    src = MetricsRegistry()
    h = src.histogram("h", buckets=[1.0, 2.0])
    h.observe(1.5)
    delta = src.delta({})
    assert "quantiles" in delta["h"]["value"]

    dst = MetricsRegistry()
    dst.histogram("h", buckets=[1.0, 2.0])
    dst.merge_delta(delta)
    merged = dst.snapshot()["h"]["value"]
    assert merged["count"] == 1
    assert merged["quantiles"] == delta["h"]["value"]["quantiles"]


def test_counter_only_export_has_no_quantiles():
    """Exports without histograms must not change shape (byte-identity
    of pre-existing counter/gauge-only exports)."""
    reg = MetricsRegistry()
    reg.counter("c").inc()
    reg.gauge("g").set(2.0)
    assert "quantiles" not in reg.to_json()


def test_overflow_quantiles_clamp_to_last_bound_and_flag():
    """Ranks landing in the implicit overflow bucket have no upper edge:
    the estimate clamps to the last bound and says so."""
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=[1.0, 2.0])
    for _ in range(10):
        h.observe(100.0)
    q = h.to_state()["quantiles"]
    assert q["p50"] == q["p95"] == q["p99"] == 2.0
    assert q["p50_clamped"] is q["p95_clamped"] is q["p99_clamped"] is True


def test_partial_overflow_flags_only_tail_quantiles():
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=[1.0, 2.0])
    for _ in range(9):
        h.observe(0.5)
    h.observe(100.0)
    q = h.to_state()["quantiles"]
    assert "p50_clamped" not in q
    assert q["p50"] < 1.0
    assert q["p99"] == 2.0
    assert q["p99_clamped"] is True


def test_healthy_histogram_export_has_no_clamp_keys():
    """Byte-identity guard: exports without overflow ranks must keep
    their exact pre-existing key set."""
    reg = MetricsRegistry()
    h = reg.histogram("h", buckets=[1.0, 2.0, 4.0])
    for v in (0.5, 1.5, 3.0):
        h.observe(v)
    q = h.to_state()["quantiles"]
    assert set(q) == {"p50", "p95", "p99"}
    assert "clamped" not in reg.to_json()
