"""Tests for the paper-claims record (EXPERIMENTS.md generator)."""

from repro.core import registry
from repro.core.record import KNOWN_DEVIATIONS, PAPER_CLAIMS


def test_every_claim_targets_a_runnable_experiment():
    names = {fig for fig, _, _ in PAPER_CLAIMS}
    for name in names:
        assert name in registry.names(), \
            f"{name} not runnable via the CLI"


def test_all_paper_artefacts_covered():
    """Every evaluation artefact of the paper has a claim entry."""
    names = {fig for fig, _, _ in PAPER_CLAIMS}
    required = {"fig1a", "fig1b", "fig2", "fig3a", "fig4a", "fig4b",
                "table1", "fig6a", "fig6b", "fig7a", "fig7b",
                "runtime_overhead", "fig8", "fig9", "fig10"}
    assert required <= names


def test_claims_have_text_and_extractors():
    for fig, claim, extract in PAPER_CLAIMS:
        assert isinstance(claim, str) and len(claim) > 10
        assert callable(extract)


def test_known_deviations_mention_each_case():
    for token in ("fig6b", "runtime_overhead", "fig7a", "fig10"):
        assert token in KNOWN_DEVIATIONS


def test_experiments_md_exists_and_has_all_rows():
    import pathlib
    path = pathlib.Path(__file__).resolve().parents[1] / "EXPERIMENTS.md"
    if not path.exists():
        import pytest
        pytest.skip("EXPERIMENTS.md not generated in this checkout")
    text = path.read_text()
    for fig, _, _ in PAPER_CLAIMS:
        assert f"| {fig} |" in text
    assert "Known deviations" in text
