"""Stress / failure-injection tests for the fluid engine."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import Flow, FluidNetwork, Resource, Simulator

pytestmark = pytest.mark.slow


def test_capacity_drop_midflight_slows_everything():
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", 100.0)
    flows = [net.transfer([link], size=100.0) for _ in range(4)]
    sim.run(until=1.0)   # each at 25 B/s: 25 B done
    link.set_capacity(10.0)   # e.g. thermal throttling
    sim.run()
    # Remaining 75 B each at 2.5 B/s -> completes at 1 + 30.
    for f in flows:
        assert f.done.value == pytest.approx(31.0)


def test_capacity_raise_midflight_speeds_up():
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", 10.0)
    flow = net.transfer([link], size=100.0)
    sim.run(until=5.0)   # 50 B done
    link.set_capacity(50.0)
    sim.run()
    assert flow.done.value == pytest.approx(6.0)


def test_rapid_demand_oscillation_conserves_bytes():
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=1000.0, demand=50.0)

    def oscillate():
        for i in range(50):
            yield 0.1
            if flow.active:
                net.set_demand(flow, 20.0 if i % 2 == 0 else 80.0)

    sim.process(oscillate())
    sim.run()
    assert flow.done.triggered
    assert flow.transferred == pytest.approx(1000.0, rel=1e-9)


def test_many_flows_same_resource_fairness():
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", 1000.0)
    flows = [net.transfer([link], size=1e9) for _ in range(200)]
    rates = {f.rate for f in flows}
    assert len(rates) == 1
    assert flows[0].rate == pytest.approx(5.0)


def test_stop_flow_midway_releases_capacity():
    sim = Simulator()
    net = FluidNetwork(sim)
    link = Resource("link", 100.0)
    bg = Flow([link], size=None)
    net.start_flow(bg)
    fg = net.transfer([link], size=100.0)
    assert fg.rate == pytest.approx(50.0)
    sim.run(until=1.0)
    net.stop_flow(bg)
    sim.run()
    # 50 B left at 100 B/s after t=1.
    assert fg.done.value == pytest.approx(1.5)


def test_deterministic_under_many_events():
    def run_once():
        sim = Simulator()
        net = FluidNetwork(sim)
        resources = [Resource(f"r{i}", 50.0 + i) for i in range(5)]
        completions = []
        rng = np.random.default_rng(7)
        for i in range(100):
            path = [resources[j] for j in
                    sorted(rng.choice(5, size=rng.integers(1, 4),
                                      replace=False))]
            flow = net.transfer(path, size=float(rng.integers(10, 500)),
                                demand=float(rng.uniform(5, 50)))
            flow.done.add_callback(
                lambda ev, i=i: completions.append((i, ev.value)))
        sim.run()
        return completions

    assert run_once() == run_once()


@settings(max_examples=25, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=5.0, max_value=100.0),
                  min_size=2, max_size=3),
    events=st.lists(
        st.tuples(st.floats(min_value=0.01, max_value=2.0),   # start dt
                  st.floats(min_value=1.0, max_value=200.0)), # size
        min_size=1, max_size=12),
)
def test_staggered_arrivals_conserve_bytes(caps, events):
    """Flows arriving over time all complete with exact byte counts."""
    sim = Simulator()
    net = FluidNetwork(sim)
    resources = [Resource(f"r{i}", c) for i, c in enumerate(caps)]
    flows = []

    def spawner():
        for dt, size in events:
            yield dt
            flows.append(net.transfer(resources, size=size))

    sim.process(spawner())
    sim.run()
    for flow, (_, size) in zip(flows, events):
        assert flow.done.triggered
        assert flow.transferred == pytest.approx(size, rel=1e-6)
    # Aggregate throughput never exceeded the narrowest resource.
    narrowest = min(caps)
    total = sum(size for _, size in events)
    first_start = events[0][0]
    assert sim.now >= first_start + 0  # sanity
    assert total / (sim.now) <= narrowest * (1 + 1e-6) or sim.now > 0
