"""Tests for the collective operations (extension beyond the paper)."""

import math

import pytest

from repro.hardware import Cluster, HENRI
from repro.mpi import CommWorld
from repro.mpi.collectives import (
    RING_ALLREDUCE_THRESHOLD, CollectiveContext,
)


def make_ctx(n_nodes=4):
    world = CommWorld(Cluster(HENRI, n_nodes), comm_placement="near")
    return CollectiveContext(world)


def test_requires_two_ranks():
    world = CommWorld(Cluster(HENRI, 1))
    with pytest.raises(ValueError):
        CollectiveContext(world)


@pytest.mark.parametrize("n_nodes", [2, 3, 4, 8])
def test_bcast_completes_and_scales_logarithmically(n_nodes):
    ctx = make_ctx(n_nodes)
    rec = ctx.run("bcast", root=0, size=4)
    assert rec.op == "bcast"
    assert rec.n_ranks == n_nodes
    assert rec.messages == n_nodes - 1
    # Binomial tree: duration ~ ceil(log2 p) x per-message latency.
    rounds = math.ceil(math.log2(n_nodes))
    per_msg = 1.8e-6
    assert rec.duration < rounds * per_msg * 2.0
    assert rec.duration > rounds * per_msg * 0.5


def test_bcast_nonzero_root():
    ctx = make_ctx(4)
    rec = ctx.run("bcast", root=2, size=64)
    assert rec.messages == 3


def test_reduce_completes():
    ctx = make_ctx(4)
    rec = ctx.run("reduce", root=0, size=1024)
    assert rec.op == "reduce"
    assert rec.messages == 3
    assert rec.duration > 0


def test_allreduce_small_uses_tree():
    ctx = make_ctx(4)
    rec = ctx.run("allreduce", size=1024)
    assert rec.algorithm == "tree"
    assert rec.messages == 2 * 3


def test_allreduce_large_uses_ring():
    ctx = make_ctx(4)
    rec = ctx.run("allreduce", size=RING_ALLREDUCE_THRESHOLD * 16)
    assert rec.algorithm == "ring"
    assert rec.messages == 2 * (4 - 1) * 4


def test_ring_beats_tree_for_large_payloads():
    size = 16 << 20
    ctx_ring = make_ctx(4)
    ring = ctx_ring.run("allreduce", size=size)

    # Force the tree path by using reduce+bcast explicitly.
    ctx_tree = make_ctx(4)

    def tree():
        red = yield from ctx_tree.reduce(root=0, size=size)
        bc = yield from ctx_tree.bcast(root=0, size=size)
        return red.duration + bc.duration

    proc = ctx_tree.world.sim.process(tree())
    ctx_tree.world.sim.run()
    assert ring.duration < proc.value


def test_barrier():
    ctx = make_ctx(4)
    rec = ctx.run("barrier")
    assert rec.op == "barrier"
    assert rec.size == 0
    assert rec.duration < 50e-6


def test_bcast_two_ranks_single_message():
    ctx = make_ctx(2)
    rec = ctx.run("bcast", root=0, size=4)
    assert rec.messages == 1


def test_collectives_slow_under_memory_contention():
    """Extension result: collectives inherit §4's interference."""
    size = 4 << 20
    quiet = make_ctx(2).run("allreduce", size=size)

    world = CommWorld(Cluster(HENRI, 2), comm_placement="near")
    ctx = CollectiveContext(world)
    from repro.kernels import run_kernel, triad_kernel
    runs = []
    for machine in world.cluster.machines:
        for core in range(8):
            runs.append(run_kernel(machine, core, triad_kernel(),
                                   data_numa=0, sweeps=None))
    noisy_rec = ctx.run("allreduce", size=size)
    for r in runs:
        r.request_stop()
    world.sim.run()
    assert noisy_rec.duration > 1.3 * quiet.duration
