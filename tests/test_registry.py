"""Registry-consistency tests: the drift the old five-structure CLI
setup invited (name table / fast table / capability sets / bench subset
/ fig5 special cases) is now caught here against the single registry."""

import pathlib

import pytest

from repro.core import registry
from repro.core.registry import ExperimentDef, UnknownExperimentError

ROOT = pathlib.Path(__file__).resolve().parents[1]

ALL_DEFS = registry.all_defs()
ALL_IDS = [d.name for d in ALL_DEFS]

# Cheap cross-section for the default lane: one frequency figure, one
# trace figure, one runtime sweep, the runtime overhead micro and the
# fig10 application sweep.  The full set runs in the slow lane below.
SMOKE = ["fig1a", "fig2", "fig9", "runtime_overhead", "fig10"]


def test_registry_is_populated_and_ordered():
    names = registry.names()
    assert names[0] == "fig1a"
    assert "fig5" in names and "overlap" in names
    assert len(names) == len(set(names))


def test_every_experiment_has_a_fast_profile():
    for defn in ALL_DEFS:
        assert defn.fast_kwargs, f"{defn.name} lacks a --fast profile"


def test_fast_profiles_match_signatures():
    """Every fast kwarg must be a parameter the entry point accepts."""
    for defn in ALL_DEFS:
        named, var_kw = defn.signature_params()
        for key in defn.fast_kwargs:
            assert var_kw or key in named, \
                f"{defn.name}: fast kwarg {key!r} not in signature"


def test_every_experiment_has_title_and_doc():
    for defn in ALL_DEFS:
        assert defn.title
        assert defn.doc, f"{defn.name}'s entry point lacks a docstring"


def test_journal_capability_matches_signature():
    """journal_capable must track the entry point's actual signature."""
    import inspect
    for defn in ALL_DEFS:
        params = inspect.signature(defn.runner).parameters
        accepts = "journal" in params or any(
            p.kind is inspect.Parameter.VAR_KEYWORD
            for p in params.values())
        if defn.journal_capable:
            assert accepts, \
                f"{defn.name} claims journal support but takes no journal"


def test_bench_subset_is_registered():
    bench = registry.bench_names()
    assert "fig1a" in bench and "fig10" in bench
    assert set(bench) <= set(registry.names())


def test_ablations_are_registered_but_not_in_all():
    ablations = registry.names(tag="ablation")
    assert len(ablations) == 5
    assert not set(ablations) & set(registry.names(in_all=True))


def test_unknown_experiment_error_is_actionable():
    with pytest.raises(UnknownExperimentError) as err:
        registry.get("fig99")
    msg = str(err.value)
    assert "fig99" in msg and "valid experiments" in msg
    assert "fig4a" in msg
    # Backwards compatible with the historical dict lookup.
    assert isinstance(err.value, KeyError)
    with pytest.raises(KeyError):
        registry.run_experiment("fig99")


def test_duplicate_registration_rejected():
    defn = registry.get("fig1a")
    with pytest.raises(ValueError, match="registered twice"):
        registry.register(defn)


def test_listing_snapshot_matches():
    """`repro list --long` is snapshotted; a diff means an experiment
    was added/renamed/re-capabilitied — regenerate the snapshot
    deliberately (see .github/workflows/ci.yml scenario-smoke)."""
    snapshot = (ROOT / "tests" / "data" / "registry_listing.txt")
    assert registry.render_listing(long=True) + "\n" == \
        snapshot.read_text()


def test_index_keys_appear_in_design_index():
    design = (ROOT / "DESIGN.md").read_text()
    for defn in ALL_DEFS:
        assert f"| {defn.index_key} " in design, \
            f"{defn.name} (index_key={defn.index_key!r}) missing from " \
            f"the DESIGN.md §5 experiment index"


def test_names_appear_in_experiments_md_index():
    path = ROOT / "EXPERIMENTS.md"
    if not path.exists():
        pytest.skip("EXPERIMENTS.md not generated in this checkout")
    text = path.read_text()
    for defn in ALL_DEFS:
        assert f"| {defn.name} |" in text, \
            f"{defn.name} missing from the EXPERIMENTS.md index"


def _smoke(defn: ExperimentDef):
    result = defn.run(fast=True)
    if defn.multi_result:
        assert isinstance(result, dict) and result
    text = defn.render(result)
    assert isinstance(text, str) and text.strip()
    return result


@pytest.mark.parametrize("name", SMOKE)
def test_fast_smoke_subset(name):
    _smoke(registry.get(name))


@pytest.mark.slow
@pytest.mark.parametrize("name", [n for n in ALL_IDS if n not in SMOKE])
def test_fast_smoke_all(name):
    """Every registered experiment runs in --fast and renders."""
    _smoke(registry.get(name))
