"""Span tracer + Chrome-trace export/validation helpers."""

import json

from repro.obs.export import (chrome_trace_json, render_trace_summary,
                              summarize_chrome_trace, validate_chrome_trace)
from repro.obs.tracer import SpanTracer


def test_complete_span_microseconds():
    tr = SpanTracer()
    tr.complete(1, 2, "work", "task", 0.001, 0.0035, {"n": 3})
    (event,) = tr.to_payload()["traceEvents"]
    assert event["ph"] == "X"
    assert event["ts"] == 1000.0
    assert event["dur"] == 2500.0
    assert event["pid"] == 1 and event["tid"] == 2
    assert event["args"] == {"n": 3}


def test_begin_finish_records_only_on_finish():
    tr = SpanTracer()
    handle = tr.begin(0, 0, "open", "task", 1.0, a=1)
    assert len(tr) == 0
    tr.finish(handle, 2.0, b=2)
    (event,) = tr.to_payload()["traceEvents"]
    assert event["args"] == {"a": 1, "b": 2}
    assert event["dur"] == 1e6


def test_instant_and_counter_events():
    tr = SpanTracer()
    tr.instant(1, 5, "fault", 0.5, cat="fault", args={"k": "v"})
    tr.counter(1, "bw GB/s", 0.5, 3.0)
    events = tr.to_payload()["traceEvents"]
    assert events[0]["ph"] == "i" and events[0]["s"] == "t"
    assert events[1]["ph"] == "C"
    assert events[1]["args"]["value"] == 3.0


def test_counter_dedups_consecutive_identical_values():
    tr = SpanTracer()
    tr.counter(1, "x", 0.0, 1.0)
    tr.counter(1, "x", 0.1, 1.0)     # dropped
    tr.counter(1, "x", 0.2, 2.0)
    tr.counter(2, "x", 0.3, 2.0)     # different pid: kept
    assert len(tr) == 3


def test_metadata_naming_dedups():
    tr = SpanTracer()
    tr.name_process(1, "node0")
    tr.name_process(1, "node0")
    tr.name_thread(1, 3, "core3")
    tr.name_thread(1, 3, "core3")
    events = tr.to_payload()["traceEvents"]
    assert [e["name"] for e in events] == ["process_name", "thread_name"]


def test_tracer_export_is_valid_chrome_trace(tmp_path):
    tr = SpanTracer()
    tr.name_process(1, "n0")
    tr.complete(1, 0, "a", "task", 0.0, 1.0)
    tr.instant(1, 0, "b", 0.5)
    tr.counter(1, "c", 0.5, 1.0)
    path = tmp_path / "t.json"
    tr.export(path)
    text = path.read_text()
    assert validate_chrome_trace(text) == []
    assert json.loads(text)["displayTimeUnit"] == "ms"


def test_validate_catches_problems():
    assert validate_chrome_trace("not json") != []
    assert validate_chrome_trace({"nope": 1}) != []
    bad_dur = {"traceEvents": [
        {"ph": "X", "name": "x", "ts": 0.0, "dur": -1.0,
         "pid": 0, "tid": 0}]}
    problems = validate_chrome_trace(bad_dur)
    assert any("negative dur" in p for p in problems)
    missing = {"traceEvents": [{"ph": "X", "name": "x", "pid": 0,
                                "tid": 0}]}
    assert any("missing" in p for p in validate_chrome_trace(missing))


def test_chrome_trace_json_indent_matches_legacy_format():
    events = [{"name": "e", "ph": "X", "ts": 0.0, "dur": 1.0,
               "pid": 0, "tid": 0}]
    legacy = json.dumps({"traceEvents": events, "displayTimeUnit": "ms"},
                        indent=1)
    assert chrome_trace_json(events, indent=1) == legacy


def test_summary_counts_and_render():
    tr = SpanTracer()
    tr.complete(1, 0, "a", "task", 0.0, 0.002)
    tr.complete(1, 1, "b", "transfer", 0.001, 0.003)
    tr.instant(2, 0, "f", 0.001, cat="fault")
    tr.counter(1, "bw", 0.0, 1.0)
    summary = summarize_chrome_trace(tr.to_payload())
    assert summary["events"] == 4
    assert summary["by_phase"] == {"C": 1, "X": 2, "i": 1}
    assert summary["by_category"]["task"]["events"] == 1
    assert summary["counter_tracks"] == ["bw"]
    assert summary["lanes"] == 3
    text = render_trace_summary(summary)
    assert "counter tracks" in text and "task" in text
