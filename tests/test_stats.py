"""Statistics engine: trial aggregation, Mann-Whitney U, campaign API.

The multi-seed tentpole's analysis layer: per-point trial sets with
bootstrap CIs, journal-backed :class:`CampaignResults`, and the
scipy-free Mann-Whitney U implementation the A/B comparison report
uses (hand-checked against published worked examples).
"""

import json
import math

import pytest

from repro.analysis.stats import (CampaignResults, TrialSet,
                                  a12_effect_size, aggregate_trial_series,
                                  mann_whitney_u, read_journal_entries)


# -- aggregate_trial_series -------------------------------------------------

def _series(med):
    # Journaled shape: {series_key: [[x, median, p10, p90], ...]}.
    return {"lat": [[x, m, m * 0.9, m * 1.1]
                    for x, m in zip([1.0, 2.0], med)]}


def test_aggregate_is_median_of_medians_with_envelope_band():
    agg = aggregate_trial_series(
        [_series([10.0, 1.0]), _series([30.0, 3.0]), _series([20.0, 2.0])])
    lat = agg["lat"]
    assert [r[0] for r in lat] == [1.0, 2.0]
    assert [r[1] for r in lat] == [20.0, 2.0]    # median of 10/30/20
    assert [r[2] for r in lat] == [9.0, 0.9]     # min of the p10s
    assert [r[3] for r in lat] == pytest.approx([33.0, 3.3])


def test_aggregate_single_trial_is_identity():
    one = _series([5.0, 6.0])
    agg = aggregate_trial_series([one])
    assert agg["lat"] == one["lat"]


# -- Mann-Whitney U ---------------------------------------------------------

def test_mann_whitney_separated_groups():
    # Complete separation: U for the smaller-ranked group is 0.
    res = mann_whitney_u([1, 2, 3, 4, 5], [10, 11, 12, 13, 14])
    assert res.u == 0.0
    assert res.p_value < 0.02
    assert res.significant()
    assert res.effect_size == 0.0        # A12: a never beats b


def test_mann_whitney_identical_groups_not_significant():
    res = mann_whitney_u([1, 2, 3], [1, 2, 3])
    assert res.p_value > 0.9
    assert not res.significant()
    assert res.effect_size == pytest.approx(0.5)


def test_mann_whitney_handles_ties():
    res = mann_whitney_u([1, 1, 2, 2], [2, 2, 3, 3])
    # 4 of the 16 pairs tie, 12 favour b: U_a = 0*12 + 0.5*4 = 2.
    assert res.u == pytest.approx(2.0)
    assert 0.0 < res.p_value <= 1.0


def test_mann_whitney_degenerate_inputs():
    assert mann_whitney_u([], [1.0]).p_value == 1.0
    assert mann_whitney_u([1.0], []).p_value == 1.0
    # All values equal: zero variance, no evidence either way.
    res = mann_whitney_u([2.0, 2.0], [2.0, 2.0])
    assert res.p_value == 1.0
    assert not res.significant()
    assert math.isfinite(res.u)


def test_a12_effect_size_direction():
    assert a12_effect_size([1, 2], [3, 4]) == 0.0
    assert a12_effect_size([3, 4], [1, 2]) == 1.0
    assert a12_effect_size([1, 2], [1, 2]) == pytest.approx(0.5)
    assert a12_effect_size([], [1]) == pytest.approx(0.5)


# -- TrialSet ---------------------------------------------------------------

def test_trialset_ci_brackets_median():
    ts = TrialSet(experiment="e", series="s", x=1.0,
                  values=(10.0, 12.0, 11.0, 13.0, 9.0),
                  bands=((9.0, 14.0),))
    lo, hi = ts.ci()
    assert lo <= ts.median <= hi
    assert ts.n == 5
    assert ts.mean == pytest.approx(11.0)


def test_trialset_single_trial_ci_falls_back_to_band():
    ts = TrialSet(experiment="e", series="s", x=1.0,
                  values=(10.0,), bands=((8.0, 12.0),))
    assert ts.ci() == (8.0, 12.0)


# -- CampaignResults --------------------------------------------------------

def _write_journal(path, medians_by_trial, experiment="fig1"):
    with open(path, "w", encoding="utf-8") as fh:
        for trial, med in enumerate(medians_by_trial):
            for i, m in enumerate(med):
                entry = {"experiment": experiment, "key": f"size={4 << i}",
                         "status": "ok",
                         "series": {"lat": [[float(4 << i), m,
                                             m * 0.9, m * 1.1]]}}
                if trial:
                    entry["trial"] = trial
                fh.write(json.dumps(entry) + "\n")


def test_campaign_results_from_journal(tmp_path):
    p = tmp_path / "c.jsonl"
    _write_journal(p, [[1.0, 2.0], [1.2, 2.2], [0.8, 1.8]])
    res = CampaignResults.from_journal(p)
    assert res.experiments() == ["fig1"]
    assert res.trials("fig1") == 3
    sets = res.trial_sets("fig1")
    assert len(sets) == 2
    assert sets[0].values == (1.0, 1.2, 0.8)
    assert sets[0].median == pytest.approx(1.0)


def test_campaign_compare_detects_shift(tmp_path):
    a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
    _write_journal(a, [[1.0, 2.0], [1.1, 2.1], [0.9, 1.9], [1.05, 2.05]])
    _write_journal(b, [[5.0, 6.0], [5.1, 6.1], [4.9, 5.9], [5.05, 6.05]])
    comps = CampaignResults.from_journal(a).compare(
        CampaignResults.from_journal(b))
    assert len(comps) == 2
    for c in comps:
        assert c.median_b > c.median_a
        assert c.delta_pct > 0
        assert c.test.effect_size == 0.0


def test_read_journal_entries_skips_malformed_lines(tmp_path):
    p = tmp_path / "c.jsonl"
    good = json.dumps({"experiment": "e", "key": "k", "status": "ok"})
    p.write_text(good + "\n{not json\n" + good + "\n"
                 + '{"experiment": "e2"', encoding="utf-8")
    entries = read_journal_entries(p)
    assert len(entries) == 2          # malformed + truncated tail skipped
    assert all(e["experiment"] == "e" for e in entries)


def test_failures_are_trial_labelled(tmp_path):
    p = tmp_path / "c.jsonl"
    rows = [
        {"experiment": "e", "key": "k", "status": "ok", "series": {}},
        {"experiment": "e", "key": "k", "trial": 1, "status": "failed",
         "failure": {"error": "TransportError", "message": "boom",
                     "harness": False}},
    ]
    p.write_text("".join(json.dumps(r) + "\n" for r in rows),
                 encoding="utf-8")
    res = CampaignResults.from_journal(p)
    fails = res.failures()
    assert len(fails) == 1
    assert fails[0]["trial"] == 1
    assert res.status_counts() == {"ok": 1, "failed": 1}


# -- non-finite sample handling ---------------------------------------------

def test_summarize_drops_nan_with_warning():
    from repro.analysis.stats import NonFiniteSampleWarning, summarize
    with pytest.warns(NonFiniteSampleWarning):
        s = summarize([1.0, float("nan"), 3.0, float("inf")])
    assert s.median == 2.0
    assert (s.n, s.dropped) == (2, 2)


def test_summarize_all_nonfinite_raises():
    from repro.analysis.stats import summarize
    with pytest.raises(ValueError, match="non-finite"):
        summarize([float("nan"), float("inf")])


def test_summarize_healthy_sample_has_no_dropped_and_no_warning():
    import warnings

    from repro.analysis.stats import summarize
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        s = summarize([1.0, 2.0, 3.0])
    assert (s.n, s.dropped) == (3, 0)


def test_aggregate_drops_nonfinite_trial_rows_with_warning():
    from repro.analysis.stats import NonFiniteSampleWarning
    nan = float("nan")
    with pytest.warns(NonFiniteSampleWarning):
        agg = aggregate_trial_series([
            {"lat": [[1.0, 10.0, 9.0, 11.0]]},
            {"lat": [[1.0, nan, 9.0, 11.0]]},   # poisoned median
            {"lat": [[1.0, 30.0, 27.0, 33.0]]},
        ])
    x, med, p10, p90 = agg["lat"][0]
    assert med == 20.0                           # median of the finite pair
    assert (p10, p90) == (9.0, 33.0)
    assert math.isfinite(med)


def test_aggregate_all_nonfinite_point_raises():
    nan = float("nan")
    with pytest.raises(ValueError, match="non-finite"):
        aggregate_trial_series([
            {"lat": [[1.0, nan, 9.0, 11.0]]},
            {"lat": [[1.0, 10.0, nan, 11.0]]},
        ])
