"""Tests for the extended kernel set and the native STREAM runner."""

import math

import pytest

from repro.hardware import Cluster, HENRI
from repro.kernels import run_kernel
from repro.kernels.extra import (
    add_kernel, dgemm_kernel, scale_kernel, spmv_kernel, stencil_kernel,
)
from repro.kernels.native import (
    NativeStreamResult, run_native_stream,
)


@pytest.fixture
def machine():
    return Cluster(HENRI, 1).machine(0)


def test_stream_quartet_intensities():
    assert scale_kernel().intensity == pytest.approx(1 / 16)
    assert add_kernel().intensity == pytest.approx(1 / 24)


def test_spmv_deeply_memory_bound():
    # ~0.12 flop/B including index traffic: far below any ridge.
    assert spmv_kernel().intensity < 0.2
    with pytest.raises(ValueError):
        spmv_kernel(rows=0)


def test_stencil_blocking_changes_intensity():
    blocked = stencil_kernel(blocked=True)
    unblocked = stencil_kernel(blocked=False)
    assert blocked.intensity > unblocked.intensity
    assert blocked.intensity == pytest.approx(0.5)
    with pytest.raises(ValueError):
        stencil_kernel(n=4)


def test_dgemm_cpu_bound():
    k = dgemm_kernel(n=1024, block=192)
    assert k.intensity > 20
    assert k.vector
    with pytest.raises(ValueError):
        dgemm_kernel(n=64, block=192)


def test_spmv_runs_and_stalls(machine):
    run = run_kernel(machine, 0, spmv_kernel(rows=100_000), sweeps=1)
    machine.sim.run()
    assert run.stats.stall_fraction > 0.85
    assert run.stats.memory_bandwidth == pytest.approx(
        HENRI.memory.per_core_bw, rel=0.1)


def test_dgemm_runs_without_stalls(machine):
    run = run_kernel(machine, 0, dgemm_kernel(n=512, block=128), sweeps=1)
    machine.sim.run()
    assert run.stats.stall_fraction < 0.1
    # Near the AVX peak at the 1-core license frequency.
    peak = HENRI.avx_flops_per_cycle * HENRI.freq.avx512.frequency(1)
    assert run.stats.flop_rate == pytest.approx(peak, rel=0.15)


def test_stencil_interferes_with_network(machine=None):
    """New kernels slot straight into the paper's §4 protocol."""
    from repro.core.sidebyside import (
        SideBySideConfig, run_throughput_protocol,
    )
    from repro.mpi.pingpong import BANDWIDTH_SIZE
    cfg = SideBySideConfig(
        n_compute_cores=12, message_size=BANDWIDTH_SIZE, reps=3,
        kernel_factory=lambda: stencil_kernel(n=128, blocked=False),
        window=0.03, window_warmup=0.01)
    out = run_throughput_protocol(cfg)
    assert out.comm_together.median_latency > \
        1.2 * out.comm_alone.median_latency


# -- native STREAM ----------------------------------------------------------

def test_native_stream_runs():
    res = run_native_stream("triad", elems=1_000_000, iterations=2)
    assert isinstance(res, NativeStreamResult)
    assert res.bandwidth > 1e8      # any real machine beats 0.1 GB/s
    assert "triad" in res.summary()


def test_native_copy_and_tunable():
    copy = run_native_stream("copy", elems=500_000, iterations=2)
    assert copy.bytes_per_iteration == 500_000 * 16
    tun = run_native_stream("tunable_triad", elems=500_000,
                            iterations=2, cursor=4)
    assert tun.bytes_per_iteration == 500_000 * 24 * 4


def test_native_validation():
    with pytest.raises(ValueError):
        run_native_stream("fft")
    with pytest.raises(ValueError):
        run_native_stream("copy", elems=0)
