"""Reliable transport: ack/timeout/retransmit semantics.

Property tests (hypothesis, derandomized in conftest) pin down the two
contract-level guarantees of the fault-injection redesign:

* zero loss — the reliable path is *pay-for-what-you-use*: timings are
  bit-identical to the original (injector-free) protocol path;
* any loss — a transfer either completes or raises
  :class:`TransportError` after bounded retries; it never hangs.
"""

import contextlib

import pytest
from hypothesis import given, settings, strategies as st

from repro.faults import (
    FaultPlan, MessageLoss, ReliabilityConfig, TransportError,
    fault_context,
)
from repro.hardware.topology import Cluster
from repro.mpi.comm import CommWorld
from repro.mpi.p2p import P2PContext
from repro.mpi.pingpong import PingPong


def _world(plan=None, reliability=None, spec="henri"):
    ctx = (fault_context(plan, reliability) if plan is not None
           else contextlib.nullcontext())
    with ctx:
        cluster = Cluster(spec, n_nodes=2)
        world = CommWorld(cluster, comm_placement="near")
    return world


def _records(plan=None, reliability=None, size=4096, n=6):
    world = _world(plan, reliability)
    p2p = P2PContext(world)
    bufs = [world.rank(r).buffer(size, 0, f"b{r}") for r in (0, 1)]
    for i in range(n):
        p2p.isend(0, 1, bufs[0], tag=i)
        p2p.irecv(1, 0, bufs[1], tag=i)
    world.sim.run()
    if p2p.failures:
        raise p2p.failures[0]
    return p2p.transfers


def _record_tuple(rec):
    return (rec.size, rec.protocol, rec.start, rec.end, rec.retries,
            rec.timeouts, sorted(rec.components.items()))


# -- pay-for-what-you-use -------------------------------------------------

@pytest.mark.parametrize("size", [4, 4096, 1 << 20])
def test_zero_loss_is_bit_identical(size):
    plain = [_record_tuple(r) for r in _records(size=size)]
    armed = [_record_tuple(r)
             for r in _records(FaultPlan(seed=0), size=size)]
    assert plain == armed


def test_zero_loss_pingpong_bit_identical():
    base = PingPong(_world()).run(65536, reps=8)
    armed = PingPong(_world(FaultPlan(seed=3))).run(65536, reps=8)
    assert list(base.latencies) == list(armed.latencies)


# -- bounded-loss liveness -------------------------------------------------

@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**20),
       loss=st.floats(0.01, 0.6),
       size=st.sampled_from([4, 4096, 262144]))
def test_lossy_transfer_completes_or_raises(seed, loss, size):
    plan = FaultPlan(seed=seed).message_loss(loss_rate=loss, start=0.0,
                                             duration=100.0)
    rel = ReliabilityConfig(max_retries=6)
    try:
        records = _records(plan, rel, size=size)
    except TransportError as err:
        assert err.retries == rel.max_retries
    else:
        assert len(records) == 6
        for rec in records:
            assert rec.end >= rec.start
            assert rec.timeouts >= rec.retries


def test_lossy_run_is_deterministic_per_seed():
    plan = FaultPlan(seed=11).message_loss(loss_rate=0.3, start=0.0,
                                           duration=100.0)
    a = [_record_tuple(r) for r in _records(plan)]
    b = [_record_tuple(r) for r in _records(plan)]
    assert a == b
    other = FaultPlan(seed=12).message_loss(loss_rate=0.3, start=0.0,
                                            duration=100.0)
    assert [_record_tuple(r) for r in _records(other)] != a


def test_loss_costs_time_and_counts_retries():
    plan = FaultPlan(seed=2).message_loss(loss_rate=0.5, start=0.0,
                                          duration=100.0)
    records = _records(plan, ReliabilityConfig(max_retries=50))
    assert sum(r.retries for r in records) > 0
    lossy = [r for r in records if r.retries]
    for rec in lossy:
        assert rec.components.get("retransmit_wait", 0.0) > 0.0


def test_certain_loss_raises_transport_error():
    plan = FaultPlan(seed=0).message_loss(loss_rate=1.0, start=0.0,
                                          duration=100.0)
    with pytest.raises(TransportError) as err:
        _records(plan, ReliabilityConfig(max_retries=4))
    assert err.value.retries == 4
    assert err.value.timeouts >= 4


def test_corruption_triggers_retransmit():
    plan = FaultPlan(seed=4).add(
        MessageLoss(loss_rate=0.0, corrupt_rate=0.5, start=0.0,
                    duration=100.0))
    records = _records(plan, ReliabilityConfig(max_retries=50))
    assert sum(r.retries for r in records) > 0


def test_p2p_propagates_failure_to_both_sides():
    plan = FaultPlan(seed=0).fail_stop(node=1, at=1e-6)
    world = _world(plan)
    p2p = P2PContext(world)
    a = world.rank(0).buffer(4096, 0, "a")
    b = world.rank(1).buffer(4096, 0, "b")
    send = p2p.isend(0, 1, a)
    recv = p2p.irecv(1, 0, b)
    world.sim.run()
    assert send.done.triggered and not send.done.ok
    assert recv.done.triggered and not recv.done.ok
    assert p2p.failures and isinstance(p2p.failures[0], TransportError)


# -- backoff config --------------------------------------------------------

def test_retransmit_timeout_backs_off_exponentially():
    rel = ReliabilityConfig(timeout_s=1e-4, backoff_factor=2.0,
                            max_backoff_s=None)
    rtos = [rel.retransmit_timeout(n, rendezvous=False)
            for n in range(1, 5)]
    assert rtos == [1e-4, 2e-4, 4e-4, 8e-4]


def test_retransmit_timeout_respects_cap_and_handshake():
    rel = ReliabilityConfig(timeout_s=1e-4, backoff_factor=2.0,
                            max_backoff_s=2.5e-4,
                            handshake_timeout_s=5e-4)
    assert rel.retransmit_timeout(4, rendezvous=False) == 2.5e-4
    # Rendezvous handshakes use their own (longer) base timeout.
    assert rel.retransmit_timeout(1, rendezvous=True) == 2.5e-4


def test_invalid_reliability_rejected():
    with pytest.raises(ValueError):
        ReliabilityConfig(max_retries=-1)
    with pytest.raises(ValueError):
        ReliabilityConfig(timeout_s=0.0)
