"""Dispatch-order regression tests for the compacting event engine.

PR 9 rewrote the engine hot loop (stale-entry accounting, threshold
heap compaction, batched same-instant dispatch).  None of that may move
a single event: dispatch order is the total order on ``(time, seq)``
and every consumer — trace files, metrics, the seeded campaigns — leans
on it for byte-identical artifacts.  Two guards:

* a **golden** test pins the full ``(time, seq, callback)`` dispatch
  sequence of a seeded fast ``fig1a`` run against
  ``tests/data/golden_fig1a_events.json`` (regenerate with the snippet
  in that test's docstring after an *intentional* ordering change);
* a **property** test drives randomized schedule/reschedule/cancel/
  interrupt churn through two engines — compaction effectively disabled
  vs. aggressively enabled — and asserts identical dispatch sequences.
"""

import hashlib
import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.registry import run_experiment
from repro.sim.engine import Simulator

GOLDEN = Path(__file__).parent / "data" / "golden_fig1a_events.json"


def _capture_fig1a():
    """Run fast fig1a with a dispatch hook on every simulator created."""
    records = []
    orig_init = Simulator.__init__

    def patched(self, *args, **kwargs):
        orig_init(self, *args, **kwargs)

        def hook(t, seq, callback, cb_args, _r=records.append):
            _r(f"{t!r} {seq} "
               f"{getattr(callback, '__qualname__', repr(callback))}")
        self.dispatch_hook = hook

    Simulator.__init__ = patched
    try:
        run_experiment("fig1a", fast=True)
    finally:
        Simulator.__init__ = orig_init
    return records


def test_fig1a_dispatch_order_golden():
    """The seeded fig1a fast run dispatches the exact pinned sequence.

    If this fails after an *intentional* engine/model ordering change,
    regenerate the golden with::

        PYTHONPATH=src python -c "
        import tests.test_sim_engine_order as m; m.regen_golden()"
    """
    records = _capture_fig1a()
    golden = json.loads(GOLDEN.read_text())
    assert len(records) == golden["events"]
    assert records[:5] == golden["head"]
    assert records[-5:] == golden["tail"]
    digest = hashlib.sha256("\n".join(records).encode()).hexdigest()
    assert digest == golden["sha256"]


def regen_golden():  # pragma: no cover - maintenance helper
    records = _capture_fig1a()
    doc = {
        "experiment": "fig1a", "mode": "fast", "spec": "henri",
        "events": len(records),
        "sha256": hashlib.sha256("\n".join(records).encode()).hexdigest(),
        "head": records[:5], "tail": records[-5:],
    }
    GOLDEN.write_text(json.dumps(doc, indent=1, sort_keys=True) + "\n")


# ---------------------------------------------------------------------------
# Property: compaction never reorders live entries.
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.one_of(
        st.tuples(st.just("schedule"), st.integers(0, 20)),
        st.tuples(st.just("daemon"), st.integers(0, 20)),
        st.tuples(st.just("cancel"), st.integers(0, 63)),
        st.tuples(st.just("resched"), st.integers(0, 63),
                  st.integers(0, 20)),
        st.tuples(st.just("spawn"), st.integers(1, 20)),
        st.tuples(st.just("interrupt"), st.integers(0, 63)),
        st.tuples(st.just("run"), st.integers(0, 30)),
    ),
    min_size=1, max_size=60)


def _drive(ops, compact_min):
    """Apply *ops* to a fresh engine; return the full dispatch log."""
    sim = Simulator()
    sim.compact_min = compact_min
    log = []
    sim.dispatch_hook = lambda t, seq, cb, args: log.append(
        (t, seq, getattr(cb, "__qualname__", repr(cb))))
    handles = []
    procs = []

    def sleeper(total):
        try:
            yield total * 0.1
        except BaseException:  # Interrupt — swallow and finish
            pass

    for op in ops:
        kind = op[0]
        if kind == "schedule" or kind == "daemon":
            handles.append(sim.schedule(op[1] * 0.1, lambda: None,
                                        daemon=kind == "daemon"))
        elif kind == "cancel":
            if handles:
                handles[op[1] % len(handles)].cancel()
        elif kind == "resched":
            if handles:
                sim.reschedule(handles[op[1] % len(handles)],
                               sim.now + op[2] * 0.1, lambda: None)
        elif kind == "spawn":
            procs.append(sim.process(sleeper(op[1])))
        elif kind == "interrupt":
            if procs:
                procs[op[1] % len(procs)].interrupt("churn")
        elif kind == "run":
            sim.run(until=sim.now + op[1] * 0.1)
    sim.run()
    return log, sim.heap_compactions


@settings(max_examples=120, deadline=None)
@given(ops=_OPS)
def test_compaction_preserves_dispatch_order(ops):
    plain, n_plain = _drive(ops, compact_min=1 << 30)
    compacted, n_compacted = _drive(ops, compact_min=1)
    assert n_plain == 0
    assert plain == compacted
