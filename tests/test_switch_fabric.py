"""Tests for the shared-switch fabric extension (>2-node clusters)."""

import pytest

from repro.hardware import Cluster, HENRI
from repro.mpi import CommWorld, P2PContext
from repro.mpi.collectives import CollectiveContext


def test_switch_validation():
    with pytest.raises(ValueError):
        Cluster(HENRI, 2, switch_bw=0)


def test_wire_path_with_and_without_switch():
    plain = Cluster(HENRI, 2)
    assert plain.switch is None
    assert plain.wire_path(0, 1) == [plain.wire(0, 1)]
    switched = Cluster(HENRI, 2, switch_bw=20e9)
    assert switched.switch is not None
    assert switched.wire_path(0, 1) == [switched.wire(0, 1),
                                        switched.switch]


def run_pair(cluster, src, dst, size):
    world = getattr(cluster, "_world", None)
    if world is None:
        world = CommWorld(cluster, comm_placement="near")
        cluster._world = world
    p2p = getattr(cluster, "_p2p", None)
    if p2p is None:
        p2p = P2PContext(world)
        cluster._p2p = p2p
    s = p2p.isend(src, dst, world.rank(src).buffer(size),
                  tag=100 * src + dst)
    p2p.irecv(dst, src, world.rank(dst).buffer(size),
              tag=100 * src + dst)
    return s


def test_oversubscribed_switch_caps_aggregate_bandwidth():
    """Four simultaneous pair-wise transfers through a 15 GB/s switch
    cannot exceed the switch's capacity in aggregate."""
    size = 32 << 20
    cluster = Cluster(HENRI, 8, switch_bw=15e9)
    sends = [run_pair(cluster, 2 * i, 2 * i + 1, size) for i in range(4)]
    cluster.sim.run()
    durations = [s.record.duration for s in sends]
    agg = 4 * size / max(durations)
    assert agg <= 15e9 * 1.05
    # Non-blocking fabric for comparison: each pair at full wire speed.
    cluster2 = Cluster(HENRI, 8)
    sends2 = [run_pair(cluster2, 2 * i, 2 * i + 1, size)
              for i in range(4)]
    cluster2.sim.run()
    agg2 = 4 * size / max(s.record.duration for s in sends2)
    assert agg2 > 2.0 * agg


def test_generous_switch_is_transparent():
    size = 16 << 20
    slow = Cluster(HENRI, 2, switch_bw=400e9)
    fast = Cluster(HENRI, 2)
    s1 = run_pair(slow, 0, 1, size)
    slow.sim.run()
    s2 = run_pair(fast, 0, 1, size)
    fast.sim.run()
    assert s1.record.duration == pytest.approx(s2.record.duration,
                                               rel=0.02)


def test_collectives_slower_on_oversubscribed_fabric():
    size = 8 << 20
    free = CollectiveContext(
        CommWorld(Cluster(HENRI, 8), comm_placement="near"))
    shared = CollectiveContext(
        CommWorld(Cluster(HENRI, 8, switch_bw=12e9),
                  comm_placement="near"))
    rec_free = free.run("allreduce", size=size)
    rec_shared = shared.run("allreduce", size=size)
    assert rec_shared.duration > 1.5 * rec_free.duration
