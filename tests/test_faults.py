"""Fault-injection subsystem: plans, injector mechanics, crash recovery."""

import pytest

from repro.faults import (
    FaultPlan, ReliabilityConfig, TransportError, active_faults,
    fault_context, install_faults, clear_faults, parse_fault,
)
from repro.faults.plan import DegradedLink, FailStop, MessageLoss
from repro.hardware.topology import Cluster
from repro.kernels.blas import TileCost
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import PingPong
from repro.runtime.runtime import RuntimeSystem
from repro.runtime.task import Task


def _pingpong(plan=None, size=4096, reps=5, spec="henri"):
    import contextlib
    ctx = fault_context(plan) if plan is not None else contextlib.nullcontext()
    with ctx:
        cluster = Cluster(spec, n_nodes=2)
        world = CommWorld(cluster, comm_placement="near")
        return PingPong(world).run(size, reps=reps)


# -- plan construction and parsing ---------------------------------------

def test_parse_fault_specs():
    fault = parse_fault("fail_stop:node=1,at=0.01")
    assert fault == FailStop(node=1, at=0.01)
    fault = parse_fault("loss:loss_rate=0.05,start=0,duration=1")
    assert isinstance(fault, MessageLoss)
    assert fault.loss_rate == 0.05
    fault = parse_fault("link:src=0,dst=1,bw_factor=0.5,duration=1")
    assert isinstance(fault, DegradedLink)
    assert fault.bw_factor == 0.5


def test_parse_fault_rejects_unknown():
    with pytest.raises(ValueError):
        parse_fault("meteor:at=1")
    with pytest.raises(ValueError):
        parse_fault("no-colon-here")


def test_plan_roundtrip_dict():
    plan = (FaultPlan(seed=9)
            .fail_stop(node=1, at=0.02)
            .message_loss(loss_rate=0.1, start=0.0, duration=0.5)
            .degrade_link(0, 1, start=0.1, duration=0.2, bw_factor=0.5))
    clone = FaultPlan.from_dict(plan.to_dict())
    assert clone.seed == plan.seed
    assert clone.faults == plan.faults


def test_random_plan_is_deterministic():
    a, b = FaultPlan.random(21), FaultPlan.random(21)
    assert a.faults == b.faults
    assert FaultPlan.random(22).faults != a.faults


def test_fault_context_stack():
    assert active_faults() is None
    plan = FaultPlan(seed=1)
    with fault_context(plan):
        assert active_faults().plan is plan
        inner = FaultPlan(seed=2)
        with fault_context(inner, ReliabilityConfig(max_retries=3)):
            assert active_faults().plan is inner
            assert active_faults().reliability.max_retries == 3
        assert active_faults().plan is plan
    assert active_faults() is None
    install_faults(plan)
    assert active_faults() is not None
    clear_faults()
    assert active_faults() is None


# -- injector mechanics ---------------------------------------------------

def test_cluster_without_faults_has_no_injector():
    cluster = Cluster("henri", n_nodes=2)
    assert cluster.fault_injector is None


def test_fail_slow_caps_core_frequency():
    plan = FaultPlan(seed=0).fail_slow(node=0, freq_cap_hz=8e8,
                                       start=0.0, duration=1.0)
    with fault_context(plan):
        cluster = Cluster("henri", n_nodes=2)
        sim = cluster.sim
        machine = cluster.machine(0)
        sim.run(until=0.5)
        assert machine.freq.core_hz(0) <= 8e8
        sim.run(until=2.0)
        assert machine.freq.core_hz(0) > 8e8  # window closed


def test_degraded_link_slows_transfers():
    base = _pingpong(size=65536)
    degraded = _pingpong(
        FaultPlan(seed=0).degrade_link(0, 1, start=0.0, duration=10.0,
                                       bw_factor=0.25, latency_factor=2.0),
        size=65536)
    assert degraded.median_latency > base.median_latency


def test_fail_slow_node_slows_pingpong():
    base = _pingpong()
    slow = _pingpong(FaultPlan(seed=0).fail_slow(
        node=0, freq_cap_hz=8e8, start=0.0, duration=10.0))
    assert slow.median_latency > base.median_latency


def test_reg_cache_flush_costs_registration():
    big = 1 << 20
    base = _pingpong(size=big)
    flushed = _pingpong(FaultPlan(seed=0).flush_reg_cache(
        node=0, at=1e-4, period=1e-4, count=50), size=big)
    assert flushed.median_latency > base.median_latency


def test_fail_stop_raises_transport_error():
    plan = FaultPlan(seed=0).fail_stop(node=1, at=1e-5)
    with pytest.raises(TransportError) as err:
        _pingpong(plan)
    assert "failed" in err.value.reason


def test_injector_timeline_logged():
    plan = FaultPlan(seed=0).fail_stop(node=1, at=1e-5)
    with fault_context(plan):
        cluster = Cluster("henri", n_nodes=2)
        cluster.sim.run(until=1e-3)
        log = cluster.fault_injector.log
    assert any(entry["fault"] == "FailStop" for entry in log)


# -- runtime crash recovery ----------------------------------------------

def _submit_tasks(rt, n):
    tasks = [Task(name=f"t{i}", cost=TileCost("triad", 5e6, 1 << 20),
                  rank=0) for i in range(n)]
    for task in tasks:
        rt.submit(task)
    return tasks


def test_worker_crash_requeues_task():
    plan = FaultPlan(seed=0).crash_worker(node=0, at=2e-4, worker_index=0)
    with fault_context(plan):
        cluster = Cluster("henri", n_nodes=1)
        world = CommWorld(cluster)
        rt = RuntimeSystem(world, 0, n_workers=4).start()
        tasks = _submit_tasks(rt, 12)
        done = rt.wait_all()
        world.sim.run()
    assert done.triggered and done.ok
    assert all(t.done for t in tasks)
    assert rt.workers[0].crashed
    # The dead worker's share was redistributed, nothing was lost.
    assert sum(w.tasks_executed for w in rt.workers) == 12


def test_node_fail_stop_fails_wait_all():
    plan = FaultPlan(seed=0).fail_stop(node=0, at=2e-4)
    with fault_context(plan):
        cluster = Cluster("henri", n_nodes=1)
        world = CommWorld(cluster)
        rt = RuntimeSystem(world, 0, n_workers=2).start()
        _submit_tasks(rt, 50)
        done = rt.wait_all()
        world.sim.run()
    assert rt.crashed
    assert done.triggered and not done.ok
    with pytest.raises(TransportError):
        _ = done.value
