"""Tests for the §2.1 side-by-side protocol orchestration."""

import pytest

from repro.core.placement import Placement
from repro.core.sidebyside import (SideBySideConfig, build_world,
                                   run_duration_protocol,
                                   run_throughput_protocol)
from repro.kernels.stream import triad_kernel
from repro.mpi.pingpong import LATENCY_SIZE


def _config(**kw):
    base = dict(n_compute_cores=4, reps=6, warmup_reps=1,
                window=0.02, window_warmup=0.005,
                kernel_factory=lambda: triad_kernel(elems=200_000))
    base.update(kw)
    return SideBySideConfig(**base)


def test_build_world_places_comm_and_data():
    config = _config(placement=Placement(data="near", comm_thread="far"))
    cluster, world, pingpong = build_world(config)
    assert len(cluster.machines) == 2
    assert len(world.ranks) == 2
    # A far comm thread sits on the other socket from the NIC.
    machine = cluster.machine(0)
    rank = world.rank(0)
    comm_numa = machine.numa_of_core(rank.comm_core)
    assert comm_numa.socket_id != machine.nic_numa.socket_id


def test_throughput_protocol_zero_cores_skips_together():
    out = run_throughput_protocol(_config(n_compute_cores=0))
    assert out.comm_together is None
    assert out.compute_alone_bw_per_core == []
    assert out.compute_together_bw_per_core == []
    assert out.compute_alone_bw == 0.0
    assert out.comm_alone.median_latency > 0


def test_throughput_protocol_measures_all_cores():
    config = _config(n_compute_cores=3)
    out = run_throughput_protocol(config)
    # Both nodes compute: one bandwidth sample per core per node.
    assert len(out.compute_alone_bw_per_core) == 6
    assert len(out.compute_together_bw_per_core) == 6
    assert out.compute_alone_bw > 0
    assert out.comm_together is not None
    assert len(out.comm_together.latencies) >= 2 * config.reps


def test_throughput_contention_degrades_latency():
    """The §4 shape: once streaming cores reach the comm thread's
    socket (35 of henri's 36 cores), ping-pong latency inflates."""
    loaded = run_throughput_protocol(_config(n_compute_cores=35))
    assert loaded.comm_together.median_latency \
        > 1.5 * loaded.comm_alone.median_latency


def test_duration_protocol_requires_compute_cores():
    with pytest.raises(ValueError, match="computing cores"):
        run_duration_protocol(_config(n_compute_cores=0))


def test_duration_protocol_outcome_shape():
    out = run_duration_protocol(_config(n_compute_cores=2, sweeps=1))
    assert out.compute_alone_duration > 0
    assert out.compute_together_duration > 0
    assert out.compute_alone_makespan >= out.compute_alone_duration
    assert out.compute_together_makespan >= out.compute_together_duration
    assert out.comm_alone.median_latency > 0


def test_protocol_is_deterministic():
    a = run_throughput_protocol(_config(n_compute_cores=2))
    b = run_throughput_protocol(_config(n_compute_cores=2))
    assert a.comm_alone.median_latency == b.comm_alone.median_latency
    assert a.compute_together_bw_per_core == b.compute_together_bw_per_core


def test_single_node_compute_option():
    config = _config(n_compute_cores=2, compute_on_both_nodes=False)
    out = run_throughput_protocol(config)
    assert len(out.compute_alone_bw_per_core) == 2


def test_message_size_reaches_pingpong():
    out = run_throughput_protocol(
        _config(n_compute_cores=0, message_size=LATENCY_SIZE))
    assert out.comm_alone.size == LATENCY_SIZE
