"""Integration tests asserting the paper's headline findings.

Each test runs a reduced version of a paper experiment and checks the
*shape* of the result: orderings, thresholds and rough factors.  The
full-resolution versions live in ``benchmarks/``.
"""

import pytest

from repro.core import experiments as E
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE

pytestmark = pytest.mark.slow


# -- §3.1: frequency effects on communications -------------------------------

def test_fig1_core_frequency_drives_latency():
    res = E.fig1(sizes=[4], reps=8)
    hi = res.observations["latency_high_core_s"]
    lo = res.observations["latency_low_core_s"]
    # Paper: 1.8 us at 2.3 GHz vs 3.1 us at 1.0 GHz.
    assert hi == pytest.approx(1.8e-6, rel=0.1)
    assert lo == pytest.approx(3.1e-6, rel=0.1)
    assert lo / hi == pytest.approx(1.72, rel=0.15)


def test_fig1_uncore_frequency_drives_bandwidth():
    res = E.fig1(sizes=[4, BANDWIDTH_SIZE], reps=4)
    bw_hi = res.observations["bandwidth_uncore_max"]
    bw_lo = res.observations["bandwidth_uncore_min"]
    # Paper: 10.5 vs 10.1 GB/s.
    assert bw_hi == pytest.approx(10.5e9, rel=0.05)
    assert bw_lo < bw_hi
    assert bw_hi / bw_lo == pytest.approx(1.04, abs=0.03)


# -- §3.2: CPU-bound compute does not hurt, and can help ---------------------

def test_fig2_frequency_phases_and_latency_improvement():
    res = E.fig2(phase_seconds=0.04)
    obs = res.observations
    # Phase B (idle): compute cores at minimum frequency.
    assert obs["compute_core_ghz_B"] == pytest.approx(1.0, abs=0.1)
    # Phase C: compute cores boosted.
    assert obs["compute_core_ghz_C"] > 2.0
    # Paper: latency slightly BETTER with computation (1.52 vs 1.7 us).
    assert obs["latency_together_s"] < obs["latency_alone_s"]


# -- §3.3: AVX ----------------------------------------------------------

def test_fig3_avx_slows_itself_not_comms():
    res = E.fig3a(core_counts=(4, 20), reps=5)
    # Weak scaling: more AVX cores -> lower license frequency -> slower.
    assert res["compute_alone"].at(20) > res["compute_alone"].at(4)
    assert res["compute_alone"].at(4) == pytest.approx(0.135, rel=0.15)
    # Latency never degraded by AVX compute.
    for n in (4, 20):
        assert res["latency_together"].at(n) <= \
            res["latency_alone"].at(n) * 1.05


def test_fig3bc_comm_core_frequency_stable():
    res = E.fig3bc(n_compute=4, phase_seconds=0.05)
    # Paper fig 3b: 4 AVX cores at ~3 GHz, comm core unaffected.
    assert res.observations["avx_core_ghz"] == pytest.approx(3.0, abs=0.15)
    assert res.observations["comm_core_ghz"] >= 2.5


# -- §4.2: memory contention ---------------------------------------------------

def test_fig4a_latency_far_thread_doubles_late():
    res = E.fig4a(core_counts=[0, 5, 20, 28, 35], reps=6)
    base = res.observations["latency_baseline_s"]
    # Flat until computing threads reach the comm socket ...
    assert res["comm_together"].at(5) == pytest.approx(base, rel=0.1)
    # ... then roughly doubles at full core count (paper: x2).
    assert res.observations["latency_max_ratio"] == pytest.approx(
        2.0, rel=0.25)
    # STREAM is not impacted by the latency ping-pong.
    assert res["compute_together"].at(20) == pytest.approx(
        res["compute_alone"].at(20), rel=0.05)


def test_fig4b_bandwidth_drops_two_thirds():
    res = E.fig4b(core_counts=[0, 3, 5, 20, 35], reps=4)
    # Paper: impacted from ~3 cores; -2/3 at full count.
    assert res.observations["bandwidth_impact_from_cores"] <= 5
    assert res.observations["bandwidth_min_ratio"] == pytest.approx(
        1 / 3, abs=0.08)
    # STREAM loses at most ~25 % (at few cores).
    ratios = [t / a for t, a in zip(res["compute_together"].median,
                                    res["compute_alone"].median)]
    assert min(ratios) > 0.65
    assert min(ratios) < 0.9


# -- §4.3: placement (Table 1) ---------------------------------------------------

def test_table1_placement_orderings():
    rows = {(
        r["data"], r["comm_thread"]): r
        for r in E.table1(core_counts=[0, 5, 20, 35],
                          reps=4).meta["rows"]}
    # Far comm thread: stronger latency degradation than near.
    assert rows[("near", "far")]["latency_max_ratio"] > \
        rows[("near", "near")]["latency_max_ratio"]
    # Far data: bandwidth drops more abruptly than near data.
    assert rows[("far", "near")]["bandwidth_min_ratio"] < \
        rows[("near", "near")]["bandwidth_min_ratio"]
    # Near thread stays mild (paper: "around 2 us").
    assert rows[("near", "near")]["latency_max_ratio"] < 1.6


# -- §4.4: message size ---------------------------------------------------

def test_fig6a_thresholds():
    res = E.fig6a(sizes=[4, 1024, 4096, 65536, 1 << 20, 64 << 20], reps=4)
    # Paper @5 cores: comms degraded from 64 KB, STREAM from 4 KB.
    assert res.observations["comm_degraded_from_size"] == 65536
    assert res.observations["stream_degraded_from_size"] in (4096, 65536)


def test_fig6b_more_cores_hurt_smaller_messages():
    res6a = E.fig6a(sizes=[4096, 65536], reps=4)
    res6b = E.fig6b(sizes=[4096, 65536], reps=4)
    ratio_a = res6a["comm_together"].at(4096) / \
        res6a["comm_alone"].at(4096)
    ratio_b = res6b["comm_together"].at(4096) / \
        res6b["comm_alone"].at(4096)
    # At 35 cores even small messages are degraded; at 5 cores they are not.
    assert ratio_b < 0.8 < ratio_a


# -- §4.5: arithmetic intensity -------------------------------------------------

def test_fig7a_latency_ridge():
    res = E.fig7a(cursors=[1, 24, 72, 144, 480], reps=4, elems=800_000)
    lat = res["comm_together"]
    alone = res["comm_alone"].median[0]
    # Memory-bound side: latency roughly doubles.
    assert lat.at(1 / 12) > 1.7 * alone
    # CPU-bound side: recovered.
    assert lat.at(40) < 1.2 * alone
    # Computing duration constant in the memory-bound regime (§4.5).
    assert res["compute_together"].at(1 / 12) == pytest.approx(
        res["compute_alone"].at(1 / 12), rel=0.05)


def test_fig7b_bandwidth_ridge():
    res = E.fig7b(cursors=[1, 72, 480], reps=3, elems=2_000_000, sweeps=3)
    bw = res["comm_together_bw"]
    # Paper: -60 % below the ridge; nominal above.
    assert bw.at(1 / 12) < 0.45 * bw.at(40)
    # Compute slowed ~10 % by the large messages below the ridge.
    slowdown = res["compute_together"].at(1 / 12) / \
        res["compute_alone"].at(1 / 12)
    assert 1.02 < slowdown < 1.35


# -- §5: runtime system ---------------------------------------------------

def test_runtime_overhead_matches_paper():
    res = E.runtime_overhead(reps=10)
    # Paper: +38 us on henri.
    assert res.observations["overhead_s"] == pytest.approx(38e-6, rel=0.2)


def test_fig8_numa_match_beats_mismatch():
    res = E.fig8(reps=8)
    obs = res.observations
    assert obs["data_near_thread_near_latency_s"] < \
        obs["data_near_thread_far_latency_s"]
    assert obs["data_far_thread_far_latency_s"] < \
        obs["data_far_thread_near_latency_s"]


def test_fig9_polling_ordering():
    res = E.fig9(sizes=[4], reps=6)
    lat = {k: res.observations[f"{k}_latency_4B_s"]
           for k in ("backoff_2", "backoff_32", "backoff_10000", "paused")}
    assert lat["backoff_2"] > lat["backoff_32"] > lat["backoff_10000"]
    assert lat["backoff_10000"] == pytest.approx(lat["paused"], rel=0.03)


# -- §6: CG vs GEMM ---------------------------------------------------

def test_fig10_cg_vs_gemm():
    res = E.fig10(worker_counts=(1, 16, 34),
                  cg_kwargs=dict(n=60_000, iterations=2),
                  gemm_kwargs=dict(n=2048, tile=128))
    # CG loses far more sending bandwidth than GEMM ...
    assert res.observations["cg_bw_loss"] > 0.55
    assert res.observations["gemm_bw_loss"] < 0.45
    assert res.observations["cg_bw_loss"] > \
        res.observations["gemm_bw_loss"] + 0.2
    # ... and stalls far more (paper: 70 % vs 20 %).
    assert res.observations["cg_stall_max"] > 0.6
    assert res.observations["gemm_stall_max"] < 0.45
    # Stalls grow with worker count for both.
    assert res["cg_stall_fraction"].median[0] < \
        res["cg_stall_fraction"].median[-1]
