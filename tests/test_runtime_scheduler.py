"""Tests for the eager scheduler and the polling-contention model."""

import pytest

from repro.hardware import Cluster, HENRI, allocate
from repro.kernels.blas import TileCost
from repro.runtime import DataHandle, EagerScheduler, PollingSpec, Task


def make_task(numa=0, machine=None):
    accesses = []
    if machine is not None:
        accesses = [(DataHandle(buffer=allocate(machine, numa, 64)),)]
        from repro.runtime import AccessMode
        accesses = [(accesses[0][0], AccessMode.R)]
    return Task(name="t", cost=TileCost("noop", 1.0, 0.0),
                accesses=accesses)


def test_fifo_order_without_locality():
    sched = EagerScheduler(locality=False)
    tasks = [make_task() for _ in range(3)]
    for t in tasks:
        sched.push(t)
    assert [sched.pop() for _ in range(3)] == tasks
    assert sched.pop() is None
    assert sched.stats.pushed == 3
    assert sched.stats.popped == 3  # empty pops are not counted
    assert sched.stats.max_queue == 3


def test_locality_prefers_same_socket_tasks():
    machine = Cluster(HENRI, 1).machine(0)
    sched = EagerScheduler(machine=machine, locality=True)
    remote = make_task(numa=3, machine=machine)   # socket 1
    local = make_task(numa=0, machine=machine)    # socket 0
    sched.push(remote)
    sched.push(local)
    # A socket-0 worker gets the socket-0 task despite FIFO order.
    assert sched.pop(worker_socket=0) is local
    assert sched.pop(worker_socket=0) is remote


def test_locality_falls_back_to_fifo():
    machine = Cluster(HENRI, 1).machine(0)
    sched = EagerScheduler(machine=machine, locality=True)
    t1 = make_task(numa=3, machine=machine)
    t2 = make_task(numa=3, machine=machine)
    sched.push(t1)
    sched.push(t2)
    assert sched.pop(worker_socket=0) is t1


def test_polling_spec_defaults_match_starpu():
    polling = PollingSpec()
    assert polling.backoff_max_nops == 32  # StarPU's default
    assert 0 < polling.worker_duty() < 1


def test_polling_duty_ordering():
    """§5.4: smaller backoff -> more frequent polling -> more contention."""
    duty = {b: PollingSpec(backoff_max_nops=b).worker_duty()
            for b in (2, 32, 10000)}
    assert duty[2] > duty[32] > duty[10000]
    assert PollingSpec(paused=True).worker_duty() == 0.0


def test_polling_validation():
    with pytest.raises(ValueError):
        PollingSpec(backoff_max_nops=0)


def test_lock_wait_scales_with_pollers():
    sched = EagerScheduler(PollingSpec(backoff_max_nops=32))
    sched.set_idle_pollers(0)
    assert sched.lock_wait() == 0.0
    sched.set_idle_pollers(10)
    ten = sched.lock_wait()
    sched.set_idle_pollers(34)
    assert sched.lock_wait() == pytest.approx(ten * 3.4)
    with pytest.raises(ValueError):
        sched.set_idle_pollers(-1)


def test_message_lock_delay_orderings():
    """Figure 9's configuration ordering."""
    delays = {}
    for key, polling in (
            ("backoff2", PollingSpec(backoff_max_nops=2)),
            ("backoff32", PollingSpec(backoff_max_nops=32)),
            ("backoff10000", PollingSpec(backoff_max_nops=10000)),
            ("paused", PollingSpec(paused=True))):
        sched = EagerScheduler(polling)
        sched.set_idle_pollers(34)
        delays[key] = sched.message_lock_delay()
    assert delays["backoff2"] > delays["backoff32"] > delays["backoff10000"]
    assert delays["paused"] == 0.0
    # Huge backoff is nearly equivalent to paused (§5.4).
    assert delays["backoff10000"] < 0.1 * delays["backoff32"]
