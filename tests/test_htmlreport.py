"""Rendered HTML campaign reports: content markers and validation.

The report contract (docs/OBSERVABILITY.md): self-contained HTML with
a CI error bar per sweep point, the paper-vs-measured table, Mann-
Whitney comparison annotations, the Fig-10 attribution trend, failure
listings — and a validator that rejects malformed documents before
anything hits disk.
"""

import json

import pytest

from repro.analysis.stats import CampaignResults
from repro.core.htmlreport import (render_html_report,
                                   validate_html_report,
                                   write_html_report)


def _journal(path, medians_by_trial, experiment="fig1", metrics=None):
    with open(path, "w", encoding="utf-8") as fh:
        for trial, med in enumerate(medians_by_trial):
            for i, m in enumerate(med):
                entry = {"experiment": experiment,
                         "key": f"size={4 << i}", "status": "ok",
                         "series": {"lat": [[float(4 << i), m,
                                             m * 0.9, m * 1.1]]}}
                if trial:
                    entry["trial"] = trial
                if metrics:
                    entry["metrics"] = metrics
                fh.write(json.dumps(entry) + "\n")
    return path


def _results(tmp_path, name="c", **kw):
    return CampaignResults.from_journal(
        _journal(tmp_path / f"{name}.jsonl", **kw))


TRIALS = [[1.0, 2.0], [1.1, 2.1], [0.9, 1.9]]


def test_report_has_ci_bars_and_tables(tmp_path):
    res = _results(tmp_path, medians_by_trial=TRIALS)
    html = render_html_report(res)
    assert validate_html_report(html) == []
    assert html.count('class="ci-bar"') == 2      # one per sweep point
    assert 'id="paper-vs-measured"' in html
    assert "fig1a" in html                        # claim matched by prefix
    assert "3 trial(s) per point" in html
    assert "<svg" in html and "</svg>" in html
    # Self-contained: no external fetches.
    assert "http://" not in html and "https://" not in html
    assert "<script" not in html


def test_report_escapes_content(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps({
        "experiment": "<evil>", "key": "k&<b>", "status": "failed",
        "failure": {"error": "E", "message": "<script>alert(1)</script>",
                    "harness": True}}) + "\n", encoding="utf-8")
    html = render_html_report(CampaignResults.from_journal(path))
    assert "<evil>" not in html
    assert "&lt;evil&gt;" in html
    assert "<script>alert" not in html
    assert validate_html_report(html) == []


def test_comparison_section_marks_significance(tmp_path):
    # 5 well-separated trials per side: Mann-Whitney can reach p < 0.05.
    a = _results(tmp_path, name="a", medians_by_trial=[
        [1.0 + d, 2.0 + d] for d in (0.0, 0.01, 0.02, 0.03, 0.04)])
    b = _results(tmp_path, name="b", medians_by_trial=[
        [5.0 + d, 6.0 + d] for d in (0.0, 0.01, 0.02, 0.03, 0.04)])
    html = render_html_report(a, compare=b)
    assert validate_html_report(html) == []
    assert 'id="comparison"' in html
    assert 'class="sig"' in html
    assert "2/2 significant" in html


def test_comparison_without_overlap_reports_none(tmp_path):
    a = _results(tmp_path, name="a", medians_by_trial=TRIALS)
    b = _results(tmp_path, name="b", medians_by_trial=TRIALS,
                 experiment="other")
    html = render_html_report(a, compare=b)
    assert "No common (experiment, series, x) points" in html


def test_attribution_trend_from_journal_metrics(tmp_path):
    from repro.obs.metrics import DEFAULT_BUCKETS
    buckets = [1] + [0] * len(DEFAULT_BUCKETS)

    def point(stall, bw):
        return {
            "runtime.busy_seconds": {"type": "counter", "value": 1.0},
            "runtime.stall_seconds": {"type": "counter", "value": stall},
            "net.bytes": {"type": "counter", "value": bw},
            "net.transfer_seconds{protocol=eager}": {
                "type": "histogram",
                "value": {"sum": 1.0, "count": 1, "buckets": buckets}},
        }

    path = tmp_path / "c.jsonl"
    with open(path, "w", encoding="utf-8") as fh:
        for i, (stall, bw) in enumerate([(0.1, 9e9), (0.5, 5e9),
                                         (0.9, 1e9)]):
            fh.write(json.dumps({
                "experiment": "fig10", "key": f"w={i}", "status": "ok",
                "series": {"bw": [[float(i), bw, bw, bw]]},
                "metrics": point(stall, bw)}) + "\n")
    html = render_html_report(CampaignResults.from_journal(path))
    assert 'id="attribution-trend"' in html
    assert "matches Fig 10" in html
    assert "Campaign metrics" in html


def test_attribution_note_when_no_overlap_telemetry(tmp_path):
    res = _results(tmp_path, medians_by_trial=TRIALS)
    html = render_html_report(res)
    assert 'id="attribution-trend"' in html
    assert "No per-point metric deltas" in html


def test_validator_catches_malformed_html():
    assert validate_html_report("<html><body><h1>x</h1></body></html>"
                                ) == ["missing the paper-vs-measured "
                                      "table"]
    problems = validate_html_report("<html><body><div><p>x</div>")
    assert any("mismatched" in p or "unclosed" in p for p in problems)
    assert any("missing <h1>" in p for p in problems)


def test_write_html_report_validates(tmp_path):
    res = _results(tmp_path, medians_by_trial=TRIALS)
    out = tmp_path / "r.html"
    text = write_html_report(out, res)
    assert out.read_text(encoding="utf-8") == text


def test_report_deterministic(tmp_path):
    res = _results(tmp_path, medians_by_trial=TRIALS)
    assert render_html_report(res) == render_html_report(res)


def test_cli_report_roundtrip(tmp_path, capsys):
    from repro.cli import main
    _journal(tmp_path / "c.jsonl", medians_by_trial=TRIALS)
    out = tmp_path / "r.html"
    assert main(["report", str(tmp_path / "c.jsonl"),
                 "-o", str(out)]) == 0
    assert validate_html_report(out.read_text(encoding="utf-8")) == []
    assert main(["report", str(tmp_path / "missing.jsonl"),
                 "-o", str(out)]) == 2
