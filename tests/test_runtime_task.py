"""Tests for tasks, data handles and dependency inference."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cluster, HENRI, allocate
from repro.kernels.blas import TileCost
from repro.runtime import AccessMode, DataHandle, Task, TaskGraph


@pytest.fixture
def handles():
    machine = Cluster(HENRI, 1).machine(0)
    return [DataHandle(buffer=allocate(machine, 0, 64), label=f"h{i}")
            for i in range(4)]


def make_task(name, accesses, rank=0):
    return Task(name=name, cost=TileCost("noop", 1.0, 0.0),
                accesses=accesses, rank=rank)


def test_access_mode_semantics():
    assert AccessMode.R.reads and not AccessMode.R.writes
    assert AccessMode.W.writes and not AccessMode.W.reads
    assert AccessMode.RW.reads and AccessMode.RW.writes


def test_raw_dependency(handles):
    g = TaskGraph()
    w = g.add(make_task("w", [(handles[0], AccessMode.W)]))
    r = g.add(make_task("r", [(handles[0], AccessMode.R)]))
    assert r.deps == [w]
    assert w.deps == []


def test_war_dependency(handles):
    g = TaskGraph()
    w0 = g.add(make_task("w0", [(handles[0], AccessMode.W)]))
    r1 = g.add(make_task("r1", [(handles[0], AccessMode.R)]))
    r2 = g.add(make_task("r2", [(handles[0], AccessMode.R)]))
    w3 = g.add(make_task("w3", [(handles[0], AccessMode.W)]))
    # The second writer waits for the previous writer AND all readers.
    assert set(w3.deps) == {w0, r1, r2}


def test_readers_do_not_depend_on_each_other(handles):
    g = TaskGraph()
    g.add(make_task("w", [(handles[0], AccessMode.W)]))
    r1 = g.add(make_task("r1", [(handles[0], AccessMode.R)]))
    r2 = g.add(make_task("r2", [(handles[0], AccessMode.R)]))
    assert r1 not in r2.deps and r2 not in r1.deps


def test_rw_chains_serialize(handles):
    g = TaskGraph()
    t1 = g.add(make_task("t1", [(handles[0], AccessMode.RW)]))
    t2 = g.add(make_task("t2", [(handles[0], AccessMode.RW)]))
    t3 = g.add(make_task("t3", [(handles[0], AccessMode.RW)]))
    assert t2.deps == [t1]
    assert t3.deps == [t2]


def test_independent_handles_no_dependency(handles):
    g = TaskGraph()
    a = g.add(make_task("a", [(handles[0], AccessMode.RW)]))
    b = g.add(make_task("b", [(handles[1], AccessMode.RW)]))
    assert a.deps == [] and b.deps == []


def test_deduplicated_dependencies(handles):
    g = TaskGraph()
    w = g.add(make_task("w", [(handles[0], AccessMode.W),
                              (handles[1], AccessMode.W)]))
    r = g.add(make_task("r", [(handles[0], AccessMode.R),
                              (handles[1], AccessMode.R)]))
    assert r.deps == [w]  # not [w, w]


def test_roots_and_counts(handles):
    g = TaskGraph()
    w = g.add(make_task("w", [(handles[0], AccessMode.W)]))
    r = g.add(make_task("r", [(handles[0], AccessMode.R)]))
    assert g.roots() == [w]
    assert g.n_tasks == 2
    assert r.n_waiting == 1


def test_data_numa_picks_dominant_handle():
    machine = Cluster(HENRI, 1).machine(0)
    small = DataHandle(buffer=allocate(machine, 1, 10))
    big = DataHandle(buffer=allocate(machine, 3, 1000))
    t = make_task("t", [(small, AccessMode.R), (big, AccessMode.R)])
    assert t.data_numa() == 3
    empty = make_task("e", [])
    assert empty.data_numa() is None


@settings(max_examples=50, deadline=None)
@given(ops=st.lists(
    st.tuples(st.integers(min_value=0, max_value=3),
              st.sampled_from([AccessMode.R, AccessMode.W, AccessMode.RW])),
    min_size=1, max_size=30))
def test_sequential_consistency_graph_is_acyclic(ops):
    machine = Cluster(HENRI, 1).machine(0)
    handles = [DataHandle(buffer=allocate(machine, 0, 64))
               for _ in range(4)]
    g = TaskGraph()
    for i, (h, mode) in enumerate(ops):
        g.add(make_task(f"t{i}", [(handles[h], mode)]))
    assert g.validate_acyclic()
    # Serial execution order (insertion order) must satisfy all deps.
    done = set()
    for task in g.tasks:
        assert all(d.id in done for d in task.deps)
        done.add(task.id)
