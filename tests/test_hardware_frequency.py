"""Tests for the DVFS / turbo / AVX / uncore frequency model."""

import pytest

from repro.hardware import Cluster, CoreActivity, HENRI


@pytest.fixture
def machine():
    return Cluster(HENRI, n_nodes=1).machine(0)


def test_idle_cores_at_min_frequency(machine):
    for core in machine.cores:
        assert core.hz == HENRI.freq.min_hz


def test_single_active_core_hits_max_turbo(machine):
    machine.set_core_activity(0, CoreActivity.SCALAR)
    assert machine.cores[0].hz == HENRI.freq.turbo.max_frequency
    # Other cores remain at min.
    assert machine.cores[1].hz == HENRI.freq.min_hz


def test_turbo_drops_with_active_core_count(machine):
    freqs = []
    for i in range(18):  # fill socket 0
        machine.set_core_activity(i, CoreActivity.SCALAR)
        freqs.append(machine.cores[0].hz)
    assert freqs[0] >= freqs[5] >= freqs[-1]
    assert freqs[-1] == HENRI.freq.turbo.frequency(18)


def test_turbo_is_per_socket(machine):
    for i in range(18):
        machine.set_core_activity(i, CoreActivity.SCALAR)
    # Socket 1 untouched: a single active core there gets full turbo.
    machine.set_core_activity(18, CoreActivity.SCALAR)
    assert machine.cores[18].hz == HENRI.freq.turbo.max_frequency


def test_avx_license_lower_than_scalar(machine):
    machine.set_core_activity(0, CoreActivity.AVX512)
    machine.set_core_activity(1, CoreActivity.SCALAR)
    avx_hz = machine.cores[0].hz
    scalar_hz = machine.cores[1].hz
    assert avx_hz < scalar_hz


def test_avx_cores_do_not_drag_down_scalar_core(machine):
    """§3.3: 20 AVX cores at 2.3 GHz, the comm core stays at ~2.5 GHz."""
    for i in range(1, 21):
        machine.set_core_activity(i, CoreActivity.AVX512)
    machine.set_core_activity(0, CoreActivity.SCALAR, uncore_active=False)
    comm_hz = machine.cores[0].hz
    avx_hz = machine.cores[1].hz
    assert avx_hz == HENRI.freq.avx512.frequency(19)  # 18 avx + comm on s0
    assert comm_hz > avx_hz


def test_avx_weak_scaling_frequencies_match_paper(machine):
    """Fig 3b/3c: 4 AVX cores -> 3.0 GHz; 20 AVX cores -> 2.3 GHz."""
    for i in range(4):
        machine.set_core_activity(i, CoreActivity.AVX512)
    assert machine.cores[0].hz == pytest.approx(3.0e9)
    for i in range(4, 18):
        machine.set_core_activity(i, CoreActivity.AVX512)
    # Socket 0 now has 18 active AVX cores -> bottom license bin.
    assert machine.cores[0].hz == pytest.approx(2.3e9)


def test_userspace_governor_pins_everything(machine):
    machine.freq.set_userspace(1.0e9)
    machine.set_core_activity(0, CoreActivity.SCALAR)
    assert machine.cores[0].hz == 1.0e9
    assert machine.cores[20].hz == 1.0e9
    machine.freq.set_userspace(None)
    assert machine.cores[0].hz == HENRI.freq.turbo.max_frequency


def test_userspace_range_enforced(machine):
    with pytest.raises(ValueError):
        machine.freq.set_userspace(5.0e9)
    with pytest.raises(ValueError):
        machine.freq.set_userspace(0.1e9)


def test_uncore_dynamic_ramp(machine):
    s0 = 0
    assert machine.freq.uncore_hz(s0) == HENRI.uncore.min_hz
    # A comm thread (uncore_active=False) does not ramp the uncore.
    machine.set_core_activity(0, CoreActivity.SCALAR, uncore_active=False)
    assert machine.freq.uncore_hz(s0) == HENRI.uncore.min_hz
    # Memory-active cores ramp it.
    for i in range(1, 5):
        machine.set_core_activity(i, CoreActivity.SCALAR, uncore_active=True)
    assert machine.freq.uncore_hz(s0) == HENRI.uncore.max_hz


def test_uncore_pinning(machine):
    machine.set_uncore(1.2e9)
    for i in range(8):
        machine.set_core_activity(i, CoreActivity.SCALAR)
    assert machine.freq.uncore_hz(0) == 1.2e9
    with pytest.raises(ValueError):
        machine.set_uncore(9.9e9)
    machine.set_uncore(None)
    assert machine.freq.uncore_hz(0) == HENRI.uncore.max_hz


def test_uncore_scales_controller_capacity(machine):
    base = HENRI.memory.controller_bw
    machine.set_uncore(HENRI.uncore.max_hz)
    assert machine.numa_nodes[0].controller.capacity == pytest.approx(base)
    machine.set_uncore(HENRI.uncore.min_hz)
    floor = HENRI.memory.uncore_floor
    assert machine.numa_nodes[0].controller.capacity == pytest.approx(
        base * floor)


def test_activity_bookkeeping_idempotent(machine):
    machine.set_core_activity(3, CoreActivity.SCALAR)
    machine.set_core_activity(3, CoreActivity.SCALAR)
    assert machine.freq.active_cores_on_socket(0) == 1
    machine.set_core_activity(3, CoreActivity.AVX512)
    assert machine.freq.active_cores_on_socket(0) == 1
    machine.set_core_activity(3, CoreActivity.IDLE)
    assert machine.freq.active_cores_on_socket(0) == 0
    machine.set_core_activity(3, CoreActivity.IDLE)
    assert machine.freq.active_cores_on_socket(0) == 0


def test_uncore_capacity_factor_range(machine):
    for n_mem in range(10):
        if n_mem:
            machine.set_core_activity(n_mem - 1, CoreActivity.SCALAR,
                                      uncore_active=True)
        factor = machine.freq.uncore_capacity_factor(0)
        assert HENRI.memory.uncore_floor <= factor <= 1.0
