"""Tests for the mechanism ablations and their registered wrappers."""

import pytest

from repro.core import registry
from repro.core.ablations import (ALL_ABLATIONS, ablate_dma_priority,
                                  ablate_pio_colocation)

FAST_COUNTS = [0, 20, 35]


def test_all_ablations_table_is_complete():
    assert set(ALL_ABLATIONS) == {
        "no_pio_colocation", "no_dma_derating", "no_dma_priority",
        "no_stack_stall", "no_scheduler_locality"}
    for name, func in ALL_ABLATIONS.items():
        assert callable(func), name


def test_all_ablations_have_registry_wrappers():
    for name in ALL_ABLATIONS:
        defn = registry.get(name)
        assert "ablation" in defn.tags
        assert not defn.in_all
        assert defn.fast_kwargs


def test_pio_colocation_ablation_removes_latency_doubling():
    baseline, ablated = ablate_pio_colocation(core_counts=FAST_COUNTS,
                                              reps=3)
    assert ablated.name == "fig4a_no_pio_colocation"
    base_ratio = baseline.observations["latency_max_ratio"]
    abl_ratio = ablated.observations["latency_max_ratio"]
    # The mechanism carries fig4a's doubling: without it the latency
    # inflation mostly disappears.
    assert base_ratio > 1.5
    assert abl_ratio < base_ratio


def test_dma_priority_ablation_collapses_bandwidth():
    baseline, ablated = ablate_dma_priority(core_counts=FAST_COUNTS,
                                            reps=3)
    assert ablated.name == "fig4b_no_dma_priority"
    # An unweighted NIC keeps less of its bandwidth under contention.
    assert ablated.observations["bandwidth_min_ratio"] \
        < baseline.observations["bandwidth_min_ratio"]


def test_registered_wrapper_builds_comparable_result():
    result = registry.run_experiment("no_pio_colocation", fast=True)
    assert result.name == "no_pio_colocation"
    base_keys = {k for k in result.series if k.startswith("baseline_")}
    abl_keys = {k for k in result.series if k.startswith("ablated_")}
    assert base_keys and len(base_keys) == len(abl_keys)
    assert {k.replace("baseline_", "ablated_") for k in base_keys} \
        == abl_keys
    assert "baseline_latency_max_ratio" in result.observations
    assert "ablated_latency_max_ratio" in result.observations
    # The wrapper renders like any other experiment.
    text = registry.get("no_pio_colocation").render(result)
    assert "no_pio_colocation" in text


def test_runtime_ablations_reject_other_specs():
    with pytest.raises(ValueError, match="henri"):
        registry.run_experiment("no_stack_stall", spec="bora", fast=True)
    with pytest.raises(ValueError, match="henri"):
        registry.run_experiment("no_scheduler_locality", spec="bora",
                                fast=True)


@pytest.mark.slow
def test_stack_stall_ablation_recovers_bandwidth():
    result = registry.run_experiment("no_stack_stall", fast=True)
    # Stack stalling is what collapses CG's sending bandwidth: without
    # it more of the 1-worker bandwidth is retained at high workers.
    assert result.observations["ablated_bw_retained"] \
        >= result.observations["baseline_bw_retained"]


@pytest.mark.slow
def test_scheduler_locality_ablation_inflates_stalls():
    result = registry.run_experiment("no_scheduler_locality", fast=True)
    assert result.observations["ablated_stall_fraction"] \
        >= result.observations["baseline_stall_fraction"]
    assert result.observations["slowdown"] > 0
