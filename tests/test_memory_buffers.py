"""Tests for NUMA buffer allocation helpers."""

import pytest

from repro.hardware import Cluster, HENRI, allocate, allocate_interleaved
from repro.hardware.memory import Buffer


@pytest.fixture
def machine():
    return Cluster(HENRI, 1).machine(0)


def test_allocate_basic(machine):
    buf = allocate(machine, 2, 4096, label="x")
    assert buf.numa_id == 2
    assert buf.size == 4096
    assert buf.numa is machine.numa_nodes[2]
    assert buf.label == "x"


def test_allocate_validation(machine):
    with pytest.raises(ValueError):
        allocate(machine, 9, 10)
    with pytest.raises(ValueError):
        allocate(machine, 0, -1)


def test_buffer_identity(machine):
    a = allocate(machine, 0, 10)
    b = allocate(machine, 0, 10)
    assert a != b
    assert a == a
    assert len({a, b}) == 2   # hashable, distinct
    assert a != "not a buffer"


def test_interleaved_round_robin(machine):
    bufs = allocate_interleaved(machine, 64, count=10, label="tile")
    assert len(bufs) == 10
    assert [b.numa_id for b in bufs] == [i % 4 for i in range(10)]
    assert bufs[3].label == "tile[3]"


def test_buffer_ids_monotone(machine):
    a = allocate(machine, 0, 1)
    b = allocate(machine, 0, 1)
    assert b.id > a.id
