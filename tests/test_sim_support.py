"""Tests for randomness, traces and counters (support modules)."""

import numpy as np
import pytest

from repro.hardware import CycleCounters
from repro.sim import PeriodicSampler, RandomStreams, Simulator, Trace, noisy


# -- randomness --------------------------------------------------------------

def test_streams_reproducible():
    a = RandomStreams(7).stream("net").random(5)
    b = RandomStreams(7).stream("net").random(5)
    assert np.array_equal(a, b)


def test_streams_independent_by_name():
    rs = RandomStreams(7)
    a = rs.stream("net").random(5)
    b = rs.stream("kernel").random(5)
    assert not np.array_equal(a, b)


def test_stream_is_cached():
    rs = RandomStreams(0)
    assert rs.stream("x") is rs.stream("x")


def test_spawn_derives_independent_families():
    rs = RandomStreams(0)
    child1 = rs.spawn("node0").stream("net").random(3)
    child2 = rs.spawn("node1").stream("net").random(3)
    assert not np.array_equal(child1, child2)


def test_noisy_statistics():
    rng = np.random.default_rng(0)
    samples = np.array([noisy(100.0, 0.05, rng) for _ in range(4000)])
    assert samples.mean() == pytest.approx(100.0, rel=0.02)
    assert samples.std() == pytest.approx(5.0, rel=0.2)
    assert (samples > 0).all()


def test_noisy_zero_sigma_identity():
    rng = np.random.default_rng(0)
    assert noisy(42.0, 0.0, rng) == 42.0


# -- traces ----------------------------------------------------------------

def test_trace_record_and_query():
    t = Trace()
    t.record("f", 0.0, 1.0)
    t.record("f", 1.0, 2.0)
    t.record("g", 0.5, 9.0)
    assert t.names() == ["f", "g"]
    assert np.array_equal(t.times("f"), [0.0, 1.0])
    assert np.array_equal(t.values("f"), [1.0, 2.0])
    assert t.last("f") == 2.0
    assert t.last("missing") is None
    assert np.array_equal(t.window("f", 0.5, 1.5), [2.0])
    assert t.mean("f", 0.0, 2.0) == pytest.approx(1.5)
    with pytest.raises(ValueError):
        t.mean("f", 5.0, 6.0)


def test_periodic_sampler():
    sim = Simulator()
    state = {"v": 0.0}
    sampler = PeriodicSampler(sim, {"v": lambda: state["v"]},
                              period=0.1).start()
    sim.schedule(0.25, lambda: state.update(v=5.0))
    sim.run(until=0.55)
    sampler.stop()
    sim.run(until=1.0)
    trace = sampler.trace
    values = trace.values("v")
    assert len(values) >= 5
    assert values[0] == 0.0
    assert trace.last("v") == 5.0
    # No samples after stop (beyond the one in flight).
    assert trace.times("v").max() <= 0.7


def test_sampler_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        PeriodicSampler(sim, {}, period=0.0)
    sampler = PeriodicSampler(sim, {}, period=1.0).start()
    with pytest.raises(RuntimeError):
        sampler.start()


# -- counters --------------------------------------------------------------

def test_counters_record_and_delta():
    counters = CycleCounters([0, 1])
    counters.record(0, busy=1.0, mem_stall=0.6, flops=100, bytes_moved=50)
    counters.record(1, busy=2.0, mem_stall=0.0)
    before = counters.snapshot()
    counters.record(0, busy=0.5, mem_stall=0.1)
    delta = counters.delta(before, cores=[0])
    assert delta.busy == pytest.approx(0.5)
    assert delta.mem_stall == pytest.approx(0.1)
    total = counters.delta({})
    assert total.busy == pytest.approx(3.5)


def test_counters_stall_fraction():
    counters = CycleCounters([0])
    counters.record(0, busy=2.0, mem_stall=1.0)
    agg = counters.delta({})
    assert CycleCounters.stall_fraction(agg) == pytest.approx(0.5)
    from repro.hardware.counters import CoreCounterState
    assert CycleCounters.stall_fraction(CoreCounterState()) == 0.0


def test_counters_validation():
    counters = CycleCounters([0])
    with pytest.raises(ValueError):
        counters.record(0, busy=-1.0)
    with pytest.raises(ValueError):
        counters.record(0, busy=1.0, mem_stall=2.0)
