"""Tests for the incremental (dirty-component) fluid solver and the
accounting bugfixes that rode along with it.

Covers:

* regression tests for the three fluid-layer bugs — ``stop_flow`` not
  firing ``on_flow_end``, duplicate resources in a path being counted
  inconsistently, and ``set_demand`` silently mutating inactive flows;
* edge cases the incremental rework must not regress — zero-size flows,
  same-instant completion cascades, starved flows rescheduled after a
  capacity restore, deterministic same-instant completion order;
* a property test cross-checking dirty-component rates against a
  reference global recompute on randomized flow graphs;
* the engine's generation-based heap-entry reuse (``reschedule``);
* ``P2PContext.cancel`` for unmatched requests.
"""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.telemetry import telemetry_context
from repro.sim import Flow, FluidNetwork, Resource, Simulator
from repro.sim.engine import SimulationError


def make_net():
    sim = Simulator()
    return sim, FluidNetwork(sim)


# ---------------------------------------------------------------------------
# Bugfix regressions
# ---------------------------------------------------------------------------

def test_stop_flow_fires_flow_end_hook():
    """Stopped flows must close telemetry like completed ones (they used
    to vanish via _deactivate, leaking spans and skewing counters)."""
    with telemetry_context(trace=False) as tele:
        sim, net = make_net()
        link = Resource("link", 100.0)
        bg = net.start_flow(Flow([link], size=None, label="bg"))
        fg = net.transfer([link], size=50.0)
        sim.run(until=0.25)
        net.stop_flow(bg)
        sim.run()
        assert fg.done.triggered
        started = tele.registry.counter("fluid.flows_started").value
        completed = tele.registry.counter("fluid.flows_completed").value
        aborted = tele.registry.counter("fluid.flows_aborted").value
        assert started == completed == 2.0
        assert aborted == 1.0


def test_stop_flow_closes_wire_span_with_aborted_flag():
    """On a bound cluster the stopped flow's wire span carries aborted."""
    from repro.hardware import Cluster, HENRI
    with telemetry_context() as tele:
        cluster = Cluster(HENRI, 2)
        wire = cluster.wire(0, 1)
        bg = cluster.net.start_flow(Flow([wire], size=None, label="bg"))
        cluster.sim.run(until=0.1)
        cluster.net.stop_flow(bg)
        events = tele.tracer.to_payload()["traceEvents"]
        spans = [ev for ev in events
                 if ev.get("ph") == "X" and ev.get("name") == "bg"]
        assert len(spans) == 1
        assert spans[0]["args"]["aborted"] is True


def test_stop_inactive_flow_is_noop_and_fires_no_hook():
    with telemetry_context(trace=False) as tele:
        sim, net = make_net()
        link = Resource("link", 10.0)
        flow = net.transfer([link], size=10.0)
        sim.run()
        completed = tele.registry.counter("fluid.flows_completed").value
        assert net.stop_flow(flow) == flow.transferred
        assert tele.registry.counter("fluid.flows_completed").value \
            == completed
        assert tele.registry.counter("fluid.flows_aborted").value == 0.0


def test_duplicate_resource_in_path_counted_once():
    """A [membus, membus] path used to subtract capacity twice in _fix
    but count once in the denominator and utilization()."""
    sim, net = make_net()
    membus = Resource("membus", 100.0)
    flow = net.transfer([membus, membus], size=200.0)
    assert flow.resources == (membus,)
    assert flow.rate == pytest.approx(100.0)
    assert net.utilization(membus) == pytest.approx(1.0)
    sim.run()
    assert flow.done.value == pytest.approx(2.0)


def test_duplicate_resource_shares_consistently_with_second_flow():
    sim, net = make_net()
    membus = Resource("membus", 100.0)
    dup = net.transfer([membus, membus], size=1e9)
    other = net.transfer([membus], size=1e9)
    # Both are single-crossing flows of the same bus: equal split.
    assert dup.rate == pytest.approx(50.0)
    assert other.rate == pytest.approx(50.0)
    assert net.utilization(membus) == pytest.approx(1.0)


def test_set_demand_on_inactive_flow_raises():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = Flow([link], size=10.0, demand=5.0)
    with pytest.raises(SimulationError):
        net.set_demand(flow, 1.0)
    assert flow.demand == 5.0  # untouched


def test_set_demand_on_completed_flow_raises():
    sim, net = make_net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=10.0)
    sim.run()
    assert flow.done.triggered
    with pytest.raises(SimulationError):
        net.set_demand(flow, 1.0)


# ---------------------------------------------------------------------------
# Edge cases the incremental solver must not regress
# ---------------------------------------------------------------------------

def test_zero_size_flow_does_not_disturb_others():
    sim, net = make_net()
    link = Resource("link", 100.0)
    other = net.transfer([link], size=1e9)
    assert other.rate == pytest.approx(100.0)
    zero = net.transfer([link], size=0.0)
    assert zero.done.triggered
    assert not zero.active
    assert other.rate == pytest.approx(100.0)


def test_same_instant_completion_cascade():
    """Flows sized to finish at the same instant complete in one
    fixed-point pass; the survivor picks up the freed capacity."""
    sim, net = make_net()
    link = Resource("link", 90.0)
    a = net.transfer([link], size=30.0)   # 30 each at t=0
    b = net.transfer([link], size=30.0)
    c = net.transfer([link], size=60.0)
    sim.run()
    assert a.done.value == pytest.approx(1.0)
    assert b.done.value == pytest.approx(1.0)
    # c: 30 B by t=1, remaining 30 B at full 90 B/s.
    assert c.done.value == pytest.approx(1.0 + 30.0 / 90.0)


def test_same_instant_completion_order_is_insertion_order():
    orders = []
    for _ in range(2):
        sim, net = make_net()
        link = Resource("link", 100.0)
        order = []
        flows = [net.transfer([link], size=50.0, label=f"f{i}")
                 for i in range(5)]
        for i, f in enumerate(flows):
            f.done.add_callback(lambda ev, i=i: order.append(i))
        sim.run()
        assert all(f.done.triggered for f in flows)
        orders.append(order)
    assert orders[0] == orders[1] == [0, 1, 2, 3, 4]


def test_starved_flow_rescheduled_after_capacity_restore():
    """A flow frozen at rate 0 has no completion event; restoring
    capacity must re-arm it."""
    sim, net = make_net()
    link = Resource("link", 10.0)
    # Demand-limited at exactly the full capacity (usage 2 x rate 5).
    hog = net.start_flow(Flow([link], size=None, demand=5.0, usage=2.0))
    # Negligible-usage flow: frozen at level 0 on the drained resource.
    starved = net.start_flow(
        Flow([link], size=100.0, demand=50.0, usage=1e-9))
    assert starved.rate == 0.0
    sim.run(until=1.0)
    assert starved.transferred == 0.0
    assert not starved.done.triggered
    link.set_capacity(20.0)
    assert starved.rate == pytest.approx(50.0)
    sim.run()
    assert starved.done.triggered
    assert starved.done.value == pytest.approx(3.0)  # 100 B at 50 B/s


def test_capacity_change_only_recomputes_touched_component():
    sim, net = make_net()
    r1 = Resource("r1", 100.0)
    r2 = Resource("r2", 100.0)
    a = net.transfer([r1], size=1e9)
    b = net.transfer([r2], size=1e9, demand=40.0)
    r1.set_capacity(50.0)
    assert a.rate == pytest.approx(50.0)
    assert b.rate == pytest.approx(40.0)


def test_components_merge_when_bridging_flow_starts():
    sim, net = make_net()
    r1 = Resource("r1", 100.0)
    r2 = Resource("r2", 60.0)
    a = net.transfer([r1], size=1e9)
    b = net.transfer([r2], size=1e9)
    assert (a.rate, b.rate) == (pytest.approx(100.0), pytest.approx(60.0))
    bridge = net.transfer([r1, r2], size=1e9)
    # One component now: r2 splits between b and bridge; a gets the rest
    # of r1.
    assert bridge.rate == pytest.approx(30.0)
    assert b.rate == pytest.approx(30.0)
    assert a.rate == pytest.approx(70.0)


def test_flows_through_uses_adjacency():
    sim, net = make_net()
    r1 = Resource("r1", 100.0)
    r2 = Resource("r2", 100.0)
    a = net.transfer([r1], size=1e9)
    b = net.transfer([r1, r2], size=1e9)
    assert net.flows_through(r1) == [a, b]
    assert net.flows_through(r2) == [b]
    net.stop_flow(a)
    assert net.flows_through(r1) == [b]
    assert net.flows_through(Resource("unused", 1.0)) == []


# ---------------------------------------------------------------------------
# Property test: dirty-component rates == reference global recompute
# ---------------------------------------------------------------------------

def _reference_global_rates(flows):
    """The pre-incremental solver: one global progressive-filling pass
    over *flows* (in activation order).  Returns {flow: rate} without
    touching the network's state."""
    _REL_TOL = 1e-9
    rates = {}
    unfixed = dict.fromkeys(flows)
    for flow in list(unfixed):
        if not flow.resources:
            rates[flow] = flow.demand
            unfixed.pop(flow)

    avail, res_flows = {}, {}
    for flow in unfixed:
        for res in flow.resources:
            if res not in avail:
                avail[res] = res.capacity
                res_flows[res] = {}
            res_flows[res][flow] = None

    def fix(flow, rate):
        rates[flow] = max(0.0, rate)
        for res in flow.resources:
            avail[res] = max(0.0, avail[res] - rates[flow]
                             * flow.usage_on(res))
            res_flows[res].pop(flow, None)

    while unfixed:
        level = math.inf
        for res, fset in res_flows.items():
            if not fset:
                continue
            denom = sum(f.weight * f.usage_on(res) for f in fset)
            if denom > 0:
                level = min(level, avail[res] / denom)
        if not math.isfinite(level):
            for flow in unfixed:
                fix(flow, flow.demand)
            break
        demand_limited = [f for f in unfixed
                          if f.demand <= f.weight * level * (1 + _REL_TOL)]
        if demand_limited:
            for flow in demand_limited:
                fix(flow, flow.demand)
                unfixed.pop(flow)
            continue
        froze = False
        for res, fset in list(res_flows.items()):
            if not fset:
                continue
            denom = sum(f.weight * f.usage_on(res) for f in fset)
            if denom <= 0:
                continue
            if avail[res] / denom <= level * (1 + _REL_TOL):
                for flow in list(fset):
                    if flow in unfixed:
                        fix(flow, flow.weight * level)
                        unfixed.pop(flow)
                        froze = True
        if not froze:
            for flow in list(unfixed):
                fix(flow, flow.weight * level)
            unfixed.clear()
    return rates


op_spec = st.tuples(
    st.sampled_from(["start", "stop", "demand", "capacity"]),
    st.floats(min_value=0.1, max_value=100.0),   # demand / new capacity
    st.floats(min_value=0.25, max_value=4.0),    # weight
    st.floats(min_value=0.5, max_value=2.0),     # usage multiplier
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=3,
             unique=True),                        # resource indices
)


@settings(max_examples=120, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=200.0),
                  min_size=6, max_size=6),
    ops=st.lists(op_spec, min_size=1, max_size=24),
)
def test_dirty_component_rates_match_global_recompute(caps, ops):
    """After an arbitrary op sequence, the incrementally maintained
    rates equal (a) a from-scratch solve of the same flows on a fresh
    network, bit for bit, and (b) the reference global algorithm within
    1e-9 relative.

    (b) is not asserted exact: the global pass interleaves progressive-
    filling rounds of unrelated components, so its capacity subtractions
    can associate differently by a few ulps — the allocations are the
    same, the roundings need not be.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    resources = [Resource(f"r{i}", caps[i]) for i in range(6)]
    live = []
    for kind, value, weight, usage, idxs in ops:
        live = [f for f in live if f.active]
        if kind == "start" or not live:
            path = [resources[i] for i in idxs]
            live.append(net.transfer(
                path, size=1e12, demand=value, weight=weight, usage=usage))
        elif kind == "stop":
            net.stop_flow(live[len(idxs) % len(live)])
        elif kind == "demand":
            net.set_demand(live[len(idxs) % len(live)], value)
        else:
            resources[idxs[0]].set_capacity(value)

    active = [f for f in net._flows]  # noqa: SLF001 - activation order

    # (a) Fresh network, same flows in the same order: exact equality.
    # Any stale cache / adjacency / dirty-tracking bug shows up here.
    sim2 = Simulator()
    net2 = FluidNetwork(sim2)
    res_clone = {res: Resource(res.name, res.capacity)
                 for res in resources}
    clones = [Flow([res_clone[r] for r in f.resources], size=f.size,
                   demand=f.demand, weight=f.weight,
                   usage=f._usage_scalar)  # noqa: SLF001 - scalar usages only
              for f in active]
    for clone in clones:
        net2.start_flow(clone)
    # The last start already recomputed globally over everything it
    # connects to; isolated components were each solved on their start.
    for f, clone in zip(active, clones):
        assert f.rate == clone.rate, (f.rate, clone.rate)

    # (b) Reference global algorithm: equal within 1e-9 relative.
    reference = _reference_global_rates(active)
    for f in active:
        assert math.isclose(f.rate, reference[f], rel_tol=1e-9,
                            abs_tol=1e-12), (f.rate, reference[f])


@settings(max_examples=60, deadline=None)
@given(
    cap=st.floats(min_value=10.0, max_value=1000.0),
    sizes=st.lists(st.floats(min_value=1.0, max_value=1000.0),
                   min_size=1, max_size=6),
)
def test_conservation_with_incremental_solver(cap, sizes):
    sim, net = make_net()
    link = Resource("link", cap)
    flows = [net.transfer([link], size=s) for s in sizes]
    sim.run()
    for f, s in zip(flows, sizes):
        assert f.done.triggered
        assert f.transferred == pytest.approx(s, rel=1e-6)
    assert sim.now * cap == pytest.approx(sum(sizes), rel=1e-6)


# ---------------------------------------------------------------------------
# Property test: vectorized component solve == scalar solve, bit for bit
# ---------------------------------------------------------------------------

vec_op_spec = st.tuples(
    st.sampled_from(["start", "start", "stop", "demand", "capacity",
                     "advance"]),
    st.floats(min_value=0.1, max_value=100.0),   # demand / capacity / dt
    st.floats(min_value=0.25, max_value=4.0),    # weight
    st.floats(min_value=0.5, max_value=2.0),     # usage multiplier
    st.lists(st.integers(min_value=0, max_value=5), min_size=1, max_size=3,
             unique=True),                        # resource indices
    st.floats(min_value=5.0, max_value=500.0),   # size
)


@settings(max_examples=60, deadline=None)
@given(
    caps=st.lists(st.floats(min_value=1.0, max_value=200.0),
                  min_size=6, max_size=6),
    ops=st.lists(vec_op_spec, min_size=1, max_size=24),
)
def test_vectorized_solve_matches_scalar_bitwise(caps, ops):
    """Two networks driven through the identical randomized churn —
    one forced onto the vectorized component solve (``_vec_min = 1``,
    warm-up off so plans build immediately), one pinned to the scalar
    reference — must agree bit for bit on every rate, every transferred
    byte count, and the simulated clock.  This is the seeded-replay
    bit-identity contract: dispatch between the two paths may depend on
    component size, so they must be arithmetically indistinguishable.
    """
    def build():
        sim = Simulator()
        net = FluidNetwork(sim)
        res = [Resource(f"r{i}", caps[i]) for i in range(6)]
        return sim, net, res

    sim_v, net_v, res_v = build()
    net_v._vec_min = 1           # noqa: SLF001 - always vectorize
    net_v._plan_warmup = False   # noqa: SLF001 - build plans eagerly
    sim_s, net_s, res_s = build()
    net_s._vec_min = 1 << 30     # noqa: SLF001 - never vectorize

    all_v, all_s = [], []
    for kind, value, weight, usage, idxs, size in ops:
        live_v = [f for f in all_v if f.active]
        live_s = [f for f in all_s if f.active]
        if kind == "advance":
            dt = value / 50.0
            sim_v.run(until=sim_v.now + dt)
            sim_s.run(until=sim_s.now + dt)
        elif kind == "start" or not live_v:
            for net, res, acc in ((net_v, res_v, all_v),
                                  (net_s, res_s, all_s)):
                acc.append(net.transfer(
                    [res[i] for i in idxs], size=size, demand=value,
                    weight=weight, usage=usage))
        elif kind == "stop":
            j = len(idxs) % len(live_v)
            net_v.stop_flow(live_v[j])
            net_s.stop_flow(live_s[j])
        elif kind == "demand":
            j = len(idxs) % len(live_v)
            net_v.set_demand(live_v[j], value)
            net_s.set_demand(live_s[j], value)
        else:
            res_v[idxs[0]].set_capacity(value)
            res_s[idxs[0]].set_capacity(value)
        for fv, fs in zip(all_v, all_s):
            assert fv.rate == fs.rate, (fv.label, fv.rate, fs.rate)
            assert fv.transferred == fs.transferred

    sim_v.run()
    sim_s.run()
    assert sim_v.now == sim_s.now
    for fv, fs in zip(all_v, all_s):
        assert fv.transferred == fs.transferred
        assert fv.done.triggered == fs.done.triggered


def test_stop_noops_counter_ticks_on_completed_flow():
    """Stopping an already-finished flow is an explicit no-op: the
    ``fluid.stop_noops`` counter ticks, ``on_flow_end`` does not fire a
    second time, and repeated stops keep counting."""
    with telemetry_context(trace=False) as tele:
        sim, net = make_net()
        link = Resource("link", 10.0)
        flow = net.transfer([link], size=10.0)
        sim.run()
        assert flow.done.triggered
        got = net.stop_flow(flow)
        assert got == flow.transferred
        net.stop_flow(flow)
        reg = tele.registry
        assert reg.counter("fluid.stop_noops").value == 2.0
        assert reg.counter("fluid.flows_completed").value == 1.0
        assert reg.counter("fluid.flows_aborted").value == 0.0


# ---------------------------------------------------------------------------
# Engine: generation-based heap-entry reuse
# ---------------------------------------------------------------------------

def test_reschedule_supersedes_previous_entry():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(5.0, fired.append, "late")
    sim.reschedule(handle, 3.0, fired.append, "early")
    sim.run()
    assert fired == ["early"]
    assert sim.now == 3.0
    assert handle.fired


def test_reschedule_after_fire_rearms():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(1.0, fired.append, 1)
    sim.run()
    sim.reschedule(handle, 2.0, fired.append, 2)
    sim.run()
    assert fired == [1, 2]


def test_reschedule_cancelled_handle_revives_it():
    sim = Simulator()
    fired = []
    handle = sim.schedule_at(1.0, fired.append, 1)
    handle.cancel()
    sim.reschedule(handle, 4.0, fired.append, 2)
    sim.run()
    assert fired == [2]
    assert sim.now == 4.0


def test_reschedule_into_past_raises():
    sim = Simulator()
    handle = sim.schedule_at(1.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.reschedule(handle, 0.5, lambda: None)


def test_peek_skips_superseded_entries():
    sim = Simulator()
    handle = sim.schedule_at(1.0, lambda *a: None, daemon=False)
    sim.reschedule(handle, 7.0, lambda *a: None)
    assert sim.peek() == 7.0


# ---------------------------------------------------------------------------
# P2P: cancelling unmatched requests
# ---------------------------------------------------------------------------

def test_p2p_cancel_unmatched_request():
    from repro.faults.reliability import TransportError
    from repro.hardware import Cluster, HENRI
    from repro.mpi import CommWorld, P2PContext
    world = CommWorld(Cluster(HENRI, 2), comm_placement="near")
    p2p = P2PContext(world)
    req = p2p.isend(0, 1, world.rank(0).buffer(1024), tag=7)
    assert p2p.cancel(req)
    assert req.done.triggered
    with pytest.raises(TransportError):
        _ = req.done.value
    # A matching irecv posted later must NOT pair with the cancelled
    # send: it waits for a fresh partner instead.
    recv = p2p.irecv(1, 0, world.rank(1).buffer(1024), tag=7)
    send2 = p2p.isend(0, 1, world.rank(0).buffer(1024), tag=7)
    world.sim.run()
    assert recv.done.triggered and recv.done.ok
    assert send2.done.triggered and send2.done.ok
    # Cancelling a completed request is refused.
    assert not p2p.cancel(send2)
