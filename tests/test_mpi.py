"""Tests for the MPI-like layer: CommWorld, p2p matching, ping-pong."""

import numpy as np
import pytest

from repro.hardware import Cluster, HENRI
from repro.mpi import CommWorld, P2PContext, PingPong
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE


@pytest.fixture
def world():
    return CommWorld(Cluster(HENRI, 2), comm_placement="near")


# -- CommWorld ----------------------------------------------------------

def test_comm_core_placement_near_vs_far():
    cluster = Cluster(HENRI, 2)
    near = CommWorld(cluster, comm_placement="near")
    m = cluster.machine(0)
    assert near.rank(0).comm_core == m.last_core_of_numa(m.nic_numa.id).id

    cluster2 = Cluster(HENRI, 2)
    far = CommWorld(cluster2, comm_placement="far")
    core = far.rank(0).comm_core
    assert cluster2.machine(0).cores[core].socket_id != \
        cluster2.machine(0).nic_numa.socket_id


def test_comm_placement_validation():
    with pytest.raises(ValueError):
        CommWorld(Cluster(HENRI, 2), comm_placement="middle")


def test_comm_core_is_active_not_uncore(world):
    m = world.rank(0).machine
    core = world.rank(0).comm_core
    from repro.hardware import CoreActivity
    assert m.freq.activity(core) is CoreActivity.SCALAR
    # Comm thread alone does not ramp the uncore (§3.2).
    assert m.freq.uncore_hz(m.cores[core].socket_id) == HENRI.uncore.min_hz


def test_rebind_comm_core(world):
    from repro.hardware import CoreActivity
    m = world.rank(0).machine
    old = world.rank(0).comm_core
    world.rebind_comm_core(0, 3)
    assert world.rank(0).comm_core == 3
    assert m.freq.activity(old) is CoreActivity.IDLE
    assert m.freq.activity(3) is CoreActivity.SCALAR


def test_rank_buffer_defaults_to_nic_numa(world):
    buf = world.rank(0).buffer(1024)
    assert buf.numa_id == world.rank(0).machine.nic_numa.id
    far = world.rank(0).buffer(1024, numa_id=3)
    assert far.numa_id == 3


# -- P2P matching ----------------------------------------------------------

def test_isend_then_irecv_completes(world):
    p2p = P2PContext(world)
    sreq = p2p.isend(0, 1, world.rank(0).buffer(4096), tag=7)
    rreq = p2p.irecv(1, 0, world.rank(1).buffer(4096), tag=7)
    world.sim.run()
    assert sreq.completed and rreq.completed
    assert sreq.record is rreq.record
    assert sreq.record.size == 4096


def test_irecv_posted_first(world):
    p2p = P2PContext(world)
    rreq = p2p.irecv(1, 0, world.rank(1).buffer(64), tag=1)
    world.sim.run()
    assert not rreq.completed  # no sender yet
    p2p.isend(0, 1, world.rank(0).buffer(64), tag=1)
    world.sim.run()
    assert rreq.completed


def test_tag_matching_is_selective(world):
    p2p = P2PContext(world)
    r_tag5 = p2p.irecv(1, 0, world.rank(1).buffer(8), tag=5)
    p2p.isend(0, 1, world.rank(0).buffer(8), tag=9)
    world.sim.run()
    assert not r_tag5.completed
    r_tag9 = p2p.irecv(1, 0, world.rank(1).buffer(8), tag=9)
    world.sim.run()
    assert r_tag9.completed
    assert not r_tag5.completed


def test_fifo_matching_same_tag(world):
    p2p = P2PContext(world)
    bufs = [world.rank(0).buffer(16, label=f"s{i}") for i in range(3)]
    sends = [p2p.isend(0, 1, b, tag=2) for b in bufs]
    recvs = [p2p.irecv(1, 0, world.rank(1).buffer(16), tag=2)
             for _ in range(3)]
    world.sim.run()
    assert all(s.completed for s in sends)
    assert all(r.completed for r in recvs)
    # FIFO: recv i matches send i.
    for s, r in zip(sends, recvs):
        assert s.record is r.record


def test_size_is_min_of_both_sides(world):
    p2p = P2PContext(world)
    s = p2p.isend(0, 1, world.rank(0).buffer(100), tag=0)
    r = p2p.irecv(1, 0, world.rank(1).buffer(60), tag=0)
    world.sim.run()
    assert r.record.size == 60


def test_sends_serialized_per_comm_thread(world):
    """One comm thread per node: two same-source transfers cannot
    overlap (§2.1: a single thread handles all communications)."""
    p2p = P2PContext(world)
    size = 8 << 20
    s1 = p2p.isend(0, 1, world.rank(0).buffer(size), tag=1)
    s2 = p2p.isend(0, 1, world.rank(0).buffer(size), tag=2)
    p2p.irecv(1, 0, world.rank(1).buffer(size), tag=1)
    p2p.irecv(1, 0, world.rank(1).buffer(size), tag=2)
    world.sim.run()
    r1, r2 = s1.record, s2.record
    assert r2.start >= r1.end * (1 - 1e-9)


def test_transfers_log(world):
    p2p = P2PContext(world)
    p2p.isend(0, 1, world.rank(0).buffer(4), tag=0)
    p2p.irecv(1, 0, world.rank(1).buffer(4), tag=0)
    world.sim.run()
    assert len(p2p.transfers) == 1


# -- PingPong ----------------------------------------------------------

def test_pingpong_latency_reasonable(world):
    res = PingPong(world).run(LATENCY_SIZE, reps=20)
    assert 1e-6 < res.median_latency < 3e-6
    assert res.p10_latency <= res.median_latency <= res.p90_latency
    assert len(res.latencies) == 40  # two halves per rep


def test_pingpong_bandwidth_reasonable():
    world = CommWorld(Cluster(HENRI, 2), comm_placement="near")
    res = PingPong(world).run(BANDWIDTH_SIZE, reps=5)
    assert 9e9 < res.bandwidth < 11e9


def test_pingpong_validation():
    cluster = Cluster(HENRI, 1)
    world = CommWorld(cluster)
    with pytest.raises(ValueError):
        PingPong(world)
    world2 = CommWorld(Cluster(HENRI, 2))
    with pytest.raises(ValueError):
        PingPong(world2, rank_a=0, rank_b=0)


def test_pingpong_buffers_recycled(world):
    pp = PingPong(world)
    a1, b1 = pp._buffers(1024)
    a2, b2 = pp._buffers(1024)
    assert a1 is a2 and b1 is b2


def test_pingpong_determinism():
    def run_once():
        world = CommWorld(Cluster(HENRI, 2, seed=42), comm_placement="near")
        return PingPong(world).run(4, reps=10).latencies

    first, second = run_once(), run_once()
    assert np.array_equal(first, second)


def test_pingpong_seeds_differ():
    w1 = CommWorld(Cluster(HENRI, 2, seed=1), comm_placement="near")
    w2 = CommWorld(Cluster(HENRI, 2, seed=2), comm_placement="near")
    l1 = PingPong(w1).run(4, reps=10).latencies
    l2 = PingPong(w2).run(4, reps=10).latencies
    assert not np.array_equal(l1, l2)


def test_pingpong_result_statistics():
    from repro.mpi.pingpong import PingPongResult
    res = PingPongResult(size=100, latencies=np.array([1e-6, 2e-6, 3e-6]))
    assert res.median_latency == pytest.approx(2e-6)
    assert res.bandwidth == pytest.approx(100 / 2e-6)
    assert res.p90_bandwidth >= res.bandwidth >= res.p10_bandwidth
    assert "size=100B" in res.summary()
