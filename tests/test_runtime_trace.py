"""Tests for the Chrome-tracing export of runtime executions."""

import json

import pytest

from repro.hardware import Cluster, HENRI
from repro.kernels.blas import TileCost
from repro.mpi import CommWorld
from repro.runtime import RuntimeComm, RuntimeSystem, Task
from repro.runtime.trace_export import RuntimeTracer


def make_traced(n_workers=4):
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, n_workers=n_workers)
                for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    tracer = RuntimeTracer()
    for rt in runtimes.values():
        tracer.attach(rt)
    tracer.attach_comm(comm)
    for rt in runtimes.values():
        rt.start()
    return cluster, world, runtimes, comm, tracer


def cpu_task(name="t"):
    return Task(name=name, cost=TileCost("cpu", 1e7, 0.0), rank=0)


def test_task_events_recorded():
    cluster, world, runtimes, comm, tracer = make_traced()
    for i in range(6):
        runtimes[0].submit(cpu_task(f"t{i}"))
    runtimes[0].wait_all()
    cluster.sim.run()
    tasks = tracer.events_by_category("task")
    assert len(tasks) == 6
    assert all(e.pid == 0 for e in tasks)
    assert all(e.duration > 0 for e in tasks)
    # Events land on worker-core lanes.
    worker_cores = {w.core_id for w in runtimes[0].workers}
    assert {e.tid for e in tasks} <= worker_cores


def test_message_events_recorded():
    cluster, world, runtimes, comm, tracer = make_traced()
    comm.isend(0, 1, world.rank(0).buffer(4096), tag=1)
    comm.irecv(1, 0, world.rank(1).buffer(4096), tag=1)
    cluster.sim.run()
    msgs = tracer.events_by_category("message")
    assert len(msgs) == 1
    assert msgs[0].tid == -1
    assert msgs[0].args["size"] == 4096
    assert msgs[0].args["dst"] == 1


def test_chrome_json_valid(tmp_path):
    cluster, world, runtimes, comm, tracer = make_traced()
    runtimes[0].submit(cpu_task())
    runtimes[0].wait_all()
    cluster.sim.run()
    path = tmp_path / "trace.json"
    count = tracer.export(str(path))
    assert count == len(tracer.events) >= 1
    payload = json.loads(path.read_text())
    event = payload["traceEvents"][0]
    assert event["ph"] == "X"
    assert event["ts"] >= 0 and event["dur"] > 0
    assert {"name", "pid", "tid", "cat"} <= set(event)


def test_chrome_json_matches_legacy_format():
    # to_chrome_json now delegates to repro.obs.export; the bytes must
    # stay identical to the original inline json.dumps rendering.
    cluster, world, runtimes, comm, tracer = make_traced()
    runtimes[0].submit(cpu_task())
    runtimes[0].wait_all()
    cluster.sim.run()
    legacy = json.dumps(
        {"traceEvents": [e.to_chrome() for e in tracer.events],
         "displayTimeUnit": "ms"}, indent=1)
    assert tracer.to_chrome_json() == legacy


def test_busy_time_accounting():
    cluster, world, runtimes, comm, tracer = make_traced(n_workers=1)
    for i in range(3):
        runtimes[0].submit(cpu_task(f"t{i}"))
    runtimes[0].wait_all()
    cluster.sim.run()
    core = runtimes[0].workers[0].core_id
    traced = tracer.busy_time(0, core)
    actual = runtimes[0].workers[0].busy_time
    assert traced == pytest.approx(actual, rel=0.05)
