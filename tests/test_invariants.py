"""Fluid-solver / engine invariant guard (--check-invariants).

The guard (:mod:`repro.sim.invariants`) is strictly pay-for-what-you-
use: with the flag off the hot paths check one module-level bool.  On,
every rate solve verifies usage caches, rate bounds and capacity
conservation, every ``sample``-th solve bitwise cross-checks the
incremental dirty-component solve against a from-scratch global solve,
and the event loop asserts heap monotonicity.  Violations raise
:class:`InvariantViolation` naming the offending connected component.
"""

import math
import random

import pytest

from repro.sim import Flow, FluidNetwork, Resource, Simulator
from repro.sim import invariants as inv
from repro.sim.invariants import InvariantViolation, invariant_checks


def _net():
    sim = Simulator()
    return sim, FluidNetwork(sim)


# -- context manager --------------------------------------------------------

def test_invariant_checks_context_saves_and_restores():
    prev_enabled, prev_sample = inv.ENABLED, inv.SAMPLE_EVERY
    with invariant_checks(sample=4):
        assert inv.ENABLED is True
        assert inv.SAMPLE_EVERY == 4
        with invariant_checks():
            assert inv.ENABLED is True
            assert inv.SAMPLE_EVERY == 4  # inherited, not reset
    assert inv.ENABLED == prev_enabled
    assert inv.SAMPLE_EVERY == prev_sample


def test_guard_restored_even_when_body_raises():
    prev = inv.ENABLED
    with pytest.raises(RuntimeError, match="boom"):
        with invariant_checks(sample=2):
            raise RuntimeError("boom")
    assert inv.ENABLED == prev


# -- clean runs pass --------------------------------------------------------

def test_clean_fluid_run_passes_under_guard():
    sim, net = _net()
    link = Resource("link", 100.0)
    with invariant_checks(sample=1):
        flows = [net.transfer([link], size=100.0) for _ in range(4)]
        sim.run()
    for f in flows:
        assert f.done.triggered
        assert f.transferred == pytest.approx(100.0)


@pytest.mark.parametrize("seed", range(8))
def test_randomized_churn_under_guard(seed):
    """Acceptance stress: start/finish/capacity/demand churn across
    shared links, every solve checked and every 4th cross-checked
    globally — the incremental solver must never diverge."""
    rng = random.Random(seed)
    sim, net = _net()
    links = [Resource(f"l{i}", rng.uniform(10.0, 100.0)) for i in range(4)]
    flows = []

    def churn():
        for step in range(60):
            yield rng.uniform(0.01, 0.3)
            roll = rng.random()
            active = [f for f in flows if f.active]
            if roll < 0.55 or not active:
                path = rng.sample(links, rng.randint(1, 3))
                demand = math.inf if rng.random() < 0.5 \
                    else rng.uniform(5.0, 50.0)
                flows.append(net.transfer(
                    path, size=rng.uniform(1.0, 50.0), demand=demand,
                    label=f"f{step}"))
            elif roll < 0.8:
                net.set_demand(rng.choice(active), rng.uniform(1.0, 80.0))
            else:
                rng.choice(links).set_capacity(rng.uniform(5.0, 120.0))

    with invariant_checks(sample=4):
        sim.process(churn())
        sim.run()
    assert all(f.done.triggered for f in flows)


# -- corruption is caught and named -----------------------------------------

def test_corrupted_usage_cache_names_component():
    sim, net = _net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=100.0, label="victim")
    flow._usages = (2.0,)  # noqa: SLF001 - deliberate corruption
    with invariant_checks():
        with pytest.raises(InvariantViolation) as err:
            net.set_demand(flow, 50.0)
    message = str(err.value)
    assert "usage cache" in message
    assert "victim" in message
    assert "component[" in message


def test_rate_above_demand_cap_detected():
    sim, net = _net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=1e6, demand=10.0, label="greedy")
    flow.rate = 20.0
    with pytest.raises(InvariantViolation, match="exceeds its demand cap"):
        net._check_invariants([flow])  # noqa: SLF001


def test_invalid_rates_detected():
    sim, net = _net()
    link = Resource("link", 100.0)
    flow = net.transfer([link], size=1e6)
    for bad in (-1.0, float("nan"), float("inf")):
        flow.rate = bad
        with pytest.raises(InvariantViolation, match="invalid rate"):
            net._check_invariants([flow])  # noqa: SLF001


def test_capacity_overcommit_names_resource():
    sim, net = _net()
    link = Resource("downlink", 100.0)
    flow = net.transfer([link], size=1e6)
    flow.rate = 250.0
    with pytest.raises(InvariantViolation,
                       match="'downlink' over capacity"):
        net._check_invariants([flow])  # noqa: SLF001


def test_sampled_global_cross_check_catches_divergence():
    """Corrupt a flow in a *different* component: the cheap per-dirty
    checks cannot see it, the sampled from-scratch solve does."""
    sim, net = _net()
    link_a, link_b = Resource("a", 100.0), Resource("b", 100.0)
    flow_a = net.transfer([link_a], size=1e6, label="stale")
    flow_b = net.transfer([link_b], size=1e6, label="trigger")
    flow_a.rate = 50.0  # silently wrong; still within every cheap bound
    with invariant_checks(sample=1):
        with pytest.raises(InvariantViolation,
                           match="diverged from global solve"):
            net.set_demand(flow_b, 40.0)


# -- engine heap monotonicity -----------------------------------------------

def test_engine_detects_time_moving_backwards():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    with invariant_checks():
        sim._now = 5.0  # noqa: SLF001 - simulate heap corruption
        with pytest.raises(InvariantViolation, match="moved backwards"):
            sim.run()


def test_engine_clean_run_unaffected():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    with invariant_checks():
        sim.run()
    assert fired == [1, 2]


# -- observability ----------------------------------------------------------

def test_invariant_counters_exported():
    from repro.obs import telemetry_context

    with telemetry_context(trace=False, metrics=True) as tele:
        with invariant_checks(sample=1):
            sim, net = _net()
            net.transfer([Resource("link", 100.0)], size=100.0)
            sim.run()
        checks = tele.registry.counter("fluid.invariant_checks").value
        assert checks >= 1.0
        assert tele.registry.counter(
            "fluid.invariant_violations").value == 0.0


def test_violation_counter_increments():
    from repro.obs import telemetry_context

    with telemetry_context(trace=False, metrics=True) as tele:
        sim, net = _net()
        flow = net.transfer([Resource("link", 100.0)], size=1e6)
        flow.rate = -1.0
        with pytest.raises(InvariantViolation):
            net._check_invariants([flow])  # noqa: SLF001
        assert tele.registry.counter(
            "fluid.invariant_violations").value == 1.0
