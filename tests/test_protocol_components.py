"""Component-level tests for the protocol engine internals."""

import pytest

from repro.hardware import BORA, Cluster, HENRI
from repro.mpi import CommWorld
from repro.netmodel.protocols import _EAGER_FLOW_MIN, ProtocolEngine


def make_world(spec=HENRI, placement="near"):
    return CommWorld(Cluster(spec, 2), comm_placement=placement)


def transfer(world, size, src_numa=None, dst_numa=None):
    a, b = world.rank(0), world.rank(1)
    src = a.buffer(size, src_numa)
    dst = b.buffer(size, dst_numa)
    proc = world.sim.process(world.engine.half_transfer(
        a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst, size))
    world.sim.run()
    return proc.value


def test_transfer_record_fields():
    world = make_world()
    rec = transfer(world, 4)
    assert rec.size == 4
    assert rec.protocol == "eager"
    assert rec.end > rec.start
    assert rec.bandwidth == pytest.approx(4 / rec.duration)
    zero = transfer(world, 0)
    assert zero.bandwidth == 0.0 or zero.duration > 0


def test_eager_analytic_fast_path_boundary():
    """Messages below the analytic threshold produce no fluid flows."""
    world = make_world()
    small = transfer(world, _EAGER_FLOW_MIN - 1)
    large = transfer(world, _EAGER_FLOW_MIN)
    # Same protocol either side of the internal boundary...
    assert small.protocol == large.protocol == "eager"
    # ...and continuous timing across it.
    assert large.duration == pytest.approx(small.duration, rel=0.15)


def test_doorbell_pays_uncore_frequency():
    world = make_world()
    m = world.rank(0).machine
    core = world.rank(0).comm_core
    lo = ProtocolEngine._doorbell(m, core)
    m.set_uncore(HENRI.uncore.max_hz)
    hi = ProtocolEngine._doorbell(m, core)
    assert hi == pytest.approx(lo / 2, rel=0.01)  # 1.2 vs 2.4 GHz


def test_runtime_overhead_fields_default_zero():
    world = make_world()
    engine = world.engine
    assert engine.extra_cycles_send == 0.0
    assert engine.extra_delay_recv == 0.0
    rec1 = transfer(world, 4)
    engine.extra_delay_send = 10e-6
    rec2 = transfer(world, 4)
    assert rec2.duration == pytest.approx(rec1.duration + 10e-6, rel=0.1)


def test_rendezvous_handshake_scales_with_rtt_factor():
    import dataclasses
    spec_fast = HENRI.with_overrides(
        nic=dataclasses.replace(HENRI.nic, rndv_rtt_factor=1.0))
    spec_slow = HENRI.with_overrides(
        nic=dataclasses.replace(HENRI.nic, rndv_rtt_factor=4.0))
    size = 256 * 1024
    fast = transfer(make_world(spec_fast), size)
    slow = transfer(make_world(spec_slow), size)
    assert slow.components["protocol"] == pytest.approx(
        4 * fast.components["protocol"], rel=0.01)
    assert slow.duration > fast.duration


def test_bora_onload_caps_dma_rate():
    """Omni-Path-style onload: large transfers capped by the CPU copy."""
    rec = transfer(make_world(BORA), 64 << 20)
    assert rec.protocol == "rendezvous"
    assert rec.bandwidth <= 4 * BORA.nic.eager_copy_bw * 1.05


def test_cross_numa_buffers_slow_bandwidth():
    """Data far from the NIC crosses the socket link (Table 1)."""
    near = transfer(make_world(), 64 << 20, src_numa=0, dst_numa=0)
    far = transfer(make_world(), 64 << 20, src_numa=3, dst_numa=3)
    # Idle machine: the link (19 GB/s) still exceeds the wire, so only
    # mild slowdown; under load it collapses (tested in fig5 benches).
    assert far.duration >= near.duration * 0.99


def test_serial_queue_fifo_and_errors():
    from repro.mpi.p2p import _SerialQueue
    from repro.sim import Simulator
    sim = Simulator()
    queue = _SerialQueue(sim)
    order = []

    def job(i, fail=False):
        yield 1.0
        if fail:
            raise RuntimeError(f"boom{i}")
        order.append(i)
        return i

    d1 = queue.submit(job(1))
    d2 = queue.submit(job(2, fail=True))
    d3 = queue.submit(job(3))
    sim.run()
    assert order == [1, 3]
    assert d1.ok and d1.value == 1
    assert d2.triggered and not d2.ok
    assert d3.ok and d3.value == 3
    assert sim.now == pytest.approx(3.0)  # strictly serial


def test_transfer_noise_bounded():
    """Measured latencies stay within a tight band around the median."""
    world = make_world()
    durations = [transfer(world, 4).duration for _ in range(50)]
    lo, hi = min(durations), max(durations)
    assert hi / lo < 1.25
