"""Tests for the scenario layer (TOML -> validated Scenario -> run)."""

import json
import pathlib

import pytest

from repro.cli import main
from repro.core.scenario import (Scenario, ScenarioError, _parse_mini_toml,
                                 load_scenario, parse_scenario)

ROOT = pathlib.Path(__file__).resolve().parents[1]
EXAMPLES = sorted((ROOT / "examples").glob("scenario_*.toml"))

VALID = """
[scenario]
name = "fig4a-under-faults"
experiment = "fig4a"
spec = "henri"
fast = true

[params]
core_counts = [0, 12, 35]
reps = 4

[faults]
specs = ["link:src=0,dst=1,bw_factor=0.5,start=0,duration=1"]
timeout = 0.0002
max_retries = 8

[execution]
jobs = 2
journal = "campaign.jsonl"

[output]
report = "report.md"
"""


def test_parse_valid_scenario():
    scen = parse_scenario(VALID)
    assert scen.name == "fig4a-under-faults"
    assert scen.experiment == "fig4a"
    assert scen.fast is True
    assert scen.params == {"core_counts": [0, 12, 35], "reps": 4}
    assert scen.fault_specs == (
        "link:src=0,dst=1,bw_factor=0.5,start=0,duration=1",)
    assert scen.timeout == pytest.approx(0.0002)
    assert scen.max_retries == 8
    assert scen.jobs == 2
    assert scen.journal == "campaign.jsonl"
    assert scen.report == "report.md"
    assert "fig4a" in scen.describe()


def test_minimal_scenario_defaults():
    scen = parse_scenario('[scenario]\nexperiment = "fig9"\n')
    assert scen == Scenario(name="fig9", experiment="fig9")


@pytest.mark.parametrize("text,needle", [
    ("[scenario]\nspec = 'henri'\n", "experiment"),
    ("[scenario]\nexperiment = 'fig99'\n", "fig99"),
    ("[scenario]\nexperiment = 'fig9'\n[exec]\njobs = 2\n", "exec"),
    ("[scenario]\nexperiment = 'fig9'\nbogus = 1\n", "bogus"),
    ("[scenario]\nexperiment = 'fig9'\nfast = 3\n", "fast"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\njobs = 'two'\n",
     "jobs"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\njobs = true\n",
     "jobs"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\nresume = true\n",
     "resume"),
    ("[scenario]\nexperiment = 'fig4a'\n[params]\nbogus_knob = 3\n",
     "bogus_knob"),
    ("[scenario]\nexperiment = 'fig4a'\n[params]\nspec = 'bora'\n",
     "spec"),
    ("[scenario]\nexperiment = 'fig4a'\n[params]\njournal = 'x'\n",
     "journal"),
    ("[scenario]\nexperiment = 'fig9'\n[faults]\nspecs = ['zap:x=1']\n",
     "zap"),
    ("[scenario]\nexperiment = 'fig9'\n[faults]\nspecs = [3]\n",
     "specs[0]"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\npoint_timeout = 0\n",
     "point_timeout"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\npoint_timeout = -2.5\n",
     "point_timeout"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\n"
     "point_timeout = '2m'\n", "point_timeout"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\npoint_retries = -1\n",
     "point_retries"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\npoint_retries = true\n",
     "point_retries"),
    ("[scenario]\nexperiment = 'fig9'\n[execution]\nkeep_going = 1\n",
     "keep_going"),
])
def test_malformed_scenarios_name_the_field(text, needle):
    with pytest.raises(ScenarioError) as err:
        parse_scenario(text)
    assert needle in str(err.value)


def test_execution_robustness_keys_parse():
    scen = parse_scenario(
        '[scenario]\nexperiment = "fig9"\n'
        '[execution]\npoint_timeout = 120\npoint_retries = 3\n'
        'keep_going = false\n')
    assert scen.point_timeout == pytest.approx(120.0)
    assert isinstance(scen.point_timeout, float)  # int coerced
    assert scen.point_retries == 3
    assert scen.keep_going is False
    # Unset keys stay None so the CLI can tell "unset" from "0"/"off"
    # when folding scenario values under explicit flags.
    scen = parse_scenario('[scenario]\nexperiment = "fig9"\n')
    assert scen.point_timeout is None
    assert scen.point_retries is None
    assert scen.keep_going is None


def test_cli_flags_override_scenario_execution_keys(tmp_path, monkeypatch):
    """CLI-over-scenario precedence for the robustness policy: explicit
    flags win, scenario keys fill the gaps."""
    from contextlib import contextmanager

    import repro.core.executor as executor_mod

    scenario = tmp_path / "s.toml"
    scenario.write_text("""
[scenario]
experiment = "fig9"
fast = true

[params]
sizes = [4]
reps = 4

[execution]
jobs = 2
point_timeout = 60
point_retries = 5
keep_going = false
""")
    captured = {}
    real = executor_mod.executor_context

    @contextmanager
    def spy(jobs, policy=None):
        captured["jobs"] = jobs
        captured["policy"] = policy
        with real(1) as ex:  # run serial underneath to keep this fast
            yield ex

    monkeypatch.setattr(executor_mod, "executor_context", spy)
    assert main(["run", "--scenario", str(scenario),
                 "--point-retries", "0", "--keep-going"]) == 0
    assert captured["jobs"] == 2
    policy = captured["policy"]
    assert policy.point_retries == 0        # flag beats scenario's 5
    assert policy.keep_going is True        # flag beats scenario's false
    assert policy.point_timeout == pytest.approx(60.0)  # scenario fills


def test_unreadable_file_is_a_scenario_error(tmp_path):
    with pytest.raises(ScenarioError, match="cannot read"):
        load_scenario(str(tmp_path / "missing.toml"))


def test_var_kw_experiments_reject_unknown_params():
    """fig4a forwards **kw; bogus params must still fail validation
    (its registry entry declares the forwarded parameters)."""
    with pytest.raises(ScenarioError, match="valid parameters"):
        parse_scenario(
            '[scenario]\nexperiment = "fig4a"\n[params]\nnope = 1\n')


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_scenarios_validate(path):
    scen = load_scenario(str(path))
    assert scen.fast, f"{path.name} should use --fast for CI"
    # Every example demonstrates at least one layered capability on
    # top of the base experiment (a fault plan, multi-seed trials, or
    # a topology/co-scheduling configuration).
    assert (scen.fault_specs or (scen.trials or 1) > 1
            or "topology" in scen.params or "apps" in scen.params)


def test_mini_toml_parser_matches_schema_subset():
    """The 3.10 fallback parser handles everything the examples use."""
    doc = _parse_mini_toml(VALID, "<test>")
    assert doc["scenario"]["experiment"] == "fig4a"
    assert doc["scenario"]["fast"] is True
    assert doc["params"]["core_counts"] == [0, 12, 35]
    assert doc["faults"]["timeout"] == pytest.approx(0.0002)
    assert doc["execution"]["jobs"] == 2
    # And the examples themselves.
    for path in EXAMPLES:
        parsed = _parse_mini_toml(path.read_text(), path.name)
        assert parsed["scenario"]["experiment"]


def test_mini_toml_parser_rejects_garbage():
    with pytest.raises(ScenarioError, match="key = value"):
        _parse_mini_toml("[scenario]\nnot a kv line\n", "<t>")
    with pytest.raises(ScenarioError, match="cannot parse"):
        _parse_mini_toml("[scenario]\nx = {a = 1}\n", "<t>")
    # [[name]] arrays of tables parse, but clash with a plain [name].
    doc = _parse_mini_toml("[[apps]]\nname = 'a'\n[[apps]]\nname = 'b'\n",
                           "<t>")
    assert [t["name"] for t in doc["apps"]] == ["a", "b"]
    with pytest.raises(ScenarioError, match="conflicts"):
        _parse_mini_toml("[apps]\nx = 1\n[[apps]]\ny = 2\n", "<t>")


def test_scenario_runs_end_to_end(tmp_path, monkeypatch, capsys):
    monkeypatch.chdir(tmp_path)
    scenario = tmp_path / "scen.toml"
    scenario.write_text("""
[scenario]
name = "fig9-smoke"
experiment = "fig9"
fast = true

[params]
sizes = [4]
reps = 4

[execution]
journal = "scen.journal.jsonl"

[output]
report = "scen.md"
""")
    assert main(["run", "--scenario", str(scenario)]) == 0
    assert (tmp_path / "scen.md").exists()
    journal = (tmp_path / "scen.journal.jsonl").read_text().splitlines()
    assert journal and all(json.loads(l) for l in journal)
    # --resume replays the journal; --jobs overrides the scenario's.
    capsys.readouterr()
    assert main(["run", "--scenario", str(scenario), "--resume",
                 "--jobs", "2"]) == 0
    assert "fig9" in capsys.readouterr().out


def test_scenario_with_faults_end_to_end(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    scenario = tmp_path / "fault.toml"
    scenario.write_text("""
[scenario]
experiment = "fig1a"
fast = true

[params]
sizes = [4, 65536]
reps = 4

[faults]
specs = ["loss:loss_rate=0.05,start=0,duration=1"]
timeout = 0.0002
max_retries = 8

[output]
report = "fault.md"
""")
    assert main(["run", "--scenario", str(scenario)]) == 0
    assert "fig1a" in (tmp_path / "fault.md").read_text()


def test_scenario_cli_conflicts(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig9", "--scenario", "x.toml"])
    assert "not both" in capsys.readouterr().err
    with pytest.raises(SystemExit):
        main(["run"])
    assert "--scenario" in capsys.readouterr().err


def test_malformed_scenario_fails_via_cli(tmp_path, capsys):
    bad = tmp_path / "bad.toml"
    bad.write_text('[scenario]\nexperiment = "fig4a"\n'
                   '[params]\nbogus_knob = 3\n')
    with pytest.raises(SystemExit):
        main(["run", "--scenario", str(bad)])
    err = capsys.readouterr().err
    assert "bogus_knob" in err and "valid parameters" in err


def test_execution_trials_key_parses():
    scen = parse_scenario(
        '[scenario]\nexperiment = "fig1a"\n'
        '[execution]\ntrials = 5\n')
    assert scen.trials == 5
    assert parse_scenario('[scenario]\nexperiment = "fig1a"\n'
                          ).trials is None


def test_execution_trials_validated():
    with pytest.raises(ScenarioError) as err:
        parse_scenario('[scenario]\nexperiment = "fig1a"\n'
                       '[execution]\ntrials = 0\n')
    assert "trials must be >= 1" in str(err.value)
    with pytest.raises(ScenarioError) as err:
        parse_scenario('[scenario]\nexperiment = "fig1a"\n'
                       '[execution]\ntrials = true\n')
    assert "trials" in str(err.value)


def test_scenario_trials_drive_the_campaign(tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    scen = tmp_path / "s.toml"
    scen.write_text(
        '[scenario]\nexperiment = "fig1a"\nfast = true\n'
        '[params]\nsizes = [4, 64]\nreps = 3\n'
        '[execution]\ntrials = 2\njournal = "c.jsonl"\n')
    assert main(["run", "--scenario", str(scen)]) == 0
    entries = [json.loads(l) for l in
               (tmp_path / "c.jsonl").read_text().splitlines()]
    assert len(entries) == 16                  # 8 points x 2 trials
    assert sum(e.get("trial", 0) == 1 for e in entries) == 8
    # An explicit CLI --trials wins over the scenario value.
    (tmp_path / "c.jsonl").unlink()
    assert main(["run", "--scenario", str(scen), "--trials", "1"]) == 0
    entries = [json.loads(l) for l in
               (tmp_path / "c.jsonl").read_text().splitlines()]
    assert len(entries) == 8
    assert all("trial" not in e for e in entries)
