"""Tests for the runtime system: workers, graph execution, comm layer."""

import numpy as np
import pytest

from repro.hardware import Cluster, HENRI, allocate
from repro.kernels.blas import TileCost, gemv_tile_cost
from repro.mpi import CommWorld
from repro.runtime import (
    AccessMode, DataHandle, PollingSpec, RuntimeComm, RuntimeSystem, Task,
    TaskGraph, runtime_spec_for,
)


def make_setup(n_workers=4, polling=None):
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, n_workers=n_workers,
                                 polling=polling) for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()
    return cluster, world, runtimes, comm


def cpu_task(ms=1.0, rank=0, name="t"):
    # flops chosen for ~ms milliseconds at ~10 Gflop/s scalar.
    return Task(name=name, cost=TileCost("cpu", ms * 1e7, 0.0), rank=rank)


def test_core_reservation():
    cluster, world, runtimes, _ = make_setup(n_workers=None)
    rt = runtimes[0]
    worker_cores = {w.core_id for w in rt.workers}
    assert world.rank(0).comm_core not in worker_cores
    assert rt.main_core not in worker_cores
    # §5.1: one comm core + one main core reserved.
    assert len(rt.workers) == HENRI.n_cores - 2


def test_worker_count_validation():
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster)
    with pytest.raises(ValueError):
        RuntimeSystem(world, 0, n_workers=HENRI.n_cores)  # too many


def test_single_task_executes():
    cluster, world, runtimes, _ = make_setup()
    t = cpu_task()
    runtimes[0].submit(t)
    done = runtimes[0].wait_all()
    cluster.sim.run()
    assert done.triggered and t.done
    assert t.duration > 0
    assert sum(w.tasks_executed for w in runtimes[0].workers) == 1


def test_dependencies_respected():
    cluster, world, runtimes, _ = make_setup()
    machine = cluster.machine(0)
    h = DataHandle(buffer=allocate(machine, 0, 64))
    g = TaskGraph()
    first = g.add(Task(name="w", cost=TileCost("c", 1e7, 0.0),
                       accesses=[(h, AccessMode.W)], rank=0))
    second = g.add(Task(name="r", cost=TileCost("c", 1e7, 0.0),
                        accesses=[(h, AccessMode.R)], rank=0))
    runtimes[0].submit_graph(g)
    runtimes[0].wait_all()
    cluster.sim.run()
    assert first.end_time <= second.start_time + 1e-12


def test_parallel_speedup():
    def run_with(n_workers):
        cluster, world, runtimes, _ = make_setup(n_workers=n_workers)
        for i in range(8):
            runtimes[0].submit(cpu_task(name=f"t{i}"))
        runtimes[0].wait_all()
        t0 = cluster.sim.now
        cluster.sim.run()
        return cluster.sim.now - t0

    serial = run_with(1)
    parallel = run_with(8)
    assert parallel < serial / 3  # near-linear minus turbo effects


def test_independent_ranks():
    cluster, world, runtimes, _ = make_setup()
    t0 = cpu_task(rank=0)
    t1 = cpu_task(rank=1)
    runtimes[0].submit(t0)
    runtimes[1].submit(t1)
    runtimes[0].wait_all()
    runtimes[1].wait_all()
    cluster.sim.run()
    assert t0.done and t1.done


def test_external_dependency_gating():
    cluster, world, runtimes, _ = make_setup()
    rt = runtimes[0]
    gate = rt.external_dependency()
    gated = cpu_task(name="gated")
    gated.deps = [gate]
    rt.submit(gated)
    cluster.sim.run(until=0.01)
    assert not gated.done
    rt.complete_external(gate)
    rt.wait_all()
    cluster.sim.run()
    assert gated.done
    assert gated.start_time >= 0.01


def test_memory_bound_task_records_stalls():
    cluster, world, runtimes, _ = make_setup()
    machine = cluster.machine(0)
    h = DataHandle(buffer=allocate(machine, 0, 64 << 20))
    t = Task(name="gemv", cost=gemv_tile_cost(2000, 30000),
             accesses=[(h, AccessMode.R)], rank=0)
    before = machine.counters.snapshot()
    runtimes[0].submit(t)
    runtimes[0].wait_all()
    cluster.sim.run()
    worker_cores = [w.core_id for w in runtimes[0].workers]
    agg = machine.counters.delta(before, cores=worker_cores)
    assert agg.mem_stall > 0.5 * agg.busy  # GEMV is memory bound


def test_shutdown_stops_workers():
    cluster, world, runtimes, _ = make_setup()
    runtimes[0].submit(cpu_task())
    runtimes[0].wait_all()
    cluster.sim.run()
    for rt in runtimes.values():
        rt.shutdown()
    cluster.sim.run()
    from repro.hardware import CoreActivity
    for w in runtimes[0].workers:
        assert cluster.machine(0).freq.activity(w.core_id) \
            is CoreActivity.IDLE


def test_double_start_rejected():
    cluster, world, runtimes, _ = make_setup()
    with pytest.raises(RuntimeError):
        runtimes[0].start()


def test_runtime_spec_per_preset():
    from repro.hardware import BILLY, PYXIS
    henri = runtime_spec_for(HENRI)
    billy = runtime_spec_for(BILLY)
    pyxis = runtime_spec_for(PYXIS)
    # §5.2 ordering: billy < henri < pyxis overheads.
    assert billy.message_overhead_s < henri.message_overhead_s \
        < pyxis.message_overhead_s
    assert henri.message_overhead_s == pytest.approx(38e-6, rel=0.05)
    assert billy.message_overhead_s == pytest.approx(23e-6, rel=0.05)
    assert pyxis.message_overhead_s == pytest.approx(45e-6, rel=0.05)


def test_stack_inflation_monotone():
    spec = runtime_spec_for(HENRI)
    values = [spec.stack_inflation(r) for r in (0.0, 0.3, 0.6, 0.9, 1.0)]
    assert values == sorted(values)
    assert values[0] == 1.0
    assert values[-1] == pytest.approx(1.0 + spec.stack_stall_k)


# -- RuntimeComm --------------------------------------------------------

def test_runtime_message_slower_than_plain():
    cluster, world, runtimes, comm = make_setup(n_workers=0)
    from repro.mpi import P2PContext
    plain = P2PContext(world)
    buf_a = world.rank(0).buffer(4)
    buf_b = world.rank(1).buffer(4)
    plain.isend(0, 1, buf_a, tag=1)
    r_plain = plain.irecv(1, 0, buf_b, tag=1)
    world.sim.run()
    comm.isend(0, 1, buf_a, tag=2)
    r_rt = comm.irecv(1, 0, buf_b, tag=2)
    world.sim.run()
    overhead = r_rt.record.duration - r_plain.record.duration
    spec = runtime_spec_for(HENRI)
    assert overhead == pytest.approx(spec.message_overhead_s, rel=0.25)


def test_send_stats_accumulate():
    cluster, world, runtimes, comm = make_setup(n_workers=0)
    size = 1 << 20
    comm.isend(0, 1, world.rank(0).buffer(size), tag=1)
    comm.irecv(1, 0, world.rank(1).buffer(size), tag=1)
    world.sim.run()
    stats = comm.send_stats[0]
    assert stats.messages == 1
    assert stats.bytes_sent == size
    assert stats.time_in_send > 0
    assert comm.sending_bandwidth() == pytest.approx(
        stats.sending_bandwidth)
    comm.reset_stats()
    assert comm.send_stats[0].messages == 0


def test_numa_mismatch_penalty():
    cluster, world, runtimes, comm = make_setup(n_workers=0)
    comm_numa = cluster.machine(0).numa_of_core(
        world.rank(0).comm_core).id
    other_numa = (comm_numa + 1) % 4

    def latency(numa):
        s = comm.isend(0, 1, world.rank(0).buffer(4, numa), tag=numa)
        comm.irecv(1, 0, world.rank(1).buffer(4, comm_numa), tag=numa)
        world.sim.run()
        return s.record.duration

    matched = latency(comm_numa)
    mismatched = latency(other_numa)
    assert mismatched > matched
