"""Pluggable fabric topologies: construction, routing, addressing.

Covers the topology layer itself (fullmesh equivalence with the seed,
fat-tree/dragonfly/torus routing, resource scaling) plus the Cluster
integration points (descriptive pair validation, link lookup,
switch_bw compatibility).
"""

import pytest

from repro.hardware.fabric import (Dragonfly, FatTree, FullMesh, Torus,
                                   make_topology, validate_topology_params)
from repro.hardware.topology import Cluster

BW = 12.5e9


# -- pair validation (descriptive errors, not bare KeyError) --------------

def test_wire_self_route_raises_descriptive_error():
    cluster = Cluster("henri", n_nodes=4)
    with pytest.raises(ValueError, match="to itself"):
        cluster.wire(2, 2)
    with pytest.raises(ValueError, match="to itself"):
        cluster.route(0, 0)


def test_wire_out_of_range_names_valid_ids():
    cluster = Cluster("henri", n_nodes=4)
    with pytest.raises(ValueError, match=r"valid ids: 0\.\.3"):
        cluster.wire(0, 4)
    with pytest.raises(ValueError, match="src node id -1"):
        cluster.route(-1, 2)
    with pytest.raises(ValueError, match="must be an int"):
        cluster.wire(0, "1")


def test_every_topology_validates_pairs():
    for topo in (FullMesh(), FatTree(hosts_per_leaf=4, spines=2),
                 Dragonfly(group_size=4), Torus()):
        topo.build(8, BW)
        with pytest.raises(ValueError, match="to itself"):
            topo.route(3, 3)
        with pytest.raises(ValueError, match="outside this 8-node"):
            topo.wire(0, 8)


# -- full mesh: the seed fabric, byte-compatible --------------------------

def test_fullmesh_matches_seed_wiring():
    cluster = Cluster("henri", n_nodes=3)
    assert isinstance(cluster.topology, FullMesh)
    wire = cluster.wire(0, 1)
    assert wire.name == "wire0->1"
    assert cluster.route(0, 1) == [wire]
    assert cluster.wire(1, 0) is not wire          # full duplex
    # No extra latency: the seed's event arithmetic is untouched.
    assert cluster.topology.extra_latency(0, 2) == 0.0
    # n*(n-1) directed wires, lane order a-major.
    labels = [label for label, _ in cluster.topology.links()]
    assert labels[:3] == ["wire0->1", "wire0->2", "wire1->0"]
    assert len(labels) == 6


def test_fullmesh_switch_on_route_but_not_a_lane():
    cluster = Cluster("henri", n_nodes=3, switch_bw=5e9)
    path = cluster.route(0, 2)
    assert [r.name for r in path] == ["wire0->2", "switch"]
    assert cluster.switch is path[1]
    # The seed's telemetry exported wires only; the switch stays
    # addressable for faults.
    assert "switch" not in dict(cluster.topology.links())
    assert cluster.find_link("switch") is cluster.switch


def test_switch_bw_rejected_on_real_topologies():
    with pytest.raises(ValueError, match="switch_bw"):
        Cluster("henri", n_nodes=8, switch_bw=5e9, topology="dragonfly")
    with pytest.raises(ValueError):
        Cluster("henri", n_nodes=2, switch_bw=0)


# -- fat-tree -------------------------------------------------------------

def test_fattree_routes_same_leaf_vs_cross_leaf():
    topo = FatTree(hosts_per_leaf=4, spines=2).build(8, BW)
    same = [r.name for r in topo.route(0, 1)]
    assert same == ["ft.h0.up", "ft.h1.down"]
    cross = [r.name for r in topo.route(0, 5)]
    spine = topo.spine_of(0, 5)
    assert cross == [f"ft.h0.up", f"ft.l0.up{spine}",
                     f"ft.l1.down{spine}", "ft.h5.down"]
    assert topo.switch_hops(0, 1) == 1
    assert topo.switch_hops(0, 5) == 3
    assert topo.extra_latency(0, 5) == pytest.approx(2 * topo.hop_latency)


def test_fattree_oversubscription_thins_uplinks():
    full = FatTree(hosts_per_leaf=8, spines=4).build(16, BW)
    thin = FatTree(hosts_per_leaf=8, spines=4, oversub=2.0).build(16, BW)
    cap = full.find_link("ft.l0.up0").capacity
    assert cap == pytest.approx(BW * 8 / 4)
    assert thin.find_link("ft.l0.up0").capacity == pytest.approx(cap / 2)


def test_fattree_64_nodes_subquadratic_resources():
    """Satellite: real fabrics must not build O(n^2) wires eagerly."""
    topo = FatTree(hosts_per_leaf=8, spines=4).build(64, BW)
    # 2 host links per node + 2 leaf-spine links per (leaf, spine).
    assert topo.n_links() == 2 * 64 + 2 * 8 * 4
    assert topo.n_links() < 64 * 63 // 4      # far below the mesh count
    mesh = FullMesh().build(64, BW)
    assert mesh.n_links() == 64 * 63


# -- dragonfly ------------------------------------------------------------

def test_dragonfly_minimal_routing():
    topo = Dragonfly(group_size=4).build(8, BW)
    # Same router: injection + ejection only (no local hop).
    intra = [r.name for r in topo.route(0, 1)]
    assert intra == ["df.h0.up", "df.g0.r0->r1", "df.h1.down"]
    # Cross-group: the gateway for group 1 inside group 0 is router
    # 1 % 4 = 1, so node 0 takes a local hop first.
    cross = [r.name for r in topo.route(0, 6)]
    assert cross == ["df.h0.up", "df.g0.r0->r1", "df.g0->g1",
                     "df.g1.r0->r2", "df.h6.down"]
    assert topo.switch_hops(0, 6) == 4


def test_dragonfly_cross_group_pairs_share_global_link():
    """The deterministic gateway makes collisions provable — the
    property fig_xapp's aggressor placement depends on."""
    topo = Dragonfly(group_size=4).build(8, BW)
    glob = topo.find_link("df.g0->g1")
    for src, dst in ((0, 4), (1, 5), (2, 6), (3, 7)):
        assert glob in topo.route(src, dst)
        assert glob not in topo.route(dst, src)   # reverse uses g1->g0


def test_dragonfly_rejects_ragged_group():
    with pytest.raises(ValueError, match="divisible by group_size"):
        Dragonfly(group_size=8).build(12, BW)


# -- torus ----------------------------------------------------------------

def test_torus_dimension_order_routing():
    topo = Torus(dims=(3, 3)).build(9, BW)
    # node ids are row-major: node 4 = (1, 1).
    hop = [r.name for r in topo.route(4, 5)]
    assert hop == ["torus.4->5"]
    # (0,0) -> (1,1): dimension 0 first, then 1.
    two = [r.name for r in topo.route(0, 4)]
    assert two == ["torus.0->3", "torus.3->4"]
    # Shortest wrap: (0,0) -> (0,2) steps backwards through the wrap.
    wrap = [r.name for r in topo.route(0, 2)]
    assert wrap == ["torus.0->2"]
    assert topo.switch_hops(0, 4) == 2


def test_torus_infers_squarest_grid_and_checks_dims():
    topo = Torus().build(12, BW)
    assert topo.dims == (3, 4)
    with pytest.raises(ValueError, match="hold 9 nodes"):
        Torus(dims=(3, 3)).build(8, BW)
    with pytest.raises(ValueError, match="2 or 3 entries"):
        Torus(dims=(2, 2, 2, 2))


# -- factory, addressing, lifecycle ---------------------------------------

def test_make_topology_rejects_unknown_kind_and_params():
    with pytest.raises(ValueError, match="unknown topology"):
        make_topology("hypercube")
    with pytest.raises(ValueError, match="accepted:"):
        make_topology("dragonfly", group_sz=4)
    with pytest.raises(ValueError, match="accepted:"):
        validate_topology_params("fattree", {"spine_count": 2})
    assert isinstance(make_topology("torus", dims=[2, 2]), Torus)


def test_find_link_unknown_label_names_samples():
    cluster = Cluster("henri", n_nodes=8, topology="dragonfly")
    with pytest.raises(ValueError, match="df.h0.up"):
        cluster.find_link("df.g9->g9")


def test_topology_is_single_use():
    topo = FatTree(hosts_per_leaf=4, spines=2)
    Cluster("henri", n_nodes=8, topology=topo)
    with pytest.raises(RuntimeError, match="single-use"):
        Cluster("henri", n_nodes=8, topology=topo)
    with pytest.raises(ValueError, match="topology"):
        Cluster("henri", n_nodes=2, topology=object())


def test_cluster_topology_by_name_with_params():
    cluster = Cluster("henri", n_nodes=8,
                      topology=make_topology("dragonfly", group_size=4))
    assert cluster.topology.describe().startswith("dragonfly(8 hosts")
    by_name = Cluster("henri", n_nodes=9, topology="torus")
    assert by_name.topology.dims == (3, 3)
