"""Parallel sweep execution: determinism, cache, and failure paths.

The contract under test (docs/PARALLEL.md): seeded runs produce
byte-identical reports, journals, traces and metric exports at any
``--jobs`` level; journal entries double as a content-addressed point
cache; worker crashes surface as errors while point failures degrade
gracefully.
"""

import hashlib
import json
import os

import pytest

from repro.cli import main, run_experiment
from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.executor import (ExecutionPolicy, PointSpec, SweepExecutor,
                                 build_env, executor_context,
                                 point_fingerprint)
from repro.core.results import ExperimentResult
from repro.faults.context import derive_point_seed


def _sha(path) -> str:
    return hashlib.sha256(path.read_bytes()).hexdigest()


def _run_fig1a(tmp_path, tag: str, jobs: int):
    d = tmp_path / tag
    d.mkdir()
    argv = ["run", "fig1a", "--fast",
            "--trace", str(d / "t.json"),
            "--metrics", str(d / "m.json"),
            "--journal", str(d / "j.jsonl"),
            "--out", str(d / "r.md")]
    if jobs != 1:
        argv += ["--jobs", str(jobs)]
    assert main(argv) == 0
    return {name: _sha(d / name)
            for name in ("t.json", "m.json", "j.jsonl", "r.md")}


# -- bit-identity -----------------------------------------------------------

def test_fig1a_artifacts_identical_at_any_jobs(tmp_path, capsys):
    serial = _run_fig1a(tmp_path, "serial", jobs=1)
    parallel = _run_fig1a(tmp_path, "parallel", jobs=2)
    assert serial == parallel


def test_fig10_api_identical_under_pool():
    from repro.core.experiments import fig10
    from repro.core.report import render_experiment

    serial = fig10(worker_counts=(1, 2))
    with executor_context(2):
        pooled = fig10(worker_counts=(1, 2))
    assert render_experiment(serial) == render_experiment(pooled)
    for key, s in serial.series.items():
        p = pooled.series[key]
        assert (s.x, s.median, s.p10, s.p90) == \
            (p.x, p.median, p.p10, p.p90)


def test_non_sweep_experiment_unaffected_by_executor():
    serial = run_experiment("fig2", fast=True)
    with executor_context(2):
        pooled = run_experiment("fig2", fast=True)
    assert serial.observations == pooled.observations


def test_fault_campaign_identical_at_any_jobs(tmp_path, capsys):
    journals = {}
    for jobs in (1, 2):
        j = tmp_path / f"j{jobs}.jsonl"
        argv = ["run", "fig1a", "--fast",
                "--fault", "fail_stop:node=1,at=0.0001",
                "--fault-seed", "7", "--journal", str(j)]
        if jobs != 1:
            argv += ["--jobs", str(jobs)]
        assert main(argv) == 0
        journals[jobs] = j.read_bytes()
    assert journals[1] == journals[2]
    assert b'"status": "failed"' in journals[1]


# -- per-point fault seeds --------------------------------------------------

def test_derive_point_seed_is_pure_and_distinct():
    a = derive_point_seed(7, "fig1", "corner/size=4")
    assert a == derive_point_seed(7, "fig1", "corner/size=4")
    assert a != derive_point_seed(8, "fig1", "corner/size=4")
    assert a != derive_point_seed(7, "fig1", "corner/size=64")
    assert a != derive_point_seed(7, "fig4a", "corner/size=4")
    assert 0 <= a < 2 ** 64


# -- content-addressed cache ------------------------------------------------

def _spec_for(params=None):
    return PointSpec(experiment="figX", key="k", runner="m:f",
                     params=params or {"size": 4})


def test_fingerprint_tracks_params_and_code(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
    base = point_fingerprint(_spec_for())
    assert base == point_fingerprint(_spec_for())
    assert base != point_fingerprint(_spec_for({"size": 8}))
    monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
    assert base != point_fingerprint(_spec_for())


def test_fingerprint_hashes_callables_by_name(monkeypatch):
    monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
    from repro.kernels.stream import triad_kernel
    a = point_fingerprint(_spec_for({"kernel_factory": triad_kernel}))
    assert a == point_fingerprint(_spec_for({"kernel_factory": triad_kernel}))


def test_warm_journal_replays_without_resimulating(tmp_path, monkeypatch):
    from repro.core.experiments import fig1a

    monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
    path = tmp_path / "j.jsonl"
    kw = dict(sizes=[4, 64], reps=3)
    with CampaignJournal(path) as journal:
        cold = fig1a(journal=journal, **kw)
    assert cold.meta["sweep"]["replayed"] == 0
    with CampaignJournal(path, resume=True) as journal:
        warm = fig1a(journal=journal, **kw)
    assert warm.meta["sweep"]["replayed"] == warm.meta["sweep"]["points"]
    for key, s in cold.series.items():
        assert warm.series[key].median == s.median

    # A code-version bump invalidates every cached point.
    monkeypatch.setenv("REPRO_CODE_VERSION", "v2")
    with CampaignJournal(path, resume=True) as journal:
        busted = fig1a(journal=journal, **kw)
    assert busted.meta["sweep"]["replayed"] == 0

    # Changed parameters miss the cache even at the same code version.
    monkeypatch.setenv("REPRO_CODE_VERSION", "v1")
    with CampaignJournal(path, resume=True) as journal:
        changed = fig1a(journal=journal, sizes=[4, 64], reps=4)
    assert changed.meta["sweep"]["replayed"] == 0


def test_journal_entries_without_fp_are_trusted(tmp_path):
    """run_point-era journals (no fp field) must keep resuming."""
    from repro.core.experiments import fig1a

    path = tmp_path / "j.jsonl"
    kw = dict(sizes=[4], reps=3)
    with CampaignJournal(path) as journal:
        fig1a(journal=journal, **kw)
    stripped = []
    for line in path.read_text().splitlines():
        entry = json.loads(line)
        entry.pop("fp", None)
        stripped.append(json.dumps(entry))
    path.write_text("\n".join(stripped) + "\n")
    with CampaignJournal(path, resume=True) as journal:
        warm = fig1a(journal=journal, **kw)
    assert warm.meta["sweep"]["replayed"] == warm.meta["sweep"]["points"]


# -- journal crash-safety ---------------------------------------------------

def test_journal_rejects_second_concurrent_writer(tmp_path):
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path):
        with pytest.raises(RuntimeError, match="locked by another"):
            CampaignJournal(path)
    # Lock released on close: reopening now works.
    with CampaignJournal(path, resume=True):
        pass


# -- failure propagation ----------------------------------------------------

def _raise_runner(params):
    raise ValueError("boom on " + str(params["size"]))


def _crash_runner(params):
    os._exit(3)


def _row_runner(params):
    return {"s": [[float(params["size"]), 1.0, 1.0, 1.0]]}


def _guard(name="figX"):
    return SweepGuard(ExperimentResult(name=name, title="t"))


def test_point_exception_degrades_to_failure_at_any_jobs():
    for jobs in (1, 2):
        guard = _guard()
        with executor_context(jobs):
            statuses = guard.run_specs([
                PointSpec(experiment="figX", key="size=4",
                          runner="tests.test_executor_parallel:_row_runner",
                          params={"size": 4}),
                PointSpec(experiment="figX", key="size=8",
                          runner="tests.test_executor_parallel:_raise_runner",
                          params={"size": 8}),
            ])
        assert statuses == {"size=4": "ok", "size=8": "failed"}
        failure = guard.result.failures["size=8"]
        assert failure["error"] == "ValueError"
        assert "boom" in failure["message"]
        assert guard.result.series["s"].x == [4.0]


def test_worker_crash_raises_without_keep_going():
    """keep_going=False restores the pre-self-healing abort-on-crash."""
    guard = _guard()
    spec = PointSpec(experiment="figX", key="k",
                     runner="tests.test_executor_parallel:_crash_runner",
                     params={})
    policy = ExecutionPolicy(point_retries=0, keep_going=False)
    with executor_context(2, policy):
        with pytest.raises(RuntimeError, match="worker process died"):
            guard.run_specs([spec])


# -- telemetry merge units --------------------------------------------------

def test_merge_delta_accumulates():
    from repro.obs.metrics import MetricsRegistry

    reg = MetricsRegistry()
    reg.counter("net.transfers").inc(2)
    delta = {"net.transfers": {"type": "counter", "value": 3.0},
             "load{node=0}": {"type": "gauge", "value": 0.5}}
    reg.merge_delta(delta)
    assert reg.counter("net.transfers").value == 5.0
    assert reg.gauge("load", node=0).value == 0.5

    src = MetricsRegistry()
    src.histogram("lat").observe(1.0)
    reg.merge_delta(src.delta({}))
    reg.merge_delta(src.delta({}))
    assert reg.histogram("lat").count == 2
    assert reg.histogram("lat").sum == 2.0


def test_absorb_point_offsets_trace_pids():
    from repro.obs.telemetry import Telemetry

    parent = Telemetry(trace=True, metrics=True)
    parent._n_clusters = 2  # noqa: SLF001 - as if two clusters ran
    payload = {"n_clusters": 1, "transfers": [],
               "events": [{"ph": "X", "pid": 17, "tid": 0,
                           "ts": 0, "name": "e"}]}
    parent.absorb_point(payload, {"sim.events":
                                  {"type": "counter", "value": 4.0}})
    event = parent.tracer._events[-1]  # noqa: SLF001
    assert event["pid"] == 2017       # shifted past the parent's blocks
    assert parent._n_clusters == 3    # noqa: SLF001
    assert parent.registry.counter("sim.events").value == 4.0


def test_build_env_snapshots_ambient_contexts():
    from repro.faults import FaultPlan, fault_context
    from repro.obs import telemetry_context

    assert build_env() == {}
    plan = FaultPlan(seed=5, faults=())
    with fault_context(plan):
        with telemetry_context(trace=False, metrics=True) as tele:
            tele.set_run("fig9")
            env = build_env()
    assert env["fault_plan"]["seed"] == 5
    assert env["telemetry"] == {"trace": False, "metrics": True,
                                "run": "fig9"}


# -- executor shape ---------------------------------------------------------

def test_jobs_zero_means_cpu_count():
    ex = SweepExecutor(jobs=0)
    assert ex.jobs == (os.cpu_count() or 1)
    ex.close()


def test_map_preserves_submission_order():
    specs = [PointSpec(experiment="figX", key=f"size={n}",
                       runner="tests.test_executor_parallel:_row_runner",
                       params={"size": n}) for n in range(8)]
    with SweepExecutor(jobs=2) as ex:
        entries = list(ex.map_points([(s, {}) for s in specs]))
    assert [e["key"] for e in entries] == [s.key for s in specs]
    assert [e["series"]["s"][0][0] for e in entries] == \
        [float(n) for n in range(8)]
