"""Tests for the power/energy accounting extension."""

import pytest

from repro.hardware import Cluster, CoreActivity, HENRI
from repro.hardware.energy import EnergyMeter, PowerModel
from repro.kernels import prime_kernel, run_kernel
from repro.mpi import CommWorld, PingPong


@pytest.fixture
def machine():
    return Cluster(HENRI, 1).machine(0)


def test_idle_machine_power_is_floor(machine):
    model = PowerModel()
    expected = (36 * model.core_idle_w
                + 2 * model.uncore_idle_w)
    assert model.machine_power(machine) == pytest.approx(expected)


def test_active_core_draws_more(machine):
    model = PowerModel()
    idle = model.core_power(machine, 0)
    machine.set_core_activity(0, CoreActivity.SCALAR)
    active = model.core_power(machine, 0)
    assert active > idle + 2


def test_avx_draws_more_than_scalar(machine):
    model = PowerModel()
    machine.set_core_activity(0, CoreActivity.SCALAR)
    machine.set_core_activity(1, CoreActivity.AVX512)
    scalar = model.core_power(machine, 0)
    avx_f = machine.freq.core_hz(1)
    scalar_f = machine.freq.core_hz(0)
    avx = model.core_power(machine, 1)
    # Per-cycle the AVX core draws more even at its lower license freq.
    assert avx / (avx_f ** model.freq_exponent) > \
        scalar / (scalar_f ** model.freq_exponent)


def test_power_scales_superlinearly_with_frequency(machine):
    model = PowerModel()
    machine.set_core_activity(0, CoreActivity.SCALAR)
    machine.freq.set_userspace(1.0e9)
    low = model.core_power(machine, 0)
    machine.freq.set_userspace(2.3e9)
    high = model.core_power(machine, 0)
    ratio = (high - model.core_idle_w) / (low - model.core_idle_w)
    assert ratio == pytest.approx(2.3 ** model.freq_exponent, rel=1e-6)


def test_energy_meter_integrates(machine):
    meter = EnergyMeter(machine, period=1e-3).start()
    machine.sim.run(until=0.1)
    report = meter.stop()
    model = PowerModel()
    expected = model.machine_power(machine) * 0.1
    assert report.energy_j == pytest.approx(expected, rel=0.05)
    assert report.average_power_w == pytest.approx(
        model.machine_power(machine), rel=0.05)
    assert report.samples >= 99


def test_meter_misuse_rejected(machine):
    meter = EnergyMeter(machine)
    with pytest.raises(RuntimeError):
        meter.stop()
    meter.start()
    with pytest.raises(RuntimeError):
        meter.start()


def test_compute_phase_burns_more_than_idle(machine):
    meter = EnergyMeter(machine, period=1e-3).start()
    runs = [run_kernel(machine, i, prime_kernel(n=400_000), sweeps=None)
            for i in range(18)]
    machine.sim.run(until=0.1)
    for r in runs:
        r.request_stop()
    machine.sim.run()
    busy = meter.stop()

    m2 = Cluster(HENRI, 1).machine(0)
    meter2 = EnergyMeter(m2, period=1e-3).start()
    m2.sim.run(until=0.1)
    idle = meter2.stop()
    assert busy.energy_j > 1.5 * idle.energy_j


def test_low_frequency_comm_phase_saves_energy():
    """Lim et al.'s trade-off: min frequency during a comm-only phase
    costs latency but saves CPU energy per unit time."""
    def phase(core_hz):
        cluster = Cluster(HENRI, 2)
        world = CommWorld(cluster, comm_placement="near")
        for m in cluster.machines:
            m.freq.set_userspace(core_hz)
        meter = EnergyMeter(cluster.machine(0), period=1e-4).start()
        res = PingPong(world).run(4, reps=200)
        report = meter.stop()
        return res.median_latency, report.average_power_w

    lat_hi, pow_hi = phase(2.3e9)
    lat_lo, pow_lo = phase(1.0e9)
    assert lat_lo > lat_hi          # §3.1's latency cost ...
    assert pow_lo < pow_hi          # ... buys lower power draw
