"""The §8 interference predictor vs the full simulation."""

import pytest

from repro.analysis.prediction import (
    core_demand_from_intensity, predict_interference,
)
from repro.core.placement import Placement
from repro.hardware import HENRI


def test_demand_from_intensity_regimes():
    # Memory-bound: full per-core demand.
    low = core_demand_from_intensity(HENRI, 1 / 12)
    assert low == HENRI.memory.per_core_bw
    # CPU-bound: demand shrinks with intensity.
    hi = core_demand_from_intensity(HENRI, 40.0)
    assert hi < 0.1 * low
    # AVX kernels consume bytes faster at the same intensity.
    assert core_demand_from_intensity(HENRI, 40.0, vector=True) > hi


def test_prediction_bounds():
    for n in (0, 5, 20, 35):
        p = predict_interference(HENRI, n)
        assert p.latency_ratio >= 1.0
        assert 0 < p.bandwidth_ratio <= 1.0
        assert p.compute_slowdown >= 1.0


def test_predicts_fig4a_shape():
    """Latency: flat for few cores, ~2x at full count (far thread)."""
    few = predict_interference(HENRI, 5)
    full = predict_interference(HENRI, 35)
    assert few.latency_ratio < 1.1
    assert full.latency_ratio == pytest.approx(2.0, rel=0.3)


def test_predicts_fig4b_shape():
    """Bandwidth: ~1/3 at full count."""
    full = predict_interference(HENRI, 35)
    assert full.bandwidth_ratio == pytest.approx(1 / 3, abs=0.1)
    none = predict_interference(HENRI, 0)
    assert none.bandwidth_ratio == pytest.approx(1.0, abs=0.01)


def test_predicts_fig7_ridge():
    """Degradation fades as intensity crosses the henri ridge (~6)."""
    low = predict_interference(HENRI, 35, intensity=1 / 12)
    mid = predict_interference(HENRI, 35, intensity=6.0)
    hi = predict_interference(HENRI, 35, intensity=40.0)
    assert low.bandwidth_ratio < 0.5
    assert hi.bandwidth_ratio > 0.9
    assert low.bandwidth_ratio < mid.bandwidth_ratio < hi.bandwidth_ratio
    assert hi.latency_ratio < 1.15 < low.latency_ratio


def test_near_thread_predicts_milder_latency():
    far = predict_interference(HENRI, 35,
                               placement=Placement("near", "far"))
    near = predict_interference(HENRI, 35,
                                placement=Placement("near", "near"))
    assert near.latency_ratio < far.latency_ratio
    assert near.latency_ratio < 1.6


def test_prediction_matches_simulation_fig4b():
    """End-to-end check: predictor vs simulator within ~15 %."""
    from repro.core import experiments as E
    sim = E.fig4b(core_counts=[0, 5, 20, 35], reps=3)
    base = sim["comm_together_bw"].median[0]
    for n in (5, 20, 35):
        simulated = sim["comm_together_bw"].at(n) / base
        predicted = predict_interference(HENRI, n).bandwidth_ratio
        assert predicted == pytest.approx(simulated, abs=0.15)


def test_prediction_matches_simulation_fig7_latency():
    from repro.core import experiments as E
    sim = E.fig7a(cursors=[1, 72, 480], reps=3, elems=800_000)
    alone = sim["comm_alone"].median[0]
    for cursor, intensity in ((1, 1 / 12), (480, 40.0)):
        simulated = sim["comm_together"].at(intensity) / alone
        predicted = predict_interference(
            HENRI, 35, intensity=intensity).latency_ratio
        assert predicted == pytest.approx(simulated, rel=0.25)
