"""Campaign journal + sweep guard: graceful degradation and resume.

Covers the acceptance scenario of the fault-injection redesign: a
fail-stop mid-campaign leaves only the affected sweep points failed
(with structured annotations), and resuming from the journal replays
the completed points bit-identically while re-running exactly the
failed ones.
"""

import json

import pytest

from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.experiments import fig1
from repro.core.results import ExperimentResult
from repro.faults import FaultPlan, TransportError, fault_context

SIZES = [4, 65536]
FAST = dict(sizes=SIZES, reps=4)


def _series_state(result):
    return {k: (s.x, s.median, s.p10, s.p90)
            for k, s in result.series.items()}


# -- SweepGuard unit behaviour --------------------------------------------

def test_guard_rolls_back_partial_appends():
    result = ExperimentResult(name="exp", title="t")
    s = result.new_series("a")
    guard = SweepGuard(result)

    def bad_point():
        s.add_value(1.0, 2.0)
        raise TransportError("node failed", src=1)

    assert guard.run_point("p1", bad_point) == "failed"
    assert len(s) == 0                       # partial append rolled back
    assert "p1" in result.failures
    assert result.failures["p1"]["error"] == "TransportError"
    assert result.failures["p1"]["reason"] == "node failed"
    assert not result.ok

    assert guard.run_point("p2", lambda: s.add_value(2.0, 3.0)) == "ok"
    assert s.x == [2.0]


def test_journal_records_and_resumes(tmp_path):
    path = tmp_path / "campaign.jsonl"
    result = ExperimentResult(name="exp", title="t")
    s = result.new_series("a")
    with CampaignJournal(path) as journal:
        guard = SweepGuard(result, journal)
        guard.run_point("x=1", lambda: s.add_value(1.0, 10.0))
        guard.run_point("x=2", lambda: (_ for _ in ()).throw(
            TransportError("node failed")))
    lines = [json.loads(l) for l in path.read_text().splitlines()]
    assert [l["status"] for l in lines] == ["ok", "failed"]

    # Resume: the ok point replays, the failed one re-runs.
    result2 = ExperimentResult(name="exp", title="t")
    s2 = result2.new_series("a")
    ran = []
    with CampaignJournal(path, resume=True) as journal:
        guard = SweepGuard(result2, journal)
        guard.run_point("x=1", lambda: ran.append("x=1"))
        guard.run_point("x=2", lambda: (ran.append("x=2"),
                                        s2.add_value(2.0, 20.0)))
    assert ran == ["x=2"]                    # only the failed point re-ran
    assert guard.replayed == ["x=1"]
    assert s2.x == [1.0, 2.0]
    assert s2.median == [10.0, 20.0]
    assert result2.ok


def test_journal_without_resume_starts_fresh(tmp_path):
    path = tmp_path / "campaign.jsonl"
    with CampaignJournal(path) as journal:
        journal.record("exp", "x=1", "ok", series={"a": [[1.0, 1, 1, 1]]})
    with CampaignJournal(path) as journal:     # resume=False truncates
        assert journal.lookup("exp", "x=1") is None
    assert path.read_text() == ""


# -- end-to-end: fig1 under fail-stop, then resume ------------------------

def test_fig1_fail_stop_degrades_then_resumes(tmp_path):
    path = tmp_path / "fig1.jsonl"
    # 4 B ping-pongs finish in ~100 us; a fail-stop at 60 us kills the
    # larger points of every corner but leaves the 4 B ones intact.
    plan = FaultPlan(seed=0).fail_stop(node=1, at=6e-5)
    with fault_context(plan):
        with CampaignJournal(path) as journal:
            faulted = fig1(journal=journal, **FAST)

    assert faulted.failures
    failed_keys = [k for k in faulted.failures if k != "__observations__"]
    assert failed_keys                        # some points died...
    for key in failed_keys:
        assert key.endswith("size=65536")     # ...only the long ones
        assert faulted.failures[key]["error"] == "TransportError"
    # Surviving points are present for every corner.
    for k, s in faulted.series.items():
        if k.startswith("latency_"):
            assert 4.0 in s.x
            assert 65536.0 not in s.x

    # Resume without the fault: completed points replay bit-identically,
    # failed points re-run and fill the figure.
    with CampaignJournal(path, resume=True) as journal:
        resumed = fig1(journal=journal, **FAST)
    assert resumed.ok
    healthy = fig1(**FAST)
    for key, s in healthy.series.items():
        assert resumed.series[key].x == s.x
    # Replayed values match the faulted run's surviving points exactly.
    for k, s in faulted.series.items():
        res = resumed.series[k]
        for x, med in zip(s.x, s.median):
            assert res.median[res.x.index(x)] == med


def test_fig1_zero_fault_unchanged_by_guard(tmp_path):
    """The guard/journal wrapping must not perturb healthy timings."""
    base = fig1(**FAST)
    with CampaignJournal(tmp_path / "j.jsonl") as journal:
        journaled = fig1(journal=journal, **FAST)
    assert _series_state(base) == _series_state(journaled)
    assert base.observations == journaled.observations


def test_same_fault_seed_bit_identical():
    plan = FaultPlan(seed=5).message_loss(loss_rate=0.25, start=0.0,
                                          duration=100.0)
    with fault_context(plan):
        a = fig1(**FAST)
    with fault_context(plan):
        b = fig1(**FAST)
    assert _series_state(a) == _series_state(b)
    assert a.failures == b.failures
