"""Unit tests for the discrete-event engine (repro.sim.engine/events)."""

import pytest

from repro.sim import AllOf, AnyOf, Event, Interrupt, Simulator, SimulationError


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_schedule_and_run_order():
    sim = Simulator()
    out = []
    sim.schedule(2.0, lambda: out.append("b"))
    sim.schedule(1.0, lambda: out.append("a"))
    sim.schedule(3.0, lambda: out.append("c"))
    sim.run()
    assert out == ["a", "b", "c"]
    assert sim.now == 3.0


def test_same_time_events_fifo():
    sim = Simulator()
    out = []
    for i in range(10):
        sim.schedule(1.0, out.append, i)
    sim.run()
    assert out == list(range(10))


def test_schedule_in_past_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)
    sim.schedule(5.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(2.0, lambda: None)


def test_cancel_handle():
    sim = Simulator()
    out = []
    handle = sim.schedule(1.0, out.append, "x")
    handle.cancel()
    sim.run()
    assert out == []


def test_run_until_horizon():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, 1)
    sim.schedule(10.0, out.append, 10)
    sim.run(until=5.0)
    assert out == [1]
    assert sim.now == 5.0
    sim.run()
    assert out == [1, 10]


def test_run_until_advances_time_when_queue_empty():
    sim = Simulator()
    sim.run(until=42.0)
    assert sim.now == 42.0


def test_peek_and_step():
    sim = Simulator()
    out = []
    sim.schedule(1.0, out.append, "a")
    sim.schedule(2.0, out.append, "b")
    assert sim.peek() == 1.0
    sim.step()
    assert out == ["a"]
    assert sim.peek() == 2.0
    sim.step()
    with pytest.raises(SimulationError):
        sim.step()


def test_peek_skips_cancelled():
    sim = Simulator()
    h = sim.schedule(1.0, lambda: None)
    sim.schedule(2.0, lambda: None)
    h.cancel()
    assert sim.peek() == 2.0


def test_process_timeout_and_return_value():
    sim = Simulator()

    def proc(sim):
        yield 1.5
        yield 0.5
        return "finished"

    p = sim.process(proc(sim))
    sim.run()
    assert sim.now == 2.0
    assert p.triggered and p.value == "finished"


def test_process_waits_on_event():
    sim = Simulator()
    gate = sim.event()
    out = []

    def waiter(sim):
        value = yield gate
        out.append((sim.now, value))

    sim.process(waiter(sim))
    sim.schedule(3.0, gate.succeed, "go")
    sim.run()
    assert out == [(3.0, "go")]


def test_process_waits_on_process():
    sim = Simulator()
    out = []

    def child(sim):
        yield 2.0
        return 7

    def parent(sim):
        value = yield sim.process(child(sim))
        out.append((sim.now, value))

    sim.process(parent(sim))
    sim.run()
    assert out == [(2.0, 7)]


def test_failed_event_raises_in_process():
    sim = Simulator()
    gate = sim.event()
    out = []

    def waiter(sim):
        try:
            yield gate
        except ValueError as err:
            out.append(str(err))

    sim.process(waiter(sim))
    sim.schedule(1.0, gate.fail, ValueError("boom"))
    sim.run()
    assert out == ["boom"]


def test_process_exception_propagates_to_waiter():
    sim = Simulator()

    def bad(sim):
        yield 1.0
        raise RuntimeError("inner")

    def outer(sim):
        with pytest.raises(RuntimeError, match="inner"):
            yield sim.process(bad(sim))
        return "handled"

    p = sim.process(outer(sim))
    sim.run()
    assert p.value == "handled"


def test_yield_invalid_value_fails_process():
    sim = Simulator()

    def proc(sim):
        yield "not an event"

    p = sim.process(proc(sim))
    sim.run()
    assert p.triggered and not p.ok


def test_interrupt():
    sim = Simulator()
    out = []

    def sleeper(sim):
        try:
            yield 100.0
        except Interrupt as intr:
            out.append((sim.now, intr.cause))

    p = sim.process(sleeper(sim))
    sim.schedule(5.0, p.interrupt, "wake")
    sim.run()
    assert out == [(5.0, "wake")]


def test_interrupt_after_completion_is_noop():
    sim = Simulator()

    def quick(sim):
        yield 1.0
        return "ok"

    p = sim.process(quick(sim))
    sim.run()
    p.interrupt("late")
    sim.run()
    assert p.value == "ok"


def test_event_double_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    ev.succeed(1)
    with pytest.raises(RuntimeError):
        ev.succeed(2)


def test_event_value_before_trigger_rejected():
    sim = Simulator()
    ev = sim.event()
    with pytest.raises(RuntimeError):
        _ = ev.value


def test_allof_collects_values_in_order():
    sim = Simulator()
    evts = [sim.timeout(3.0, "c"), sim.timeout(1.0, "a"), sim.timeout(2.0, "b")]
    combined = AllOf(sim, evts)
    sim.run()
    assert combined.value == ["c", "a", "b"]


def test_allof_empty_fires_immediately():
    sim = Simulator()
    combined = AllOf(sim, [])
    assert combined.triggered and combined.value == []


def test_anyof_first_wins():
    sim = Simulator()
    evts = [sim.timeout(3.0, "slow"), sim.timeout(1.0, "fast")]
    first = AnyOf(sim, evts)
    sim.run()
    assert first.value == (1, "fast")


def test_anyof_requires_events():
    sim = Simulator()
    with pytest.raises(ValueError):
        AnyOf(sim, [])


def test_nested_processes_deep_chain():
    sim = Simulator()

    def level(sim, depth):
        if depth == 0:
            yield 1.0
            return 0
        below = yield sim.process(level(sim, depth - 1))
        return below + 1

    p = sim.process(level(sim, 20))
    sim.run()
    assert p.value == 20
    assert sim.now == 1.0


def test_timeout_negative_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.timeout(-0.5)


def test_many_processes_determinism():
    def run_once():
        sim = Simulator()
        out = []

        def proc(sim, i):
            yield (i % 5) * 0.1
            out.append(i)
            yield 0.05
            out.append(-i)

        for i in range(50):
            sim.process(proc(sim, i))
        sim.run()
        return out

    assert run_once() == run_once()


def test_cancel_after_fire_is_noop():
    # Regression: cancelling a handle whose callback already ran used to
    # mark it cancelled anyway, misreporting state to later inspectors.
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "a")
    sim.run()
    assert fired == ["a"]
    assert handle.fired and not handle.cancelled
    handle.cancel()
    assert not handle.cancelled
    handle.cancel()  # still idempotent
    assert not handle.cancelled


def test_cancel_before_fire_still_cancels():
    sim = Simulator()
    fired = []
    handle = sim.schedule(1.0, fired.append, "a")
    handle.cancel()
    assert handle.cancelled and not handle.fired
    sim.run()
    assert fired == []
    assert not handle.fired


def test_daemon_events_do_not_sustain_run():
    # Regression: a periodic daemon process (e.g. an energy sampler)
    # used to make a horizon-less run() loop forever; now run() stops
    # once only daemon entries remain.
    sim = Simulator()
    ticks = []

    def sampler(sim):
        while True:
            ticks.append(sim.now)
            yield 1.0

    def work(sim):
        yield 3.5

    sim.process(sampler(sim), daemon=True)
    proc = sim.process(work(sim))
    sim.run()
    assert proc.triggered
    assert sim.now == 3.5
    assert ticks == [0.0, 1.0, 2.0, 3.0]


def test_daemon_events_fire_up_to_horizon():
    sim = Simulator()
    ticks = []

    def sampler(sim):
        while True:
            ticks.append(sim.now)
            yield 1.0

    sim.process(sampler(sim), daemon=True)
    sim.run(until=2.0)
    assert ticks == [0.0, 1.0, 2.0]
    assert sim.now == 2.0


def test_daemon_only_queue_leaves_clock_untouched():
    sim = Simulator()
    sim.schedule(5.0, lambda: None, daemon=True)
    sim.run()
    assert sim.now == 0.0
