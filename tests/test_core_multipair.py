"""Tests for the multi-pair ping-pong extension."""

import pytest

from repro.core.multipair import (
    multipair_experiment, run_multipair,
)
from repro.hardware import HENRI


def test_single_pair_matches_plain_pingpong():
    res = run_multipair(1, size=4, reps=10)
    assert 1e-6 < res.median_latency < 3e-6
    assert res.aggregate_bandwidth == res.per_pair_bandwidth


def test_validation():
    with pytest.raises(ValueError):
        run_multipair(0, size=4)
    with pytest.raises(ValueError):
        run_multipair(1000, size=4)


def test_wire_shared_for_large_messages():
    """Per-pair bandwidth ~1/k; aggregate stays near the wire limit."""
    size = 16 << 20
    one = run_multipair(1, size=size, reps=4)
    four = run_multipair(4, size=size, reps=4)
    assert four.per_pair_bandwidth < 0.45 * one.per_pair_bandwidth
    assert four.aggregate_bandwidth > 0.8 * one.aggregate_bandwidth


def test_small_message_latency_mildly_affected():
    one = run_multipair(1, size=4, reps=10)
    eight = run_multipair(8, size=4, reps=10)
    # Small messages don't saturate anything: each pair's latency stays
    # within a small factor of the single-pair case.
    assert eight.median_latency < 1.5 * one.median_latency


def test_experiment_series_and_observation():
    res = multipair_experiment(pair_counts=[1, 2, 4],
                               sizes=[4, 16 << 20], reps=4)
    big = 16 << 20
    agg = res[f"aggregate_bw_{big}"]
    assert len(agg) == 3
    # Aggregate bandwidth is conserved within 20 %.
    assert res.observations["aggregate_bw_retained"] > 0.8
    per_pair = res[f"per_pair_bw_{big}"]
    assert per_pair.median[0] > per_pair.median[-1]
