"""The closed-form sharing model must agree with the fluid simulator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.bwmodel import predict_fig4b, predict_stream_vs_dma
from repro.hardware import Cluster, HENRI
from repro.hardware.nic import dma_demand
from repro.sim import Flow


def simulate_single_controller(n_cores: int):
    """Directly build the fig-4b flow population on one controller."""
    cluster = Cluster(HENRI, 1)
    m = cluster.machine(0)
    m.set_uncore(HENRI.uncore.max_hz)   # match the closed form's capacity
    mc = m.numa_nodes[0].controller
    streams = [cluster.net.transfer(
        [mc], size=1e15, demand=HENRI.memory.per_core_bw,
        label=f"s{i}") for i in range(n_cores)]
    nic = Flow([mc], size=1e15, demand=dma_demand(m, 0),
               weight=HENRI.nic.dma_weight,
               usage={mc: HENRI.nic.dma_usage}, label="dma")
    cluster.net.start_flow(nic)
    per_core = streams[0].rate if streams else 0.0
    return per_core, nic.rate


@pytest.mark.parametrize("n", [0, 1, 2, 3, 5, 9, 18, 35])
def test_closed_form_matches_simulation(n):
    predicted = predict_stream_vs_dma(HENRI, n)
    sim_core, sim_nic = simulate_single_controller(n)
    if n:
        assert predicted.stream_per_core == pytest.approx(sim_core,
                                                          rel=0.02)
    assert predicted.nic_rate == pytest.approx(sim_nic, rel=0.02)


def test_regimes():
    # No contention at 1 core.
    p1 = predict_stream_vs_dma(HENRI, 1)
    assert not p1.controller_saturated
    assert p1.stream_per_core == HENRI.memory.per_core_bw
    # Saturated but NIC still demand-limited at 5 cores.
    p5 = predict_stream_vs_dma(HENRI, 5)
    assert p5.controller_saturated and p5.nic_demand_limited
    assert p5.stream_per_core < HENRI.memory.per_core_bw
    # Fully bottlenecked at 35 cores: NIC on its weighted share.
    p35 = predict_stream_vs_dma(HENRI, 35)
    assert not p35.nic_demand_limited
    assert p35.nic_rate == pytest.approx(
        HENRI.nic.dma_weight * p35.stream_per_core, rel=1e-6)


def test_predict_fig4b_shape():
    curve = predict_fig4b(HENRI, core_counts=[0, 3, 5, 12, 18])
    nic = [x[2] for x in curve]
    # Monotone non-increasing NIC bandwidth with more cores.
    assert all(a >= b * (1 - 1e-9) for a, b in zip(nic, nic[1:]))
    # Endpoints: near wire speed alone, well below half at 18 cores.
    assert nic[0] > 0.9 * HENRI.nic.wire_bw * 0.8
    assert nic[-1] < 0.6 * nic[0]


@settings(max_examples=40, deadline=None)
@given(n=st.integers(min_value=0, max_value=40))
def test_closed_form_conservation(n):
    p = predict_stream_vs_dma(HENRI, n)
    usage = (n * p.stream_per_core
             + HENRI.nic.dma_usage * p.nic_rate)
    assert usage <= HENRI.memory.controller_bw * (1 + 1e-9)
    if p.controller_saturated and n > 0:
        assert usage == pytest.approx(HENRI.memory.controller_bw,
                                      rel=1e-6)
