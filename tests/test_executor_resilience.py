"""Self-healing sweep execution: chaos crashes, timeouts, degradation.

The contract under test (docs/PARALLEL.md "Failure semantics"): a
worker crash or hung point never aborts the sweep — the affected points
are retried under the *same* derived seed (so a recovered sweep is
byte-identical to an undisturbed one), and a point that exhausts its
retries degrades to a structured journal failure entry instead of an
exception.  Chaos is injected with the ``REPRO_CHAOS`` knob
(:mod:`repro.faults.chaos`), which crosses the fork into pool workers
via the environment.
"""

import json
import os

import pytest

from repro.cli import main
from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.executor import (ExecutionPolicy, PointSpec, SweepExecutor,
                                 _retry_jitter, executor_context)
from repro.core.results import ExperimentResult
from repro.faults.chaos import maybe_chaos, parse_chaos
from repro.faults.reliability import ReliabilityConfig, backoff_delay

# Fast-retry policy so chaos tests don't sit in real backoff sleeps.
FAST = dict(backoff_base_s=0.02, backoff_cap_s=0.1)


def _row_runner(params):
    return {"s": [[float(params["n"]), float(params["n"]) * 2.0, 1.0, 1.0]]}


def _crash_runner(params):
    os._exit(3)


def _specs(n=6):
    return [PointSpec(experiment="figX", key=f"n={i}",
                      runner="tests.test_executor_resilience:_row_runner",
                      params={"n": i}) for i in range(n)]


def _guard():
    return SweepGuard(ExperimentResult(name="figX", title="t"))


def _series_bytes(result):
    return json.dumps(
        {k: [s.x, s.median, s.p10, s.p90]
         for k, s in sorted(result.series.items())})


# -- crash requeue ----------------------------------------------------------

def test_crash_once_sweep_completes_byte_identical(tmp_path, monkeypatch):
    """A worker killed mid-sweep is requeued; results match a clean run."""
    clean = _guard()
    with executor_context(2, ExecutionPolicy(**FAST)):
        assert set(clean.run_specs(_specs()).values()) == {"ok"}

    monkeypatch.setenv("REPRO_CHAOS", f"crash:n=3:once={tmp_path}")
    chaotic = _guard()
    with executor_context(2, ExecutionPolicy(**FAST)):
        statuses = chaotic.run_specs(_specs())
    assert set(statuses.values()) == {"ok"}
    assert _series_bytes(chaotic.result) == _series_bytes(clean.result)
    # The chaos marker proves the crash actually happened.
    assert len(list(tmp_path.iterdir())) == 1


def test_crash_exhaustion_journals_structured_failure(tmp_path):
    # A single always-crashing point: with the window == jobs, any good
    # sibling in flight during a crash would be charged as collateral,
    # so the deterministic exhaustion mechanics are asserted in
    # isolation (the crash-once test above covers goods-around-a-crash).
    path = tmp_path / "j.jsonl"
    spec = PointSpec(
        experiment="figX", key="n=1",
        runner="tests.test_executor_resilience:_crash_runner",
        params={"n": 1})
    with CampaignJournal(path) as journal:
        guard = SweepGuard(ExperimentResult(name="figX", title="t"),
                           journal=journal)
        with executor_context(2, ExecutionPolicy(point_retries=1, **FAST)):
            statuses = guard.run_specs([spec])
    assert statuses == {"n=1": "failed"}
    failure = guard.result.failures["n=1"]
    assert failure["harness"] is True
    assert failure["error"] == "WorkerCrash"
    assert failure["attempts"] == 2  # 1 try + 1 retry
    assert guard.result.meta["sweep"]["degraded"] == 1
    entries = [json.loads(line) for line in path.read_text().splitlines()]
    assert len(entries) == 1
    assert entries[0]["status"] == "failed"
    assert entries[0]["failure"]["harness"] is True


def test_crash_once_journals_goods_around_recovered_point(tmp_path,
                                                          monkeypatch):
    """A requeued crash leaves a journal with every point ``ok`` — the
    recovered entry is indistinguishable from a first-try success."""
    once = tmp_path / "markers"
    once.mkdir()
    monkeypatch.setenv("REPRO_CHAOS", f"crash:n=2:once={once}")
    path = tmp_path / "j.jsonl"
    with CampaignJournal(path) as journal:
        guard = SweepGuard(ExperimentResult(name="figX", title="t"),
                           journal=journal)
        with executor_context(2, ExecutionPolicy(**FAST)):
            statuses = guard.run_specs(_specs(4))
    assert set(statuses.values()) == {"ok"}
    entries = [json.loads(line) for line in path.read_text().splitlines()]
    assert [e["key"] for e in entries] == [f"n={i}" for i in range(4)]
    assert all(e["status"] == "ok" for e in entries)
    assert len(list(once.iterdir())) == 1  # the crash really fired


# -- point timeouts ---------------------------------------------------------

def test_timeout_kills_hung_point_and_retries(tmp_path, monkeypatch):
    from repro.obs.telemetry import telemetry_context

    clean = _guard()
    with executor_context(2, ExecutionPolicy(**FAST)):
        clean.run_specs(_specs(4))

    monkeypatch.setenv("REPRO_CHAOS", f"hang:n=2:for=30,once={tmp_path}")
    chaotic = _guard()
    policy = ExecutionPolicy(point_timeout=1.5, **FAST)
    with telemetry_context(trace=False, metrics=True) as tele:
        with executor_context(2, policy):
            statuses = chaotic.run_specs(_specs(4))
    assert set(statuses.values()) == {"ok"}
    assert _series_bytes(chaotic.result) == _series_bytes(clean.result)
    assert tele.registry.counter("executor.point_timeouts").value >= 1.0


def test_timeout_exhaustion_degrades(monkeypatch):
    monkeypatch.setenv("REPRO_CHAOS", "hang:n=0:for=30")
    guard = _guard()
    policy = ExecutionPolicy(point_timeout=0.5, point_retries=0, **FAST)
    with executor_context(2, policy):
        statuses = guard.run_specs(_specs(2))
    assert statuses["n=0"] == "failed"
    assert statuses["n=1"] == "ok"
    failure = guard.result.failures["n=0"]
    assert failure["harness"] is True
    assert failure["error"] == "PointTimeout"
    assert "deadline" in failure["message"]


# -- pool lifecycle ---------------------------------------------------------

def test_close_waits_on_clean_exit_only(monkeypatch):
    """Satellite fix: graceful close waits; the error path stays
    non-blocking (a broken pool must not hang teardown)."""
    calls = []

    def instrument(executor):
        pool = executor._ensure_pool()  # noqa: SLF001
        orig = pool.shutdown

        def spy(wait=True, cancel_futures=False):
            calls.append(wait)
            return orig(wait=wait, cancel_futures=cancel_futures)

        monkeypatch.setattr(pool, "shutdown", spy)

    ex = SweepExecutor(jobs=2)
    instrument(ex)
    ex.__exit__(None, None, None)
    ex2 = SweepExecutor(jobs=2)
    instrument(ex2)
    ex2.__exit__(RuntimeError, RuntimeError("boom"), None)
    assert calls == [True, False]


# -- backoff / jitter -------------------------------------------------------

def test_backoff_matches_transport_policy():
    """Executor retries back off with the transport's exact arithmetic."""
    rc = ReliabilityConfig(timeout_s=1e-4, backoff_factor=2.0,
                           max_backoff_s=1e-3)
    for n in range(1, 9):
        assert rc.retransmit_timeout(n, rendezvous=False) == \
            backoff_delay(1e-4, n, 2.0, 1e-3)
    assert backoff_delay(1.0, 3) == 4.0
    assert backoff_delay(1.0, 3, cap=2.5) == 2.5
    assert backoff_delay(1.0, 1, jitter=0.25) == 1.25


def test_retry_jitter_is_deterministic_and_bounded():
    spec = PointSpec(experiment="figX", key="n=1", runner="m:f", params={})
    j1 = _retry_jitter(spec, 1)
    assert j1 == _retry_jitter(spec, 1)
    assert 0.0 <= j1 < 0.25
    assert j1 != _retry_jitter(spec, 2)


# -- chaos knob -------------------------------------------------------------

def test_parse_chaos_specs():
    parsed = parse_chaos("crash:a;hang:b:for=5,code=2")
    assert parsed == [("crash", "a", {}),
                      ("hang", "b", {"for": 5.0, "code": 2})]
    assert parse_chaos("crash:x:once=/tmp/d") == \
        [("crash", "x", {"once": "/tmp/d"})]
    with pytest.raises(ValueError, match="unknown chaos kind"):
        parse_chaos("explode:x")
    with pytest.raises(ValueError, match="kind:match"):
        parse_chaos("crash")
    with pytest.raises(ValueError, match="unknown chaos option"):
        parse_chaos("crash:x:color=red")


def test_maybe_chaos_is_noop_without_env(monkeypatch):
    monkeypatch.delenv("REPRO_CHAOS", raising=False)
    maybe_chaos("figX", "any/key")  # must not raise or exit
    monkeypatch.setenv("REPRO_CHAOS", "crash:no-such-point")
    maybe_chaos("figX", "any/key")  # no match: still a no-op


# -- CLI degradation --------------------------------------------------------

def test_cli_degraded_campaign_exits_nonzero(tmp_path, monkeypatch, capsys):
    """An exhausted point yields exit code 3, a journaled harness entry
    and a report with the hole marked — not an aborted sweep."""
    monkeypatch.setenv("REPRO_CHAOS", "crash:size=67108864")
    journal = tmp_path / "j.jsonl"
    out = tmp_path / "r.md"
    rc = main(["run", "fig1a", "--fast", "--jobs", "2",
               "--point-retries", "0",
               "--journal", str(journal), "--out", str(out)])
    assert rc == 3
    assert b'"harness": true' in journal.read_bytes()
    text = out.read_text()
    assert "Missing points (harness failures" in text
    assert "[hole]" in text
    err = capsys.readouterr().err
    assert "campaign DEGRADED" in err
    assert "attempts" in err  # the per-point failure table header
