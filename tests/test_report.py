"""Tests for the text rendering / EXPERIMENTS.md generation."""

import pytest

from repro.core.report import (
    format_si, render_experiment, render_series, render_table,
    write_experiments_md,
)
from repro.core.results import ExperimentResult, Series


def test_format_si():
    assert format_si(0) == "0"
    assert format_si(1.5e9, "B/s") == "1.5GB/s"
    assert format_si(2.5e6) == "2.5M"
    assert format_si(3.2e3) == "3.2k"
    assert format_si(5.0) == "5"
    assert format_si(1.67e-6, "s") == "1.67us"
    assert format_si(2e-3, "s") == "2ms"
    assert format_si(3e-9, "s") == "3ns"


def test_render_table_alignment():
    text = render_table(["a", "long_header"], [["1", "2"], ["333", "4"]])
    lines = text.splitlines()
    assert len(lines) == 4
    assert lines[0].startswith("a")
    assert "long_header" in lines[0]
    # All rows equal width alignment.
    assert lines[1].count("-") >= len("long_header")


def test_render_table_empty():
    text = render_table(["x"], [])
    assert "x" in text


def test_render_series():
    s = Series(label="latency", xlabel="cores", ylabel="s")
    s.add(1, [1e-6, 2e-6])
    text = render_series(s, unit="s")
    assert "latency" in text
    assert "cores" in text
    assert "us" in text


def test_render_experiment_and_observations():
    res = ExperimentResult(name="figX", title="Test figure")
    res.new_series("a").add_value(0, 1.0)
    res.observe("metric", 2.5e-6)
    text = render_experiment(res)
    assert "figX" in text and "Test figure" in text
    assert "metric" in text
    assert "2.5u" in text


def test_write_experiments_md(tmp_path):
    path = tmp_path / "EXP.md"
    text = write_experiments_md({"fig1": "content1", "fig2": "content2"},
                                path=str(path), title="Record")
    assert path.exists()
    on_disk = path.read_text()
    assert on_disk == text
    assert "# Record" in text
    assert "## fig1" in text and "content2" in text


def test_write_experiments_md_no_file():
    text = write_experiments_md({"s": "x"}, path="")
    assert "## s" in text
