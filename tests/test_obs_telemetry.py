"""Cross-layer telemetry integration: determinism, zero-perturbation,
interference attribution, fault instants, campaign metrics."""

import dataclasses
import json

from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.results import ExperimentResult
from repro.faults import FaultPlan, fault_context
from repro.faults.plan import DegradedLink
from repro.hardware.topology import Cluster
from repro.obs import (active_telemetry, telemetry_context,
                       validate_chrome_trace)
from repro.runtime.apps.cg import run_cg

CG_KW = dict(n=40_000, iterations=2)


def _cg(n_workers=6):
    return run_cg("henri", n_workers=n_workers, **CG_KW)


def test_context_installs_and_clears():
    assert active_telemetry() is None
    with telemetry_context() as tele:
        assert active_telemetry() is tele
    assert active_telemetry() is None


def test_bind_cluster_names_lanes():
    with telemetry_context() as tele:
        Cluster("henri", n_nodes=2)
        events = tele.tracer.to_payload()["traceEvents"]
    names = {e["args"]["name"] for e in events
             if e["name"] == "process_name"}
    assert any("n0" in n for n in names)
    assert any("fabric" in n for n in names)
    threads = {e["args"]["name"] for e in events
               if e["name"] == "thread_name"}
    assert "nic" in threads and "wire0->1" in threads


def test_telemetry_does_not_perturb_results():
    """Enabled telemetry must observe, never perturb: same floats."""
    plain = _cg()
    with telemetry_context():
        observed = _cg()
    assert dataclasses.asdict(plain) == dataclasses.asdict(observed)


def test_identical_runs_export_identical_bytes(tmp_path):
    payloads = []
    for tag in ("a", "b"):
        with telemetry_context() as tele:
            tele.set_run("cg")
            _cg()
            trace = tmp_path / f"t{tag}.json"
            metrics = tmp_path / f"m{tag}.json"
            tele.export_trace(trace)
            tele.export_metrics(metrics)
            payloads.append((trace.read_bytes(), metrics.read_bytes()))
    assert payloads[0][0] == payloads[1][0]
    assert payloads[0][1] == payloads[1][1]


def test_trace_is_valid_and_cross_layer(tmp_path):
    with telemetry_context() as tele:
        tele.set_run("cg")
        _cg()
        path = tmp_path / "t.json"
        tele.export_trace(path)
    payload = json.loads(path.read_text())
    assert validate_chrome_trace(payload) == []
    cats = {e.get("cat") for e in payload["traceEvents"] if "cat" in e}
    # Spans from the runtime, the comm queue, and the protocol engine,
    # plus flow spans from the fluid network.
    assert {"task", "p2p", "transfer", "flow"} <= cats
    counters = {e["name"] for e in payload["traceEvents"]
                if e["ph"] == "C"}
    assert "mem_stall_frac" in counters
    assert any(n.startswith("wire") for n in counters)
    assert any(n.startswith("freq.c") for n in counters)


def test_metrics_collected_across_layers():
    with telemetry_context() as tele:
        _cg()
        snap = tele.registry.snapshot()
    assert snap["sim.events"]["value"] > 0
    assert snap["runtime.tasks"]["value"] > 0
    assert snap["fluid.flows_completed"]["value"] > 0
    assert any(k.startswith("net.transfers") for k in snap)


def test_transfer_records_carry_stall_overlap():
    with telemetry_context() as tele:
        _cg(n_workers=20)
        assert tele.transfers, "no transfer samples collected"
        active = [s for s in tele.transfers if s.busy > 0]
        assert active, "no transfer overlapped compute"
        assert any(s.mem_stall > 0 for s in active)
        assert all(0.0 <= s.stall_fraction <= 1.0 + 1e-9 for s in active)


def test_attribution_reproduces_fig10_trend():
    """More workers -> more stall cycles -> lower comm bandwidth."""
    # The tiny CG used elsewhere finishes transfers between tasks; use
    # the paper-size problem so halo exchanges overlap live compute.
    kw = dict(n=120_000, iterations=4)
    with telemetry_context() as tele:
        tele.set_run("few")
        few = run_cg("henri", n_workers=2, **kw)
        tele.set_run("mid")
        run_cg("henri", n_workers=12, **kw)
        tele.set_run("many")
        many = run_cg("henri", n_workers=30, **kw)
        assert many.stall_fraction > few.stall_fraction
        assert many.sending_bandwidth < few.sending_bandwidth
        report = tele.attribution()
    assert report["transfers"] > 0
    assert report["correlation"] is not None
    assert report["correlation"] < 0
    assert len(report["bins"]) == 5
    text = tele.render_attribution()
    assert "matches Fig 10" in text


def test_fault_instants_and_metrics():
    plan = FaultPlan(seed=1, faults=(
        DegradedLink(src=0, dst=1, bw_factor=0.5, start=0.0,
                     duration=0.005),))
    with telemetry_context() as tele:
        with fault_context(plan):
            _cg()
        events = tele.tracer.to_payload()["traceEvents"]
        snap = tele.registry.snapshot()
    faults = [e for e in events if e.get("cat") == "fault"]
    assert len(faults) == 2        # start + end instants
    applied = [k for k in snap if k.startswith("faults.applied")]
    assert applied


def test_sweep_guard_journals_metric_deltas(tmp_path):
    result = ExperimentResult(name="demo", title="demo")
    series = result.new_series("y")
    with telemetry_context() as tele:
        with CampaignJournal(tmp_path / "j.jsonl") as journal:
            guard = SweepGuard(result, journal)

            def body():
                tele.registry.counter("point.work").inc(4)
                series.x.append(1.0)
                series.median.append(2.0)
                series.p10.append(1.5)
                series.p90.append(2.5)

            assert guard.run_point("p0", body) == "ok"
    entry = json.loads((tmp_path / "j.jsonl").read_text().splitlines()[0])
    assert entry["metrics"]["point.work"]["value"] == 4


def test_discarded_simulation_teardown_is_silent():
    """GC of a dead cluster's suspended workers must not emit telemetry.

    Closing an abandoned worker/kernel generator runs its cleanup at a
    GC-dependent moment; if that cleanup touched the machine it would
    show up as nondeterministic events in whatever trace is active."""
    import gc

    from repro.hardware import HENRI
    from repro.kernels.blas import TileCost
    from repro.mpi import CommWorld
    from repro.runtime import RuntimeComm, RuntimeSystem, Task

    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, n_workers=4) for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()
    runtimes[0].submit(Task(name="t", cost=TileCost("cpu", 1e7, 0.0),
                            rank=0))
    runtimes[0].wait_all()
    cluster.sim.run()

    with telemetry_context() as tele:
        del cluster, world, runtimes, comm
        gc.collect()
        assert len(tele.tracer) == 0
        # Only the eagerly-created sim.events counter exists, at zero.
        snap = tele.registry.snapshot()
        assert [k for k, v in snap.items() if v["value"]] == []


def test_metrics_only_telemetry_skips_tracing():
    with telemetry_context(trace=False) as tele:
        assert tele.tracer is None
        _cg()
        assert tele.registry.counter("runtime.tasks").value > 0
        assert tele.transfers


# -- attribution degenerate inputs (regression: must never emit NaN) -------

def _sample(bandwidth=1e9, stall=0.5, busy=1.0, size=1024):
    from repro.obs.attribution import TransferSample
    return TransferSample(t=0.0, run="r", src=0, dst=1, size=size,
                          protocol="eager", duration=size / bandwidth,
                          bandwidth=bandwidth, mem_stall=stall, busy=busy)


def test_attribution_empty_input_is_structured():
    from repro.obs.attribution import attribution_report
    report = attribution_report([])
    assert report["correlation"] is None
    assert report["insufficient_data"] == "no_active_transfers"


def test_attribution_single_sample_is_structured():
    import json

    from repro.obs.attribution import attribution_report, render_attribution
    report = attribution_report([_sample()])
    assert report["correlation"] is None
    assert report["insufficient_data"] == "too_few_active_transfers"
    text = render_attribution(report)
    assert "insufficient data" in text
    assert "nan" not in text.lower()
    assert "nan" not in json.dumps(report).lower()


def test_attribution_zero_variance_is_structured():
    from repro.obs.attribution import attribution_report
    # Identical stall fractions and bandwidths: Pearson undefined.
    report = attribution_report([_sample(), _sample()])
    assert report["correlation"] is None
    assert report["insufficient_data"] == "zero_variance"


def test_attribution_nonfinite_samples_dropped():
    import json
    import math

    from repro.obs.attribution import attribution_report
    bad = _sample()
    bad.bandwidth = math.nan
    report = attribution_report(
        [bad, _sample(1e9, 0.2), _sample(2e9, 0.8), _sample(1.5e9, 0.5)])
    assert report["transfers"] == 3
    assert "nan" not in json.dumps(report).lower()
    assert report["correlation"] is not None


def test_attribution_healthy_report_keyset_unchanged():
    """insufficient_data must only appear on degenerate inputs — healthy
    metric exports keep their exact pre-existing keys (byte-identity)."""
    from repro.obs.attribution import attribution_report
    report = attribution_report(
        [_sample(1e9, 0.2), _sample(2e9, 0.8), _sample(1.5e9, 0.5)])
    assert report["correlation"] is not None
    assert "insufficient_data" not in report
