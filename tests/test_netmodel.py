"""Tests for the network model (LogP decomposition + protocol engine)."""

import math

import pytest

from repro.hardware import Cluster, HENRI, RegistrationCache, allocate
from repro.hardware.nic import dma_demand, dma_efficiency
from repro.mpi import CommWorld
from repro.netmodel import ProtocolEngine, sample_logp


@pytest.fixture
def world():
    return CommWorld(Cluster(HENRI, 2), comm_placement="near")


def run_transfer(world, size, src_numa=0, dst_numa=0):
    a, b = world.rank(0), world.rank(1)
    src = a.buffer(size, src_numa)
    dst = b.buffer(size, dst_numa)
    proc = world.sim.process(world.engine.half_transfer(
        a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst, size))
    world.sim.run()
    return proc.value


# -- LogP --------------------------------------------------------------

def test_logp_overheads_scale_with_frequency(world):
    m = world.rank(0).machine
    core = world.rank(0).comm_core
    m.freq.set_userspace(2.3e9)
    hi = sample_logp(m, core)
    m.freq.set_userspace(1.0e9)
    lo = sample_logp(m, core)
    assert lo.o_send == pytest.approx(hi.o_send * 2.3)
    assert lo.o_recv == pytest.approx(hi.o_recv * 2.3)
    # Wire latency is frequency independent.
    assert lo.L == hi.L


def test_logp_small_message_prediction_close_to_simulation(world):
    m = world.rank(0).machine
    predicted = sample_logp(m, world.rank(0).comm_core).small_message_latency
    record = run_transfer(world, 4)
    assert record.duration == pytest.approx(predicted, rel=0.15)


def test_logp_gap_includes_congestion(world):
    m = world.rank(0).machine
    core = world.rank(0).comm_core
    base = sample_logp(m, core).g
    for i in range(8):
        m.set_streaming(i, True)
    assert sample_logp(m, core).g > base


# -- protocol selection ---------------------------------------------------

def test_eager_below_threshold(world):
    rec = run_transfer(world, HENRI.nic.eager_threshold)
    assert rec.protocol == "eager"


def test_rendezvous_above_threshold(world):
    rec = run_transfer(world, HENRI.nic.eager_threshold + 1)
    assert rec.protocol == "rendezvous"


def test_zero_byte_message(world):
    rec = run_transfer(world, 0)
    assert rec.protocol == "eager"
    assert rec.duration > 0  # still pays overheads


def test_negative_size_rejected(world):
    a, b = world.rank(0), world.rank(1)
    proc = world.sim.process(world.engine.half_transfer(
        a.node_id, a.comm_core, a.buffer(4), b.node_id, b.comm_core,
        b.buffer(4), -1))
    world.sim.run()
    assert proc.triggered and not proc.ok


def test_latency_monotone_in_size(world):
    sizes = [4, 512, 8192, 262144, 8 << 20]
    durations = [run_transfer(world, s).duration for s in sizes]
    assert durations == sorted(durations)


def test_bandwidth_approaches_wire_speed(world):
    rec = run_transfer(world, 64 << 20)
    assert rec.bandwidth > 0.9 * HENRI.nic.wire_bw * 0.96


def test_rendezvous_jump_at_protocol_switch(world):
    """Classic NetPIPE shape: once the registration cache is warm
    (recycled buffers, §2.1), rendezvous beats the eager copy path."""
    below = run_transfer(world, HENRI.nic.eager_threshold)
    a, b = world.rank(0), world.rank(1)
    size = HENRI.nic.eager_threshold * 4
    src, dst = a.buffer(size), b.buffer(size)

    def twice():
        cold = yield world.sim.process(world.engine.half_transfer(
            a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst))
        warm = yield world.sim.process(world.engine.half_transfer(
            a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst))
        return cold, warm

    proc = world.sim.process(twice())
    world.sim.run()
    cold, warm = proc.value
    assert cold.components["registration"] > 0
    assert warm.components["registration"] == 0
    assert warm.bandwidth > below.bandwidth


# -- registration cache ----------------------------------------------------

def test_registration_cost_paid_once(world):
    a, b = world.rank(0), world.rank(1)
    src = a.buffer(1 << 20)
    dst = b.buffer(1 << 20)

    def go():
        first = yield world.sim.process(world.engine.half_transfer(
            a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst))
        second = yield world.sim.process(world.engine.half_transfer(
            a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst))
        return first, second

    proc = world.sim.process(go())
    world.sim.run()
    first, second = proc.value
    assert first.components["registration"] > 0
    assert second.components["registration"] == 0
    assert first.duration > second.duration


def test_registration_cache_lru():
    cache = RegistrationCache(capacity=2)
    cluster = Cluster(HENRI, 1)
    bufs = [allocate(cluster.machine(0), 0, 64) for _ in range(3)]
    assert not cache.lookup(bufs[0])
    assert not cache.lookup(bufs[1])
    assert cache.lookup(bufs[0])         # hit, refreshes LRU
    assert not cache.lookup(bufs[2])     # evicts bufs[1]
    assert not cache.lookup(bufs[1])     # miss again
    assert cache.hits == 1
    assert len(cache) == 2


def test_registration_cache_invalidate():
    cache = RegistrationCache()
    cluster = Cluster(HENRI, 1)
    buf = allocate(cluster.machine(0), 0, 64)
    cache.lookup(buf)
    cache.invalidate(buf)
    assert not cache.lookup(buf)


def test_registration_cache_validation():
    with pytest.raises(ValueError):
        RegistrationCache(capacity=0)


# -- DMA efficiency ----------------------------------------------------------

def test_dma_efficiency_degrades_under_memory_pressure():
    cluster = Cluster(HENRI, 1)
    m = cluster.machine(0)
    base = dma_efficiency(m, 0)
    mc = m.numa_nodes[0].controller
    cluster.net.transfer([mc], size=1e15, label="hog")
    loaded = dma_efficiency(m, 0)
    assert loaded < base
    assert loaded >= 0.05


def test_dma_demand_bounded_by_wire(world):
    m = world.rank(0).machine
    assert dma_demand(m, 0) <= HENRI.nic.wire_bw


def test_dma_uncore_sensitivity(world):
    m = world.rank(0).machine
    m.set_uncore(HENRI.uncore.max_hz)
    hi = dma_efficiency(m, 0)
    m.set_uncore(HENRI.uncore.min_hz)
    lo = dma_efficiency(m, 0)
    assert lo < hi
    # Anchor: ~4 % effect (10.5 vs 10.1 GB/s in the paper).
    assert hi / lo == pytest.approx(1.04, abs=0.03)


# -- interference couplings ---------------------------------------------------

def test_large_transfer_slowed_by_stream_contention(world):
    baseline = run_transfer(world, 64 << 20).duration
    # Saturate the NIC-side controller with synthetic core streams.
    world2 = CommWorld(Cluster(HENRI, 2), comm_placement="near")
    m = world2.rank(0).machine
    for i in range(20):
        world2.cluster.net.transfer(
            m.load_path(i, 0), size=1e12,
            demand=HENRI.memory.per_core_bw, label=f"stream{i}")
    contended = run_transfer(world2, 64 << 20).duration
    assert contended > 1.5 * baseline


def test_transfer_record_components_sum_close_to_duration(world):
    rec = run_transfer(world, 1 << 20)
    total = sum(rec.components.values())
    assert total == pytest.approx(rec.duration, rel=0.05)
