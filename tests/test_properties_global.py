"""Cross-cutting property-based tests on system-level invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cluster, CoreActivity, HENRI
from repro.kernels import run_kernel, triad_kernel, tunable_triad
from repro.mpi import CommWorld


def transfer_duration(world, size):
    a, b = world.rank(0), world.rank(1)
    src, dst = a.buffer(size), b.buffer(size)
    proc = world.sim.process(world.engine.half_transfer(
        a.node_id, a.comm_core, src, b.node_id, b.comm_core, dst, size))
    world.sim.run()
    return proc.value


@settings(max_examples=25, deadline=None)
@given(size=st.integers(min_value=0, max_value=64 << 20))
def test_transfer_invariants_any_size(size):
    world = CommWorld(Cluster(HENRI, 2), comm_placement="near")
    rec = transfer_duration(world, size)
    # Latency floor: never faster than wire + minimal software overhead.
    assert rec.duration >= HENRI.nic.wire_latency
    # Bandwidth ceiling: never beats the wire.
    assert rec.bandwidth <= HENRI.nic.wire_bw * 1.01
    # Components are non-negative and sum to ~duration.
    assert all(v >= 0 for v in rec.components.values())
    total = sum(rec.components.values())
    assert total == pytest.approx(rec.duration, rel=0.10)


@settings(max_examples=15, deadline=None)
@given(n_cores=st.integers(min_value=1, max_value=35),
       cursor=st.sampled_from([1, 8, 64, 512]))
def test_kernel_aggregate_bandwidth_bounded(n_cores, cursor):
    """No kernel population can exceed the controller's capacity."""
    cluster = Cluster(HENRI, 1)
    machine = cluster.machine(0)
    runs = [run_kernel(machine, i,
                       tunable_triad(cursor, elems=300_000),
                       data_numa=0, sweeps=1)
            for i in range(n_cores)]
    cluster.sim.run()
    total_bytes = sum(r.stats.bytes_moved for r in runs)
    makespan = max(r.stats.end for r in runs)
    assert total_bytes / makespan <= HENRI.memory.controller_bw * 1.02
    for r in runs:
        assert r.stats.memory_bandwidth <= \
            HENRI.memory.per_core_bw * 1.02
        assert 0 <= r.stats.stall_fraction <= 1


@settings(max_examples=20, deadline=None)
@given(actions=st.lists(
    st.tuples(st.integers(min_value=0, max_value=35),
              st.sampled_from(list(CoreActivity))),
    min_size=1, max_size=40))
def test_frequency_always_in_valid_range(actions):
    machine = Cluster(HENRI, 1).machine(0)
    lo = HENRI.freq.min_hz
    hi = max(HENRI.freq.turbo.max_frequency,
             HENRI.freq.avx512.max_frequency)
    for core, activity in actions:
        machine.set_core_activity(core, activity)
        for c in (0, core, 35):
            assert lo <= machine.freq.core_hz(c) <= hi
        for s in (0, 1):
            assert HENRI.uncore.min_hz <= machine.freq.uncore_hz(s) \
                <= HENRI.uncore.max_hz
            assert 0 < machine.freq.uncore_capacity_factor(s) <= 1


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**31))
def test_end_to_end_determinism_any_seed(seed):
    def run():
        cluster = Cluster(HENRI, 2, seed=seed)
        world = CommWorld(cluster, comm_placement="far")
        runs = [run_kernel(cluster.machine(0), i,
                           triad_kernel(elems=200_000), sweeps=1)
                for i in range(4)]
        rec = transfer_duration(world, 1 << 20)
        return (rec.duration,
                tuple(r.stats.duration for r in runs))

    assert run() == run()


def test_counters_never_negative_after_mixed_load():
    cluster = Cluster(HENRI, 1)
    machine = cluster.machine(0)
    from repro.kernels import avx_kernel, prime_kernel
    run_kernel(machine, 0, triad_kernel(elems=300_000), sweeps=1)
    run_kernel(machine, 1, prime_kernel(n=200_000), sweeps=1)
    run_kernel(machine, 2, avx_kernel(work_flops=1e9), sweeps=1)
    cluster.sim.run()
    for core in range(3):
        st_ = machine.counters.state(core)
        assert st_.busy >= st_.mem_stall >= st_.contention_stall >= 0
        assert st_.flops >= 0 and st_.bytes_moved >= 0
