"""Incremental measurer + `repro status`: live progress over journals.

Covers the dispatcher/measurer split: running aggregates fold in as
records land, the sidecar is atomically replaced, and ``repro status``
stays read-only — it must work on a journal another process holds an
exclusive ``flock`` on, including one with a half-written line.
"""

import fcntl
import json

from repro.core.measurer import (CampaignMeasurer, read_status,
                                 render_status, sidecar_path)


def _measurer(tmp_path, **kw):
    return CampaignMeasurer(tmp_path / "c.jsonl", **kw)


def test_measurer_counts_and_eta(tmp_path):
    m = _measurer(tmp_path)
    m.begin_sweep("fig1", total=4, trials=2, cached=1, jobs=2)
    m.on_point("fig1", "k1", 0, "replayed", None, None)
    m.on_point("fig1", "k1", 1, "ok", 2.0, None)
    m.on_point("fig1", "k2", 0, "failed", 4.0, None)
    assert m.pending("fig1") == 1
    # 1 pending x mean(2, 4) / 2 jobs
    assert m.eta_seconds("fig1") == 1.5
    doc = m.progress()
    assert doc["state"] == "running"
    exp = doc["experiments"]["fig1"]
    assert (exp["done"], exp["replayed"], exp["failed"]) == (1, 1, 1)
    m.on_point("fig1", "k2", 1, "ok", 2.0, None)
    assert m.progress()["state"] == "complete"


def test_measurer_folds_metric_deltas(tmp_path):
    m = _measurer(tmp_path)
    m.begin_sweep("fig1", total=2, trials=1, cached=0, jobs=1)
    delta = {"net.bytes": {"type": "counter", "value": 10.0}}
    m.on_point("fig1", "k1", 0, "ok", 0.1, delta)
    m.on_point("fig1", "k2", 0, "ok", 0.1, delta)
    assert m.registry.counter("net.bytes").value == 20.0


def test_sidecar_written_atomically(tmp_path):
    m = _measurer(tmp_path)
    m.begin_sweep("fig1", total=1, trials=1, cached=0, jobs=1)
    side = sidecar_path(tmp_path / "c.jsonl")
    assert side.exists()
    assert not side.with_name(side.name + ".tmp").exists()
    doc = json.loads(side.read_text())
    assert doc["experiments"]["fig1"]["pending"] == 1
    m.on_point("fig1", "k", 0, "ok", 1.0, None)
    assert json.loads(side.read_text())["state"] == "complete"


def test_measurer_without_sidecar_writes_nothing(tmp_path):
    m = _measurer(tmp_path, sidecar=False)
    m.begin_sweep("fig1", total=1, trials=1, cached=0, jobs=1)
    m.on_point("fig1", "k", 0, "ok", 1.0, None)
    assert list(tmp_path.iterdir()) == []


def test_read_status_on_live_flocked_journal(tmp_path):
    """Status is lock-free: an exclusively flocked journal mid-write
    (torn trailing line) must still be readable."""
    path = tmp_path / "c.jsonl"
    rows = [{"experiment": "fig1", "key": f"size={s}", "status": "ok",
             "series": {}} for s in (4, 64)]
    rows.append({"experiment": "fig1", "key": "size=4", "trial": 1,
                 "status": "failed", "failure": {"error": "E"}})
    with open(path, "w", encoding="utf-8") as fh:
        fcntl.flock(fh, fcntl.LOCK_EX)       # the campaign's lock
        for r in rows:
            fh.write(json.dumps(r) + "\n")
        fh.write('{"experiment": "fig1", "key": "size=64", "tr')
        fh.flush()
        status = read_status(path)           # while still locked
        assert status["records"] == 3
        exp = status["experiments"]["fig1"]
        assert (exp["ok"], exp["failed"]) == (2, 1)
        assert exp["trials"] == 2
        assert exp["points"] == 2


def test_read_status_merges_sidecar(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps(
        {"experiment": "fig1", "key": "k", "status": "ok",
         "series": {}}) + "\n", encoding="utf-8")
    sidecar_path(path).write_text(json.dumps({
        "journal": str(path), "state": "running",
        "experiments": {"fig1": {
            "total": 4, "trials": 2, "jobs": 2, "done": 1,
            "replayed": 1, "failed": 0, "pending": 2,
            "mean_point_s": 0.5, "eta_s": 0.5}}}), encoding="utf-8")
    status = read_status(path)
    assert status["state"] == "running"
    exp = status["experiments"]["fig1"]
    assert exp["cached"] == 1
    assert exp["pending"] == 2
    assert exp["eta_s"] == 0.5


def test_render_status_shape(tmp_path):
    path = tmp_path / "c.jsonl"
    path.write_text(json.dumps(
        {"experiment": "fig1", "key": "k", "status": "ok",
         "series": {}}) + "\n", encoding="utf-8")
    text = render_status(read_status(path))
    lines = text.splitlines()
    assert lines[0].startswith(f"campaign {path}: 1 record(s), "
                               f"1 experiment(s)")
    header = lines[1].split()
    assert header == ["experiment", "trials", "points", "done",
                      "cached", "failed", "pending", "eta"]
    assert lines[3].split()[0] == "fig1"


def test_campaign_run_attaches_measurer_end_to_end(tmp_path):
    from repro.cli import main
    j = tmp_path / "c.jsonl"
    assert main(["run", "fig1a", "--fast", "--trials", "2",
                 "--journal", str(j)]) == 0
    status = read_status(j)
    assert status["state"] == "complete"
    exp = status["experiments"]["fig1"]
    assert exp["trials"] == 2
    assert exp["failed"] == 0
    assert exp["pending"] == 0


def test_eta_excludes_cache_replays(tmp_path):
    """Warm resume: ~0s cache replays must not drag the mean point
    duration (and hence the ETA) toward zero."""
    m = _measurer(tmp_path)
    m.begin_sweep("fig1", total=4, trials=1, cached=2, jobs=1)
    m.on_point("fig1", "k1", 0, "replayed", 0.001, None)
    m.on_point("fig1", "k2", 0, "replayed", 0.002, None)
    # Only cache hits so far: no duration estimate, no ETA.
    assert m.eta_seconds("fig1") is None
    assert m.progress()["experiments"]["fig1"]["mean_point_s"] is None
    m.on_point("fig1", "k3", 0, "ok", 3.0, None)
    # 1 pending x mean(3.0) / 1 job — the replays' walls are excluded.
    assert m.eta_seconds("fig1") == 3.0
