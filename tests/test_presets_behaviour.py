"""Cross-cluster behaviour: billy / bora / pyxis differences from the paper.

§2.2–§5 mention several per-cluster deltas; these tests check the preset
calibrations reproduce their direction.
"""

import pytest

from repro.core import experiments as E
from repro.hardware import BILLY, BORA, Cluster, HENRI, PYXIS
from repro.kernels import cursor_for_intensity, tunable_triad
from repro.mpi import CommWorld, PingPong

pytestmark = pytest.mark.slow


@pytest.mark.parametrize("preset", ["henri", "bora", "billy", "pyxis"])
def test_pingpong_works_on_all_presets(preset):
    world = CommWorld(Cluster(preset, 2), comm_placement="near")
    res = PingPong(world).run(4, reps=10)
    assert 0.5e-6 < res.median_latency < 5e-6


@pytest.mark.parametrize("preset,lo,hi", [
    ("henri", 9e9, 11e9),    # EDR
    ("billy", 20e9, 24e9),   # HDR 200 Gb/s: about twice EDR
    ("pyxis", 9e9, 11e9),    # EDR
])
def test_asymptotic_bandwidth_matches_link_generation(preset, lo, hi):
    world = CommWorld(Cluster(preset, 2), comm_placement="near")
    res = PingPong(world).run(64 << 20, reps=3)
    assert lo < res.bandwidth < hi


def test_pyxis_arm_latency_higher_than_henri():
    """§5.2 hints the ARM software stack is slower (more cycles/op)."""
    lat = {}
    for preset in ("henri", "pyxis"):
        world = CommWorld(Cluster(preset, 2), comm_placement="near")
        lat[preset] = PingPong(world).run(4, reps=10).median_latency
    assert lat["pyxis"] > lat["henri"]


def test_bora_noise_wider_than_henri():
    """§3.2: 'on bora, the network bandwidth has a wide deviation'."""
    bands = {}
    for preset in ("henri", "bora"):
        world = CommWorld(Cluster(preset, 2), comm_placement="near")
        res = PingPong(world).run(64 << 20, reps=15)
        bands[preset] = (res.p90_latency - res.p10_latency) \
            / res.median_latency
    assert bands["bora"] > 2 * bands["henri"]


def test_runtime_overhead_ordering_across_clusters():
    """§5.2: +38 us (henri), +23 us (billy), +45 us (pyxis)."""
    overheads = {}
    for preset, expected in (("henri", 38e-6), ("billy", 23e-6),
                             ("pyxis", 45e-6)):
        res = E.runtime_overhead(spec=preset, reps=8)
        overheads[preset] = res.observations["overhead_s"]
        assert overheads[preset] == pytest.approx(expected, rel=0.25)
    assert overheads["billy"] < overheads["henri"] < overheads["pyxis"]


def test_billy_ridge_higher_than_henri():
    """§4.5: memory/compute boundary at ~6 flop/B on henri vs ~20 on
    billy (higher per-core compute-to-bandwidth ratio at the NUMA
    level)."""
    def bw_recovery_intensity(preset):
        res = E.fig7b(spec=preset,
                      cursors=[1, 24, 72, 144, 240, 480, 960],
                      reps=3, elems=2_000_000, sweeps=3)
        return res.observations["ridge_flop_per_byte"]

    henri_ridge = bw_recovery_intensity("henri")
    billy_ridge = bw_recovery_intensity("billy")
    assert henri_ridge is not None and billy_ridge is not None
    assert billy_ridge > henri_ridge


def test_per_core_peaks_differ():
    assert BILLY.memory.per_core_bw > HENRI.memory.per_core_bw
    assert PYXIS.memory.per_core_bw < BILLY.memory.per_core_bw
    # ThunderX2 has no turbo: frequency flat.
    assert PYXIS.freq.turbo.max_frequency == PYXIS.freq.turbo.min_frequency
