"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main, run_experiment


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1a", "fig4b", "fig10", "table1", "fig5"):
        assert name in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_fast_experiment(capsys, tmp_path):
    out_path = tmp_path / "record.md"
    assert main(["run", "fig8", "--fast", "--out", str(out_path)]) == 0
    captured = capsys.readouterr().out
    assert "fig8" in captured
    assert out_path.exists()
    assert "## fig8" in out_path.read_text()


def test_run_experiment_api():
    res = run_experiment("runtime_overhead", fast=True)
    assert res.observations["overhead_s"] > 0


def test_run_fig9_renders(capsys):
    assert main(["run", "fig9", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "backoff" in out


def test_list_long_shows_capabilities(capsys):
    assert main(["list", "--long"]) == 0
    out = capsys.readouterr().out
    assert "journal" in out and "bench" in out
    assert "Constant frequencies vs latency" in out


def test_run_with_trace_and_metrics(capsys, tmp_path):
    from repro.obs import validate_chrome_trace

    trace = tmp_path / "t.json"
    metrics = tmp_path / "m.json"
    assert main(["run", "fig9", "--fast", "--trace", str(trace),
                 "--metrics", str(metrics)]) == 0
    assert validate_chrome_trace(trace.read_text()) == []
    doc = json.loads(metrics.read_text())
    assert doc["metrics"]["sim.events"]["value"] > 0
    assert "attribution" in doc


def test_trace_summary_command(capsys, tmp_path):
    trace = tmp_path / "t.json"
    assert main(["run", "fig9", "--fast", "--trace", str(trace)]) == 0
    capsys.readouterr()
    assert main(["trace-summary", str(trace)]) == 0
    out = capsys.readouterr().out
    assert "counter tracks" in out

    bad = tmp_path / "bad.json"
    bad.write_text('{"traceEvents": [{"ph": "X"}]}')
    assert main(["trace-summary", str(bad)]) == 1


def test_bench_command(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main(["bench", "--experiments", "fig9", "--out",
                 str(out)]) == 0
    doc = json.loads(out.read_text())
    # No explicit --tag: derived from the output filename.
    assert doc["bench"] == "bench"
    assert doc["host_cpus"] >= 1
    assert doc["seconds"]["fig9"] > 0
    assert doc["total_seconds"] >= doc["seconds"]["fig9"]


def test_bench_tag_names_output(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    assert main(["bench", "--experiments", "fig9", "--tag", "smoke"]) == 0
    doc = json.loads((tmp_path / "BENCH_smoke.json").read_text())
    assert doc["bench"] == "smoke"


def test_bench_jobs_records_both_laps(capsys, tmp_path):
    out = tmp_path / "bench.json"
    assert main(["bench", "--experiments", "fig9", "--jobs", "2",
                 "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert doc["jobs"] == 2
    if (os.cpu_count() or 1) <= 1:
        # A 1-CPU host cannot measure parallel speedup: the lap is
        # skipped and marked, never silently recorded as a slowdown.
        assert doc["seconds_parallel"] == "skipped_1cpu"
    else:
        assert doc["seconds_parallel"]["fig9"] > 0
        # Solver microbenches run in the serial lap only (they never
        # touch the executor pool); figures appear in both laps.
        assert set(doc["seconds_parallel"]) <= set(doc["seconds"])
    assert {"fluid_churn", "fluid_churn_wide"} <= set(doc["seconds"])


def test_log_level_flag(capsys):
    assert main(["--log-level", "INFO", "list"]) == 0


def test_bench_requires_tag_or_out(capsys):
    assert main(["bench", "--experiments", "fig9"]) == 2
    assert "--tag" in capsys.readouterr().err


def test_bench_out_strips_bench_prefix(capsys, tmp_path):
    out = tmp_path / "BENCH_ci.json"
    assert main(["bench", "--experiments", "fig9", "--out",
                 str(out)]) == 0
    assert json.loads(out.read_text())["bench"] == "ci"


def test_unknown_experiment_message_names_valid(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])
    err = capsys.readouterr().err
    assert "unknown experiment 'fig99'" in err
    assert "valid experiments" in err and "fig4a" in err


def test_status_missing_journal_exits_2(capsys):
    assert main(["status", "/nonexistent/j.jsonl"]) == 2
    assert "no journal" in capsys.readouterr().err


def test_status_renders_counts(capsys, tmp_path):
    j = tmp_path / "c.jsonl"
    assert main(["run", "fig1a", "--fast", "--journal", str(j)]) == 0
    capsys.readouterr()
    assert main(["status", str(j)]) == 0
    out = capsys.readouterr().out
    assert out.startswith(f"campaign {j}:")
    assert "[complete]" in out
    assert "experiment" in out and "pending" in out


def test_report_missing_compare_exits_2(capsys, tmp_path):
    j = tmp_path / "c.jsonl"
    assert main(["run", "fig1a", "--fast", "--journal", str(j)]) == 0
    capsys.readouterr()
    assert main(["report", str(j), "--compare",
                 str(tmp_path / "nope.jsonl"),
                 "-o", str(tmp_path / "r.html")]) == 2
    assert "no journal" in capsys.readouterr().err


def test_trials_flag_validated(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig1a", "--fast", "--trials", "0"])
    assert "trials" in capsys.readouterr().err


def test_trials_note_for_non_sweep_experiment(capsys):
    assert main(["run", "fig2", "--fast", "--trials", "2"]) == 0
    assert "--trials only affects sweep experiments" \
        in capsys.readouterr().err
