"""Tests for the command-line interface."""

import pytest

from repro.cli import EXPERIMENTS, main, run_experiment


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in ("fig1a", "fig4b", "fig10", "table1", "fig5"):
        assert name in out


def test_unknown_experiment_rejected(capsys):
    with pytest.raises(SystemExit):
        main(["run", "fig99"])


def test_run_fast_experiment(capsys, tmp_path):
    out_path = tmp_path / "record.md"
    assert main(["run", "fig8", "--fast", "--out", str(out_path)]) == 0
    captured = capsys.readouterr().out
    assert "fig8" in captured
    assert out_path.exists()
    assert "## fig8" in out_path.read_text()


def test_run_experiment_api():
    res = run_experiment("runtime_overhead", fast=True)
    assert res.observations["overhead_s"] > 0


def test_run_fig9_renders(capsys):
    assert main(["run", "fig9", "--fast"]) == 0
    out = capsys.readouterr().out
    assert "backoff" in out


def test_all_registered_experiments_have_fast_params():
    from repro.cli import _FAST_KWARGS
    for name in EXPERIMENTS:
        assert name in _FAST_KWARGS or name in ("fig1a", "fig1b")
