"""Tests for the distributed CG and GEMM applications (§6)."""

import pytest

from repro.runtime import PollingSpec
from repro.runtime.apps import run_cg, run_gemm

# Small problem sizes keep these tests quick; shape assertions only.
CG_KW = dict(n=40_000, iterations=2)
GEMM_KW = dict(n=2048, tile=128)


def test_cg_runs_and_reports():
    res = run_cg(n_workers=4, **CG_KW)
    assert res.n_workers == 4
    assert res.duration > 0
    assert res.sending_bandwidth > 0
    assert 0 <= res.stall_fraction <= 1
    assert res.messages >= 2 * res.iterations
    assert res.bytes_sent > 0
    assert "CG" in res.summary()


def test_cg_validation():
    with pytest.raises(ValueError):
        run_cg(n=40_001)


def test_gemm_runs_and_reports():
    res = run_gemm(n_workers=4, **GEMM_KW)
    assert res.duration > 0
    assert res.sending_bandwidth > 0
    assert res.messages == 2 * (res.n // 2 // res.tile)
    assert "GEMM" in res.summary()


def test_gemm_validation():
    with pytest.raises(ValueError):
        run_gemm(n=1000, tile=128)   # not a multiple
    with pytest.raises(ValueError):
        run_gemm(n=2049, tile=128)   # odd


def test_cg_more_memory_bound_than_gemm():
    """§6's headline: CG stalls and degrades far more than GEMM."""
    cg = run_cg(n_workers=20, **CG_KW)
    gemm = run_gemm(n_workers=20, **GEMM_KW)
    assert cg.stall_fraction > gemm.stall_fraction


def test_cg_stalls_grow_with_workers():
    few = run_cg(n_workers=2, **CG_KW)
    many = run_cg(n_workers=30, **CG_KW)
    assert many.stall_fraction > 2 * few.stall_fraction


def test_cg_sending_bandwidth_degrades_with_workers():
    few = run_cg(n_workers=1, **CG_KW)
    many = run_cg(n_workers=30, **CG_KW)
    assert many.sending_bandwidth < 0.6 * few.sending_bandwidth


def test_gemm_speeds_up_with_workers():
    serial = run_gemm(n_workers=1, **GEMM_KW)
    parallel = run_gemm(n_workers=16, **GEMM_KW)
    assert parallel.duration < serial.duration / 4


def test_apps_deterministic():
    a = run_cg(n_workers=4, seed=3, **CG_KW)
    b = run_cg(n_workers=4, seed=3, **CG_KW)
    assert a.duration == b.duration
    assert a.sending_bandwidth == b.sending_bandwidth


def test_apps_accept_polling_spec():
    res = run_cg(n_workers=2, polling=PollingSpec(backoff_max_nops=2),
                 **CG_KW)
    assert res.duration > 0
