"""Tests for the analysis helpers (stats, fitting, feature detection)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    SummaryStats, bootstrap_ci, crossover_index, decile_band, detect_ridge,
    fit_latency_frequency, median, relative_change, summarize,
)


# -- stats ----------------------------------------------------------------

def test_summarize_basic():
    s = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert s.median == 3.0
    assert s.p10 <= s.median <= s.p90
    assert s.n == 5
    assert s.band_width == s.p90 - s.p10


def test_summarize_empty_rejected():
    with pytest.raises(ValueError):
        summarize([])


def test_median_and_band():
    samples = list(range(100))
    assert median(samples) == pytest.approx(49.5)
    lo, hi = decile_band(samples)
    assert lo == pytest.approx(9.9)
    assert hi == pytest.approx(89.1)


def test_bootstrap_ci_contains_median():
    rng = np.random.default_rng(0)
    samples = rng.normal(10.0, 1.0, size=200)
    lo, hi = bootstrap_ci(samples, confidence=0.95)
    assert lo <= np.median(samples) <= hi
    assert hi - lo < 1.0  # tight with 200 samples


def test_bootstrap_validation():
    with pytest.raises(ValueError):
        bootstrap_ci([])
    with pytest.raises(ValueError):
        bootstrap_ci([1.0], confidence=1.5)


@settings(max_examples=50, deadline=None)
@given(st.lists(st.floats(min_value=-1e6, max_value=1e6),
                min_size=1, max_size=50))
def test_summarize_ordering_invariant(samples):
    s = summarize(samples)
    assert s.p10 <= s.median <= s.p90
    assert min(samples) <= s.median <= max(samples)


# -- fitting ----------------------------------------------------------------

def test_fit_latency_frequency_recovers_parameters():
    """Recover the paper's LogP decomposition: lat = L + O/f."""
    L_true, O_true = 0.8e-6, 2400.0
    freqs = np.array([1.0e9, 1.5e9, 2.0e9, 2.3e9])
    lats = L_true + O_true / freqs
    L, O = fit_latency_frequency(freqs, lats)
    assert L == pytest.approx(L_true, rel=1e-6)
    assert O == pytest.approx(O_true, rel=1e-6)


def test_fit_validation():
    with pytest.raises(ValueError):
        fit_latency_frequency([1e9], [1e-6])
    with pytest.raises(ValueError):
        fit_latency_frequency([1e9, 2e9], [1e-6])


def test_relative_change():
    assert relative_change(10.0, 15.0) == pytest.approx(0.5)
    assert relative_change(10.0, 5.0) == pytest.approx(-0.5)
    assert relative_change(0.0, 5.0) == 0.0


def test_crossover_above_and_below():
    xs = [1, 2, 3, 4, 5]
    rising = [1.0, 1.0, 1.05, 1.3, 2.0]
    assert crossover_index(xs, rising, 1.0, 0.1, "above") == 4
    falling = [1.0, 0.99, 0.95, 0.7, 0.4]
    assert crossover_index(xs, falling, 1.0, 0.1, "below") == 4
    assert crossover_index(xs, [1.0] * 5, 1.0, 0.1, "above") is None
    with pytest.raises(ValueError):
        crossover_index(xs, rising, 1.0, 0.1, "sideways")
    with pytest.raises(ValueError):
        crossover_index([1], [1.0, 2.0], 1.0)


def test_detect_ridge():
    intensities = [0.1, 0.5, 1, 2, 4, 6, 8, 16]
    # Bandwidth recovering to a plateau of 10 around intensity 6.
    values = [4, 4, 4, 5, 7, 9.2, 9.9, 10]
    assert detect_ridge(intensities, values) == pytest.approx(6)
    assert detect_ridge(intensities, [0] * 8) is None
    with pytest.raises(ValueError):
        detect_ridge([1], [1])
