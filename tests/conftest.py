"""Shared pytest configuration for the test suite.

Hypothesis runs derandomized so that the suite is reproducible: property
tests explore the same example corpus on every run (failures are then
always reproducible, never one-off flakes).
"""

from hypothesis import HealthCheck, settings

settings.register_profile(
    "repro",
    derandomize=True,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")
