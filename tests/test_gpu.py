"""Tests for the GPU substrate and its interference experiments (§8)."""

import pytest

from repro.core.gpu_experiments import gpu_vs_network, gpu_vs_stream
from repro.hardware import Cluster, HENRI
from repro.hardware.gpu import (
    GPU, GPUSpec, MI50, V100, attach_gpu, run_gpu_kernel,
)
from repro.kernels.blas import TileCost, gemm_tile_cost


@pytest.fixture
def machine():
    return Cluster(HENRI, 1).machine(0)


def test_attach_and_paths(machine):
    gpu = attach_gpu(machine, V100)
    assert machine.gpus == [gpu]
    path = gpu.host_path(0)
    assert path[0] is machine.numa_nodes[0].controller
    assert path[-1] is gpu.pcie
    # Remote host memory crosses the inter-socket link.
    far = gpu.host_path(3)
    assert machine.socket_link(1, 0) in far or \
        machine.socket_link(0, 1) in far


def test_attach_validation(machine):
    with pytest.raises(ValueError):
        attach_gpu(machine, GPUSpec(name="bad", attached_numa=9))


def test_memcpy_reaches_pcie_speed(machine):
    gpu = attach_gpu(machine, V100)
    proc = machine.sim.process(gpu.memcpy_process(64 << 20))
    machine.sim.run()
    assert proc.value == pytest.approx(V100.pcie_bw, rel=0.05)


def test_memcpy_validation(machine):
    gpu = attach_gpu(machine, V100)
    with pytest.raises(ValueError):
        gpu.memcpy(0)
    with pytest.raises(ValueError):
        gpu.memcpy(10, direction="sideways")


def test_memcpy_contends_with_stream(machine):
    """H2D copies lose bandwidth under STREAM — the §8 question."""
    from repro.kernels import run_kernel, triad_kernel
    gpu = attach_gpu(machine, V100)
    runs = [run_kernel(machine, i, triad_kernel(), data_numa=0,
                       sweeps=None) for i in range(12)]
    proc = machine.sim.process(gpu.memcpy_process(64 << 20))
    while not proc.triggered:
        machine.sim.step()
    for r in runs:
        r.request_stop()
    assert proc.value < 0.6 * V100.pcie_bw


def test_two_gpus_share_host_memory(machine):
    gpu1 = attach_gpu(machine, V100)
    gpu2 = attach_gpu(machine, MI50)
    f1 = gpu1.memcpy(1 << 30)
    f2 = gpu2.memcpy(1 << 30)
    # Each has its own PCIe link; host mc (52 GB/s) fits both at 13.
    assert f1.rate == pytest.approx(V100.pcie_bw, rel=0.05)
    assert f2.rate == pytest.approx(MI50.pcie_bw, rel=0.05)


def test_gpu_kernel_roofline(machine):
    gpu = attach_gpu(machine, V100)
    # Compute-bound GEMM tile: duration ~ flops / device rate.
    cost = gemm_tile_cost(512)
    proc = run_gpu_kernel(gpu, cost)
    machine.sim.run()
    stats = proc.value
    expected = cost.flops / V100.fp64_flops + V100.kernel_launch_s
    assert stats.duration == pytest.approx(expected, rel=0.1)
    # Memory-bound kernel: duration ~ bytes / HBM bandwidth.
    mem = TileCost("axpy", flops=1.0, bytes=8e9)
    proc = run_gpu_kernel(gpu, mem)
    machine.sim.run()
    assert proc.value.duration == pytest.approx(
        8e9 / V100.hbm_bw + V100.kernel_launch_s, rel=0.1)


def test_gpu_kernel_validation(machine):
    gpu = attach_gpu(machine, V100)
    with pytest.raises(ValueError):
        run_gpu_kernel(gpu, gemm_tile_cost(64), sweeps=0)


# -- experiments ----------------------------------------------------------

def test_gpu_vs_network_experiment():
    res = gpu_vs_network(reps=6, chunk=8 << 20)
    # GPU traffic costs the network bandwidth (shared controller), but
    # small-message latency survives (DMA traffic is not PIO-colocated).
    assert res.observations["bandwidth_ratio"] < 0.97
    assert res.observations["latency_ratio"] < 1.3
    assert res.observations["memcpy_bw_during_bandwidth"] > 0


def test_gpu_vs_stream_experiment():
    res = gpu_vs_stream(core_counts=[0, 4, 12], copies_per_point=4)
    series = res["memcpy_bw"]
    assert series.median[0] == pytest.approx(V100.pcie_bw, rel=0.1)
    assert res.observations["memcpy_bw_min_ratio"] < 0.75
