"""Tests for the work-stealing scheduler alternative."""

import pytest

from repro.hardware import Cluster, HENRI, allocate
from repro.kernels.blas import TileCost
from repro.mpi import CommWorld
from repro.runtime import (
    AccessMode, DataHandle, PollingSpec, RuntimeSystem, Task,
)
from repro.runtime.stealing import WorkStealingScheduler


def make_sched(machine=None):
    return WorkStealingScheduler(machine=machine)


def make_task(name="t", machine=None, numa=None):
    accesses = []
    if machine is not None and numa is not None:
        h = DataHandle(buffer=allocate(machine, numa, 64))
        accesses = [(h, AccessMode.R)]
    return Task(name=name, cost=TileCost("cpu", 1e6, 0.0),
                accesses=accesses)


def test_own_deque_lifo():
    sched = make_sched()
    sched.register_worker(0)
    t1, t2 = make_task("t1"), make_task("t2")
    sched.push(t1)
    sched.push(t2)
    # Both land in the only deque; own pop is LIFO.
    assert sched.pop(core_id=0) in (t1, t2)
    assert len(sched) == 1


def test_steal_from_other_worker():
    machine = Cluster(HENRI, 1).machine(0)
    sched = make_sched(machine)
    sched.register_worker(0)    # socket 0
    sched.register_worker(20)   # socket 1
    # Locality routes a socket-0 task to worker 0's deque.
    task = make_task(machine=machine, numa=0)
    sched.push(task)
    # Worker 20 has nothing: it steals.
    assert sched.pop(core_id=20) is task
    assert sched.steals == 1


def test_locality_routing():
    machine = Cluster(HENRI, 1).machine(0)
    sched = make_sched(machine)
    sched.register_worker(0)    # socket 0
    sched.register_worker(20)   # socket 1
    near = make_task(machine=machine, numa=0)
    far = make_task(machine=machine, numa=3)
    sched.push(near)
    sched.push(far)
    # Each worker finds its local task in its own deque (no steals).
    assert sched.pop(core_id=0) is near
    assert sched.pop(core_id=20) is far
    assert sched.steals == 0


def test_prestart_submissions_drain():
    sched = make_sched()
    task = make_task()
    sched.push(task)            # no workers registered yet
    sched.register_worker(5)
    assert sched.pop(core_id=5) is task


def test_empty_pop_returns_none():
    sched = make_sched()
    sched.register_worker(0)
    assert sched.pop(core_id=0) is None


def test_lower_message_lock_delay_than_eager():
    from repro.runtime.scheduler import EagerScheduler
    polling = PollingSpec(backoff_max_nops=32)
    eager = EagerScheduler(polling)
    steal = WorkStealingScheduler(polling)
    eager.set_idle_pollers(34)
    steal.set_idle_pollers(34)
    assert steal.message_lock_delay() < 0.3 * eager.message_lock_delay()
    with pytest.raises(ValueError):
        steal.set_idle_pollers(-1)


def test_runtime_executes_with_stealing_scheduler():
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    machine = cluster.machine(0)
    rt = RuntimeSystem(world, 0, n_workers=8,
                       scheduler=WorkStealingScheduler(machine=machine))
    rt.start()
    tasks = [make_task(f"t{i}", machine=machine, numa=i % 4)
             for i in range(24)]
    for t in tasks:
        rt.submit(t)
    rt.wait_all()
    cluster.sim.run()
    assert all(t.done for t in tasks)
    assert sum(w.tasks_executed for w in rt.workers) == 24


def test_stealing_balances_load():
    """All submissions target one NUMA node; stealing spreads the work."""
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    machine = cluster.machine(0)
    rt = RuntimeSystem(world, 0, n_workers=8,
                       scheduler=WorkStealingScheduler(machine=machine))
    rt.start()
    for i in range(32):
        rt.submit(make_task(f"t{i}", machine=machine, numa=0))
    rt.wait_all()
    cluster.sim.run()
    executed = [w.tasks_executed for w in rt.workers]
    assert sum(executed) == 32
    # More than one worker participated (stealing happened).
    assert sum(1 for e in executed if e > 0) >= 4
