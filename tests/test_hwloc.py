"""Tests for the lstopo-style topology rendering."""

from repro.cli import main
from repro.hardware import Cluster, HENRI
from repro.hardware.hwloc import render_placement, render_topology


def test_render_topology_structure():
    m = Cluster(HENRI, 1).machine(0)
    text = render_topology(m)
    assert "henri" in text
    assert text.count("Socket P#") == 2
    assert text.count("NUMANode P#") == 4
    assert "+ NIC" in text
    assert "Link socket0 <-> socket1" in text
    # All 36 core ids appear.
    for cid in (0, 8, 17, 35):
        assert f"{cid}" in text


def test_render_topology_billy():
    m = Cluster("billy", 1).machine(0)
    text = render_topology(m)
    assert text.count("NUMANode P#") == 8


def test_render_placement_marks():
    m = Cluster(HENRI, 1).machine(0)
    text = render_placement(m, comm_core=35, compute_cores=[0, 1, 2],
                            data_numa=0)
    lines = text.splitlines()
    assert lines[0].startswith("NUMA0")
    assert "[NIC]" in lines[0] and "[data]" in lines[0]
    assert lines[0].count("*") == 3
    assert "........C" in lines[3]
    # Exactly one comm marker over the core map (ignore the [NIC] tag).
    marks = "".join(line.split(": ")[1].split(" [")[0] for line in lines)
    assert marks.count("C") == 1
    assert marks.count("*") == 3


def test_cli_topology_command(capsys):
    assert main(["topology", "--spec", "pyxis"]) == 0
    out = capsys.readouterr().out
    assert "pyxis" in out
    assert "NIC" in out
