"""Tests for the kernel layer: roofline executor, STREAM, prime, AVX, BLAS."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import Cluster, CoreActivity, HENRI
from repro.kernels import (
    Kernel, arithmetic_intensity, avx_kernel, axpy_cost, copy_kernel,
    cursor_for_intensity, dot_cost, gemm_tile_cost, gemv_tile_cost,
    intensity_of_cursor, prime_kernel, run_kernel, triad_kernel,
    tunable_triad,
)


@pytest.fixture
def machine():
    return Cluster(HENRI, 1).machine(0)


# -- Kernel dataclass ----------------------------------------------------

def test_kernel_validation():
    with pytest.raises(ValueError):
        Kernel(name="empty", elems=10)          # does nothing
    with pytest.raises(ValueError):
        Kernel(name="neg", elems=0, flops_per_elem=1)
    with pytest.raises(ValueError):
        Kernel(name="neg", elems=10, bytes_per_elem=-1)


def test_arithmetic_intensity():
    assert arithmetic_intensity(2, 24) == pytest.approx(1 / 12)
    assert math.isinf(arithmetic_intensity(10, 0))
    assert triad_kernel().intensity == pytest.approx(2 / 24)
    assert not prime_kernel().streaming
    assert triad_kernel().streaming


# -- STREAM kernels ----------------------------------------------------------

def test_stream_kernel_shapes():
    copy = copy_kernel(elems=1000)
    assert copy.bytes_per_elem == 16
    assert copy.flops_per_elem == 0
    triad = triad_kernel(elems=1000)
    assert triad.bytes_per_elem == 24
    assert triad.flops_per_elem == 2


def test_tunable_triad_cursor():
    assert tunable_triad(1).flops_per_elem == 2
    assert tunable_triad(72).flops_per_elem == 144
    assert intensity_of_cursor(72) == pytest.approx(6.0)
    assert cursor_for_intensity(6.0) == 72
    with pytest.raises(ValueError):
        tunable_triad(0)
    with pytest.raises(ValueError):
        cursor_for_intensity(0)


@settings(max_examples=30, deadline=None)
@given(cursor=st.integers(min_value=1, max_value=2000))
def test_cursor_intensity_roundtrip(cursor):
    intensity = intensity_of_cursor(cursor)
    assert cursor_for_intensity(intensity) == cursor


# -- executor behaviour ----------------------------------------------------

def test_single_core_stream_hits_per_core_limit(machine):
    run = run_kernel(machine, 0, triad_kernel(elems=2_000_000), sweeps=2)
    machine.sim.run()
    assert run.stats.memory_bandwidth == pytest.approx(
        HENRI.memory.per_core_bw, rel=0.05)
    assert run.stats.sweeps_done == 2
    assert run.stats.elems_done == 4_000_000


def test_stream_contention_reduces_per_core_bandwidth(machine):
    runs = [run_kernel(machine, i, triad_kernel(elems=2_000_000),
                       data_numa=0, sweeps=1) for i in range(9)]
    machine.sim.run()
    per_core = [r.stats.memory_bandwidth for r in runs]
    total = sum(per_core)
    assert total == pytest.approx(HENRI.memory.controller_bw, rel=0.1)
    assert max(per_core) < HENRI.memory.per_core_bw


def test_memory_bound_kernel_stalls(machine):
    run = run_kernel(machine, 0, triad_kernel(elems=1_000_000), sweeps=1)
    machine.sim.run()
    assert run.stats.stall_fraction > 0.8  # TRIAD is ~96 % stalled


def test_cpu_bound_kernel_does_not_stall(machine):
    run = run_kernel(machine, 0, prime_kernel(n=500_000), sweeps=1)
    machine.sim.run()
    assert run.stats.stall_fraction == 0.0
    assert run.stats.bytes_moved == 0.0


def test_prime_kernel_duration_scales_with_frequency(machine):
    machine.freq.set_userspace(2.3e9)
    r1 = run_kernel(machine, 0, prime_kernel(n=500_000), sweeps=1)
    machine.sim.run()
    d_fast = r1.stats.duration

    m2 = Cluster(HENRI, 1).machine(0)
    m2.freq.set_userspace(1.0e9)
    r2 = run_kernel(m2, 0, prime_kernel(n=500_000), sweeps=1)
    m2.sim.run()
    assert r2.stats.duration == pytest.approx(d_fast * 2.3, rel=0.1)


def test_avx_kernel_triggers_license(machine):
    run = run_kernel(machine, 0, avx_kernel(), sweeps=1)
    machine.sim.run(until=1e-4)
    assert machine.freq.activity(0) is CoreActivity.AVX512
    machine.sim.run()
    assert run.stats.flops == pytest.approx(1.3e10)


def test_avx_weak_scaling_duration(machine):
    """Fig 3: 4 cores ~135 ms, more cores slower (license frequency)."""
    runs = [run_kernel(machine, i, avx_kernel(), sweeps=1)
            for i in range(4)]
    machine.sim.run()
    d4 = max(r.stats.duration for r in runs)
    assert d4 == pytest.approx(0.135, rel=0.1)

    m2 = Cluster(HENRI, 1).machine(0)
    runs20 = [run_kernel(m2, i, avx_kernel(), sweeps=1) for i in range(20)]
    m2.sim.run()
    d20 = max(r.stats.duration for r in runs20)
    assert d20 > d4  # lower AVX license frequency with more active cores


def test_kernel_stop_request(machine):
    run = run_kernel(machine, 0, triad_kernel(elems=10_000_000), sweeps=None)
    machine.sim.run(until=0.005)
    run.request_stop()
    machine.sim.run()
    assert run.process.triggered
    assert run.stats.elems_done > 0
    # Core released.
    assert machine.freq.activity(0) is CoreActivity.IDLE


def test_kernel_releases_streaming_weight(machine):
    run = run_kernel(machine, 0, triad_kernel(elems=500_000), sweeps=1)
    machine.sim.run(until=1e-4)
    assert machine.streaming_cores_on_socket(0) > 0.5
    machine.sim.run()
    assert machine.streaming_cores_on_socket(0) == 0.0


def test_streaming_weight_scales_with_intensity(machine):
    """High-cursor (CPU-bound) kernels barely register as streaming."""
    run = run_kernel(machine, 0, tunable_triad(480, elems=500_000),
                     sweeps=1)
    machine.sim.run(until=1e-4)
    assert machine.streaming_cores_on_socket(0) < 0.3
    machine.sim.run()


def test_counters_accumulate(machine):
    before = machine.counters.snapshot()
    run_kernel(machine, 2, triad_kernel(elems=500_000), sweeps=1)
    machine.sim.run()
    delta = machine.counters.delta(before, cores=[2])
    assert delta.bytes_moved == pytest.approx(500_000 * 24)
    assert delta.flops == pytest.approx(500_000 * 2)
    assert delta.busy > 0
    assert delta.mem_stall <= delta.busy


def test_invalid_numa_rejected(machine):
    with pytest.raises(ValueError):
        run_kernel(machine, 0, triad_kernel(), data_numa=99)


# -- BLAS tile costs ----------------------------------------------------------

def test_gemm_tile_cost_scaling():
    small = gemm_tile_cost(128)
    big = gemm_tile_cost(256)
    assert big.flops == pytest.approx(small.flops * 8)
    assert big.intensity > small.intensity  # bigger tiles reuse more
    assert big.vector


def test_gemv_cost_low_intensity():
    cost = gemv_tile_cost(1000, 1000)
    assert cost.intensity == pytest.approx(0.25, rel=0.05)


def test_axpy_dot_costs():
    assert axpy_cost(100).intensity == pytest.approx(2 / 24)
    assert dot_cost(100).intensity == pytest.approx(2 / 16)
    with pytest.raises(ValueError):
        axpy_cost(0)
    with pytest.raises(ValueError):
        gemm_tile_cost(0)
    with pytest.raises(ValueError):
        gemv_tile_cost(0, 5)


def test_tile_cost_scaled():
    base = gemm_tile_cost(64)
    double = base.scaled(2)
    assert double.flops == pytest.approx(base.flops * 2)
    assert double.bytes == pytest.approx(base.bytes * 2)
    assert double.vector == base.vector


# -- property: roofline duration is max(compute, memory) ---------------------

@settings(max_examples=20, deadline=None)
@given(cursor=st.sampled_from([1, 4, 16, 64, 256, 1024]))
def test_roofline_duration_model(cursor):
    machine = Cluster(HENRI, 1).machine(0)
    elems = 200_000
    kernel = tunable_triad(cursor, elems=elems, chunk_elems=elems)
    machine.spec = machine.spec.with_overrides(noise=0.0)
    run = run_kernel(machine, 0, kernel, sweeps=1, noise=0.0)
    machine.sim.run()
    hz = HENRI.freq.turbo.frequency(1)
    cpu = elems * kernel.flops_per_elem / (HENRI.flops_per_cycle * hz)
    mem = elems * 24 / HENRI.memory.per_core_bw
    expected = max(cpu, mem)
    assert run.stats.duration == pytest.approx(expected, rel=0.02)
