"""Multi-application co-scheduling: placement validation, interference,
per-app attribution, and link-targeted fault injection on real fabrics."""

import contextlib

import pytest

from repro.core.apps import AppSpec, run_apps
from repro.core.xapp import fig_xapp, xapp_placements
from repro.faults import FaultPlan, fault_context, parse_fault
from repro.faults.plan import DegradedLink
from repro.hardware.fabric import Dragonfly, FatTree, make_topology
from repro.hardware.topology import Cluster
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import PingPong
from repro.obs import telemetry_context


def _dragonfly(n_nodes=8, group_size=4):
    return Cluster("henri", n_nodes=n_nodes,
                   topology=make_topology("dragonfly",
                                          group_size=group_size))


# -- AppSpec validation ---------------------------------------------------

def test_appspec_validation():
    with pytest.raises(ValueError, match="non-empty name"):
        AppSpec(name="", nodes=(0, 1))
    with pytest.raises(ValueError, match="unknown app pattern"):
        AppSpec(name="a", pattern="storm", nodes=(0, 1))
    with pytest.raises(ValueError, match="at least 2 nodes"):
        AppSpec(name="a", nodes=(0,))
    with pytest.raises(ValueError, match="even rank count"):
        AppSpec(name="a", pattern="pingpong", nodes=(0, 1, 2))
    AppSpec(name="a", pattern="ring", nodes=(0, 1, 2))   # odd ring is fine
    with pytest.raises(ValueError, match="unknown app field"):
        AppSpec.from_dict({"name": "a", "nodes": [0, 1], "sizes": 4})


def test_run_apps_rejects_overlap_and_duplicates():
    cluster = _dragonfly()
    a = AppSpec(name="a", nodes=(0, 4), reps=1)
    with pytest.raises(ValueError, match="both place a rank on node 4"):
        run_apps(cluster, [a, AppSpec(name="b", nodes=(4, 5), reps=1)])
    with pytest.raises(ValueError, match="duplicate application names"):
        run_apps(cluster, [a, AppSpec(name="a", nodes=(1, 5), reps=1)])
    with pytest.raises(ValueError, match="outside this 8-node"):
        run_apps(cluster, [AppSpec(name="c", nodes=(0, 9), reps=1)])


# -- co-scheduled interference --------------------------------------------

def test_coscheduled_aggressors_degrade_victim():
    """Aggressor pairs crossing the victim's global link cut its
    bandwidth; the same pairs on a full mesh do not."""
    def victim_bw(topology, aggressors):
        cluster = Cluster("henri", n_nodes=8, topology=topology)
        specs = [AppSpec(name="victim", nodes=(0, 4), size=1 << 20,
                         reps=4)]
        specs += [AppSpec(name=f"agg{j}", nodes=pair, size=1 << 22,
                          reps=4) for j, pair in enumerate(aggressors)]
        return run_apps(cluster, specs)["victim"].bandwidth

    alone = victim_bw(make_topology("dragonfly", group_size=4), [])
    contended = victim_bw(make_topology("dragonfly", group_size=4),
                          [(1, 5), (2, 6)])
    assert contended < 0.75 * alone
    # Full mesh: private wires, no shared fabric edge -> no interference.
    mesh_alone = victim_bw(make_topology("fullmesh"), [])
    mesh_cont = victim_bw(make_topology("fullmesh"), [(2, 3), (5, 6)])
    assert mesh_cont == pytest.approx(mesh_alone, rel=1e-6)


def test_zero_fault_multi_node_runs_are_identical():
    """Co-scheduling on a real fabric stays deterministic: two fresh
    clusters produce bit-equal per-message latencies."""
    def once():
        cluster = _dragonfly()
        specs = [AppSpec(name="v", nodes=(0, 4), size=1 << 19, reps=3),
                 AppSpec(name="n", pattern="ring", nodes=(1, 5, 2),
                         size=1 << 18, reps=3)]
        results = run_apps(cluster, specs)
        return {k: r.latencies.tolist() for k, r in results.items()}

    assert once() == once()


def test_per_app_attribution_in_telemetry():
    with telemetry_context() as tele:
        cluster = _dragonfly()
        run_apps(cluster, [
            AppSpec(name="victim", nodes=(0, 4), size=1 << 19, reps=2),
            AppSpec(name="noise", nodes=(1, 5), size=1 << 19, reps=2)])
        snap = tele.registry.snapshot()
    assert {s.run for s in tele.transfers} == {"victim", "noise"}
    assert any("app=victim" in k for k in snap)
    assert any("app=noise" in k for k in snap)


# -- placement synthesis --------------------------------------------------

def test_xapp_placements_collide_by_construction():
    topo = Dragonfly(group_size=4).build(8, 12.5e9)
    victim, pairs = xapp_placements(topo, 8, 2)
    glob = topo.find_link("df.g0->g1")
    assert glob in topo.route(*victim)
    for pair in pairs:
        assert glob in topo.route(*pair)
    with pytest.raises(ValueError, match="at most group_size-1"):
        xapp_placements(topo, 8, 4)

    ft = FatTree(hosts_per_leaf=4, spines=2).build(8, 12.5e9)
    fv, fpairs = xapp_placements(ft, 8, 1)
    spine = ft.spine_of(*fv)
    assert all(ft.spine_of(*p) == spine for p in fpairs)


def test_fig_xapp_fast_interference_curve():
    result = fig_xapp(n_nodes=8, streams=[0, 2],
                      topology_params=dict(group_size=4),
                      size=1 << 19, aggressor_size=1 << 21, reps=2)
    bw = result["victim_bw"]
    assert bw.at(2) < bw.at(0)
    assert 0 < result.observations["victim_bw_retained"] < 1
    assert "app_bw[victim]" in result.series
    assert "app_bw[agg2]" in result.series


# -- link-targeted fault injection ----------------------------------------

def test_parse_link_fault_by_label():
    fault = parse_fault("link:link=df.g0->g1,bw_factor=0.5,duration=1")
    assert isinstance(fault, DegradedLink)
    assert fault.link == "df.g0->g1"
    # Pair addressing and serialization still work as before.
    plan = FaultPlan(seed=3).add(fault)
    assert FaultPlan.from_dict(plan.to_dict()).faults == plan.faults
    pair_plan = FaultPlan(seed=0).degrade_link(0, 1, bw_factor=0.5)
    assert "link" not in pair_plan.to_dict()["faults"][0]
    with pytest.raises(ValueError):
        DegradedLink(bw_factor=0.5)     # neither pair nor label


def _pingpong_on_dragonfly(nodes, plan=None, size=1 << 20, reps=4):
    ctx = fault_context(plan) if plan is not None \
        else contextlib.nullcontext()
    with ctx:
        cluster = _dragonfly()
        world = CommWorld(cluster, comm_placement="near", nodes=nodes)
        return PingPong(world).run(size, reps=reps)


def test_link_fault_slows_only_crossing_routes():
    """Degrading one dragonfly global link hurts routes crossing it and
    leaves intra-group traffic byte-identical."""
    plan = FaultPlan(seed=0).degrade_link(
        link="df.g0->g1", bw_factor=0.1, start=0.0, duration=10.0)
    crossing_base = _pingpong_on_dragonfly((0, 4))
    crossing_hit = _pingpong_on_dragonfly((0, 4), plan)
    assert crossing_hit.median_latency > 1.5 * crossing_base.median_latency

    local_base = _pingpong_on_dragonfly((1, 2))
    local_hit = _pingpong_on_dragonfly((1, 2), plan)
    assert local_hit.latencies.tolist() == local_base.latencies.tolist()


def test_link_fault_latency_factor_applies_per_route():
    plan = FaultPlan(seed=0).degrade_link(
        link="df.g0->g1", latency_factor=50.0, start=0.0, duration=10.0)
    small = 1 << 10                       # latency-bound message size
    base = _pingpong_on_dragonfly((0, 4), size=small)
    hit = _pingpong_on_dragonfly((0, 4), plan, size=small)
    assert hit.median_latency > base.median_latency
    # The window closes: after `duration` the factor is lifted.
    fault = plan.faults[0]
    assert fault.duration == 10.0


def test_unknown_link_label_fault_raises():
    plan = FaultPlan(seed=0).degrade_link(
        link="df.g7->g9", bw_factor=0.5, start=0.0, duration=1.0)
    with pytest.raises(ValueError, match="unknown fabric link"):
        _pingpong_on_dragonfly((0, 4), plan)
