"""Tests for worker pause/resume and the §8 worker-count autotuner."""

import pytest

from repro.hardware import Cluster, HENRI, allocate
from repro.kernels.blas import TileCost, gemv_tile_cost
from repro.mpi import CommWorld
from repro.runtime import AccessMode, DataHandle, RuntimeSystem, Task
from repro.runtime.autotune import (
    AutotuneConfig, WorkerAutotuner,
)


def make_runtime(n_workers=8):
    cluster = Cluster(HENRI, 2)
    world = CommWorld(cluster, comm_placement="far")
    rt = RuntimeSystem(world, 0, n_workers=n_workers).start()
    return cluster, rt


def cpu_task(name="t"):
    return Task(name=name, cost=TileCost("cpu", 1e7, 0.0), rank=0)


def memory_task(machine, numa=0):
    h = DataHandle(buffer=allocate(machine, numa, 1 << 20))
    return Task(name="mem", cost=gemv_tile_cost(1000, 8000),
                accesses=[(h, AccessMode.R)], rank=0)


# -- pause / resume ---------------------------------------------------------

def test_set_active_workers_bounds():
    cluster, rt = make_runtime(8)
    assert rt.active_workers == 8
    rt.set_active_workers(3)
    assert rt.active_workers == 3
    rt.set_active_workers(8)
    assert rt.active_workers == 8
    with pytest.raises(ValueError):
        rt.set_active_workers(9)
    with pytest.raises(ValueError):
        rt.set_active_workers(-1)


def test_paused_workers_take_no_tasks():
    cluster, rt = make_runtime(8)
    rt.set_active_workers(2)
    for i in range(12):
        rt.submit(cpu_task(f"t{i}"))
    rt.wait_all()
    cluster.sim.run()
    executors = [w for w in rt.workers if w.tasks_executed > 0]
    assert len(executors) <= 2
    assert sum(w.tasks_executed for w in rt.workers) == 12


def test_resume_restores_parallelism():
    cluster, rt = make_runtime(8)
    rt.set_active_workers(1)
    rt.submit(cpu_task())
    rt.wait_all()
    cluster.sim.run()
    rt.set_active_workers(8)
    for i in range(8):
        rt.submit(cpu_task(f"p{i}"))
    rt.wait_all()
    t0 = cluster.sim.now
    cluster.sim.run()
    elapsed = cluster.sim.now - t0
    # 8 tasks across 8 workers: roughly one task's duration.
    single = rt.workers[0].busy_time / rt.workers[0].tasks_executed
    assert elapsed < 2.5 * single


def test_paused_workers_do_not_count_as_pollers():
    cluster, rt = make_runtime(8)
    cluster.sim.run(until=0.001)  # everyone idle-polling
    assert rt.scheduler.idle_pollers == 8
    rt.set_active_workers(2)
    cluster.sim.run(until=0.002)
    assert rt.scheduler.idle_pollers <= 2


# -- autotuner ----------------------------------------------------------

def test_autotune_config_validation():
    with pytest.raises(ValueError):
        AutotuneConfig(window=0)
    with pytest.raises(ValueError):
        AutotuneConfig(step=0)


def test_autotuner_double_start_rejected():
    cluster, rt = make_runtime(4)
    tuner = WorkerAutotuner(rt).start()
    with pytest.raises(RuntimeError):
        tuner.start()
    tuner.stop()


def test_autotuner_reduces_workers_for_memory_bound_load():
    """§8: with a saturated memory bus, fewer workers are optimal."""
    cluster, rt = make_runtime(30)
    machine = rt.machine

    # Keep a continuous stream of memory-bound tasks flowing.
    def feeder():
        while cluster.sim.now < 1.2:
            while len(rt.scheduler) < 60:
                rt.submit(memory_task(machine,
                                      numa=rt.scheduler.stats.pushed % 4))
            yield 5e-3

    cluster.sim.process(feeder())
    tuner = WorkerAutotuner(rt, config=AutotuneConfig(window=30e-3)).start()
    cluster.sim.run(until=1.2)
    tuner.stop()
    rt.shutdown()
    cluster.sim.run()
    assert len(tuner.history) > 10
    # The memory system saturates at ~16 streaming workers (4 per
    # controller); the tuner must shed the purely-stalling surplus.
    assert tuner.chosen_workers < 28
    assert tuner.chosen_workers >= 14   # ...but not below the knee


def test_autotuner_keeps_workers_for_cpu_bound_load():
    """Compute-bound load: no contention, nothing gets paused."""
    cluster, rt = make_runtime(8)

    def feeder():
        while cluster.sim.now < 0.4:
            while len(rt.scheduler) < 30:
                rt.submit(cpu_task(f"t{rt.scheduler.stats.pushed}"))
            yield 5e-3

    cluster.sim.process(feeder())
    tuner = WorkerAutotuner(rt, config=AutotuneConfig(window=20e-3)).start()
    cluster.sim.run(until=0.4)
    tuner.stop()
    rt.shutdown()
    cluster.sim.run()
    assert tuner.chosen_workers == 8


def test_autotuner_history_records_samples():
    cluster, rt = make_runtime(4)
    for i in range(50):
        rt.submit(cpu_task(f"t{i}"))
    tuner = WorkerAutotuner(rt, config=AutotuneConfig(window=2e-3)).start()
    rt.wait_all()
    cluster.sim.run(until=0.05)
    tuner.stop()
    rt.shutdown()
    cluster.sim.run()
    assert tuner.history
    sample = tuner.history[0]
    assert sample.stall_fraction >= 0
    assert sample.action in ("pause", "resume", "hold", "idle")
    assert 1 <= sample.active_workers <= 4


def test_cg_autotune_improves_comm_without_slowdown():
    """The §8 payoff on CG: same duration, better sending bandwidth."""
    from repro.runtime.apps import run_cg
    fixed = run_cg(n_workers=34, n=60_000, iterations=3)
    tuned = run_cg(n_workers=34, n=60_000, iterations=3, autotune=True)
    assert tuned.duration < fixed.duration * 1.15
    assert tuned.sending_bandwidth >= fixed.sending_bandwidth * 0.95
    assert tuned.stall_fraction <= fixed.stall_fraction
