"""Every example must at least parse and import-check cleanly.

The examples run minutes of simulation, so executing them belongs to a
manual/benchmark pass; here we guarantee they cannot bit-rot silently:
they compile, carry a docstring and a main() entry point, and only
import names that exist.
"""

import ast
import importlib
import pathlib

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parents[1] / "examples").glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_compiles(path):
    source = path.read_text()
    tree = ast.parse(source, filename=str(path))
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    names = {node.name for node in ast.walk(tree)
             if isinstance(node, ast.FunctionDef)}
    assert "main" in names, f"{path.name} lacks a main()"
    compile(source, str(path), "exec")


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Each `from repro... import X` names something that exists."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module \
                and node.module.startswith("repro"):
            module = importlib.import_module(node.module)
            for alias in node.names:
                assert hasattr(module, alias.name), (
                    f"{path.name}: {node.module}.{alias.name} missing")


def test_examples_present():
    names = {p.name for p in EXAMPLES}
    assert {"quickstart.py", "placement_study.py",
            "arithmetic_intensity.py", "runtime_interference.py",
            "cg_vs_gemm.py", "native_stream.py",
            "autotune_workers.py", "gpu_transfers.py",
            "collectives_demo.py", "predict_interference.py"} <= names
