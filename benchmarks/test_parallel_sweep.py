"""Parallel sweep execution — speedup and bit-identity (docs/PARALLEL.md).

Regenerates fig10 once serially and once under a ``--jobs`` process
pool, asserts the two results are identical down to the rendered
report, and records both wall-clock laps so the benchmark report shows
the realised speedup on this host (bounded by its CPU count).
"""

import os
import time

from conftest import note, run_once

from repro.core import experiments as E
from repro.core.executor import executor_context
from repro.core.report import render_experiment

WORKERS = (1, 2, 4, 8, 16, 24, 30, 34)
JOBS = min(4, os.cpu_count() or 1)


def test_fig10_parallel_identity_and_speedup(benchmark):
    t0 = time.perf_counter()
    serial = E.fig10(worker_counts=WORKERS)
    serial_s = time.perf_counter() - t0

    laps = []

    def parallel_lap():
        t = time.perf_counter()
        with executor_context(JOBS):
            result = E.fig10(worker_counts=WORKERS)
        laps.append(time.perf_counter() - t)
        return result

    pooled = run_once(benchmark, parallel_lap)
    parallel_s = laps[-1]

    assert render_experiment(serial) == render_experiment(pooled)
    for key, s in serial.series.items():
        p = pooled.series[key]
        assert (s.x, s.median, s.p10, s.p90) == \
            (p.x, p.median, p.p10, p.p90)

    note(benchmark, jobs=JOBS, host_cpus=os.cpu_count(),
         serial_seconds=serial_s, parallel_seconds=parallel_s,
         speedup=serial_s / parallel_s if parallel_s > 0 else 0.0)
