"""Ablation benches: each modelling mechanism carries its paper effect.

These quantify DESIGN.md §4's claims: removing one mechanism removes (or
distorts) exactly the paper phenomenon it was introduced for.
"""

import pytest

from conftest import note, run_once

from repro.core import ablations as A

CORES = [0, 3, 5, 12, 20, 28, 35]


def test_ablation_pio_colocation_carries_fig4a(benchmark):
    baseline, ablated = run_once(
        benchmark, A.ablate_pio_colocation, core_counts=CORES, reps=4)
    base_ratio = baseline.observations["latency_max_ratio"]
    abl_ratio = ablated.observations["latency_max_ratio"]
    note(benchmark, with_mechanism=base_ratio, without=abl_ratio)
    # With the penalty the latency doubles; without it, it barely moves
    # (only the uncore-frequency improvement remains).
    assert base_ratio > 1.7
    assert abl_ratio < 1.1


def test_ablation_dma_derating_carries_early_onset(benchmark):
    baseline, ablated = run_once(
        benchmark, A.ablate_dma_derating, core_counts=CORES, reps=4)
    base_onset = baseline.observations["bandwidth_impact_from_cores"]
    abl_onset = ablated.observations["bandwidth_impact_from_cores"]
    note(benchmark, with_mechanism=base_onset, without=abl_onset)
    # De-rating makes the bandwidth dip from ~3 cores; without it the
    # impact starts only when the fair share binds (~8+ cores).
    assert base_onset <= 5
    assert abl_onset is None or abl_onset > base_onset
    # The asymptote barely changes (max-min dominates there).
    assert ablated.observations["bandwidth_min_ratio"] == pytest.approx(
        baseline.observations["bandwidth_min_ratio"], abs=0.1)


def test_ablation_dma_priority_carries_asymptote(benchmark):
    baseline, ablated = run_once(
        benchmark, A.ablate_dma_priority, core_counts=CORES, reps=4)
    base_floor = baseline.observations["bandwidth_min_ratio"]
    abl_floor = ablated.observations["bandwidth_min_ratio"]
    note(benchmark, with_mechanism=base_floor, without=abl_floor)
    # With the NIC's arbitration weight the floor is the paper's ~1/3;
    # as 'just another core' it collapses far lower.
    assert base_floor == pytest.approx(1 / 3, abs=0.07)
    assert abl_floor < 0.66 * base_floor


def test_ablation_stack_stall_carries_cg_collapse(benchmark):
    out = run_once(benchmark, A.ablate_stack_stall,
                   worker_counts=(1, 34),
                   cg_kwargs=dict(n=60_000, iterations=2))
    base_loss = 1 - (out["baseline"][34].sending_bandwidth
                     / out["baseline"][1].sending_bandwidth)
    abl_loss = 1 - (out["ablated"][34].sending_bandwidth
                    / out["ablated"][1].sending_bandwidth)
    note(benchmark, with_mechanism=base_loss, without=abl_loss)
    # Stack stalling carries most of CG's §6 collapse.
    assert base_loss > 0.55
    assert abl_loss < base_loss - 0.2


def test_ablation_scheduler_locality_shields_gemm(benchmark):
    out = run_once(benchmark, A.ablate_scheduler_locality, n_workers=34,
                   gemm_kwargs=dict(n=2048, tile=128))
    base = out["baseline"].stall_fraction
    blind = out["ablated"].stall_fraction
    note(benchmark, with_mechanism=base, without=blind)
    # A locality-blind scheduler pushes ~3/4 of accesses cross-socket;
    # GEMM's stalls inflate well past the paper's ~20 %.
    assert blind > base * 1.3
