"""Cross-cluster checks: the paper's per-cluster remarks (§2.2–§4.5).

"Since results are generally similar on all tested clusters, we present
only results obtained on henri nodes and mention eventual differences"
— this bench regenerates the central contention figure on every preset
and asserts both the similarity and the mentioned differences.
"""

import pytest

from conftest import note, run_once

from repro.core import experiments as E
from repro.hardware import get_preset

CORES_SMALL = [0, 3, 5, 12, 20, 28, 35]


def test_fig4b_shape_on_all_clusters(benchmark):
    """§4.2: 'Results on billy and pyxis nodes are similar to those
    observed on henri'; bora is impacted later (~20 cores)."""
    def run():
        out = {}
        for preset in ("henri", "billy", "pyxis", "bora"):
            spec = get_preset(preset)
            top = spec.n_cores - 1
            counts = sorted({min(c, top) for c in
                             [0, 3, 5, 12, 20, 28, 40, top]})
            out[preset] = E.fig4b(spec=preset, core_counts=counts,
                                  reps=3)
        return out

    results = run_once(benchmark, run)
    for preset, res in results.items():
        note(benchmark, **{
            f"{preset}_bw_min_ratio":
                res.observations["bandwidth_min_ratio"],
            f"{preset}_impact_from":
                res.observations["bandwidth_impact_from_cores"],
        })
    # Similar shape everywhere: full-machine STREAM costs the network
    # at least a third of its bandwidth on every cluster.
    for preset, res in results.items():
        assert res.observations["bandwidth_min_ratio"] < 0.67, preset
    # bora's Omni-Path holds out longer than henri's EDR (§4.2:
    # "impacted, but later: from 20 computing cores").
    henri_onset = results["henri"].observations[
        "bandwidth_impact_from_cores"]
    bora_onset = results["bora"].observations[
        "bandwidth_impact_from_cores"]
    assert bora_onset > henri_onset


def test_billy_intensity_ridge(benchmark):
    """§4.5: billy's memory/compute boundary at ~20 flop/B vs henri ~6,
    and billy's bandwidth recovers later than its latency."""
    def run():
        henri = E.fig7b(cursors=[1, 72, 144, 240, 960],
                        reps=3, elems=2_000_000, sweeps=3)
        billy = E.fig7b(spec="billy",
                        cursors=[1, 72, 144, 240, 960],
                        reps=3, elems=2_000_000, sweeps=3)
        return henri, billy

    henri, billy = run_once(benchmark, run)
    note(benchmark,
         henri_ridge=henri.observations["ridge_flop_per_byte"],
         billy_ridge=billy.observations["ridge_flop_per_byte"])
    assert billy.observations["ridge_flop_per_byte"] > \
        1.5 * henri.observations["ridge_flop_per_byte"]
