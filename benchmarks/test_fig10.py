"""Figure 10 — CG and GEMM on the task runtime (§6)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

WORKERS = (1, 2, 4, 8, 16, 24, 30, 34)


def test_fig10_cg_vs_gemm(benchmark):
    res = run_once(benchmark, E.fig10, worker_counts=WORKERS)
    obs = res.observations
    note(benchmark,
         paper_cg_bw_loss=0.90, measured_cg_bw_loss=obs["cg_bw_loss"],
         paper_gemm_bw_loss=0.20, measured_gemm_bw_loss=obs["gemm_bw_loss"],
         paper_cg_stalls=0.70, measured_cg_stalls=obs["cg_stall_max"],
         paper_gemm_stalls=0.20, measured_gemm_stalls=obs["gemm_stall_max"])

    # The paper's contrast: CG loses most of its sending bandwidth, GEMM
    # a modest share; CG stalls ~70 % of cycles, GEMM ~20 %.
    assert obs["cg_bw_loss"] > 0.6
    assert obs["gemm_bw_loss"] < 0.45
    assert obs["cg_bw_loss"] - obs["gemm_bw_loss"] > 0.25
    assert obs["cg_stall_max"] == pytest.approx(0.75, abs=0.15)
    assert obs["gemm_stall_max"] == pytest.approx(0.25, abs=0.15)

    # Monotone degradation trends with worker count.
    cg_stalls = res["cg_stall_fraction"].median
    assert cg_stalls[0] < 0.1 and cg_stalls[-1] > 0.6
    cg_norm = res["cg_sending_bw_norm"].median
    assert cg_norm[0] > 0.8 and cg_norm[-1] < 0.4
    gemm_norm = res["gemm_sending_bw_norm"].median
    assert gemm_norm[-1] > cg_norm[-1]
