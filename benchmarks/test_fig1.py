"""Figure 1 — impact of constant core/uncore frequencies (§3.1)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

SIZES = [4, 256, 4096, 65536, 1048576, 16777216, 67108864]


def test_fig1a_latency_vs_core_frequency(benchmark):
    res = run_once(benchmark, E.fig1a, sizes=SIZES, reps=10)
    hi = res.observations["latency_high_core_s"]
    lo = res.observations["latency_low_core_s"]
    note(benchmark,
         paper_latency_2p3GHz_us=1.8, measured_2p3GHz_us=hi * 1e6,
         paper_latency_1GHz_us=3.1, measured_1GHz_us=lo * 1e6)
    # Shape: higher core frequency -> lower latency, by the paper's factor.
    assert hi < lo
    assert lo / hi == pytest.approx(3.1 / 1.8, rel=0.15)


def test_fig1b_bandwidth_vs_uncore_frequency(benchmark):
    res = run_once(benchmark, E.fig1b, sizes=SIZES, reps=6)
    bw_hi = res.observations["bandwidth_uncore_max"]
    bw_lo = res.observations["bandwidth_uncore_min"]
    note(benchmark,
         paper_bw_uncore_max_GBs=10.5, measured_max_GBs=bw_hi / 1e9,
         paper_bw_uncore_min_GBs=10.1, measured_min_GBs=bw_lo / 1e9)
    # Shape: small but real uncore effect on asymptotic bandwidth; the
    # core frequency does not move it.
    assert bw_hi > bw_lo
    assert bw_hi / bw_lo == pytest.approx(10.5 / 10.1, abs=0.03)
    hi_core = "core2.3_uncore2.4"
    lo_core = "core1.0_uncore2.4"
    big = max(SIZES)
    assert res[f"bandwidth_{lo_core}"].at(big) == pytest.approx(
        res[f"bandwidth_{hi_core}"].at(big), rel=0.02)
