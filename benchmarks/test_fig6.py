"""Figure 6 — impact of transmitted data size (§4.4)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

SIZES = [4, 128, 1024, 4096, 65536, 1048576, 16777216, 67108864]


def test_fig6a_5_computing_cores(benchmark):
    res = run_once(benchmark, E.fig6a, sizes=SIZES, reps=4)
    obs = res.observations
    note(benchmark,
         paper_comm_degraded_from="64KB",
         measured_comm_degraded_from=obs["comm_degraded_from_size"],
         paper_stream_degraded_from="4KB",
         measured_stream_degraded_from=obs["stream_degraded_from_size"])
    # Paper @5 cores: communications degraded from 64 KB ...
    assert obs["comm_degraded_from_size"] == 65536
    # ... STREAM impacted from small-ish messages (4 KB in the paper).
    assert obs["stream_degraded_from_size"] <= 65536
    # Below 1 KB, no mutual impact at all.
    for size in (4, 128):
        assert res["comm_together"].at(size) == pytest.approx(
            res["comm_alone"].at(size), rel=0.08)
        assert res["compute_together"].at(size) == pytest.approx(
            res["compute_alone"].at(size), rel=0.03)


def test_fig6b_35_computing_cores(benchmark):
    res = run_once(benchmark, E.fig6b, sizes=SIZES, reps=4)
    note(benchmark,
         paper_comm_degraded_from="128B (all sizes vs fig4a)",
         measured_comm_degraded_from=res.observations[
             "comm_degraded_from_size"],
         measured_stream_degraded_from=res.observations[
             "stream_degraded_from_size"])
    # With 35 cores even small messages suffer (the co-location latency
    # penalty of fig 4a applies at every size).
    assert res.observations["comm_degraded_from_size"] <= 128
    # STREAM only notices once messages move real data.
    assert res.observations["stream_degraded_from_size"] >= 4096
    # Degradation is worse at 35 cores than at 5 for every size >= 64 KB
    res5 = E.fig6a(sizes=[65536, 1048576, 67108864], reps=4)
    for size in (65536, 1048576, 67108864):
        r35 = res["comm_together"].at(size) / res["comm_alone"].at(size)
        r5 = res5["comm_together"].at(size) / res5["comm_alone"].at(size)
        assert r35 < r5 + 0.05
