"""NetPIPE characterisation of all four cluster presets (§2.2)."""

import pytest

from conftest import note, run_once

from repro.analysis.netpipe import fit_postal, measure_netpipe, n_half
from repro.hardware import get_preset

SIZES = [1 << i for i in range(2, 27)]


def test_netpipe_all_presets(benchmark):
    def run():
        return {p: measure_netpipe(p, sizes=SIZES, reps=6)
                for p in ("henri", "bora", "billy", "pyxis")}

    curves = run_once(benchmark, run)
    for preset, curve in curves.items():
        alpha, beta = fit_postal(
            curve, min_size=get_preset(preset).nic.eager_threshold * 2)
        note(benchmark, **{
            f"{preset}_latency_us": curve.zero_latency * 1e6,
            f"{preset}_bw_GBs": curve.asymptotic_bandwidth / 1e9,
            f"{preset}_n_half_KB": n_half(curve) / 1024,
            f"{preset}_alpha_us": alpha * 1e6,
        })
    # §2.2 orderings: HDR (billy) roughly doubles EDR bandwidth; the ARM
    # stack (pyxis) has the worst latency; all latencies in the µs range.
    assert curves["billy"].asymptotic_bandwidth > \
        1.8 * curves["henri"].asymptotic_bandwidth
    assert curves["pyxis"].zero_latency == max(
        c.zero_latency for c in curves.values())
    for curve in curves.values():
        assert 0.5e-6 < curve.zero_latency < 5e-6
        # Monotone bandwidth curve with a rendezvous jump somewhere.
        assert curve.bandwidths[-1] > 100 * curve.bandwidths[0]
