"""Figure 7 — tunable arithmetic intensity (§4.5)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

CURSORS = [1, 2, 4, 8, 16, 24, 36, 48, 72, 96, 144, 480]


def test_fig7a_latency_vs_intensity(benchmark):
    res = run_once(benchmark, E.fig7a, cursors=CURSORS, reps=5,
                   elems=1_000_000)
    lat = res["comm_together"]
    alone = res["comm_alone"].median[0]
    low_ratio = lat.at(1 / 12) / alone       # deep memory-bound
    high_ratio = lat.at(40) / alone          # deep CPU-bound
    note(benchmark,
         paper_low_intensity_latency_ratio=2.0,
         measured_low_ratio=low_ratio,
         paper_high_intensity_latency_ratio=1.0,
         measured_high_ratio=high_ratio,
         paper_ridge_flopB=6.0,
         measured_recovery_complete_flopB=res.observations[
             "ridge_flop_per_byte"])
    # Memory-bound side: latency ~doubles; CPU-bound side: nominal.
    assert low_ratio == pytest.approx(2.0, rel=0.25)
    assert high_ratio < 1.15
    # Recovery happens around the paper's 6 flop/B boundary: clearly
    # under way at 6, complete by ~2x that.
    assert lat.at(6) < 0.8 * lat.at(1 / 12)
    assert res.observations["ridge_flop_per_byte"] <= 14
    # Computing duration constant in the memory-bound regime.
    assert res["compute_together"].at(2) == pytest.approx(
        res["compute_together"].at(1 / 12), rel=0.03)


def test_fig7b_bandwidth_vs_intensity(benchmark):
    res = run_once(benchmark, E.fig7b,
                   cursors=[1, 4, 48, 72, 96, 480],
                   reps=3)
    bw = res["comm_together_bw"]
    drop = 1 - bw.at(1 / 12) / bw.at(40)
    slowdown = res["compute_together"].at(1 / 12) / \
        res["compute_alone"].at(1 / 12)
    note(benchmark,
         paper_bw_drop_below_ridge=0.60, measured_bw_drop=drop,
         paper_compute_slowdown=1.10, measured_compute_slowdown=slowdown)
    # Paper: bandwidth drops ~60 % below the ridge; compute slowed ~10 %.
    assert drop == pytest.approx(0.60, abs=0.12)
    assert 1.02 < slowdown < 1.35
    # Above the ridge both recover.
    assert bw.at(40) == pytest.approx(res["comm_alone_bw"].at(40),
                                      rel=0.08)
    assert res["compute_together"].at(40) == pytest.approx(
        res["compute_alone"].at(40), rel=0.03)
