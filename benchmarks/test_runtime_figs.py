"""§5 — runtime-system impacts: overhead, Figure 8, Figure 9."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E


def test_runtime_overhead_52(benchmark):
    def all_clusters():
        return {preset: E.runtime_overhead(spec=preset, reps=15)
                for preset in ("henri", "billy", "pyxis")}

    res = run_once(benchmark, all_clusters)
    measured = {p: r.observations["overhead_s"] * 1e6
                for p, r in res.items()}
    note(benchmark,
         paper_henri_us=38, measured_henri_us=measured["henri"],
         paper_billy_us=23, measured_billy_us=measured["billy"],
         paper_pyxis_us=45, measured_pyxis_us=measured["pyxis"])
    # §5.2's three calibration anchors.
    assert measured["henri"] == pytest.approx(38, rel=0.2)
    assert measured["billy"] == pytest.approx(23, rel=0.2)
    assert measured["pyxis"] == pytest.approx(45, rel=0.2)
    assert measured["billy"] < measured["henri"] < measured["pyxis"]


def test_fig8_data_locality_and_thread_placement(benchmark):
    res = run_once(benchmark, E.fig8, reps=15)
    obs = {k: v * 1e6 for k, v in res.observations.items()}
    note(benchmark, **{k: round(v, 2) for k, v in obs.items()})
    # The decisive factor is data and comm thread on the SAME NUMA node.
    matched = (obs["data_near_thread_near_latency_s"],
               obs["data_far_thread_far_latency_s"])
    mismatched = (obs["data_near_thread_far_latency_s"],
                  obs["data_far_thread_near_latency_s"])
    assert max(matched) < min(mismatched)


def test_fig9_worker_polling(benchmark):
    res = run_once(benchmark, E.fig9,
                   sizes=[4, 64, 1024, 16384], reps=10)
    lat = {k: res.observations[f"{k}_latency_4B_s"] * 1e6
           for k in ("backoff_2", "backoff_32", "backoff_10000", "paused")}
    note(benchmark, **{k: round(v, 2) for k, v in lat.items()})
    # Figure 9's ordering: frequent polling hurts; rare polling is
    # equivalent to paused workers.
    assert lat["backoff_2"] > lat["backoff_32"] > lat["backoff_10000"]
    assert lat["backoff_10000"] == pytest.approx(lat["paused"], rel=0.05)
    # The effect holds across message sizes.
    for size in (64, 1024, 16384):
        assert res["backoff_2"].at(size) > res["paused"].at(size)
