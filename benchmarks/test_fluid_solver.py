"""Micro-benchmarks of the incremental fluid solver.

Unlike the figure benchmarks, these stress the solver directly.  The
drivers live in :mod:`repro.sim.microbench` so ``repro bench`` times
the identical workloads for the committed ``BENCH_*.json`` baselines.

* ``test_fluid_component_churn`` (PR 3 tentpole): a many-component
  flow graph (one shared bus per "socket", fig10-style) driven by a
  churn of start/complete/capacity events.  With global recomputation
  this is quadratic in the number of components — the incremental
  solver re-solves only the touched component, so the event cost stays
  flat as components are added.
* ``test_fluid_wide_component_resolve`` (PR 8 tentpole): one wide
  fabric component re-solved repeatedly under trunk-capacity wiggles —
  the regime the vectorized component solve and the dirty-component
  memo target.
* ``test_fluid_tiny_components`` (PR 9 tentpole): 1–2-flow component
  churn — the closed-form small-component fast path.
* ``test_sampler_dense`` (PR 9 tentpole): dense periodic sampling
  under activity churn — the epoch-batched sampler.
"""

from conftest import note, run_once

from repro.sim.microbench import (churn, churn_wide, sampler_dense,
                                  tiny_components)

N_COMPONENTS = 16
FLOWS_PER_COMPONENT = 12
ROUNDS = 40

WIDE_FLOWS = 128
WIDE_ROUNDS = 6
WIDE_WIGGLES = 40


def test_fluid_component_churn(benchmark):
    events, sim_seconds = run_once(
        benchmark, lambda: churn(N_COMPONENTS, FLOWS_PER_COMPONENT, ROUNDS))
    note(benchmark, components=N_COMPONENTS,
         flows=N_COMPONENTS * FLOWS_PER_COMPONENT * ROUNDS,
         events=events, simulated_seconds=round(sim_seconds, 3))
    assert events > N_COMPONENTS * FLOWS_PER_COMPONENT * ROUNDS


def test_fluid_wide_component_resolve(benchmark):
    events, sim_seconds = run_once(
        benchmark,
        lambda: churn_wide(per=WIDE_FLOWS, rounds=WIDE_ROUNDS,
                           wiggles=WIDE_WIGGLES))
    note(benchmark, flows=WIDE_FLOWS * WIDE_ROUNDS,
         wiggles=WIDE_ROUNDS * WIDE_WIGGLES,
         events=events, simulated_seconds=round(sim_seconds, 3))
    assert events > WIDE_FLOWS * WIDE_ROUNDS


def test_fluid_tiny_components(benchmark):
    events, sim_seconds = run_once(benchmark, tiny_components)
    note(benchmark, events=events,
         simulated_seconds=round(sim_seconds, 3))
    assert events > 0


def test_sampler_dense(benchmark):
    samples, sim_seconds = run_once(benchmark, sampler_dense)
    note(benchmark, samples=samples,
         simulated_seconds=round(sim_seconds, 3))
    assert samples > 0
