"""Micro-benchmark of the incremental fluid solver (PR 3 tentpole).

Unlike the figure benchmarks, this one stresses the solver directly: a
many-component flow graph (one shared bus per "socket", fig10-style)
driven by a churn of start/complete/capacity events.  With global
recomputation this is quadratic in the number of components — the
incremental solver re-solves only the touched component, so the event
cost stays flat as components are added.
"""

from conftest import note, run_once

from repro.sim import Flow, FluidNetwork, Resource, Simulator

N_COMPONENTS = 16
FLOWS_PER_COMPONENT = 12
ROUNDS = 40


def churn(n_components=N_COMPONENTS, per=FLOWS_PER_COMPONENT,
          rounds=ROUNDS):
    """Drive isolated bus components through start/finish/capacity churn.

    Returns (events, total simulated seconds) so the benchmark can sanity
    check that all work actually happened.
    """
    sim = Simulator()
    net = FluidNetwork(sim)
    buses = [Resource(f"bus{i}", 100.0) for i in range(n_components)]
    events = 0
    for r in range(rounds):
        flows = [net.start_flow(Flow([buses[i % n_components]],
                                     size=50.0 + (i % per),
                                     demand=40.0))
                 for i in range(n_components * per)]
        events += len(flows)
        # Mid-round capacity wiggle on every component (the fig10
        # set_core_activity pattern), then drain.
        sim.run(until=sim.now + 0.2)
        for i, bus in enumerate(buses):
            bus.set_capacity(90.0 + (r + i) % 20)
            events += 1
        sim.run()
        assert all(f.done.triggered for f in flows)
    return events, sim.now


def test_fluid_component_churn(benchmark):
    events, sim_seconds = run_once(benchmark, churn)
    note(benchmark, components=N_COMPONENTS,
         flows=N_COMPONENTS * FLOWS_PER_COMPONENT * ROUNDS,
         events=events, simulated_seconds=round(sim_seconds, 3))
    assert events > N_COMPONENTS * FLOWS_PER_COMPONENT * ROUNDS
