"""Figure 4 — memory-bound computations vs network performance (§4.2)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

CORES = [0, 1, 2, 3, 5, 8, 12, 17, 20, 23, 26, 29, 32, 35]


def test_fig4a_latency_under_stream(benchmark):
    res = run_once(benchmark, E.fig4a, core_counts=CORES, reps=6)
    obs = res.observations
    note(benchmark,
         paper_impact_from_cores=22,
         measured_impact_from_cores=obs["comm_impact_from_cores"],
         paper_latency_max_ratio=2.0,
         measured_latency_max_ratio=obs["latency_max_ratio"])
    # Latency impacted only past ~22 computing cores, then ~doubles.
    assert 20 <= obs["comm_impact_from_cores"] <= 31
    assert obs["latency_max_ratio"] == pytest.approx(2.0, rel=0.25)
    # STREAM is NOT impacted by the latency ping-pong (4 B messages).
    for n in (5, 20, 35):
        assert res["compute_together"].at(n) == pytest.approx(
            res["compute_alone"].at(n), rel=0.05)


def test_fig4b_bandwidth_under_stream(benchmark):
    res = run_once(benchmark, E.fig4b, core_counts=CORES, reps=5)
    obs = res.observations
    note(benchmark,
         paper_bw_impact_from_cores=3,
         measured_bw_impact_from_cores=obs["bandwidth_impact_from_cores"],
         paper_bw_min_ratio=0.33,
         measured_bw_min_ratio=obs["bandwidth_min_ratio"])
    # Bandwidth impacted from very few cores; reduced by ~2/3 at the end.
    assert obs["bandwidth_impact_from_cores"] <= 5
    assert obs["bandwidth_min_ratio"] == pytest.approx(1 / 3, abs=0.07)
    # STREAM loses at most ~25 %, worst at few computing cores.
    ratios = {n: res["compute_together"].at(n) / res["compute_alone"].at(n)
              for n in (3, 5, 20, 35)}
    assert 0.65 < min(ratios.values()) < 0.9
    assert ratios[35] > ratios[5]  # impact fades at high core counts
