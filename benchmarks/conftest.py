"""Shared helpers for the figure-regeneration benchmarks.

Every benchmark regenerates one paper figure/table at medium resolution,
asserts the paper's qualitative shape, and reports the headline numbers
through pytest-benchmark's ``extra_info`` so that
``pytest benchmarks/ --benchmark-only`` prints a paper-vs-measured view.

Benchmarks run each figure exactly once (``pedantic(rounds=1)``): the
simulator is deterministic, and a figure is minutes of simulated time —
statistical repetition happens *inside* the experiment (the paper's
median/decile protocol), not across benchmark rounds.
"""

import pytest


def run_once(benchmark, func, *args, **kwargs):
    """Run *func* once under pytest-benchmark and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs,
                              rounds=1, iterations=1, warmup_rounds=0)


def note(benchmark, **info):
    """Attach paper-vs-measured numbers to the benchmark report."""
    for key, value in info.items():
        if isinstance(value, float):
            value = round(value, 4)
        benchmark.extra_info[key] = value
