"""Figure 5 & Table 1 — thread and data placement (§4.3)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E

CORES = [0, 5, 12, 20, 28, 35]


def test_fig5_placement_panels(benchmark):
    res = run_once(benchmark, E.fig5, core_counts=CORES, reps=4)
    assert len(res) == 8  # 4 placements x {latency, bandwidth}

    def base_and_worst(key, series="comm_together"):
        s = res[key][series]
        return s.median[0], max(s.median)

    # Near-thread latency: mild plateau ("around 2 us").
    base, worst = base_and_worst("data_near_thread_near_latency")
    note(benchmark, near_thread_latency_worst_us=worst * 1e6)
    assert worst < 2.3e-6
    # Far-thread latency: doubles.
    base, worst = base_and_worst("data_near_thread_far_latency")
    note(benchmark, far_thread_latency_worst_us=worst * 1e6)
    assert worst / base == pytest.approx(2.0, rel=0.25)

    # Bandwidth: far data drops harder than near data.
    def min_bw_ratio(key):
        s = res[key]["comm_together"]
        return min(s.median[0] / m for m in [max(s.median)]) \
            if False else s.median[0] / max(s.median)

    def bw_ratio(key):
        lat = res[key]["comm_together"]
        return lat.median[0] / max(lat.median)  # latency-based ratio

    near = bw_ratio("data_near_thread_far_bandwidth")
    far = bw_ratio("data_far_thread_far_bandwidth")
    note(benchmark, near_data_bw_ratio=near, far_data_bw_ratio=far)
    assert far < near  # far data collapses more abruptly


def test_table1_summary(benchmark):
    res = run_once(benchmark, E.table1, core_counts=CORES, reps=4)
    rows = {(r["data"], r["comm_thread"]): r for r in res.meta["rows"]}
    for (data, thread), row in rows.items():
        note(benchmark, **{
            f"{data}_{thread}_lat_ratio": row["latency_max_ratio"],
            f"{data}_{thread}_bw_ratio": row["bandwidth_min_ratio"],
        })
    # Table 1's four qualitative cells:
    # latency: slight (near thread) vs high (far thread)
    assert rows[("near", "near")]["latency_max_ratio"] < 1.6
    assert rows[("far", "near")]["latency_max_ratio"] < 1.6
    assert rows[("near", "far")]["latency_max_ratio"] > 1.7
    assert rows[("far", "far")]["latency_max_ratio"] > 1.7
    # latency degradation starts late for far threads
    assert rows[("near", "far")]["latency_impact_from_cores"] >= 20
    # bandwidth: steady (near data) vs abrupt (far data)
    assert rows[("far", "near")]["bandwidth_min_ratio"] < \
        rows[("near", "near")]["bandwidth_min_ratio"]
    assert rows[("far", "far")]["bandwidth_min_ratio"] < \
        rows[("near", "far")]["bandwidth_min_ratio"]
