"""Extension benches: overlap, multi-pair, §8 autotuning, collectives.

Beyond the paper's figures: the related-work methodologies ([7] overlap,
[9] multi-pair) applied to the same simulated substrate, plus the §8
future-work autotuner.
"""

import pytest

from conftest import note, run_once

from repro.core.multipair import multipair_experiment
from repro.core.overlap import overlap_experiment
from repro.runtime.apps import run_cg


def test_overlap_efficiency(benchmark):
    res = run_once(benchmark, overlap_experiment,
                   sizes=[65536, 1 << 20, 8 << 20, 64 << 20],
                   n_compute_cores=8)
    note(benchmark,
         min_overlap_ratio=res.observations["min_overlap_ratio"],
         max_slowdown=res.observations["max_slowdown"])
    # A dedicated comm thread overlaps well for small messages; large
    # messages fight the kernels for the memory bus (§4's coupling).
    ratio = res["overlap_ratio"]
    assert ratio.at(65536) > 0.7
    assert res.observations["max_slowdown"] > 1.05


def test_multipair_wire_sharing(benchmark):
    res = run_once(benchmark, multipair_experiment,
                   pair_counts=[1, 2, 4, 8],
                   sizes=[4, 16 << 20], reps=6)
    note(benchmark,
         aggregate_bw_retained=res.observations["aggregate_bw_retained"])
    big = 16 << 20
    per_pair = res[f"per_pair_bw_{big}"]
    # Per-pair large-message bandwidth decays ~1/k ...
    assert per_pair.at(8) < 0.25 * per_pair.at(1)
    # ... while the aggregate stays near the wire limit.
    assert res.observations["aggregate_bw_retained"] > 0.75
    # Small-message latency only mildly affected.
    lat = res["latency_4"]
    assert lat.at(8) < 1.6 * lat.at(1)


def test_autotune_cg(benchmark):
    def both():
        fixed = run_cg(n_workers=34, iterations=4)
        tuned = run_cg(n_workers=34, iterations=4, autotune=True)
        return fixed, tuned

    fixed, tuned = run_once(benchmark, both)
    note(benchmark,
         fixed_bw_GBs=fixed.sending_bandwidth / 1e9,
         tuned_bw_GBs=tuned.sending_bandwidth / 1e9,
         fixed_stalls=fixed.stall_fraction,
         tuned_stalls=tuned.stall_fraction,
         time_ratio=tuned.duration / fixed.duration)
    # §8's goal: shed contention at no compute cost.
    assert tuned.duration < fixed.duration * 1.1
    assert tuned.sending_bandwidth > fixed.sending_bandwidth
    assert tuned.stall_fraction < fixed.stall_fraction


def test_gpu_interference(benchmark):
    """§8 future work: GPU data movements vs network and STREAM."""
    from repro.core.gpu_experiments import gpu_vs_network, gpu_vs_stream

    def both():
        return (gpu_vs_network(reps=8),
                gpu_vs_stream(core_counts=[0, 2, 4, 8, 12, 17]))

    net, stream = run_once(benchmark, both)
    note(benchmark,
         network_bw_ratio=net.observations["bandwidth_ratio"],
         memcpy_min_ratio=stream.observations["memcpy_bw_min_ratio"])
    # GPU traffic costs the (already contended) network bandwidth...
    assert net.observations["bandwidth_ratio"] < 0.97
    # ...and STREAM starves the GPU link like it starves the NIC.
    assert stream.observations["memcpy_bw_min_ratio"] < 0.4


def test_prediction_accuracy(benchmark):
    """§8 future work: closed-form predictor vs the simulator."""
    from repro.analysis.prediction import predict_interference
    from repro.core import experiments as E
    from repro.hardware import HENRI

    def run():
        sim4b = E.fig4b(core_counts=[0, 5, 20, 35], reps=3)
        base = sim4b["comm_together_bw"].median[0]
        errors = []
        for n in (5, 20, 35):
            simulated = sim4b["comm_together_bw"].at(n) / base
            predicted = predict_interference(HENRI, n).bandwidth_ratio
            errors.append(abs(predicted - simulated))
        return errors

    errors = run_once(benchmark, run)
    note(benchmark, max_abs_error=max(errors))
    assert max(errors) < 0.15


def test_scheduler_comparison(benchmark):
    """Eager central list vs locality work stealing on the §6 GEMM."""
    from repro.runtime.apps import run_gemm

    def both():
        eager = run_gemm(n_workers=34, n=2048, tile=128)
        stealing = run_gemm(n_workers=34, n=2048, tile=128,
                            scheduler="lws")
        return eager, stealing

    eager, stealing = run_once(benchmark, both)
    note(benchmark,
         eager_ms=eager.duration * 1e3,
         stealing_ms=stealing.duration * 1e3,
         eager_stalls=eager.stall_fraction,
         stealing_stalls=stealing.stall_fraction)
    # Both schedulers complete the same work in comparable time.
    assert stealing.duration < 1.5 * eager.duration
    assert stealing.sending_bandwidth > 0


def test_collectives_under_contention(benchmark):
    from repro.hardware import Cluster
    from repro.kernels import run_kernel, triad_kernel
    from repro.mpi import CommWorld
    from repro.mpi.collectives import CollectiveContext

    def measure():
        size = 8 << 20
        quiet = CollectiveContext(
            CommWorld(Cluster("henri", 2), comm_placement="near")
        ).run("allreduce", size=size)
        world = CommWorld(Cluster("henri", 2), comm_placement="near")
        ctx = CollectiveContext(world)
        runs = []
        for machine in world.cluster.machines:
            for core in range(12):
                runs.append(run_kernel(machine, core, triad_kernel(),
                                       data_numa=0, sweeps=None))
        loud = ctx.run("allreduce", size=size)
        for r in runs:
            r.request_stop()
        world.sim.run()
        return quiet, loud

    quiet, loud = run_once(benchmark, measure)
    note(benchmark, quiet_ms=quiet.duration * 1e3,
         contended_ms=loud.duration * 1e3)
    assert loud.duration > 1.3 * quiet.duration
