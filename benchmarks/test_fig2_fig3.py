"""Figures 2 & 3 — frequency variations caused by computations (§3.2–3.3)."""

import pytest

from conftest import note, run_once

from repro.core import experiments as E


def test_fig2_frequency_phases(benchmark):
    res = run_once(benchmark, E.fig2, n_compute=20, phase_seconds=0.1)
    obs = res.observations
    note(benchmark,
         paper_latency_alone_us=1.7,
         measured_alone_us=obs["latency_alone_s"] * 1e6,
         paper_latency_together_us=1.52,
         measured_together_us=obs["latency_together_s"] * 1e6,
         idle_core_ghz=obs["compute_core_ghz_B"],
         busy_core_ghz=obs["compute_core_ghz_C"])
    # Phase B: idle cores at minimum frequency; phase C: boosted.
    assert obs["compute_core_ghz_B"] == pytest.approx(1.0, abs=0.1)
    assert obs["compute_core_ghz_C"] > 2.0
    # Headline: latency *improves* when computation runs side by side.
    assert obs["latency_together_s"] < obs["latency_alone_s"]
    ratio = obs["latency_alone_s"] / obs["latency_together_s"]
    assert ratio == pytest.approx(1.7 / 1.52, rel=0.1)


def test_fig3a_avx_weak_scaling(benchmark):
    res = run_once(benchmark, E.fig3a,
                   core_counts=(2, 4, 8, 12, 16, 20), reps=8)
    d4 = res["compute_alone"].at(4)
    d20 = res["compute_alone"].at(20)
    note(benchmark,
         paper_duration_4cores_ms=135, measured_4cores_ms=d4 * 1e3,
         paper_duration_20cores_ms=210, measured_20cores_ms=d20 * 1e3)
    # AVX compute slows itself down as the license frequency drops...
    assert d4 == pytest.approx(0.135, rel=0.1)
    assert d20 > 1.15 * d4
    # ...but never the communications; latency is slightly better together
    # at every core count (§3.3).
    for n in (2, 4, 8, 12, 16, 20):
        assert res["latency_together"].at(n) <= \
            res["latency_alone"].at(n) * 1.03


def test_fig3bc_frequency_traces(benchmark):
    def both():
        return (E.fig3bc(n_compute=4, phase_seconds=0.15),
                E.fig3bc(n_compute=20, phase_seconds=0.25))

    r4, r20 = run_once(benchmark, both)
    note(benchmark,
         paper_avx4_ghz=3.0, measured_avx4_ghz=r4.observations["avx_core_ghz"],
         paper_avx20_ghz=2.3,
         measured_avx20_ghz=r20.observations["avx_core_ghz"],
         paper_comm_ghz=2.5,
         measured_comm4_ghz=r4.observations["comm_core_ghz"],
         measured_comm20_ghz=r20.observations["comm_core_ghz"])
    # Fig 3b: 4 AVX cores at ~3 GHz; fig 3c: 20 AVX cores at ~2.3 GHz.
    assert r4.observations["avx_core_ghz"] == pytest.approx(3.0, abs=0.1)
    assert r20.observations["avx_core_ghz"] == pytest.approx(2.3, abs=0.15)
    # The communication core is never dragged down by the AVX license.
    assert r4.observations["comm_core_ghz"] >= 2.5
    assert r20.observations["comm_core_ghz"] >= 2.5
