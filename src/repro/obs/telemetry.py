"""The telemetry facade: one object every instrumented layer reports to.

A :class:`Telemetry` bundles a :class:`~repro.obs.metrics.MetricsRegistry`
and a :class:`~repro.obs.tracer.SpanTracer` and knows the lane layout:

* one trace *process* per simulated node (pid ``1000·cluster + node``),
  with a *thread* per core, a NIC lane for protocol-level transfers and
  a queue lane for the comm thread's serial queue;
* one synthetic *fabric* process per cluster (pid ``1000·cluster + 999``)
  with a lane per directed wire (flow spans + bandwidth counter tracks)
  and a lane for fault injections;
* counter tracks for per-core/uncore frequency and per-node memory-stall
  fraction, next to the spans that suffer them.

Experiments build a fresh cluster per sweep point, so clusters register
themselves (:meth:`Telemetry.bind_cluster`, called from
``Cluster.__init__`` exactly like the fault injector) and each gets its
own pid block — a fig-10 trace shows every worker-count point
side by side.

All hooks are pure observation: they never yield, schedule events, or
draw random numbers, so enabling telemetry cannot perturb a simulation.
Everything recorded derives from simulated time and state — identical
runs export byte-identical files.
"""

from __future__ import annotations

import logging
import os
from contextlib import contextmanager
from typing import Dict, List, Optional, Tuple

from repro.obs.attribution import (TransferSample, attribution_report,
                                   render_attribution)
from repro.obs.context import clear_telemetry, install_telemetry
from repro.obs.metrics import MetricsRegistry
from repro.obs.tracer import SpanHandle, SpanTracer

__all__ = ["Telemetry", "telemetry_context",
           "NIC_TID", "QUEUE_TID", "FAULT_TID"]

logger = logging.getLogger(__name__)

# Lane (tid) conventions inside a node process.
NIC_TID = 1000      # protocol-level transfer spans
QUEUE_TID = 1001    # comm thread's serial queue (submit -> done)
# Lane conventions inside a cluster's fabric process.
FAULT_TID = 998     # fault-injection instants
_FABRIC_OFF = 999   # fabric pid = base + _FABRIC_OFF
_PID_BLOCK = 1000   # pid block per cluster


class _Binding:
    """Lane bookkeeping for one registered cluster (or bare network)."""

    __slots__ = ("index", "base", "fabric", "wires", "lane_by_res",
                 "primed")

    def __init__(self, index: int):
        self.index = index
        self.base = _PID_BLOCK * index
        self.fabric = self.base + _FABRIC_OFF
        # [(label, Resource)] — fabric link lanes, in the topology's
        # catalog order (full mesh: wire{a}->{b} sorted by (a, b)).
        self.wires: List[Tuple[str, object]] = []
        # Resource -> lane index, the inverse of `wires` (resources
        # hash by identity).  Lets the rate-change sampler visit only
        # the dirty wires instead of scanning every lane per solve.
        self.lane_by_res: Dict[object, int] = {}
        # Whether every wire counter track has its initial sample.
        self.primed = False


class Telemetry:
    """Ambient telemetry sink (install via :func:`telemetry_context`)."""

    def __init__(self, trace: bool = True, metrics: bool = True):
        self.registry: Optional[MetricsRegistry] = \
            MetricsRegistry() if metrics else None
        self.tracer: Optional[SpanTracer] = SpanTracer() if trace else None
        self.transfers: List[TransferSample] = []
        self.run_label = ""
        self._bindings: Dict[int, _Binding] = {}   # id(FluidNetwork) -> _Binding
        self._n_clusters = 0
        # Cached hot-path counter (None when metrics are off).
        self._sim_events = (self.registry.counter("sim.events")
                            if self.registry is not None else None)
        # Engine hot-loop counters are opt-in (REPRO_ENGINE_COUNTERS=1,
        # set by `repro profile`): materializing them by default would
        # add keys to every metrics export and break byte-identity
        # against pre-PR9 pinned artifacts.
        self._engine_counters = os.environ.get(
            "REPRO_ENGINE_COUNTERS", "") not in ("", "0")

    # -- run labelling -----------------------------------------------------
    def set_run(self, label: str) -> None:
        """Tag subsequently collected samples with *label* (experiment name)."""
        self.run_label = label

    # -- cluster / lane registration ---------------------------------------
    def bind_cluster(self, cluster) -> None:
        """Register *cluster*'s nodes and wires as trace lanes."""
        binding = self._binding_for_net(cluster.net)
        binding.wires = list(cluster.topology.links())
        binding.lane_by_res = {res: lane for lane, (_label, res)
                               in enumerate(binding.wires)}
        if self.registry is not None:
            self.registry.counter("clusters.built").inc()
        tracer = self.tracer
        if tracer is None:
            return
        prefix = f"c{binding.index}"
        for machine in cluster.machines:
            pid = binding.base + machine.node_id
            tracer.name_process(
                pid, f"{prefix}.n{machine.node_id} ({machine.spec.name})")
            tracer.name_thread(pid, NIC_TID, "nic")
            tracer.name_thread(pid, QUEUE_TID, "comm queue")
            for core in machine.cores:
                tracer.name_thread(pid, core.id, f"core{core.id}")
        tracer.name_process(binding.fabric, f"{prefix}.fabric")
        tracer.name_thread(binding.fabric, FAULT_TID, "faults")
        for lane, (label, _res) in enumerate(binding.wires):
            tracer.name_thread(binding.fabric, lane, label)

    def _binding_for_net(self, net) -> _Binding:
        binding = self._bindings.get(id(net))
        if binding is None:
            binding = _Binding(self._n_clusters)
            self._n_clusters += 1
            self._bindings[id(net)] = binding
        return binding

    def machine_pid(self, machine) -> int:
        """Trace pid of *machine* (auto-registers bare networks)."""
        return self._binding_for_net(machine.net).base + machine.node_id

    # -- sim engine ---------------------------------------------------------
    def on_sim_event(self) -> None:
        """One event-loop dispatch (hottest hook: a bare increment)."""
        counter = self._sim_events
        if counter is not None:
            counter.value += 1.0

    def on_engine_stats(self, dispatched: int, stale_skips: int,
                        heap_compactions: int) -> None:
        """Engine hot-loop deltas for one ``run()`` invocation.

        Gated on ``REPRO_ENGINE_COUNTERS=1`` and materialized only when
        nonzero (the ``executor.*`` discipline): default exports carry
        no new keys and stay byte-identical.
        """
        registry = self.registry
        if registry is None or not self._engine_counters:
            return
        if dispatched:
            registry.counter("engine.events_dispatched").inc(dispatched)
        if stale_skips:
            registry.counter("engine.stale_skips").inc(stale_skips)
        if heap_compactions:
            registry.counter("engine.heap_compactions").inc(heap_compactions)

    # -- fluid network -------------------------------------------------------
    def on_flow_start(self, net, flow) -> None:
        if self.registry is not None:
            self.registry.counter("fluid.flows_started").inc()

    def on_flow_end(self, net, flow, aborted: bool = False) -> None:
        """A finite flow completed — or was stopped (*aborted*).

        Stopped flows close their wire span like completed ones (with an
        ``aborted`` arg) so counters and spans stay balanced against
        ``on_flow_start``.
        """
        if self.registry is not None:
            self.registry.counter("fluid.flows_completed").inc()
            if aborted:
                self.registry.counter("fluid.flows_aborted").inc()
        tracer = self.tracer
        if tracer is None:
            return
        binding = self._bindings.get(id(net))
        if binding is None or not binding.wires:
            return
        for lane, (_label, res) in enumerate(binding.wires):
            if res in flow.resources:
                args = {"bytes": flow.transferred}
                if aborted:
                    args["aborted"] = True
                tracer.complete(
                    binding.fabric, lane, flow.label or "flow", "flow",
                    flow.start_time, net.sim.now, args)
                return

    def on_flow_stop_noop(self, net, flow) -> None:
        """``stop_flow`` on an already-inactive flow: counted, not
        double-ended (``on_flow_end`` must fire exactly once per flow)."""
        if self.registry is not None:
            self.registry.counter("fluid.stop_noops").inc()

    def on_invariant_check(self) -> None:
        """One fluid-solver self-check pass ran (``--check-invariants``)."""
        if self.registry is not None:
            self.registry.counter("fluid.invariant_checks").inc()

    def on_invariant_violation(self) -> None:
        """A self-check failed; an ``InvariantViolation`` is being raised."""
        if self.registry is not None:
            self.registry.counter("fluid.invariant_violations").inc()

    def on_rates_changed(self, net, dirty_resources=None) -> None:
        """Rates were reassigned; sample wire-bandwidth counter tracks.

        *dirty_resources* is the set of resources whose connected
        component was re-solved (``None`` = unknown, sample everything).
        Only dirty wires are sampled — untouched components keep their
        rates bitwise, so the tracer's value dedup would drop their
        samples anyway.  The first pass after a cluster binds primes
        every wire track with its initial value regardless.
        """
        if self.registry is not None:
            self.registry.counter("fluid.rate_updates").inc()
        tracer = self.tracer
        if tracer is None:
            return
        binding = self._bindings.get(id(net))
        if binding is None or not binding.wires:
            return
        now = net.sim.now
        prime = not binding.primed
        if prime:
            binding.primed = True
        if prime or dirty_resources is None:
            lanes = range(len(binding.wires))
        else:
            # Visit only the dirty links, in lane order — `wires` keeps
            # the topology's catalog order, so sorting the lane indices
            # restores exactly the emission order the full scan produced.
            lane_by_res = binding.lane_by_res
            hits = [lane for res in dirty_resources
                    if (lane := lane_by_res.get(res)) is not None]
            hits.sort()
            lanes = hits
        wires = binding.wires
        for lane in lanes:
            label, res = wires[lane]
            bw = net.utilization(res) * res.capacity
            tracer.counter(binding.fabric, f"{label} GB/s", now,
                           bw / 1e9)

    # -- protocol engine -----------------------------------------------------
    def on_transfer(self, cluster, src_node: int, dst_node: int,
                    record, app: Optional[str] = None) -> None:
        """A message was delivered (records carry overlap cycle deltas).

        *app* is the owning application's name when the engine belongs
        to a co-scheduled :class:`~repro.core.apps.Application`; metric
        label sets (and hence exports) only grow an ``app=`` label when
        one is set, so single-app runs stay byte-identical.
        """
        registry = self.registry
        if registry is not None:
            labels = {"protocol": record.protocol}
            if app is not None:
                labels["app"] = app
            registry.counter("net.transfers", **labels).inc()
            registry.counter("net.bytes", **labels).inc(record.size)
            registry.histogram("net.transfer_seconds",
                               **labels).observe(record.duration)
            if record.retries:
                registry.counter("net.retransmits").inc(record.retries)
        sample = TransferSample(
            t=record.end, run=app if app is not None else self.run_label,
            src=src_node, dst=dst_node,
            size=record.size, protocol=record.protocol,
            duration=record.duration, bandwidth=record.bandwidth,
            mem_stall=record.mem_stall_overlap,
            busy=record.busy_overlap, retries=record.retries)
        self.transfers.append(sample)
        tracer = self.tracer
        if tracer is not None:
            binding = self._binding_for_net(cluster.net)
            args = {"size": record.size, "dst": dst_node,
                    "retries": record.retries,
                    "stall_overlap": round(record.mem_stall_overlap, 9)}
            if app is not None:
                args["app"] = app
            tracer.complete(
                binding.base + src_node, NIC_TID,
                f"{record.protocol} {record.size}B", "transfer",
                record.start, record.end, args)

    def on_retransmit(self, cluster, src_node: int, dst_node: int,
                      size: int, reason: str, timeouts: int) -> None:
        """A retransmit timer fired (loss/corruption/ack loss)."""
        if self.registry is not None:
            self.registry.counter("net.timeouts", reason=reason).inc()
        tracer = self.tracer
        if tracer is not None:
            binding = self._binding_for_net(cluster.net)
            tracer.instant(
                binding.base + src_node, NIC_TID, f"timeout #{timeouts}",
                cluster.sim.now, cat="transfer",
                args={"dst": dst_node, "size": size, "reason": reason})

    def on_transport_error(self, cluster, src_node: int, dst_node: int,
                           reason: str) -> None:
        if self.registry is not None:
            self.registry.counter("net.transport_errors").inc()
        tracer = self.tracer
        if tracer is not None:
            binding = self._binding_for_net(cluster.net)
            tracer.instant(
                binding.base + src_node, NIC_TID, "transport error",
                cluster.sim.now, cat="transfer",
                args={"dst": dst_node, "reason": reason})

    # -- generic spans (workers, kernels, p2p) ------------------------------
    def begin_span(self, machine, tid: int, name: str, cat: str,
                   **args) -> Optional[SpanHandle]:
        tracer = self.tracer
        if tracer is None:
            return None
        return tracer.begin(self.machine_pid(machine), tid, name, cat,
                            machine.sim.now, **args)

    def finish_span(self, machine, handle: Optional[SpanHandle],
                    **extra) -> None:
        if handle is not None and self.tracer is not None:
            self.tracer.finish(handle, machine.sim.now, **extra)

    # -- runtime -------------------------------------------------------------
    def on_task_done(self, machine, core_id: int, task,
                     busy: float, stall: float) -> None:
        """A worker finished a task; sample the node's stall fraction."""
        if self.registry is not None:
            self.registry.counter("runtime.tasks").inc()
            self.registry.counter("runtime.busy_seconds").inc(busy)
            self.registry.counter("runtime.stall_seconds").inc(stall)
        tracer = self.tracer
        if tracer is not None and busy > 0:
            tracer.counter(self.machine_pid(machine), "mem_stall_frac",
                           machine.sim.now, stall / busy)

    def on_steal(self, machine, thief_core: int) -> None:
        if self.registry is not None:
            self.registry.counter("runtime.steals").inc()
        tracer = self.tracer
        if tracer is not None:
            tracer.instant(self.machine_pid(machine), thief_core, "steal",
                           machine.sim.now, cat="runtime")

    def on_kernel_done(self, machine, core_id: int, kernel_name: str) -> None:
        if self.registry is not None:
            self.registry.counter("kernels.runs", kernel=kernel_name).inc()

    # -- frequency / DVFS ----------------------------------------------------
    def on_freq_change(self, machine, core_id: int) -> None:
        tracer = self.tracer
        if tracer is None:
            return
        pid = self.machine_pid(machine)
        now = machine.sim.now
        tracer.counter(pid, f"freq.c{core_id} GHz", now,
                       machine.freq.core_hz(core_id) / 1e9)
        socket = machine.cores[core_id].socket_id
        tracer.counter(pid, f"uncore.s{socket} GHz", now,
                       machine.freq.uncore_hz(socket) / 1e9)

    # -- faults --------------------------------------------------------------
    def on_fault(self, cluster, action: str, fault) -> None:
        kind = type(fault).__name__
        if self.registry is not None:
            self.registry.counter("faults.applied", kind=kind,
                                  action=action).inc()
        tracer = self.tracer
        if tracer is not None:
            binding = self._binding_for_net(cluster.net)
            tracer.instant(binding.fabric, FAULT_TID,
                           f"{action} {kind}", cluster.sim.now,
                           cat="fault")

    # -- parallel sweep support ----------------------------------------------
    def point_payload(self) -> dict:
        """Everything a per-point telemetry sink collected, as plain data.

        A sweep-executor worker runs each point against a *fresh*
        Telemetry (pid blocks start at 0) and ships this payload back;
        the parent folds it in with :meth:`absorb_point` in submission
        order, reconstructing exactly what a serial run against one
        shared sink would have recorded.
        """
        return {
            "n_clusters": self._n_clusters,
            "events": list(self.tracer._events)  # noqa: SLF001
            if self.tracer is not None else None,
            "transfers": list(self.transfers),
        }

    def absorb_point(self, payload: dict,
                     metrics: Optional[dict] = None) -> None:
        """Fold one point's :meth:`point_payload` (+ metrics delta) in.

        Trace-event pids are shifted by the clusters already registered
        here, so the point's pid blocks land exactly where a serial run
        would have allocated them; the internal cluster counter advances
        by the point's cluster count to keep later allocations aligned.
        """
        offset = _PID_BLOCK * self._n_clusters
        events = payload.get("events")
        if self.tracer is not None and events:
            shifted = []
            for event in events:
                event = dict(event)
                event["pid"] = event["pid"] + offset
                shifted.append(event)
            self.tracer._events.extend(shifted)  # noqa: SLF001
        self.transfers.extend(payload.get("transfers") or ())
        if metrics and self.registry is not None:
            self.registry.merge_delta(metrics)
        self._n_clusters += payload.get("n_clusters", 0)

    # -- reports / export ----------------------------------------------------
    def attribution(self, run: Optional[str] = None,
                    n_bins: int = 5) -> dict:
        """Fig-10-style bandwidth-vs-stall attribution report."""
        samples = self.transfers if run is None \
            else [s for s in self.transfers if s.run == run]
        return attribution_report(samples, n_bins=n_bins)

    def render_attribution(self, run: Optional[str] = None) -> str:
        return render_attribution(self.attribution(run=run))

    def export_trace(self, path) -> int:
        """Write the Chrome/Perfetto trace; returns the event count."""
        if self.tracer is None:
            raise RuntimeError("telemetry was created with trace=False")
        self.tracer.export(path)
        return len(self.tracer)

    def export_metrics(self, path) -> None:
        """Write the metrics JSON, embedding the attribution report."""
        if self.registry is None:
            raise RuntimeError("telemetry was created with metrics=False")
        self.registry.export(path, extra={
            "attribution": self.attribution(),
            "transfer_samples": [s.to_dict() for s in self.transfers],
        })


@contextmanager
def telemetry_context(trace: bool = True, metrics: bool = True):
    """Install a fresh :class:`Telemetry` as the ambient sink."""
    tele = Telemetry(trace=trace, metrics=metrics)
    install_telemetry(tele)
    try:
        yield tele
    finally:
        clear_telemetry(tele)
