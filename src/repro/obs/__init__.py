"""Unified observability: metrics registry, cross-layer tracer,
interference attribution (see docs/OBSERVABILITY.md).

Strictly opt-in: nothing here runs unless a :class:`Telemetry` is
installed via :func:`telemetry_context`; the disabled path is a single
``None`` check at every instrumentation site.
"""

from repro.obs.attribution import (TransferSample, attribution_report,
                                   render_attribution)
from repro.obs.context import (active_telemetry, clear_telemetry,
                               install_telemetry)
from repro.obs.export import (chrome_trace_json, render_trace_summary,
                              summarize_chrome_trace, validate_chrome_trace)
from repro.obs.metrics import (Counter, Gauge, Histogram, MetricsRegistry,
                               metric_key)
from repro.obs.telemetry import Telemetry, telemetry_context
from repro.obs.tracer import SpanHandle, SpanTracer

__all__ = [
    "Telemetry", "telemetry_context",
    "active_telemetry", "install_telemetry", "clear_telemetry",
    "MetricsRegistry", "Counter", "Gauge", "Histogram", "metric_key",
    "SpanTracer", "SpanHandle",
    "chrome_trace_json", "validate_chrome_trace",
    "summarize_chrome_trace", "render_trace_summary",
    "TransferSample", "attribution_report", "render_attribution",
]
