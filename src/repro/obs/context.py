"""Process-wide telemetry installation consumed by the instrumented layers.

Exactly like :mod:`repro.faults.context`, experiments build their
simulation objects internally (often one cluster per sweep point), so
telemetry is activated through an ambient context rather than threaded
through every signature: ``install_telemetry(tele)`` (or the
``telemetry_context`` manager in :mod:`repro.obs.telemetry`) makes every
instrumentation site in the sim/network/runtime layers report to *tele*.

Every instrumented hot path guards on :data:`_ACTIVE` being ``None`` —
one attribute load and an identity check — so the zero-telemetry path
executes the exact pre-observability code: same events, same RNG draws,
bit-identical results.

This module deliberately imports nothing so any layer can depend on it
without a cycle.
"""

from __future__ import annotations

from typing import List, Optional

__all__ = ["install_telemetry", "clear_telemetry", "active_telemetry"]

# The innermost installed Telemetry, or None.  Hot paths may read this
# module attribute directly; everyone else uses active_telemetry().
_ACTIVE: Optional[object] = None
_STACK: List[object] = []


def install_telemetry(tele) -> object:
    """Install *tele* as the ambient telemetry sink."""
    global _ACTIVE
    _STACK.append(tele)
    _ACTIVE = tele
    return tele


def clear_telemetry(tele=None) -> None:
    """Remove *tele* (default: the innermost) from the stack."""
    global _ACTIVE
    if tele is None:
        if _STACK:
            _STACK.pop()
    elif tele in _STACK:
        _STACK.remove(tele)
    _ACTIVE = _STACK[-1] if _STACK else None


def active_telemetry() -> Optional[object]:
    """The innermost installed :class:`~repro.obs.telemetry.Telemetry`."""
    return _ACTIVE
