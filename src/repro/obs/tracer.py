"""Cross-layer span tracer emitting Chrome-tracing / Perfetto events.

Lanes follow the Chrome convention: a *process* (pid) per node (plus one
synthetic "fabric" process per cluster for network flows) and a *thread*
(tid) per core, with a dedicated NIC lane.  Counter tracks ("C" events)
carry link bandwidth, core/uncore frequency and per-node memory-stall
fraction so interference is visible next to the spans that suffer it.

All timestamps are simulated seconds, converted to integer-ish
microseconds at record time (Chrome's native unit); nothing reads the
wall clock, so identical runs yield byte-identical traces.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

__all__ = ["SpanHandle", "SpanTracer"]


def _us(t: float) -> float:
    """Seconds → microseconds, with a stable float round.

    Rounding to 1/1000 µs keeps the JSON compact and reproducible while
    preserving nanosecond resolution (well below any modelled latency).
    """
    return round(t * 1e6, 3)


class SpanHandle:
    """An open span; finished (and recorded) via :meth:`SpanTracer.finish`."""

    __slots__ = ("pid", "tid", "name", "cat", "start", "args")

    def __init__(self, pid: int, tid: int, name: str, cat: str,
                 start: float, args: Optional[dict]):
        self.pid = pid
        self.tid = tid
        self.name = name
        self.cat = cat
        self.start = start
        self.args = args


class SpanTracer:
    """Accumulates Chrome-format trace events in memory."""

    def __init__(self) -> None:
        self._events: List[dict] = []
        # Last value per counter series, to drop no-op samples.
        self._counter_last: Dict[Tuple[int, str], float] = {}
        self._named_procs: Dict[int, str] = {}
        self._named_threads: Dict[Tuple[int, int], str] = {}

    def __len__(self) -> int:
        return len(self._events)

    # -- lane naming (Chrome metadata events) ------------------------------
    def name_process(self, pid: int, name: str) -> None:
        if self._named_procs.get(pid) == name:
            return
        self._named_procs[pid] = name
        self._events.append({
            "name": "process_name", "ph": "M", "pid": pid, "tid": 0,
            "args": {"name": name}})

    def name_thread(self, pid: int, tid: int, name: str) -> None:
        if self._named_threads.get((pid, tid)) == name:
            return
        self._named_threads[(pid, tid)] = name
        self._events.append({
            "name": "thread_name", "ph": "M", "pid": pid, "tid": tid,
            "args": {"name": name}})

    def sort_thread(self, pid: int, tid: int, index: int) -> None:
        self._events.append({
            "name": "thread_sort_index", "ph": "M", "pid": pid, "tid": tid,
            "args": {"sort_index": index}})

    # -- spans --------------------------------------------------------------
    def begin(self, pid: int, tid: int, name: str, cat: str,
              start: float, **args) -> SpanHandle:
        """Open a span; nothing is recorded until :meth:`finish`."""
        return SpanHandle(pid, tid, name, cat, start, args or None)

    def finish(self, handle: SpanHandle, end: float, **extra) -> None:
        args = handle.args
        if extra:
            args = dict(args or {})
            args.update(extra)
        self.complete(handle.pid, handle.tid, handle.name, handle.cat,
                      handle.start, end, args)

    def complete(self, pid: int, tid: int, name: str, cat: str,
                 start: float, end: float,
                 args: Optional[dict] = None) -> None:
        """Record a closed span as a Chrome "X" (complete) event."""
        event = {"name": name, "cat": cat, "ph": "X", "pid": pid,
                 "tid": tid, "ts": _us(start),
                 "dur": max(0.0, _us(end) - _us(start))}
        if args:
            event["args"] = args
        self._events.append(event)

    # -- instants and counters ---------------------------------------------
    def instant(self, pid: int, tid: int, name: str, ts: float,
                cat: str = "event", args: Optional[dict] = None) -> None:
        event = {"name": name, "cat": cat, "ph": "i", "pid": pid,
                 "tid": tid, "ts": _us(ts), "s": "t"}
        if args:
            event["args"] = args
        self._events.append(event)

    def counter(self, pid: int, name: str, ts: float, value: float) -> None:
        """Sample a counter track, skipping consecutive identical values."""
        key = (pid, name)
        value = round(float(value), 6)
        if self._counter_last.get(key) == value:
            return
        self._counter_last[key] = value
        self._events.append({
            "name": name, "ph": "C", "pid": pid, "tid": 0,
            "ts": _us(ts), "args": {"value": value}})

    # -- export -------------------------------------------------------------
    def to_payload(self) -> dict:
        return {"traceEvents": list(self._events),
                "displayTimeUnit": "ms"}

    def to_json(self) -> str:
        # Compact separators: traces get large and Perfetto doesn't care.
        return json.dumps(self.to_payload(), separators=(",", ":"))

    def export(self, path) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json())
            fh.write("\n")
