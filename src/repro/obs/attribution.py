"""Interference attribution: bandwidth loss vs. memory-stall cycles.

The paper's §6 argument (Figure 10) is a correlation: as more workers
run memory-bound kernels, the cores' memory-stall cycles rise and the
communication thread's effective sending bandwidth collapses.  Here
every completed transfer carries the stall/busy cycle deltas of the
machines it overlapped (sampled around the protocol engine's
``half_transfer``), and :func:`attribution_report` turns those samples
into the Fig-10-style table and a correlation coefficient.

Bandwidths are normalised within same-size transfer groups before
correlating, because achievable bandwidth varies enormously with
message size (latency- vs bandwidth-dominated) and would otherwise
swamp the interference signal.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional

__all__ = ["TransferSample", "attribution_report", "render_attribution"]

#: ``insufficient_data`` reasons a report carries when the correlation
#: is undefined (instead of a bare None or a NaN leaking into exports).
INSUFFICIENT_REASONS = {
    "no_active_transfers":
        "no transfer overlapped any compute cycles",
    "too_few_active_transfers":
        "fewer than 2 transfers overlapped compute cycles",
    "zero_variance":
        "stall fractions or bandwidths are constant across transfers",
}


@dataclass
class TransferSample:
    """One completed transfer and the cycle activity it overlapped."""

    t: float                 # completion time (simulated seconds)
    run: str                 # experiment/run label ("" if unknown)
    src: int
    dst: int
    size: int                # bytes
    protocol: str            # "eager" | "rendezvous"
    duration: float          # seconds
    bandwidth: float         # bytes / second
    mem_stall: float         # stall cycles accrued across both machines
    busy: float              # busy cycles accrued across both machines
    retries: int = 0
    meta: Dict[str, object] = field(default_factory=dict)

    @property
    def stall_fraction(self) -> float:
        """Fraction of overlapped busy cycles spent stalled on memory."""
        return self.mem_stall / self.busy if self.busy > 0 else 0.0

    def to_dict(self) -> Dict[str, object]:
        return {
            "t": self.t, "run": self.run, "src": self.src,
            "dst": self.dst, "size": self.size,
            "protocol": self.protocol,
            "duration": self.duration, "bandwidth": self.bandwidth,
            "mem_stall": self.mem_stall, "busy": self.busy,
            "stall_fraction": self.stall_fraction,
            "retries": self.retries,
        }


def _pearson(xs: List[float], ys: List[float]) -> Optional[float]:
    n = len(xs)
    if n < 2:
        return None
    if not all(map(math.isfinite, xs)) or not all(map(math.isfinite, ys)):
        return None
    mx = sum(xs) / n
    my = sum(ys) / n
    sxy = sum((x - mx) * (y - my) for x, y in zip(xs, ys))
    sxx = sum((x - mx) ** 2 for x in xs)
    syy = sum((y - my) ** 2 for y in ys)
    if sxx <= 0 or syy <= 0:
        return None
    r = sxy / (sxx * syy) ** 0.5
    return r if math.isfinite(r) else None


def attribution_report(samples: List[TransferSample],
                       n_bins: int = 5) -> Dict[str, object]:
    """Correlate normalised bandwidth with overlapped stall fraction.

    Returns a JSON-able report: per-stall-bin mean normalised bandwidth
    (the Fig-10-style table) plus the Pearson correlation, which the
    paper's trend predicts to be negative (more stalls → less
    bandwidth).  Transfers that overlapped no compute cycles at all are
    excluded from the correlation but counted in ``quiet_transfers``.

    Degenerate inputs never produce a NaN: non-finite samples are
    dropped up front, and whenever the correlation is undefined (fewer
    than 2 active transfers, or zero variance) the report instead
    carries a structured ``insufficient_data`` reason (a key of
    :data:`INSUFFICIENT_REASONS`).
    """
    samples = [s for s in samples
               if s.duration > 0 and s.size > 0
               and math.isfinite(s.duration)
               and math.isfinite(s.bandwidth)
               and math.isfinite(s.mem_stall)
               and math.isfinite(s.busy)]
    if not samples:
        return {"transfers": 0, "correlation": None, "bins": [],
                "quiet_transfers": 0,
                "insufficient_data": "no_active_transfers"}

    # Normalise bandwidth within same-size groups: 1.0 = the best this
    # message size achieved anywhere in the run.
    best_by_size: Dict[int, float] = {}
    for s in samples:
        best = best_by_size.get(s.size, 0.0)
        if s.bandwidth > best:
            best_by_size[s.size] = s.bandwidth
    norm = [(s, s.bandwidth / best_by_size[s.size]) for s in samples]

    active = [(s, nb) for s, nb in norm if s.busy > 0]
    quiet = len(norm) - len(active)

    corr = _pearson([s.stall_fraction for s, _ in active],
                    [nb for _, nb in active]) if active else None
    reason = None
    if corr is None:
        if not active:
            reason = "no_active_transfers"
        elif len(active) < 2:
            reason = "too_few_active_transfers"
        else:
            reason = "zero_variance"

    # Fig-10-style table: bin by stall fraction, report mean normalised
    # bandwidth per bin.
    max_stall = max((s.stall_fraction for s, _ in active), default=0.0)
    hi = max(max_stall, 1e-9)
    bins: List[Dict[str, object]] = []
    for b in range(n_bins):
        lo_edge = hi * b / n_bins
        hi_edge = hi * (b + 1) / n_bins
        members = [
            (s, nb) for s, nb in active
            if lo_edge <= s.stall_fraction < hi_edge
            or (b == n_bins - 1 and s.stall_fraction == hi_edge)]
        if members:
            mean_bw = sum(nb for _, nb in members) / len(members)
            mean_abs = sum(s.bandwidth for s, _ in members) / len(members)
        else:
            mean_bw = None
            mean_abs = None
        bins.append({
            "stall_lo": round(lo_edge, 6), "stall_hi": round(hi_edge, 6),
            "transfers": len(members),
            "mean_norm_bandwidth": (round(mean_bw, 6)
                                    if mean_bw is not None else None),
            "mean_bandwidth_Bps": (round(mean_abs, 3)
                                   if mean_abs is not None else None),
        })

    retrans = sum(s.retries for s in samples)
    report: Dict[str, object] = {
        "transfers": len(samples),
        "quiet_transfers": quiet,
        "retransmitted": retrans,
        "correlation": round(corr, 6) if corr is not None else None,
        "bins": bins,
    }
    # Only present on degenerate inputs: healthy exports keep their
    # exact pre-existing key set (byte-identity).
    if reason is not None:
        report["insufficient_data"] = reason
    return report


def render_attribution(report: Dict[str, object]) -> str:
    """Human-readable Fig-10-style table."""
    lines = ["interference attribution (bandwidth vs. memory stalls)",
             f"  transfers: {report['transfers']} "
             f"({report.get('quiet_transfers', 0)} overlapping no compute, "
             f"{report.get('retransmitted', 0)} retransmissions)"]
    corr = report.get("correlation")
    if corr is None:
        reason = report.get("insufficient_data",
                            "too_few_active_transfers")
        detail = INSUFFICIENT_REASONS.get(reason,
                                          "too few active transfers")
        lines.append(f"  correlation: n/a — insufficient data "
                     f"({detail})")
    else:
        trend = "matches Fig 10 (stalls depress bandwidth)" if corr < 0 \
            else "does NOT match Fig 10"
        lines.append(f"  correlation(stall fraction, norm. bandwidth): "
                     f"{corr:+.3f}  — {trend}")
    if report.get("bins"):
        lines.append(f"  {'stall fraction':>16}  {'transfers':>9}  "
                     f"{'norm. bw':>9}  {'mean bw':>12}")
        for b in report["bins"]:
            if b["mean_norm_bandwidth"] is None:
                bw, abw = "-", "-"
            else:
                bw = f"{b['mean_norm_bandwidth']:.3f}"
                abw = f"{b['mean_bandwidth_Bps'] / 1e9:.3f} GB/s"
            lines.append(
                f"  {b['stall_lo']:>7.3f}-{b['stall_hi']:<8.3f}"
                f"  {b['transfers']:>9}  {bw:>9}  {abw:>12}")
    return "\n".join(lines)
