"""Hierarchical metrics registry: counters, gauges, histograms.

Names are dot-separated hierarchies (``net.transfers``,
``runtime.tasks``) and each instrument may carry labels
(``net.transfers{protocol=eager}``).  Instruments of the same name with
different label sets coexist; the registry keys on
``(name, sorted(labels))``.

The registry is a pure in-memory accumulator over simulated quantities —
it never touches the wall clock — so two identically-seeded runs export
byte-identical JSON.  ``snapshot``/``delta`` support the campaign
journal: the sweep guard snapshots before a point and journals the
per-point delta.
"""

from __future__ import annotations

import bisect
import json
from typing import Dict, Iterable, List, Mapping, Optional, Tuple

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry",
           "metric_key", "parse_metric_key", "bucket_quantiles"]

LabelItems = Tuple[Tuple[str, str], ...]


def metric_key(name: str, labels: LabelItems) -> str:
    """Render ``name{k=v,...}`` (labels sorted) for exports."""
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


def parse_metric_key(key: str) -> Tuple[str, LabelItems]:
    """Inverse of :func:`metric_key`: ``"n{k=v}"`` → ``("n", (("k","v"),))``.

    Label values are plain identifiers/numbers throughout the stack (no
    commas or braces), so a straight split is exact.
    """
    name, brace, rest = key.partition("{")
    if not brace:
        return key, ()
    inner = rest.rstrip("}")
    items = []
    for part in inner.split(","):
        k, _, v = part.partition("=")
        items.append((k, v))
    return name, tuple(items)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    kind = "counter"

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter increment must be >= 0, got {amount}")
        self.value += amount

    def to_state(self) -> float:
        return self.value


class Gauge:
    """Last-written value (e.g. a configuration knob or level)."""

    __slots__ = ("value",)

    kind = "gauge"

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount

    def to_state(self) -> float:
        return self.value


# Generic default: spans micro-seconds to minutes for durations and
# bytes to gigabytes for sizes (values are unit-free here).
DEFAULT_BUCKETS: Tuple[float, ...] = tuple(
    m * 10.0 ** e for e in range(-6, 3) for m in (1.0, 2.5, 5.0))

QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def bucket_quantiles(bounds, counts, count,
                     qs: Tuple[float, ...] = QUANTILES
                     ) -> Dict[str, object]:
    """Bucket-edge interpolated quantile estimates (p50/p95/p99).

    Linear interpolation inside the bucket holding the target rank;
    the lower edge of the first bucket is 0 (all observed quantities
    are non-negative).  A rank that lands in the *overflow* bucket has
    no upper edge to interpolate against: the estimate clamps to the
    last bound and the export says so with a ``p99_clamped: true``
    companion key — the true tail may be arbitrarily far above the
    reported value.  Exports without overflow ranks carry no extra
    keys, so healthy histograms serialize exactly as before.
    """
    if not count or not bounds:
        return {f"p{int(q * 100)}": 0.0 for q in qs}
    out: Dict[str, object] = {}
    for q in qs:
        target = q * count
        cum = 0.0
        est = bounds[-1]
        clamped = False
        for i, n in enumerate(counts):
            if not n:
                continue
            prev_cum = cum
            cum += n
            if cum >= target:
                overflow = i >= len(bounds)
                lo = bounds[i - 1] if i > 0 else 0.0
                hi = bounds[i] if not overflow else bounds[-1]
                est = lo + (hi - lo) * (target - prev_cum) / n
                clamped = overflow
                break
        key = f"p{int(q * 100)}"
        out[key] = est
        if clamped:
            out[f"{key}_clamped"] = True
    return out


class Histogram:
    """Fixed-bucket histogram with sum and count.

    ``bounds`` are inclusive upper edges; observations above the last
    bound land in the implicit overflow bucket.
    """

    __slots__ = ("bounds", "counts", "sum", "count")

    kind = "histogram"

    def __init__(self, bounds: Optional[Iterable[float]] = None) -> None:
        self.bounds: Tuple[float, ...] = tuple(
            sorted(bounds)) if bounds is not None else DEFAULT_BUCKETS
        self.counts: List[int] = [0] * (len(self.bounds) + 1)
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.counts[bisect.bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_state(self) -> Dict[str, object]:
        return {"sum": self.sum, "count": self.count,
                "buckets": list(self.counts),
                "quantiles": bucket_quantiles(self.bounds, self.counts,
                                              self.count)}


class MetricsRegistry:
    """Registry of named instruments, created lazily on first use."""

    def __init__(self) -> None:
        self._instruments: Dict[Tuple[str, LabelItems], object] = {}

    # -- instrument accessors ---------------------------------------------
    def _get(self, cls, name: str, labels: Mapping[str, object],
             **kwargs):
        items: LabelItems = tuple(
            sorted((k, str(v)) for k, v in labels.items()))
        key = (name, items)
        inst = self._instruments.get(key)
        if inst is None:
            inst = cls(**kwargs)
            self._instruments[key] = inst
        elif not isinstance(inst, cls):
            raise TypeError(
                f"metric {metric_key(name, items)!r} already registered "
                f"as {type(inst).__name__}, not {cls.__name__}")
        return inst

    def counter(self, name: str, **labels) -> Counter:
        return self._get(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._get(Gauge, name, labels)

    def histogram(self, name: str,
                  buckets: Optional[Iterable[float]] = None,
                  **labels) -> Histogram:
        return self._get(Histogram, name, labels, bounds=buckets)

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self):
        return iter(sorted(self._instruments.items()))

    # -- snapshot / delta ---------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """Plain-data view ``{key: {"type":..., "value"/state...}}``."""
        out: Dict[str, object] = {}
        for (name, labels), inst in sorted(self._instruments.items()):
            out[metric_key(name, labels)] = {
                "type": inst.kind, "value": inst.to_state()}
        return out

    def delta(self, before: Mapping[str, object]) -> Dict[str, object]:
        """Change since *before* (a prior :meth:`snapshot`).

        Counters and histograms subtract; gauges report their current
        value (a gauge's "delta" is just where it is now).
        """
        out: Dict[str, object] = {}
        for key, entry in self.snapshot().items():
            prev = before.get(key)
            kind = entry["type"]
            value = entry["value"]
            if prev is None or prev.get("type") != kind:
                out[key] = entry
                continue
            if kind == "counter":
                diff = value - prev["value"]
                if diff:
                    out[key] = {"type": kind, "value": diff}
            elif kind == "histogram":
                pv = prev["value"]
                dcount = value["count"] - pv["count"]
                if dcount:
                    dbuckets = [a - b for a, b in
                                zip(value["buckets"], pv["buckets"])]
                    inst = self._instruments.get(parse_metric_key(key))
                    out[key] = {"type": kind, "value": {
                        "sum": value["sum"] - pv["sum"],
                        "count": dcount,
                        "buckets": dbuckets,
                        # Quantiles of *this delta's* observations —
                        # merge_delta ignores them (it re-derives from
                        # the merged buckets).
                        "quantiles": bucket_quantiles(
                            inst.bounds if inst is not None else (),
                            dbuckets, dcount),
                    }}
            else:  # gauge
                out[key] = entry
        return out

    def merge_delta(self, delta: Mapping[str, object]) -> None:
        """Fold a per-point :meth:`delta` (possibly from another process)
        into this registry.

        The parallel sweep executor runs each point against a fresh
        worker-side registry and ships the point's delta back; merging
        the deltas in submission order reconstructs the registry a
        serial run would have accumulated.  Counters and histogram
        sums/counts/buckets add; gauges take the delta's (current)
        value, i.e. last-merge-wins — the same as last-write-wins in a
        serial run.
        """
        for key, entry in delta.items():
            name, labels = parse_metric_key(key)
            kwargs = dict(labels)
            kind = entry["type"]
            value = entry["value"]
            if kind == "counter":
                self.counter(name, **kwargs).inc(value)
            elif kind == "gauge":
                self.gauge(name, **kwargs).set(value)
            elif kind == "histogram":
                hist = self.histogram(name, **kwargs)
                buckets = value["buckets"]
                if len(buckets) != len(hist.counts):
                    raise ValueError(
                        f"histogram {key!r} bucket layout mismatch "
                        f"({len(buckets)} vs {len(hist.counts)})")
                hist.sum += value["sum"]
                hist.count += value["count"]
                for i, n in enumerate(buckets):
                    hist.counts[i] += n
            else:  # pragma: no cover - future instrument kinds
                raise ValueError(f"unknown metric type {kind!r}")

    # -- export -------------------------------------------------------------
    def to_json(self, extra: Optional[Mapping[str, object]] = None,
                indent: int = 1) -> str:
        """Deterministic JSON export (sorted keys, no wall-clock)."""
        doc: Dict[str, object] = {"metrics": self.snapshot()}
        if extra:
            doc.update(extra)
        return json.dumps(doc, indent=indent, sort_keys=True)

    def export(self, path, extra: Optional[Mapping[str, object]] = None
               ) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json(extra=extra))
            fh.write("\n")
