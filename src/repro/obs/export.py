"""Chrome-tracing JSON emission, validation, and summarisation.

Single home for the serialisation format so the legacy
:class:`~repro.runtime.trace_export.RuntimeTracer` and the new
:class:`~repro.obs.tracer.SpanTracer` emit structurally identical
payloads, and so CI can validate any produced trace without loading it
into Perfetto.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

__all__ = ["chrome_trace_json", "validate_chrome_trace",
           "summarize_chrome_trace", "render_trace_summary"]


def chrome_trace_json(events: List[dict],
                      indent: Optional[int] = None) -> str:
    """Serialise *events* in the Chrome tracing envelope.

    ``indent=None`` yields the compact form used for full cross-layer
    traces; the legacy runtime exporter passes ``indent=1`` to keep its
    historical byte-for-byte output.
    """
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if indent is None:
        return json.dumps(payload, separators=(",", ":"))
    return json.dumps(payload, indent=indent)


_REQUIRED_BY_PHASE = {
    "X": ("ts", "dur"),
    "B": ("ts",),
    "E": ("ts",),
    "i": ("ts",),
    "C": ("ts", "args"),
    "M": ("args",),
}


def validate_chrome_trace(payload) -> List[str]:
    """Structural checks on a Chrome trace; returns a list of problems.

    Accepts the parsed payload (dict) or raw JSON text.  Checks: the
    ``traceEvents`` envelope, per-event required fields, non-negative
    timestamps, and non-negative durations on complete events.
    """
    problems: List[str] = []
    if isinstance(payload, (str, bytes)):
        try:
            payload = json.loads(payload)
        except json.JSONDecodeError as exc:
            return [f"not valid JSON: {exc}"]
    if not isinstance(payload, dict):
        return ["top level is not an object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["missing traceEvents list"]
    for idx, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {idx}: not an object")
            continue
        phase = event.get("ph")
        if phase is None:
            problems.append(f"event {idx}: missing ph")
            continue
        for field in _REQUIRED_BY_PHASE.get(phase, ()):
            if field not in event:
                problems.append(
                    f"event {idx} ({phase} {event.get('name')!r}): "
                    f"missing {field}")
        ts = event.get("ts")
        if ts is not None and ts < 0:
            problems.append(
                f"event {idx} ({event.get('name')!r}): negative ts {ts}")
        if phase == "X":
            dur = event.get("dur")
            if dur is not None and dur < 0:
                problems.append(
                    f"event {idx} ({event.get('name')!r}): "
                    f"negative dur {dur}")
    return problems


def summarize_chrome_trace(payload) -> Dict[str, object]:
    """Aggregate statistics for ``repro trace-summary``."""
    if isinstance(payload, (str, bytes)):
        payload = json.loads(payload)
    events = payload.get("traceEvents", [])
    by_phase: Dict[str, int] = {}
    by_cat: Dict[str, Dict[str, object]] = {}
    lanes = set()
    counter_tracks = set()
    t_min, t_max = None, 0.0
    for event in events:
        phase = event.get("ph", "?")
        by_phase[phase] = by_phase.get(phase, 0) + 1
        ts = event.get("ts")
        if ts is not None:
            t_min = ts if t_min is None else min(t_min, ts)
            t_max = max(t_max, ts + event.get("dur", 0.0))
        if phase in ("X", "B", "i"):
            lanes.add((event.get("pid", 0), event.get("tid", 0)))
            cat = event.get("cat", "?")
            stats = by_cat.setdefault(
                cat, {"events": 0, "total_dur_us": 0.0})
            stats["events"] += 1
            stats["total_dur_us"] += event.get("dur", 0.0)
        elif phase == "C":
            counter_tracks.add(event.get("name", "?"))
    return {
        "events": len(events),
        "by_phase": dict(sorted(by_phase.items())),
        "by_category": {k: {"events": v["events"],
                            "total_dur_us": round(v["total_dur_us"], 3)}
                        for k, v in sorted(by_cat.items())},
        "lanes": len(lanes),
        "counter_tracks": sorted(counter_tracks),
        "span_us": round((t_max - (t_min or 0.0)), 3) if events else 0.0,
    }


def render_trace_summary(summary: Dict[str, object]) -> str:
    lines = [
        f"events        : {summary['events']}",
        f"lanes         : {summary['lanes']}",
        f"span          : {summary['span_us'] / 1e3:.3f} ms",
        "phases        : " + ", ".join(
            f"{k}={v}" for k, v in summary["by_phase"].items()),
    ]
    if summary["by_category"]:
        lines.append("categories    :")
        for cat, stats in summary["by_category"].items():
            lines.append(
                f"  {cat:<12} {stats['events']:>7} events  "
                f"{stats['total_dur_us'] / 1e3:>10.3f} ms")
    if summary["counter_tracks"]:
        lines.append("counter tracks:")
        for name in summary["counter_tracks"]:
            lines.append(f"  {name}")
    return "\n".join(lines)
