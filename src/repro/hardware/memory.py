"""Memory buffers and NUMA placement.

The paper controls *where* data lives (near or far from the NIC) with
explicit NUMA allocation; :class:`Buffer` captures exactly that: a size
and a NUMA node.  Buffers are what ping-pongs transmit and what kernels
stream over, and they carry the registration-cache state (§2.1: ping-pong
buffers are recycled "to take benefit of registration cache").
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import List, Optional

from repro.hardware.topology import Machine, NUMANode

__all__ = ["Buffer", "allocate", "allocate_interleaved"]

_buffer_ids = itertools.count()


@dataclass
class Buffer:
    """A contiguous allocation on one NUMA node of one machine."""

    machine: Machine = field(repr=False)
    numa_id: int = 0
    size: int = 0
    label: str = ""
    id: int = field(default_factory=lambda: next(_buffer_ids))

    @property
    def numa(self) -> NUMANode:
        return self.machine.numa_nodes[self.numa_id]

    def __hash__(self) -> int:
        return self.id

    def __eq__(self, other) -> bool:
        return isinstance(other, Buffer) and other.id == self.id


def allocate(machine: Machine, numa_id: int, size: int,
             label: str = "") -> Buffer:
    """Explicitly allocate *size* bytes on *numa_id* (numactl-style)."""
    if not (0 <= numa_id < len(machine.numa_nodes)):
        raise ValueError(f"machine has no NUMA node {numa_id}")
    if size < 0:
        raise ValueError("size must be >= 0")
    return Buffer(machine=machine, numa_id=numa_id, size=size, label=label)


def allocate_interleaved(machine: Machine, size: int, count: int,
                         label: str = "") -> List[Buffer]:
    """First-touch-style allocation: *count* buffers spread round-robin
    over all NUMA nodes (what StarPU workers produce when each allocates
    its own tiles, §5.3)."""
    n_numa = len(machine.numa_nodes)
    return [allocate(machine, i % n_numa, size, label=f"{label}[{i}]")
            for i in range(count)]
