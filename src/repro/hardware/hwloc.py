"""lstopo-style textual rendering of a machine topology.

The paper's placement reasoning (near/far from the NIC, §4.3) is all
about topology; this renders a :class:`~repro.hardware.topology.Machine`
the way ``hwloc``'s ``lstopo`` would, so users can see which cores are
where before choosing placements.
"""

from __future__ import annotations

import io
from typing import Optional

from repro.hardware.topology import Machine

__all__ = ["render_topology", "render_placement"]


def _format_bw(bps: float) -> str:
    return f"{bps / 1e9:.0f}GB/s"


def render_topology(machine: Machine) -> str:
    """Textual tree of sockets / NUMA nodes / cores / NIC."""
    out = io.StringIO()
    spec = machine.spec
    out.write(f"Machine '{spec.name}' (node {machine.node_id}): "
              f"{len(machine.cores)} cores, "
              f"{len(machine.numa_nodes)} NUMA nodes\n")
    for socket in machine.sockets:
        out.write(f"  Socket P#{socket.id}  "
                  f"(mesh {_format_bw(socket.mesh.capacity)})\n")
        for numa in socket.numa_nodes:
            nic = "  + NIC" if numa is machine.nic_numa else ""
            cores = numa.cores
            out.write(
                f"    NUMANode P#{numa.id}  "
                f"({_format_bw(numa.controller.capacity)} memory, "
                f"{numa.capacity_bytes / 1e9:.0f}GB){nic}\n")
            ids = ", ".join(str(c.id) for c in cores)
            out.write(f"      Cores: {ids}\n")
    links = sorted({(min(a, b), max(a, b))
                    for (a, b) in machine._links})  # noqa: SLF001
    for a, b in links:
        out.write(f"  Link socket{a} <-> socket{b}: "
                  f"{_format_bw(machine.socket_link(a, b).capacity)} "
                  "per direction\n")
    out.write(f"  NIC: {_format_bw(spec.nic.wire_bw)} wire, "
              f"{_format_bw(spec.nic.pcie_bw)} PCIe, attached to "
              f"NUMA P#{machine.nic_numa.id}\n")
    return out.getvalue()


def render_placement(machine: Machine, comm_core: int,
                     compute_cores=None,
                     data_numa: Optional[int] = None) -> str:
    """Annotated core map: C = comm thread, * = computing, . = idle."""
    compute = set(compute_cores or ())
    out = io.StringIO()
    for numa in machine.numa_nodes:
        marks = []
        for core in numa.cores:
            if core.id == comm_core:
                marks.append("C")
            elif core.id in compute:
                marks.append("*")
            else:
                marks.append(".")
        tag = ""
        if numa is machine.nic_numa:
            tag += " [NIC]"
        if data_numa is not None and numa.id == data_numa:
            tag += " [data]"
        out.write(f"NUMA{numa.id} (socket {numa.socket_id}): "
                  f"{''.join(marks)}{tag}\n")
    return out.getvalue()
