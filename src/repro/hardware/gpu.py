"""GPU devices and host-device data movement (§8 future work).

The paper closes with: *"Future work also includes considering the
impact of data movements between main memory and GPUs."*  This module
adds the needed substrate:

* :class:`GPUSpec` / :class:`GPU` — a device with its own HBM (a fluid
  resource), its own PCIe attachment, and a host-side NUMA affinity;
* :func:`GPU.memcpy` — ``cudaMemcpy``-style transfers whose host side
  crosses the same memory controllers and inter-socket links as
  everything else — so H2D/D2H traffic interferes with both STREAM
  *and* the NIC exactly the way the paper asks about;
* :func:`run_gpu_kernel` — roofline execution on the device (compute at
  the GPU's flop rate, memory against HBM).

The accompanying experiments live in :mod:`repro.core.gpu_experiments`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.kernels.blas import TileCost
from repro.sim import Resource
from repro.sim.fluid import Flow

__all__ = ["GPUSpec", "GPU", "attach_gpu", "run_gpu_kernel",
           "GPUKernelStats", "V100", "MI50"]

_gpu_ids = itertools.count()


@dataclass(frozen=True)
class GPUSpec:
    """Device characteristics."""

    name: str
    hbm_bw: float = 800e9          # bytes/s device memory
    pcie_bw: float = 13e9          # bytes/s host link (gen3 x16)
    fp64_flops: float = 7e12       # peak double-precision rate
    attached_numa: int = 0         # host NUMA node of the PCIe slot
    kernel_launch_s: float = 8e-6  # driver launch overhead
    memcpy_setup_s: float = 9e-6   # per-cudaMemcpy overhead
    # Host-side DMA bus-usage multiplier (like the NIC's dma_usage).
    host_usage: float = 1.3


V100 = GPUSpec(name="v100", hbm_bw=830e9, pcie_bw=13e9,
               fp64_flops=7e12)
MI50 = GPUSpec(name="mi50", hbm_bw=960e9, pcie_bw=13e9,
               fp64_flops=6.6e12)


class GPU:
    """One device attached to a machine."""

    def __init__(self, machine, spec: GPUSpec):
        if not (0 <= spec.attached_numa < len(machine.numa_nodes)):
            raise ValueError(f"no NUMA node {spec.attached_numa}")
        self.machine = machine
        self.spec = spec
        self.id = next(_gpu_ids)
        self.hbm = Resource(
            f"n{machine.node_id}.gpu{self.id}.hbm", spec.hbm_bw)
        self.pcie = Resource(
            f"n{machine.node_id}.gpu{self.id}.pcie", spec.pcie_bw)
        self.numa = machine.numa_nodes[spec.attached_numa]

    # -- paths ----------------------------------------------------------
    def host_path(self, host_numa: int) -> List[Resource]:
        """Host-side resources a transfer crosses (mc + fabric + PCIe)."""
        machine = self.machine
        data = machine.numa_nodes[host_numa]
        path: List[Resource] = [data.controller]
        if data.socket_id != self.numa.socket_id:
            path.append(machine.socket_link(data.socket_id,
                                            self.numa.socket_id))
        elif data.id != self.numa.id:
            path.append(machine.sockets[self.numa.socket_id].mesh)
        path.append(self.pcie)
        return path

    # -- transfers ----------------------------------------------------------
    def memcpy(self, nbytes: float, host_numa: Optional[int] = None,
               direction: str = "h2d", label: str = "") -> Flow:
        """Start a host<->device copy; returns the fluid flow.

        The flow crosses the host memory controller (with the DMA usage
        multiplier), the inter-socket fabric if the data is remote to
        the PCIe slot, the device link, and HBM.
        """
        if direction not in ("h2d", "d2h"):
            raise ValueError("direction must be 'h2d' or 'd2h'")
        if nbytes <= 0:
            raise ValueError("nbytes must be > 0")
        if host_numa is None:
            host_numa = self.numa.id
        path = self.host_path(host_numa) + [self.hbm]
        mc = self.machine.numa_nodes[host_numa].controller
        return self.machine.net.transfer(
            path, size=nbytes,
            demand=self.spec.pcie_bw,
            usage={mc: self.spec.host_usage},
            label=label or f"{direction}:gpu{self.id}")

    def memcpy_process(self, nbytes: float,
                       host_numa: Optional[int] = None,
                       direction: str = "h2d") -> Generator:
        """Process: one full cudaMemcpy (setup + transfer); returns the
        achieved bandwidth."""
        sim = self.machine.sim
        start = sim.now
        yield self.spec.memcpy_setup_s
        flow = self.memcpy(nbytes, host_numa=host_numa,
                           direction=direction)
        yield flow.done
        duration = sim.now - start
        return nbytes / duration if duration > 0 else 0.0


def attach_gpu(machine, spec: GPUSpec = V100) -> GPU:
    """Attach a GPU to *machine* (kept outside MachineSpec so the four
    paper presets stay exactly as measured)."""
    gpu = GPU(machine, spec)
    if not hasattr(machine, "gpus"):
        machine.gpus = []
    machine.gpus.append(gpu)
    return gpu


@dataclass
class GPUKernelStats:
    """Result of one device-kernel execution."""

    duration: float
    flops: float
    bytes_moved: float

    @property
    def flop_rate(self) -> float:
        return self.flops / self.duration if self.duration > 0 else 0.0


def run_gpu_kernel(gpu: GPU, cost: TileCost,
                   sweeps: int = 1) -> "object":
    """Launch a roofline kernel on the device; returns the process
    (its value is a :class:`GPUKernelStats`)."""
    if sweeps < 1:
        raise ValueError("sweeps must be >= 1")

    def body() -> Generator:
        sim = gpu.machine.sim
        start = sim.now
        for _ in range(sweeps):
            yield gpu.spec.kernel_launch_s
            cpu_time = cost.flops / gpu.spec.fp64_flops
            t0 = sim.now
            if cost.bytes > 0:
                flow = gpu.machine.net.transfer(
                    [gpu.hbm], size=cost.bytes,
                    demand=gpu.spec.hbm_bw,
                    label=f"gpukernel:{cost.name}")
                yield flow.done
                mem_time = sim.now - t0
                if mem_time < cpu_time:
                    yield cpu_time - mem_time
            elif cpu_time > 0:
                yield cpu_time
        return GPUKernelStats(duration=sim.now - start,
                              flops=cost.flops * sweeps,
                              bytes_moved=cost.bytes * sweeps)

    return gpu.machine.sim.process(body())
