"""DVFS model: per-core frequency with turbo bins, AVX licenses and
governors, plus the dynamic uncore frequency.

The model follows §3 of the paper:

* Idle cores sit at the minimum frequency (ondemand-style behaviour,
  Figure 2 phase B).
* Active cores run at the turbo frequency determined by the number of
  active cores *on the same socket* (weak all-core turbo, Figure 2
  phases A/C).
* Cores executing AVX-512 use the (lower) AVX-512 license table, but do
  **not** drag down non-AVX cores on the same socket (§3.3: the
  communication core stays at 2.5 GHz while 20 AVX cores run at 2.3 GHz).
* The ``userspace`` governor pins all cores to a constant frequency
  (§3.1's experiments with ``cpupower``).
* The uncore frequency ramps with the number of *memory-active* cores on
  the socket; a lone communication thread does not ramp it (this is what
  makes the latency slightly *better* when computation runs side by side,
  §3.2).  It can also be pinned, as the paper does with Likwid.
"""

from __future__ import annotations

import enum
from typing import Dict, Optional

from repro.hardware.presets import MachineSpec
from repro.sim.trace import EpochSource

__all__ = ["CoreActivity", "FrequencyModel"]


class CoreActivity(enum.Enum):
    """What a core is currently executing, for frequency purposes."""

    IDLE = "idle"
    SCALAR = "scalar"      # ordinary integer/FP work, also the comm thread
    AVX512 = "avx512"      # wide-vector work under the AVX-512 license


class FrequencyModel(EpochSource):
    """Tracks per-core activity and answers frequency queries.

    Every frequency a probe can read is a pure function of this model's
    state, so each mutator advances the :class:`EpochSource` generation
    (notifying batch-mode samplers *before* the state moves) — the
    epoch contract behind the cheap dense traces of Figures 2/3.

    Parameters
    ----------
    spec:
        The machine specification (turbo tables, ranges).
    socket_of_core:
        Mapping from global core id to socket id.
    """

    def __init__(self, spec: MachineSpec, socket_of_core: Dict[int, int]):
        self.spec = spec
        self._socket_of_core = dict(socket_of_core)
        self._activity: Dict[int, CoreActivity] = {
            c: CoreActivity.IDLE for c in socket_of_core}
        # Memory-active flags drive the dynamic uncore.
        self._uncore_active: Dict[int, bool] = {
            c: False for c in socket_of_core}
        self._userspace_hz: Optional[float] = None
        self._uncore_fixed_hz: Optional[float] = None
        # Fault injection: per-core hard frequency caps (fail-slow cores).
        self._core_caps: Dict[int, float] = {}
        self._active_count: Dict[int, int] = {}
        self._uncore_count: Dict[int, int] = {}
        for socket in set(socket_of_core.values()):
            self._active_count[socket] = 0
            self._uncore_count[socket] = 0
        # The dynamic uncore frequency and its capacity factor depend
        # only on the per-socket streaming-core count, clamped at
        # ``ramp_cores`` — a handful of distinct values per spec.
        # Precompute both as count-indexed tables with the exact
        # expressions of the formula path below, so lookups return
        # bit-identical floats; the ``_uncore_fixed_hz`` pin bypasses
        # the tables entirely.
        uspec = spec.uncore
        ramp = max(1, uspec.ramp_cores)
        self._uncore_hz_table = tuple(
            uspec.min_hz + (uspec.max_hz - uspec.min_hz)
            * min(1.0, count / ramp)
            for count in range(ramp + 1))
        if uspec.max_hz == uspec.min_hz:
            self._uncore_factor_table = tuple(
                1.0 for _ in range(ramp + 1))
        else:
            floor = spec.memory.uncore_floor
            self._uncore_factor_table = tuple(
                floor + (1.0 - floor)
                * ((hz - uspec.min_hz) / (uspec.max_hz - uspec.min_hz))
                for hz in self._uncore_hz_table)
        self._uncore_ramp = ramp

    # -- governor controls --------------------------------------------------
    def set_userspace(self, hz: Optional[float]) -> None:
        """Pin every core to *hz* (None restores the dynamic governor)."""
        if hz is not None:
            lo, hi = self.spec.freq.allowed_range
            if not (lo <= hz <= hi):
                raise ValueError(
                    f"{hz/1e9:.2f} GHz outside the userspace range "
                    f"[{lo/1e9:.2f}, {hi/1e9:.2f}] GHz")
        self._bump_epoch()
        self._userspace_hz = hz

    def set_uncore(self, hz: Optional[float]) -> None:
        """Pin the uncore frequency (None restores dynamic behaviour)."""
        if hz is not None:
            if not (self.spec.uncore.min_hz <= hz <= self.spec.uncore.max_hz):
                raise ValueError("uncore frequency outside permitted range")
        self._bump_epoch()
        self._uncore_fixed_hz = hz

    def set_core_cap(self, core_id: int, hz: Optional[float]) -> None:
        """Cap *core_id*'s frequency at *hz* (fail-slow fault injection).

        The cap dominates every governor, including ``userspace`` pins —
        a thermally throttled or firmware-degraded core cannot honour the
        requested frequency.  ``None`` lifts the cap.
        """
        if core_id not in self._socket_of_core:
            raise ValueError(f"unknown core id {core_id}")
        if hz is None:
            self._bump_epoch()
            self._core_caps.pop(core_id, None)
        else:
            if hz <= 0:
                raise ValueError("frequency cap must be > 0")
            self._bump_epoch()
            self._core_caps[core_id] = float(hz)

    def core_cap(self, core_id: int) -> Optional[float]:
        """Current fail-slow cap of *core_id*, or ``None``."""
        return self._core_caps.get(core_id)

    # -- activity tracking ----------------------------------------------------
    def set_activity(self, core_id: int, activity: CoreActivity,
                     uncore_active: Optional[bool] = None) -> None:
        """Update what *core_id* is doing.

        ``uncore_active`` marks the core as generating sustained memory
        traffic (drives the uncore ramp); it defaults to True for any
        non-idle activity except when explicitly overridden (the
        communication thread passes ``False``).
        """
        socket = self._socket_of_core[core_id]
        self._bump_epoch()
        old = self._activity[core_id]
        if (old is CoreActivity.IDLE) != (activity is CoreActivity.IDLE):
            self._active_count[socket] += 1 if old is CoreActivity.IDLE else -1
        self._activity[core_id] = activity

        if uncore_active is None:
            uncore_active = activity is not CoreActivity.IDLE
        old_mem = self._uncore_active[core_id]
        if old_mem != uncore_active:
            self._uncore_count[socket] += 1 if uncore_active else -1
        self._uncore_active[core_id] = uncore_active

    def activity(self, core_id: int) -> CoreActivity:
        return self._activity[core_id]

    def active_cores_on_socket(self, socket: int) -> int:
        return self._active_count[socket]

    def streaming_cores_on_socket(self, socket: int) -> int:
        """Number of cores on *socket* marked as sustained memory
        streamers (``uncore_active``)."""
        return self._uncore_count[socket]

    # -- frequency queries --------------------------------------------------
    def core_hz(self, core_id: int) -> float:
        """Instantaneous frequency of *core_id* in Hz."""
        if self._userspace_hz is not None:
            hz = self._userspace_hz
        else:
            activity = self._activity[core_id]
            if activity is CoreActivity.IDLE:
                hz = self.spec.freq.min_hz
            else:
                socket = self._socket_of_core[core_id]
                n_active = self._active_count[socket]
                table = (self.spec.freq.avx512
                         if activity is CoreActivity.AVX512
                         else self.spec.freq.turbo)
                hz = table.frequency(max(1, n_active))
        if self._core_caps:
            cap = self._core_caps.get(core_id)
            if cap is not None:
                hz = min(hz, cap)
        return hz

    def uncore_hz(self, socket: int) -> float:
        """Instantaneous uncore frequency of *socket* in Hz."""
        if self._uncore_fixed_hz is not None:
            return self._uncore_fixed_hz
        count = self._uncore_count[socket]
        ramp = self._uncore_ramp
        return self._uncore_hz_table[count if count < ramp else ramp]

    def uncore_capacity_factor(self, socket: int) -> float:
        """Memory-controller capacity scale for the socket's uncore freq.

        At maximum uncore frequency the factor is 1; at minimum it is the
        spec's ``uncore_floor``.
        """
        if self._uncore_fixed_hz is None:
            count = self._uncore_count[socket]
            ramp = self._uncore_ramp
            return self._uncore_factor_table[count if count < ramp else ramp]
        spec = self.spec.uncore
        if spec.max_hz == spec.min_hz:
            return 1.0
        frac = (self._uncore_fixed_hz - spec.min_hz) / (spec.max_hz - spec.min_hz)
        floor = self.spec.memory.uncore_floor
        return floor + (1.0 - floor) * frac
