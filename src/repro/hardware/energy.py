"""Power and energy accounting (extension, §7 related-work angle).

Much of the paper's related work (Liu et al., Lim et al., Sundriyal et
al.) studies communication phases through an *energy* lens: lowering the
core frequency during communication saves power at some latency cost.
This module adds the accounting needed to ask those questions of the
simulator:

* a per-core **power model**: ``P = idle + dyn·(f/1GHz)^α`` when active
  (AVX-512 multiplies the dynamic part — wide units burn more), plus a
  per-socket uncore term;
* an :class:`EnergyMeter` that integrates machine power over simulated
  time by periodic sampling (like the frequency traces of Figure 2).

With it one can reproduce e.g. Lim et al.'s observation: pinning the
cores to the minimum frequency during a communication-only phase costs
~70 % extra latency (§3.1) but cuts CPU energy substantially.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.hardware.frequency import CoreActivity
from repro.hardware.topology import Machine
from repro.sim.trace import PeriodicSampler, Trace

__all__ = ["PowerModel", "EnergyMeter", "EnergyReport"]


@dataclass(frozen=True)
class PowerModel:
    """Per-core / per-socket power in watts."""

    core_idle_w: float = 1.2        # C-state floor per core
    core_dyn_w: float = 2.6         # dynamic watts at 1 GHz scalar
    freq_exponent: float = 2.4      # ~ V^2 f with V tracking f
    avx_factor: float = 1.8         # AVX-512 units draw more
    uncore_idle_w: float = 8.0
    uncore_dyn_w: float = 9.0       # extra at max uncore frequency

    def core_power(self, machine: Machine, core_id: int) -> float:
        """Instantaneous power of one core."""
        activity = machine.freq.activity(core_id)
        if activity is CoreActivity.IDLE:
            return self.core_idle_w
        f_ghz = machine.freq.core_hz(core_id) / 1e9
        dyn = self.core_dyn_w * f_ghz ** self.freq_exponent
        if activity is CoreActivity.AVX512:
            dyn *= self.avx_factor
        return self.core_idle_w + dyn

    def socket_uncore_power(self, machine: Machine,
                            socket_id: int) -> float:
        spec = machine.spec.uncore
        f = machine.freq.uncore_hz(socket_id)
        if spec.max_hz == spec.min_hz:
            frac = 1.0
        else:
            frac = (f - spec.min_hz) / (spec.max_hz - spec.min_hz)
        return self.uncore_idle_w + self.uncore_dyn_w * frac

    def machine_power(self, machine: Machine) -> float:
        """Instantaneous package power of the whole node."""
        total = sum(self.core_power(machine, c.id) for c in machine.cores)
        total += sum(self.socket_uncore_power(machine, s.id)
                     for s in machine.sockets)
        return total


@dataclass
class EnergyReport:
    """Integrated energy over a measurement window."""

    duration: float
    energy_j: float
    samples: int

    @property
    def average_power_w(self) -> float:
        return self.energy_j / self.duration if self.duration > 0 else 0.0


class EnergyMeter:
    """Integrates a machine's power by periodic sampling."""

    def __init__(self, machine: Machine,
                 model: Optional[PowerModel] = None,
                 period: float = 1e-3):
        self.machine = machine
        self.model = model if model is not None else PowerModel()
        self.period = period
        self._sampler: Optional[PeriodicSampler] = None
        self._start = 0.0

    def start(self) -> "EnergyMeter":
        if self._sampler is not None:
            raise RuntimeError("meter already running")
        self._start = self.machine.sim.now
        # machine_power is a pure function of the frequency model's
        # state (activity, core/uncore hz), so it epoch-batches.
        self._sampler = PeriodicSampler(
            self.machine.sim,
            {"power_w": lambda: self.model.machine_power(self.machine)},
            period=self.period,
            epoch_sources=(self.machine.freq,)).start()
        return self

    def stop(self) -> EnergyReport:
        if self._sampler is None:
            raise RuntimeError("meter not running")
        trace = self._sampler.stop()
        self._sampler = None
        duration = self.machine.sim.now - self._start
        values = trace.values("power_w")
        # Left-rectangle integration over the sampling grid.
        energy = float(values.sum()) * self.period if values.size else 0.0
        return EnergyReport(duration=duration, energy_j=energy,
                            samples=int(values.size))
