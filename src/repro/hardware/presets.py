"""Declarative machine specifications and the paper's cluster presets.

Every dial of the simulator lives here.  The four presets correspond to
the clusters of §2.2 of the paper:

* ``henri`` — dual Intel Xeon Gold 6140 @2.3 GHz, 36 cores, 4 NUMA nodes
  (sub-NUMA clustering), InfiniBand ConnectX-4 EDR.  The reference
  machine for most figures.
* ``bora`` — dual Intel Xeon Gold 6240 @2.6 GHz, 36 cores, 2 NUMA nodes,
  Intel Omni-Path 100.  Omni-Path is *onloaded*: large-message transfers
  consume CPU and are noisier; contention shows up later (≈20 cores) but
  computation suffers when it shares the communication socket.
* ``billy`` — dual AMD EPYC 7502 (Zen2) @2.5 GHz, 64 cores, 8 NUMA nodes,
  InfiniBand ConnectX-6 HDR.  Higher memory bandwidth; the
  memory-/compute-bound boundary sits near 20 flop/B (§4.5).
* ``pyxis`` — dual Cavium ThunderX2 @2.5 GHz, 64 cores, 2 NUMA nodes,
  InfiniBand ConnectX-6 EDR.

Calibration anchors (henri, from the paper):

==========================================  =======================
Quantity                                     Paper value
==========================================  =======================
latency @ core 2.3 GHz (constant)            1.8 µs
latency @ core 1.0 GHz (constant)            3.1 µs
uncore-only latency effect                   ≈ +5 %
bandwidth @ uncore 2.4 / 1.2 GHz             10.5 / 10.1 GB/s
latency near/far NIC (no load)               1.39 / 1.67 µs
latency ping-pong alone vs w/ compute        1.7 / 1.52 µs (fig 2)
network bw loss, 36 STREAM cores             ≈ −2/3
STREAM loss @5 cores w/ bandwidth pingpong   ≤ 25 %
StarPU latency overhead                      +38 µs
memory/compute ridge (tunable TRIAD)         ≈ 6 flop/B
==========================================  =======================
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, Optional, Tuple

__all__ = [
    "TurboTable", "CoreFreqSpec", "UncoreSpec", "MemorySpec",
    "InterconnectSpec", "NICSpec", "ContentionSpec", "MachineSpec",
    "HENRI", "BORA", "BILLY", "PYXIS", "get_preset", "available_presets",
]

GHZ = 1e9
GB = 1e9
MB = 1e6
KB = 1e3
US = 1e-6


@dataclass(frozen=True)
class TurboTable:
    """Frequency (Hz) as a function of the number of active cores.

    ``bins`` is a tuple of ``(max_active_cores, frequency_hz)`` sorted by
    the first element; the frequency of the first bin whose bound covers
    the active-core count applies.  Counts beyond the last bin use the
    last bin's frequency.
    """

    bins: Tuple[Tuple[int, float], ...]

    def __post_init__(self):
        if not self.bins:
            raise ValueError("turbo table needs at least one bin")
        bounds = [b for b, _ in self.bins]
        if bounds != sorted(bounds):
            raise ValueError("turbo bins must be sorted by active-core bound")

    def frequency(self, active_cores: int) -> float:
        """Frequency when *active_cores* cores are active on the socket."""
        if active_cores <= 0:
            return self.bins[0][1]
        for bound, freq in self.bins:
            if active_cores <= bound:
                return freq
        return self.bins[-1][1]

    @property
    def max_frequency(self) -> float:
        return max(freq for _, freq in self.bins)

    @property
    def min_frequency(self) -> float:
        return min(freq for _, freq in self.bins)


@dataclass(frozen=True)
class CoreFreqSpec:
    """Per-core frequency behaviour."""

    min_hz: float                 # idle / powersave frequency
    base_hz: float                # guaranteed all-core frequency
    turbo: TurboTable             # non-AVX turbo bins (per socket)
    avx512: TurboTable            # AVX-512 license bins (per socket)
    allowed_range: Tuple[float, float] = (0.0, math.inf)  # userspace range

    def __post_init__(self):
        if not (0 < self.min_hz <= self.base_hz):
            raise ValueError("need 0 < min_hz <= base_hz")


@dataclass(frozen=True)
class UncoreSpec:
    """Uncore (LLC + memory controller) frequency behaviour."""

    min_hz: float
    max_hz: float
    # Number of memory-active cores on a socket that drives the dynamic
    # uncore frequency to its maximum.
    ramp_cores: int = 4

    def __post_init__(self):
        if not (0 < self.min_hz <= self.max_hz):
            raise ValueError("need 0 < min_hz <= max_hz")


@dataclass(frozen=True)
class MemorySpec:
    """Memory system calibration."""

    controller_bw: float          # bytes/s per NUMA-node memory controller
    per_core_bw: float            # max bytes/s a single core can stream
    numa_capacity: float = 64e9   # bytes of DRAM per NUMA node
    # Fraction of controller capacity retained at minimum uncore frequency.
    uncore_floor: float = 0.85


@dataclass(frozen=True)
class InterconnectSpec:
    """Inter-NUMA / inter-socket fabric."""

    socket_link_bw: float         # bytes/s per inter-socket (UPI/xGMI) link
    intra_socket_bw: float        # bytes/s between NUMA nodes of a socket
    hop_latency: float            # seconds added per inter-socket hop (PIO)
    intra_hop_latency: float = 20e-9


@dataclass(frozen=True)
class NICSpec:
    """NIC and network-wire calibration."""

    wire_bw: float                 # bytes/s on the wire (asymptotic goodput)
    pcie_bw: float                 # bytes/s of the NIC's PCIe attachment
    wire_latency: float            # seconds of pure hardware latency
    o_send_cycles: float           # software send overhead (CPU cycles)
    o_recv_cycles: float           # software receive overhead (CPU cycles)
    pio_uncore_cycles: float       # PIO/doorbell cycles paid at uncore freq
    eager_threshold: int           # bytes; above this, rendezvous protocol
    rndv_rtt_factor: float = 1.0   # handshake costs this many extra latencies
    # DMA arbitration on the memory system:
    dma_usage: float = 1.3         # bus bytes consumed per payload byte
    dma_weight: float = 2.5        # max-min fairness weight of DMA flows
    # Latency-sensitivity of the DMA engines: efficiency drops as the
    # memory controllers on the path fill up *before* the fair-share limit
    # binds (limited outstanding requests × higher memory latency).
    dma_eff_gamma: float = 0.12
    dma_eff_power: float = 3.0
    # Uncore frequency sensitivity of DMA efficiency (bandwidth anchor:
    # 10.5 -> 10.1 GB/s between max and min uncore on henri).
    dma_uncore_sensitivity: float = 0.04
    # Eager-path copy bandwidth (pipelined PIO/copy) and its congestion
    # sensitivity.
    eager_copy_bw: float = 3.0e9
    registration_cost: float = 40e-6   # first-touch memory registration
    onload_copy: bool = False      # Omni-Path style: large msgs consume CPU


@dataclass(frozen=True)
class ContentionSpec:
    """Latency-penalty model for small-message (PIO) traffic.

    PIO doorbells/copies are *posted* writes: they are largely insensitive
    to raw DRAM bandwidth consumed elsewhere, but they do queue behind the
    ring/uncore transactions of memory-streaming cores sharing the
    communication thread's socket.  The penalty is therefore driven by the
    fraction of the comm socket's cores that are streaming memory, and it
    is amplified when the PIO crosses an inter-socket link:

    ``penalty = (mc_coef + hops * link_coef) * colocated_frac ** power``

    This reproduces Table 1 of the paper: near-NIC comm threads degrade
    slightly and early (computing threads land on their socket first, the
    plateau is ``mc_coef``); far comm threads degrade late (computing
    threads only reach their socket past half the machine) but strongly
    (``mc_coef + link_coef`` roughly doubles the latency).
    """

    mc_coef: float = 0.25e-6
    link_coef: float = 0.65e-6
    power: float = 2.0

    def pio_penalty(self, colocated_frac: float, hops: int) -> float:
        """Penalty in seconds for one PIO crossing.

        Parameters
        ----------
        colocated_frac:
            Fraction (0..1) of the comm socket's other cores that are
            streaming memory.
        hops:
            Inter-socket hops crossed by the PIO (0 when the comm thread
            sits on the NIC's socket).
        """
        frac = min(max(colocated_frac, 0.0), 1.0)
        return (self.mc_coef + hops * self.link_coef) * frac ** self.power


@dataclass(frozen=True)
class MachineSpec:
    """Complete description of one cluster's compute node."""

    name: str
    sockets: int
    numa_per_socket: int
    cores_per_numa: int
    freq: CoreFreqSpec
    uncore: UncoreSpec
    memory: MemorySpec
    interconnect: InterconnectSpec
    nic: NICSpec
    nic_numa: int = 0              # NUMA node the NIC is attached to
    contention: ContentionSpec = field(default_factory=ContentionSpec)
    # Arithmetic throughput of one core for scalar/compiled loops,
    # flops per cycle (used by the roofline kernel model).
    flops_per_cycle: float = 4.0
    avx_flops_per_cycle: float = 32.0
    # Measurement noise (relative sigma) applied to observed durations.
    noise: float = 0.015

    def __post_init__(self):
        if self.sockets < 1 or self.numa_per_socket < 1 or self.cores_per_numa < 1:
            raise ValueError("machine must have >=1 socket/NUMA/core")
        if not (0 <= self.nic_numa < self.sockets * self.numa_per_socket):
            raise ValueError("nic_numa out of range")

    @property
    def n_numa(self) -> int:
        return self.sockets * self.numa_per_socket

    @property
    def n_cores(self) -> int:
        return self.n_numa * self.cores_per_numa

    def with_overrides(self, **kwargs) -> "MachineSpec":
        """Return a copy with some fields replaced (calibration helper)."""
        return replace(self, **kwargs)


# ---------------------------------------------------------------------------
# Cluster presets
# ---------------------------------------------------------------------------

HENRI = MachineSpec(
    name="henri",
    sockets=2,
    numa_per_socket=2,        # sub-NUMA clustering: 4 NUMA nodes total
    cores_per_numa=9,         # 36 cores
    freq=CoreFreqSpec(
        min_hz=1.0 * GHZ,
        base_hz=2.3 * GHZ,
        turbo=TurboTable((
            (2, 3.7 * GHZ), (4, 3.4 * GHZ), (8, 3.0 * GHZ),
            (12, 2.8 * GHZ), (16, 2.6 * GHZ), (36, 2.5 * GHZ),
        )),
        avx512=TurboTable((
            (4, 3.0 * GHZ), (8, 2.7 * GHZ), (12, 2.5 * GHZ),
            (36, 2.3 * GHZ),
        )),
        allowed_range=(1.0 * GHZ, 2.3 * GHZ),
    ),
    uncore=UncoreSpec(min_hz=1.2 * GHZ, max_hz=2.4 * GHZ, ramp_cores=4),
    memory=MemorySpec(
        controller_bw=52.0 * GB,   # one SNC controller, STREAM-achievable
        per_core_bw=13.0 * GB,
        numa_capacity=24e9,
    ),
    interconnect=InterconnectSpec(
        socket_link_bw=19.0 * GB,
        intra_socket_bw=60.0 * GB,
        hop_latency=0.13 * US,
        intra_hop_latency=0.02 * US,
    ),
    nic=NICSpec(
        wire_bw=10.6 * GB,         # EDR 100 Gb/s, protocol-limited
        pcie_bw=13.0 * GB,         # PCIe gen3 x16
        wire_latency=0.36 * US,
        o_send_cycles=1250.0,
        o_recv_cycles=1150.0,
        pio_uncore_cycles=240.0,
        eager_threshold=32 * 1024,
        dma_usage=1.3,
        dma_weight=2.5,
        dma_eff_gamma=0.18,
        dma_eff_power=2.2,
        eager_copy_bw=3.0 * GB,
    ),
    nic_numa=0,
    flops_per_cycle=4.0,
    avx_flops_per_cycle=32.0,
)

BORA = MachineSpec(
    name="bora",
    sockets=2,
    numa_per_socket=1,
    cores_per_numa=18,        # 36 cores, 2 NUMA nodes
    freq=CoreFreqSpec(
        min_hz=1.0 * GHZ,
        base_hz=2.6 * GHZ,
        turbo=TurboTable((
            (2, 3.9 * GHZ), (4, 3.6 * GHZ), (8, 3.3 * GHZ),
            (12, 3.1 * GHZ), (18, 2.9 * GHZ), (36, 2.8 * GHZ),
        )),
        avx512=TurboTable((
            (4, 3.2 * GHZ), (8, 2.9 * GHZ), (12, 2.7 * GHZ),
            (36, 2.6 * GHZ),
        )),
        allowed_range=(1.0 * GHZ, 2.6 * GHZ),
    ),
    uncore=UncoreSpec(min_hz=1.2 * GHZ, max_hz=2.4 * GHZ, ramp_cores=6),
    memory=MemorySpec(
        controller_bw=105.0 * GB,  # full socket, 6 ch DDR4-2933
        per_core_bw=13.5 * GB,
        numa_capacity=96e9,
    ),
    interconnect=InterconnectSpec(
        socket_link_bw=20.8 * GB,
        intra_socket_bw=80.0 * GB,
        hop_latency=0.13 * US,
    ),
    nic=NICSpec(
        wire_bw=10.8 * GB,         # Omni-Path 100
        pcie_bw=13.0 * GB,
        wire_latency=0.50 * US,
        o_send_cycles=1400.0,
        o_recv_cycles=1300.0,
        pio_uncore_cycles=240.0,
        eager_threshold=8 * 1024,
        dma_usage=1.5,             # onload protocol: heavier bus usage
        dma_weight=2.0,
        dma_eff_gamma=0.10,
        dma_eff_power=3.0,
        eager_copy_bw=2.5 * GB,
        onload_copy=True,
    ),
    nic_numa=0,
    flops_per_cycle=4.0,
    avx_flops_per_cycle=32.0,
    noise=0.05,                    # paper: wide deviation on Omni-Path
)

BILLY = MachineSpec(
    name="billy",
    sockets=2,
    numa_per_socket=4,
    cores_per_numa=8,          # 64 cores, 8 NUMA nodes
    freq=CoreFreqSpec(
        min_hz=1.5 * GHZ,
        base_hz=2.5 * GHZ,
        turbo=TurboTable((
            (4, 3.35 * GHZ), (8, 3.2 * GHZ), (16, 3.0 * GHZ),
            (32, 2.8 * GHZ), (64, 2.6 * GHZ),
        )),
        # Zen2 has no AVX-512; AVX2 barely affects frequency.
        avx512=TurboTable((
            (8, 3.1 * GHZ), (32, 2.8 * GHZ), (64, 2.6 * GHZ),
        )),
        allowed_range=(1.5 * GHZ, 2.5 * GHZ),
    ),
    uncore=UncoreSpec(min_hz=1.33 * GHZ, max_hz=1.6 * GHZ, ramp_cores=4),
    memory=MemorySpec(
        controller_bw=38.0 * GB,   # one of 8 NUMA quadrant controllers
        per_core_bw=20.0 * GB,
        numa_capacity=16e9,
    ),
    interconnect=InterconnectSpec(
        socket_link_bw=35.0 * GB,  # xGMI2
        intra_socket_bw=70.0 * GB,
        hop_latency=0.11 * US,
    ),
    nic=NICSpec(
        wire_bw=23.0 * GB,         # HDR 200 Gb/s
        pcie_bw=26.0 * GB,         # PCIe gen4 x16
        wire_latency=0.35 * US,
        o_send_cycles=1150.0,
        o_recv_cycles=1050.0,
        pio_uncore_cycles=220.0,
        eager_threshold=32 * 1024,
        dma_usage=1.3,
        dma_weight=2.5,
        dma_eff_gamma=0.10,
        dma_eff_power=3.0,
        eager_copy_bw=3.5 * GB,
    ),
    nic_numa=0,
    flops_per_cycle=4.0,
    avx_flops_per_cycle=16.0,
)

PYXIS = MachineSpec(
    name="pyxis",
    sockets=2,
    numa_per_socket=1,
    cores_per_numa=32,         # 64 cores, 2 NUMA nodes
    freq=CoreFreqSpec(
        min_hz=1.0 * GHZ,
        base_hz=2.5 * GHZ,
        turbo=TurboTable((
            (32, 2.5 * GHZ), (64, 2.5 * GHZ),  # ThunderX2: flat frequency
        )),
        avx512=TurboTable((
            (64, 2.5 * GHZ),
        )),
        allowed_range=(1.0 * GHZ, 2.5 * GHZ),
    ),
    uncore=UncoreSpec(min_hz=1.6 * GHZ, max_hz=1.6 * GHZ, ramp_cores=4),
    memory=MemorySpec(
        controller_bw=110.0 * GB,  # 8 ch DDR4 per socket
        per_core_bw=10.0 * GB,
        numa_capacity=128e9,
    ),
    interconnect=InterconnectSpec(
        socket_link_bw=30.0 * GB,
        intra_socket_bw=90.0 * GB,
        hop_latency=0.15 * US,
    ),
    nic=NICSpec(
        wire_bw=11.0 * GB,         # ConnectX-6 EDR
        pcie_bw=13.0 * GB,
        wire_latency=0.70 * US,
        o_send_cycles=1900.0,      # ARM cores: more cycles per op
        o_recv_cycles=1800.0,
        pio_uncore_cycles=350.0,
        eager_threshold=32 * 1024,
        dma_usage=1.3,
        dma_weight=2.5,
        dma_eff_gamma=0.10,
        dma_eff_power=3.0,
        eager_copy_bw=2.2 * GB,
    ),
    nic_numa=0,
    flops_per_cycle=4.0,
    avx_flops_per_cycle=8.0,
)

_PRESETS: Dict[str, MachineSpec] = {
    "henri": HENRI,
    "bora": BORA,
    "billy": BILLY,
    "pyxis": PYXIS,
}


def get_preset(name: str) -> MachineSpec:
    """Look up a cluster preset by name (case-insensitive)."""
    try:
        return _PRESETS[name.lower()]
    except KeyError:
        raise KeyError(
            f"unknown preset {name!r}; available: {sorted(_PRESETS)}") from None


def available_presets() -> Tuple[str, ...]:
    return tuple(sorted(_PRESETS))
