"""Simulated CPU performance counters.

The paper uses ``pmu-tools``/``perf`` to measure the fraction of
execution time the CPU is stalled on memory accesses (Figure 10, bottom
panel).  In the simulator, kernels know exactly which share of each
executed slice was memory-bound, so the counters are maintained by
construction rather than sampled.

Counters are cumulative; experiments snapshot them before/after a phase
and subtract (:meth:`CycleCounters.snapshot` / :meth:`CycleCounters.delta`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Optional

from repro.sim.trace import EpochSource

__all__ = ["CoreCounterState", "CycleCounters"]


@dataclass
class CoreCounterState:
    """Accumulated per-core times, in seconds."""

    busy: float = 0.0           # executing anything
    mem_stall: float = 0.0      # of which: stalled on memory accesses
    flops: float = 0.0          # floating point operations retired
    bytes_moved: float = 0.0    # DRAM traffic caused by this core
    # Of mem_stall: the *excess* over the uncontended memory time, i.e.
    # cycles lost to other traffic on the memory system (what the §8
    # worker autotuner minimises).
    contention_stall: float = 0.0

    def copy(self) -> "CoreCounterState":
        return CoreCounterState(self.busy, self.mem_stall,
                                self.flops, self.bytes_moved,
                                self.contention_stall)


class CycleCounters(EpochSource):
    """Per-core counter bank for one machine.

    An :class:`~repro.sim.trace.EpochSource`: every recorded slice
    advances the epoch generation, so samplers probing counter
    aggregates can reuse cached values between slices (and batch-emit
    them) instead of re-walking the bank per tick.
    """

    def __init__(self, core_ids: Iterable[int]):
        self._state: Dict[int, CoreCounterState] = {
            c: CoreCounterState() for c in core_ids}

    def record(self, core_id: int, busy: float, mem_stall: float = 0.0,
               flops: float = 0.0, bytes_moved: float = 0.0,
               contention_stall: float = 0.0) -> None:
        """Accumulate a finished execution slice on *core_id*."""
        if busy < 0 or mem_stall < 0 or mem_stall > busy * (1 + 1e-9):
            raise ValueError(
                f"invalid slice: busy={busy}, mem_stall={mem_stall}")
        if contention_stall < 0 or contention_stall > mem_stall * (1 + 1e-9):
            raise ValueError("contention_stall must be within mem_stall")
        self._bump_epoch()
        st = self._state[core_id]
        st.busy += busy
        st.mem_stall += min(mem_stall, busy)
        st.flops += flops
        st.bytes_moved += bytes_moved
        st.contention_stall += min(contention_stall, mem_stall)

    def state(self, core_id: int) -> CoreCounterState:
        return self._state[core_id]

    def totals(self) -> CoreCounterState:
        """Machine-wide aggregate of all cores, without copying the bank.

        Cheap enough to call around every message — the telemetry layer
        samples it before/after a transfer to attribute the memory-stall
        cycles that overlapped it (the Fig-10 correlation substrate).
        """
        total = CoreCounterState()
        for st in self._state.values():
            total.busy += st.busy
            total.mem_stall += st.mem_stall
            total.flops += st.flops
            total.bytes_moved += st.bytes_moved
            total.contention_stall += st.contention_stall
        return total

    def snapshot(self) -> Dict[int, CoreCounterState]:
        """Copy of all counters, for later :meth:`delta`."""
        return {c: st.copy() for c, st in self._state.items()}

    def delta(self, before: Dict[int, CoreCounterState],
              cores: Optional[Iterable[int]] = None) -> CoreCounterState:
        """Aggregate counters accumulated since *before* over *cores*."""
        total = CoreCounterState()
        selected = list(cores) if cores is not None else list(self._state)
        for c in selected:
            now = self._state[c]
            prev = before.get(c, CoreCounterState())
            total.busy += now.busy - prev.busy
            total.mem_stall += now.mem_stall - prev.mem_stall
            total.flops += now.flops - prev.flops
            total.bytes_moved += now.bytes_moved - prev.bytes_moved
            total.contention_stall += (now.contention_stall
                                       - prev.contention_stall)
        return total

    @staticmethod
    def stall_fraction(agg: CoreCounterState) -> float:
        """Fraction of busy time stalled on memory (the paper's metric)."""
        if agg.busy <= 0:
            return 0.0
        return agg.mem_stall / agg.busy
