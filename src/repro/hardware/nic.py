"""NIC behaviour: DMA efficiency, registration cache.

Two NIC properties matter for the paper's results:

* **DMA engines are latency-sensitive.**  A NIC keeps a bounded number of
  outstanding PCIe/memory reads; when compute cores load the memory
  controllers, each read takes longer and achieved DMA bandwidth drops
  *before* the fair-share limit binds.  This is why Figure 4b shows the
  network bandwidth dipping from only 3 computing cores, while max-min
  arithmetic alone would protect the (demand-limited) NIC until much
  higher core counts.  :func:`dma_efficiency` models this as a demand
  de-rating from the utilisation the *other* traffic imposes on the DMA
  path.
* **Memory registration is expensive but cached.**  The paper recycles
  ping-pong buffers to hit the registration cache (§2.1); the rendezvous
  path pays :attr:`~repro.hardware.presets.NICSpec.registration_cost`
  only on a cache miss.
"""

from __future__ import annotations

from typing import Set

from repro.hardware.memory import Buffer
from repro.hardware.topology import Machine

__all__ = ["RegistrationCache", "dma_efficiency", "dma_demand"]


class RegistrationCache:
    """Pin-down cache of registered buffers (Tezuka et al. [20])."""

    def __init__(self, capacity: int = 1024):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self._entries: "dict[int, None]" = {}
        self.hits = 0
        self.misses = 0

    def lookup(self, buffer: Buffer) -> bool:
        """True (hit) if *buffer* is registered; registers it otherwise
        (returning False), evicting LRU entries beyond capacity."""
        if buffer.id in self._entries:
            self._entries.pop(buffer.id)
            self._entries[buffer.id] = None  # refresh LRU position
            self.hits += 1
            return True
        self.misses += 1
        self._entries[buffer.id] = None
        while len(self._entries) > self.capacity:
            oldest = next(iter(self._entries))
            del self._entries[oldest]
        return False

    def invalidate(self, buffer: Buffer) -> None:
        self._entries.pop(buffer.id, None)

    def flush(self) -> int:
        """Drop every entry (fault injection: full cache invalidation,
        as after a memory-hotplug or ODP teardown event); returns the
        number of entries dropped."""
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def __len__(self) -> int:
        return len(self._entries)


def _path_pressure(machine: Machine, data_numa: int) -> float:
    """Utilisation (0..1) that other traffic imposes on the DMA path's
    memory-side resources (controller + inter-socket link if crossed)."""
    pressure = 0.0
    for res in machine.dma_path(data_numa):
        if res is machine.pcie:
            continue  # the NIC does not compete with itself on PCIe
        pressure = max(pressure, min(1.0, machine.net.utilization(res)))
    return pressure


def dma_efficiency(machine: Machine, data_numa: int) -> float:
    """Fraction of wire bandwidth the DMA engines can sustain right now.

    Combines the congestion de-rating with the uncore-frequency
    sensitivity (bandwidth anchor: 10.5 vs 10.1 GB/s between uncore
    extremes on henri, §3.1).
    """
    spec = machine.spec.nic
    rho = _path_pressure(machine, data_numa)
    congestion = 1.0 - spec.dma_eff_gamma * rho ** spec.dma_eff_power

    uspec = machine.spec.uncore
    fu = machine.freq.uncore_hz(machine.nic_numa.socket_id)
    if uspec.max_hz > 0:
        frac = fu / uspec.max_hz
    else:  # pragma: no cover - specs forbid this
        frac = 1.0
    uncore = 1.0 - spec.dma_uncore_sensitivity * (1.0 - frac)
    return max(0.05, congestion * uncore)


def dma_demand(machine: Machine, data_numa: int) -> float:
    """Current achievable DMA payload rate (bytes/s) for a rendezvous
    transfer whose local data lives on *data_numa*."""
    return machine.spec.nic.wire_bw * dma_efficiency(machine, data_numa)
