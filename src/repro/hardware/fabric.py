"""Composable cluster fabrics: topology-owned links and routing.

The seed model wired every node pair directly (one full-duplex
:class:`~repro.sim.fluid.Resource` per directed pair, optionally behind a
single shared ``switch``).  That is the 2-node case of the paper; at rack
scale the *fabric* itself becomes the contended resource — "Modeling and
Analysis of Application Interference on Dragonfly+" shows cross-
application slowdown is dominated by shared global links, not NICs.

A :class:`Topology` owns the fabric's resources and the routing function
``route(src, dst) -> [Resource, ...]``.  Transfers simply join the flow
network on every resource of their route, so link/switch contention falls
out of the same fluid max-min solver (and its dirty-component
incrementality) that already models memory controllers and wires.

Concrete topologies:

``fullmesh``
    The seed behavior, bit-identical: one directed wire per pair, plus an
    optional shared ``switch`` resource crossed by every transfer.
``fattree``
    Two-level k-ary fat-tree (leaf + spine).  Hosts hang off leaves;
    cross-leaf routes climb a deterministic spine.  ``oversub`` thins the
    uplinks (1.0 = non-blocking Clos).
``dragonfly``
    One-level dragonfly: all-to-all router groups joined by all-to-all
    global links, minimal routing (local hop → global hop → local hop).
``torus``
    2D/3D torus with dimension-order routing and shortest-wrap links.

All topologies are O(n·k) in resources, not O(n²) — the full mesh keeps
its eager pair construction purely for byte-compatibility with the seed.
"""

from __future__ import annotations

import inspect
import math
from typing import Dict, List, Optional, Sequence, Tuple

from repro.sim.fluid import Resource

__all__ = [
    "Topology", "FullMesh", "FatTree", "Dragonfly", "Torus",
    "TOPOLOGIES", "make_topology", "validate_topology_params",
]


class Topology:
    """Owns a fabric's resources and its routing function.

    Lifecycle: construct with shape parameters, then :meth:`build` once
    with the node count and default wire bandwidth (done by
    ``Cluster.__init__``).  After that :meth:`route`, :meth:`wire`,
    :meth:`links` and :meth:`find_link` are live.
    """

    kind = "topology"

    def __init__(self) -> None:
        self.n_nodes = 0
        self.wire_bw = 0.0
        self._built = False
        # label -> Resource, insertion order == lane order.
        self._links: Dict[str, Resource] = {}
        # Addressable (find_link) but not exported as telemetry lanes.
        self._aux: Dict[str, Resource] = {}

    # -- construction ---------------------------------------------------
    def build(self, n_nodes: int, wire_bw: float) -> "Topology":
        if self._built:
            raise RuntimeError(
                f"{self.kind} topology is already built for "
                f"{self.n_nodes} nodes; topologies are single-use")
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if wire_bw <= 0:
            raise ValueError("wire_bw must be > 0")
        self.n_nodes = n_nodes
        self.wire_bw = float(wire_bw)
        self._build()
        self._built = True
        return self

    def _build(self) -> None:
        raise NotImplementedError

    def _link(self, label: str, capacity: float) -> Resource:
        res = Resource(label, capacity)
        self._links[label] = res
        return res

    # -- routing --------------------------------------------------------
    def check_pair(self, src: int, dst: int) -> None:
        """Validate a (src, dst) node pair with a descriptive error."""
        last = self.n_nodes - 1
        for name, node in (("src", src), ("dst", dst)):
            if not isinstance(node, int) or isinstance(node, bool):
                raise ValueError(
                    f"{name} node id must be an int, got {node!r}")
            if not 0 <= node <= last:
                raise ValueError(
                    f"{name} node id {node} is outside this "
                    f"{self.n_nodes}-node cluster (valid ids: 0..{last})")
        if src == dst:
            raise ValueError(
                f"no fabric route from node {src} to itself: src and dst "
                f"must differ (valid ids: 0..{last})")

    def route(self, src: int, dst: int) -> List[Resource]:
        """Fabric resources a src->dst transfer crosses, in hop order."""
        self.check_pair(src, dst)
        return self._route(src, dst)

    def _route(self, src: int, dst: int) -> List[Resource]:
        raise NotImplementedError

    def wire(self, src: int, dst: int) -> Resource:
        """The injection link of the src->dst route (first fabric hop)."""
        self.check_pair(src, dst)
        return self._route(src, dst)[0]

    def switch_hops(self, src: int, dst: int) -> int:
        """Number of switching elements a src->dst route crosses (the
        full-mesh wire latency already accounts for one)."""
        return 1

    def extra_latency(self, src: int, dst: int) -> float:
        """Additional one-way latency beyond the base wire latency.

        Each switch crossing past the first costs :attr:`hop_latency`
        seconds.  Exactly ``0.0`` on the full mesh so the seed's event
        arithmetic is untouched.
        """
        hops = self.switch_hops(src, dst) - 1
        if hops <= 0:
            return 0.0
        return hops * self.hop_latency

    #: Per-extra-switch-hop latency (seconds); ~a switch ASIC traversal.
    hop_latency = 150e-9

    # -- link addressing ------------------------------------------------
    def links(self) -> List[Tuple[str, Resource]]:
        """All fabric links as ``(label, resource)``, stable order.

        This is the telemetry lane catalog and the namespace for
        link-targeted fault injection (``link=<label>``).
        """
        return list(self._links.items())

    def find_link(self, label: str) -> Resource:
        res = self._links.get(label) or self._aux.get(label)
        if res is None:
            sample = ", ".join(list(self._links)[:6])
            raise ValueError(
                f"unknown fabric link {label!r} on this {self.kind} "
                f"topology ({len(self._links)} links, e.g. {sample})")
        return res

    def n_links(self) -> int:
        return len(self._links) + len(self._aux)

    def describe(self) -> str:
        return f"{self.kind}({self.n_nodes} nodes, {self.n_links()} links)"


class FullMesh(Topology):
    """The seed fabric: one directed wire per node pair.

    Optionally every transfer also crosses a single shared ``switch``
    resource (``switch_bw``) — the oversubscribed-fabric toy model used
    by >2-node studies before real topologies existed.
    """

    kind = "fullmesh"

    def __init__(self, switch_bw: Optional[float] = None):
        super().__init__()
        if switch_bw is not None and switch_bw <= 0:
            raise ValueError("switch_bw must be > 0")
        self.switch_bw = switch_bw
        self.switch: Optional[Resource] = None
        self._wires: Dict[Tuple[int, int], Resource] = {}

    def _build(self) -> None:
        # Same construction order and names as the seed: a-major, then b.
        for a in range(self.n_nodes):
            for b in range(self.n_nodes):
                if a != b:
                    self._wires[(a, b)] = self._link(
                        f"wire{a}->{b}", self.wire_bw)
        if self.switch_bw is not None:
            # The switch is addressable (faults) but is not a lane — the
            # seed's telemetry exported wires only.
            self.switch = Resource("switch", self.switch_bw)
            self._aux["switch"] = self.switch

    def wire(self, src: int, dst: int) -> Resource:
        self.check_pair(src, dst)
        return self._wires[(src, dst)]

    def _route(self, src: int, dst: int) -> List[Resource]:
        path = [self._wires[(src, dst)]]
        if self.switch is not None:
            path.append(self.switch)
        return path

    def extra_latency(self, src: int, dst: int) -> float:
        return 0.0


class FatTree(Topology):
    """Two-level k-ary fat-tree (leaf/spine Clos).

    ``hosts_per_leaf`` hosts hang off each leaf switch; ``spines`` spine
    switches join the leaves.  Each direction of each cable is its own
    full-duplex resource:

    * host <-> leaf: ``ft.h{h}.up`` / ``ft.h{h}.down`` at wire speed;
    * leaf <-> spine: ``ft.l{l}.up{s}`` / ``ft.l{l}.down{s}`` sized so the
      leaf's aggregate uplink capacity is ``hosts_per_leaf * wire_bw /
      oversub`` (``oversub=1`` is non-blocking, ``2`` halves it, ...).

    Routing is deterministic d-mod-k: a cross-leaf route climbs spine
    ``(src + dst) % spines``, giving stable (reproducible) collision
    patterns instead of random ECMP.
    """

    kind = "fattree"

    def __init__(self, hosts_per_leaf: int = 8, spines: int = 4,
                 oversub: float = 1.0,
                 uplink_bw: Optional[float] = None):
        super().__init__()
        if hosts_per_leaf < 1:
            raise ValueError("hosts_per_leaf must be >= 1")
        if spines < 1:
            raise ValueError("spines must be >= 1")
        if oversub <= 0:
            raise ValueError("oversub must be > 0")
        if uplink_bw is not None and uplink_bw <= 0:
            raise ValueError("uplink_bw must be > 0")
        self.hosts_per_leaf = int(hosts_per_leaf)
        self.spines = int(spines)
        self.oversub = float(oversub)
        self.uplink_bw = uplink_bw
        self.n_leaves = 0
        self._up: List[Resource] = []
        self._down: List[Resource] = []
        self._lup: Dict[Tuple[int, int], Resource] = {}
        self._ldown: Dict[Tuple[int, int], Resource] = {}

    def _build(self) -> None:
        self.n_leaves = -(-self.n_nodes // self.hosts_per_leaf)
        for h in range(self.n_nodes):
            self._up.append(self._link(f"ft.h{h}.up", self.wire_bw))
            self._down.append(self._link(f"ft.h{h}.down", self.wire_bw))
        cap = self.uplink_bw
        if cap is None:
            cap = (self.wire_bw * self.hosts_per_leaf
                   / (self.spines * self.oversub))
        for leaf in range(self.n_leaves):
            for s in range(self.spines):
                self._lup[(leaf, s)] = self._link(
                    f"ft.l{leaf}.up{s}", cap)
                self._ldown[(leaf, s)] = self._link(
                    f"ft.l{leaf}.down{s}", cap)

    def leaf_of(self, host: int) -> int:
        return host // self.hosts_per_leaf

    def spine_of(self, src: int, dst: int) -> int:
        return (src + dst) % self.spines

    def _route(self, src: int, dst: int) -> List[Resource]:
        ls, ld = self.leaf_of(src), self.leaf_of(dst)
        path = [self._up[src]]
        if ls != ld:
            s = self.spine_of(src, dst)
            path.append(self._lup[(ls, s)])
            path.append(self._ldown[(ld, s)])
        path.append(self._down[dst])
        return path

    def switch_hops(self, src: int, dst: int) -> int:
        return 1 if self.leaf_of(src) == self.leaf_of(dst) else 3

    def describe(self) -> str:
        return (f"fattree({self.n_nodes} hosts, {self.n_leaves} leaves x "
                f"{self.hosts_per_leaf}, {self.spines} spines, "
                f"oversub {self.oversub:g})")


class Dragonfly(Topology):
    """One-level dragonfly: all-to-all groups of all-to-all routers.

    One host per router (``group_size`` routers per group); every group
    pair is joined by one full-duplex global link per direction.  Minimal
    routing: up into the source router, a local hop to the router that
    owns the global link, the global hop, a local hop to the destination
    router, down.  The gateway router for group ``gd`` inside group
    ``gs`` is router ``gd % group_size`` — deterministic, so aggressor
    placements can provably share a victim's global link.

    Labels: ``df.h{h}.up/.down`` (host injection), ``df.g{g}.r{a}->r{b}``
    (local), ``df.g{ga}->g{gb}`` (global).
    """

    kind = "dragonfly"

    def __init__(self, group_size: int = 8,
                 local_bw: Optional[float] = None,
                 global_bw: Optional[float] = None):
        super().__init__()
        if group_size < 1:
            raise ValueError("group_size must be >= 1")
        if local_bw is not None and local_bw <= 0:
            raise ValueError("local_bw must be > 0")
        if global_bw is not None and global_bw <= 0:
            raise ValueError("global_bw must be > 0")
        self.group_size = int(group_size)
        self.local_bw = local_bw
        self.global_bw = global_bw
        self.n_groups = 0
        self._up: List[Resource] = []
        self._down: List[Resource] = []
        self._local: Dict[Tuple[int, int, int], Resource] = {}
        self._global: Dict[Tuple[int, int], Resource] = {}

    def _build(self) -> None:
        if self.n_nodes % self.group_size:
            raise ValueError(
                f"dragonfly needs n_nodes divisible by group_size "
                f"({self.group_size}); got {self.n_nodes} nodes")
        self.n_groups = self.n_nodes // self.group_size
        for h in range(self.n_nodes):
            self._up.append(self._link(f"df.h{h}.up", self.wire_bw))
            self._down.append(self._link(f"df.h{h}.down", self.wire_bw))
        lbw = self.local_bw if self.local_bw is not None else self.wire_bw
        for g in range(self.n_groups):
            for a in range(self.group_size):
                for b in range(self.group_size):
                    if a != b:
                        self._local[(g, a, b)] = self._link(
                            f"df.g{g}.r{a}->r{b}", lbw)
        gbw = self.global_bw if self.global_bw is not None else self.wire_bw
        for ga in range(self.n_groups):
            for gb in range(self.n_groups):
                if ga != gb:
                    self._global[(ga, gb)] = self._link(
                        f"df.g{ga}->g{gb}", gbw)

    def router_of(self, host: int) -> Tuple[int, int]:
        return host // self.group_size, host % self.group_size

    def gateway(self, group: int, remote_group: int) -> int:
        """Router inside *group* that owns the global link to
        *remote_group*."""
        return remote_group % self.group_size

    def _route(self, src: int, dst: int) -> List[Resource]:
        gs, rs = self.router_of(src)
        gd, rd = self.router_of(dst)
        path = [self._up[src]]
        if gs == gd:
            if rs != rd:
                path.append(self._local[(gs, rs, rd)])
        else:
            gw_out = self.gateway(gs, gd)
            gw_in = self.gateway(gd, gs)
            if rs != gw_out:
                path.append(self._local[(gs, rs, gw_out)])
            path.append(self._global[(gs, gd)])
            if gw_in != rd:
                path.append(self._local[(gd, gw_in, rd)])
        path.append(self._down[dst])
        return path

    def switch_hops(self, src: int, dst: int) -> int:
        gs, rs = self.router_of(src)
        gd, rd = self.router_of(dst)
        if gs == gd:
            return 1 if rs == rd else 2
        hops = 2  # src router + dst router
        if rs != self.gateway(gs, gd):
            hops += 1
        if rd != self.gateway(gd, gs):
            hops += 1
        return hops

    def describe(self) -> str:
        return (f"dragonfly({self.n_nodes} hosts, {self.n_groups} groups "
                f"x {self.group_size})")


class Torus(Topology):
    """2D/3D torus, dimension-order routed with shortest-wrap steps.

    ``dims`` is a 2- or 3-tuple whose product must equal the node count
    (omitted: the squarest 2D grid).  Each grid edge is one full-duplex
    resource per direction, labelled ``torus.{a}->{b}``; a route is the
    chain of edges visited walking dimension 0 first, then 1, then 2,
    stepping whichever wrap direction is shorter (ties go +).
    """

    kind = "torus"

    def __init__(self, dims: Optional[Sequence[int]] = None):
        super().__init__()
        if dims is not None:
            dims = tuple(int(d) for d in dims)
            if len(dims) not in (2, 3):
                raise ValueError("torus dims must have 2 or 3 entries")
            if any(d < 1 for d in dims):
                raise ValueError("torus dims must all be >= 1")
        self.dims: Optional[Tuple[int, ...]] = dims
        self._edges: Dict[Tuple[int, int], Resource] = {}

    @staticmethod
    def _squarest(n: int) -> Tuple[int, int]:
        best = (1, n)
        for a in range(1, int(math.isqrt(n)) + 1):
            if n % a == 0:
                best = (a, n // a)
        return best

    def _build(self) -> None:
        if self.dims is None:
            self.dims = self._squarest(self.n_nodes)
        prod = math.prod(self.dims)
        if prod != self.n_nodes:
            raise ValueError(
                f"torus dims {self.dims} hold {prod} nodes but the "
                f"cluster has {self.n_nodes}")
        for node in range(self.n_nodes):
            coords = self._coords(node)
            for axis, extent in enumerate(self.dims):
                if extent < 2:
                    continue
                for step in (1, -1):
                    nb = list(coords)
                    nb[axis] = (nb[axis] + step) % extent
                    other = self._node(tuple(nb))
                    if other != node and (node, other) not in self._edges:
                        self._edges[(node, other)] = self._link(
                            f"torus.{node}->{other}", self.wire_bw)

    def _coords(self, node: int) -> Tuple[int, ...]:
        coords = []
        for extent in reversed(self.dims):
            coords.append(node % extent)
            node //= extent
        return tuple(reversed(coords))

    def _node(self, coords: Tuple[int, ...]) -> int:
        node = 0
        for coord, extent in zip(coords, self.dims):
            node = node * extent + coord
        return node

    def _steps(self, src: int, dst: int) -> List[int]:
        """The node chain visited walking dimension-order src -> dst."""
        cur = list(self._coords(src))
        goal = self._coords(dst)
        chain = [src]
        for axis, extent in enumerate(self.dims):
            while cur[axis] != goal[axis]:
                fwd = (goal[axis] - cur[axis]) % extent
                back = (cur[axis] - goal[axis]) % extent
                cur[axis] = (cur[axis] + (1 if fwd <= back else -1)) % extent
                chain.append(self._node(tuple(cur)))
        return chain

    def _route(self, src: int, dst: int) -> List[Resource]:
        chain = self._steps(src, dst)
        return [self._edges[(a, b)] for a, b in zip(chain, chain[1:])]

    def switch_hops(self, src: int, dst: int) -> int:
        return len(self._steps(src, dst)) - 1

    def describe(self) -> str:
        dims = "x".join(str(d) for d in (self.dims or ()))
        return f"torus({dims}, {self.n_nodes} nodes)"


TOPOLOGIES: Dict[str, type] = {
    "fullmesh": FullMesh,
    "fattree": FatTree,
    "dragonfly": Dragonfly,
    "torus": Torus,
}


def make_topology(kind: str, **params) -> Topology:
    """Instantiate a topology by name with shape parameters.

    Raises a descriptive :class:`ValueError` for unknown kinds or
    parameters (the scenario layer surfaces these verbatim).
    """
    cls = TOPOLOGIES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown topology {kind!r}; valid kinds: "
            f"{', '.join(sorted(TOPOLOGIES))}")
    try:
        return cls(**params)
    except TypeError:
        valid = [p for p in inspect.signature(cls.__init__).parameters
                 if p != "self"]
        bad = sorted(set(params) - set(valid))
        raise ValueError(
            f"invalid parameter(s) {bad} for topology {kind!r}; "
            f"accepted: {', '.join(valid)}") from None


def validate_topology_params(kind: str, params: Dict[str, object]) -> None:
    """Scenario-time validation: checks names without building."""
    cls = TOPOLOGIES.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown topology {kind!r}; valid kinds: "
            f"{', '.join(sorted(TOPOLOGIES))}")
    valid = {p for p in inspect.signature(cls.__init__).parameters
             if p != "self"}
    bad = sorted(set(params) - valid)
    if bad:
        raise ValueError(
            f"invalid parameter(s) {bad} for topology {kind!r}; "
            f"accepted: {', '.join(sorted(valid))}")
