"""Machine model: topology, frequencies, memory system, NIC, counters.

The hardware layer turns a declarative :class:`~repro.hardware.presets.MachineSpec`
into live simulation objects:

* :mod:`repro.hardware.presets` — calibrated specs for the paper's four
  clusters (``henri``, ``bora``, ``billy``, ``pyxis``).
* :mod:`repro.hardware.topology` — :class:`Machine` (sockets, NUMA nodes,
  cores, NIC) and :class:`Cluster` (several machines wired together).
* :mod:`repro.hardware.frequency` — per-core DVFS with turbo bins and
  AVX-512 licenses, plus the uncore frequency model.
* :mod:`repro.hardware.memory` — memory controllers and interconnect
  links as fluid resources; path computation for core and DMA traffic.
* :mod:`repro.hardware.nic` — the NIC: PIO path timing under congestion,
  DMA flows with efficiency degradation, registration cache.
* :mod:`repro.hardware.counters` — per-core cycle accounting (busy /
  memory-stalled), the simulated equivalent of ``perf``/pmu-tools.
"""

from repro.hardware.presets import (
    MachineSpec, TurboTable, CoreFreqSpec, UncoreSpec, MemorySpec,
    InterconnectSpec, NICSpec, ContentionSpec,
    HENRI, BORA, BILLY, PYXIS, get_preset, available_presets,
)
from repro.hardware.topology import Machine, Cluster, Core, NUMANode, Socket
from repro.hardware.frequency import FrequencyModel, CoreActivity
from repro.hardware.counters import CycleCounters
from repro.hardware.memory import Buffer, allocate, allocate_interleaved
from repro.hardware.nic import RegistrationCache, dma_demand, dma_efficiency

__all__ = [
    "MachineSpec", "TurboTable", "CoreFreqSpec", "UncoreSpec", "MemorySpec",
    "InterconnectSpec", "NICSpec", "ContentionSpec",
    "HENRI", "BORA", "BILLY", "PYXIS", "get_preset", "available_presets",
    "Machine", "Cluster", "Core", "NUMANode", "Socket",
    "FrequencyModel", "CoreActivity", "CycleCounters",
    "Buffer", "allocate", "allocate_interleaved",
    "RegistrationCache", "dma_demand", "dma_efficiency",
]
