"""Machine and cluster topology built on the fluid model.

A :class:`Machine` instantiates, from a
:class:`~repro.hardware.presets.MachineSpec`:

* ``Core`` / ``NUMANode`` / ``Socket`` objects (hwloc-like numbering:
  cores are numbered NUMA node by NUMA node, matching the paper's
  "logical core order" thread binding);
* one fluid :class:`~repro.sim.fluid.Resource` per memory controller,
  one per intra-socket mesh, one per inter-socket link pair, and one for
  the NIC's PCIe attachment;
* a :class:`~repro.hardware.frequency.FrequencyModel` and a
  :class:`~repro.hardware.counters.CycleCounters` bank.

It also computes the resource paths crossed by the three traffic classes
of the paper:

* **core loads/stores** (:meth:`Machine.load_path`) — computation memory
  traffic from a core to a NUMA node's DRAM;
* **NIC DMA** (:meth:`Machine.dma_path`) — rendezvous transfers between
  DRAM and the NIC;
* **PIO** (:meth:`Machine.pio_route`) — small-message doorbell/copy
  operations from the communication core to the NIC, which do not carry
  bulk bandwidth but *suffer* congestion on the resources they cross.

A :class:`Cluster` wires several machines with full-duplex network links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hardware import fabric
from repro.hardware.counters import CycleCounters
from repro.hardware.frequency import CoreActivity, FrequencyModel
from repro.hardware.presets import MachineSpec, get_preset
from repro.obs import context as _obs_context
from repro.sim import FluidNetwork, RandomStreams, Resource, Simulator

__all__ = ["Core", "NUMANode", "Socket", "Machine", "Cluster"]


@dataclass
class Core:
    """One CPU core."""

    id: int                 # global id on the machine (hwloc logical order)
    numa_id: int
    socket_id: int
    machine: "Machine" = field(repr=False)

    @property
    def hz(self) -> float:
        return self.machine.freq.core_hz(self.id)


@dataclass
class NUMANode:
    """One NUMA node: a set of cores plus a memory controller."""

    id: int
    socket_id: int
    cores: List[Core] = field(default_factory=list, repr=False)
    controller: Resource = field(default=None, repr=False)
    capacity_bytes: float = 0.0


@dataclass
class Socket:
    """One CPU package (its NUMA nodes share the on-die mesh)."""

    id: int
    numa_nodes: List[NUMANode] = field(default_factory=list, repr=False)
    mesh: Resource = field(default=None, repr=False)

    @property
    def cores(self) -> List[Core]:
        return [c for n in self.numa_nodes for c in n.cores]


class Machine:
    """A simulated compute node."""

    def __init__(self, sim: Simulator, net: FluidNetwork, spec: MachineSpec,
                 node_id: int = 0, rng: Optional[RandomStreams] = None):
        self.sim = sim
        self.net = net
        self.spec = spec
        self.node_id = node_id
        self.rng = rng if rng is not None else RandomStreams(node_id)

        self.sockets: List[Socket] = []
        self.numa_nodes: List[NUMANode] = []
        self.cores: List[Core] = []
        self._build_topology()

        self.freq = FrequencyModel(
            spec, {c.id: c.socket_id for c in self.cores})
        self.counters = CycleCounters([c.id for c in self.cores])

        # PCIe attachment of the NIC.
        self.pcie = Resource(f"n{node_id}.pcie", spec.nic.pcie_bw)
        self.nic_numa = self.numa_nodes[spec.nic_numa]
        # Base (max-uncore) controller capacities, for uncore rescaling.
        self._mc_base_cap = {n.id: n.controller.capacity
                             for n in self.numa_nodes}
        # Last-applied per-socket capacity factors: factors are pure
        # functions of the frequency model, so when none moved the
        # rescale loop below is a guaranteed no-op and is skipped
        # (nothing else ever writes a controller's capacity).
        self._uncore_sockets = tuple(sorted(
            {n.socket_id for n in self.numa_nodes}))
        self._uncore_factors_seen: tuple = ()
        # Per-core streaming weight in [0, 1] (maintained by running
        # kernels); drives the PIO co-location penalty.  The weight is
        # the core's memory demand relative to its fair share of the
        # controller, so CPU-bound kernels contribute ~0 and saturating
        # streams contribute 1.
        self._streaming: Dict[int, float] = {}

    # -- construction ---------------------------------------------------------
    def _build_topology(self) -> None:
        spec = self.spec
        core_id = 0
        numa_id = 0
        self._links: Dict[Tuple[int, int], Resource] = {}
        for s in range(spec.sockets):
            socket = Socket(id=s)
            socket.mesh = Resource(
                f"n{self.node_id}.s{s}.mesh", spec.interconnect.intra_socket_bw)
            for _ in range(spec.numa_per_socket):
                node = NUMANode(id=numa_id, socket_id=s)
                node.controller = Resource(
                    f"n{self.node_id}.numa{numa_id}.mc",
                    spec.memory.controller_bw)
                node.capacity_bytes = spec.memory.numa_capacity
                for _ in range(spec.cores_per_numa):
                    core = Core(id=core_id, numa_id=numa_id, socket_id=s,
                                machine=self)
                    node.cores.append(core)
                    self.cores.append(core)
                    core_id += 1
                socket.numa_nodes.append(node)
                self.numa_nodes.append(node)
                numa_id += 1
            self.sockets.append(socket)
        # Inter-socket links are full duplex: one resource per direction
        # (UPI/xGMI have independent lanes each way).
        for a in range(spec.sockets):
            for b in range(spec.sockets):
                if a != b:
                    self._links[(a, b)] = Resource(
                        f"n{self.node_id}.link{a}->{b}",
                        spec.interconnect.socket_link_bw)

    # -- lookups ---------------------------------------------------------
    def core(self, core_id: int) -> Core:
        return self.cores[core_id]

    def numa_of_core(self, core_id: int) -> NUMANode:
        return self.numa_nodes[self.cores[core_id].numa_id]

    def socket_link(self, src: int, dst: int) -> Resource:
        """Directed inter-socket link carrying traffic src -> dst."""
        if src == dst:
            raise ValueError("no link within a socket")
        return self._links[(src, dst)]

    def last_core_of_numa(self, numa_id: int) -> Core:
        return self.numa_nodes[numa_id].cores[-1]

    def far_numa_from_nic(self) -> NUMANode:
        """A NUMA node on the socket opposite to the NIC (the paper's
        'far from the NIC' placement)."""
        nic_socket = self.nic_numa.socket_id
        for node in reversed(self.numa_nodes):
            if node.socket_id != nic_socket:
                return node
        return self.numa_nodes[-1]  # single-socket fallback

    # -- paths ----------------------------------------------------------
    def load_path(self, core_id: int, data_numa: int) -> List[Resource]:
        """Resources crossed by core loads/stores to *data_numa* DRAM."""
        core = self.cores[core_id]
        data = self.numa_nodes[data_numa]
        path: List[Resource] = []
        if core.socket_id != data.socket_id:
            # Streaming is read-dominated: the payload flows data -> core.
            path.append(self.socket_link(data.socket_id, core.socket_id))
        elif core.numa_id != data.id:
            path.append(self.sockets[core.socket_id].mesh)
        path.append(data.controller)
        return path

    def dma_path(self, data_numa: int) -> List[Resource]:
        """Resources crossed by NIC DMA between *data_numa* DRAM and the
        wire (excluding the wire itself, which belongs to the cluster)."""
        data = self.numa_nodes[data_numa]
        path: List[Resource] = [data.controller]
        nic_socket = self.nic_numa.socket_id
        if data.socket_id != nic_socket:
            path.append(self.socket_link(data.socket_id, nic_socket))
        elif data.id != self.nic_numa.id:
            path.append(self.sockets[nic_socket].mesh)
        path.append(self.pcie)
        return path

    def socket_of_numa(self, numa_id: int) -> int:
        return self.numa_nodes[numa_id].socket_id

    def pio_route(self, core_id: int) -> List[Tuple[Resource, str]]:
        """(resource, kind) pairs whose congestion delays PIO operations
        issued by *core_id* toward the NIC."""
        core = self.cores[core_id]
        route: List[Tuple[Resource, str]] = []
        nic_socket = self.nic_numa.socket_id
        if core.socket_id != nic_socket:
            route.append((self.socket_link(core.socket_id, nic_socket),
                          "link"))
        route.append((self.nic_numa.controller, "mc"))
        return route

    def pio_extra_hops(self, core_id: int) -> int:
        """Number of inter-socket hops a PIO from *core_id* crosses."""
        return int(self.cores[core_id].socket_id != self.nic_numa.socket_id)

    # -- congestion & frequency hooks --------------------------------------
    def streaming_weight(self, demand: float) -> float:
        """Streaming weight of a core demanding *demand* bytes/s: its
        demand relative to a fair share of the controller.  Saturating
        streams weigh 1; CPU-bound kernels weigh ~0 — which is why prime
        counting and in-register AVX loops do not penalise communication
        latency (§3.2/§3.3) while STREAM does (§4)."""
        per_socket = self.spec.numa_per_socket * self.spec.cores_per_numa
        fair = self.spec.memory.controller_bw / per_socket
        if fair <= 0:
            return 0.0
        return min(1.0, max(0.0, demand / fair))

    def set_streaming(self, core_id: int, weight: float | bool) -> None:
        """Set *core_id*'s streaming weight (True == 1.0, False == 0)."""
        weight = float(weight)
        if weight <= 0:
            self._streaming.pop(core_id, None)
        else:
            self._streaming[core_id] = min(1.0, weight)

    def streaming_cores_on_socket(self, socket_id: int) -> float:
        """Sum of streaming weights of the socket's cores."""
        return sum(w for c, w in self._streaming.items()
                   if self.cores[c].socket_id == socket_id)

    def pio_delay(self, core_id: int) -> float:
        """Instantaneous congestion penalty (s) for one PIO crossing.

        Driven by memory-streaming cores co-located on *core_id*'s socket
        (ring/uncore contention), amplified by inter-socket hops; see
        :class:`~repro.hardware.presets.ContentionSpec`.
        """
        socket = self.cores[core_id].socket_id
        streaming = self.streaming_cores_on_socket(socket)
        per_socket = self.spec.numa_per_socket * self.spec.cores_per_numa
        frac = streaming / max(1, per_socket - 1)
        return self.spec.contention.pio_penalty(frac, self.pio_extra_hops(core_id))

    def set_core_activity(self, core_id: int, activity: CoreActivity,
                          uncore_active: Optional[bool] = None) -> None:
        """Update activity and propagate uncore-driven capacity changes."""
        self.freq.set_activity(core_id, activity, uncore_active)
        self._apply_uncore_capacity()
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_freq_change(self, core_id)

    def _apply_uncore_capacity(self) -> None:
        freq = self.freq
        factors = tuple(freq.uncore_capacity_factor(s)
                        for s in self._uncore_sockets)
        if factors == self._uncore_factors_seen:
            return
        self._uncore_factors_seen = factors
        for node in self.numa_nodes:
            factor = freq.uncore_capacity_factor(node.socket_id)
            new_cap = self._mc_base_cap[node.id] * factor
            if abs(new_cap - node.controller.capacity) > 1e-6 * new_cap:
                node.controller.set_capacity(new_cap)

    def set_uncore(self, hz: Optional[float]) -> None:
        """Pin the uncore frequency and rescale controller capacities."""
        self.freq.set_uncore(hz)
        self._apply_uncore_capacity()
        if _obs_context._ACTIVE is not None:
            _obs_context._ACTIVE.on_freq_change(self, 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"Machine({self.spec.name!r}, node={self.node_id}, "
                f"{len(self.cores)} cores, {len(self.numa_nodes)} NUMA)")


class Cluster:
    """Several machines joined by a fabric topology.

    By default the fabric is a :class:`~repro.hardware.fabric.FullMesh`
    — independent full-duplex links per node pair (the 2-node case of
    the paper); ``switch_bw`` adds its shared-switch resource.  Passing
    ``topology`` (a kind name like ``"dragonfly"`` or a built-to-order
    :class:`~repro.hardware.fabric.Topology` instance) swaps in a real
    fabric: fat-tree, dragonfly, or torus, with per-link contention
    solved by the same fluid network (see docs/CLUSTER.md).
    """

    def __init__(self, spec: MachineSpec | str, n_nodes: int = 2,
                 seed: int = 0, switch_bw: Optional[float] = None,
                 topology=None):
        if isinstance(spec, str):
            spec = get_preset(spec)
        if n_nodes < 1:
            raise ValueError("cluster needs at least one node")
        if switch_bw is not None and switch_bw <= 0:
            raise ValueError("switch_bw must be > 0")
        if topology is None:
            topology = fabric.FullMesh(switch_bw=switch_bw)
        else:
            if switch_bw is not None:
                raise ValueError(
                    "switch_bw only applies to the default full-mesh "
                    "fabric; size the topology's links instead")
            if isinstance(topology, str):
                topology = fabric.make_topology(topology)
            elif not isinstance(topology, fabric.Topology):
                raise ValueError(
                    f"topology must be a kind name or a Topology "
                    f"instance, got {topology!r}")
        self.spec = spec
        self.sim = Simulator()
        self.net = FluidNetwork(self.sim)
        # Multi-seed trials: a cluster built with the *default* seed
        # inside a trial scope takes the derived trial seed instead, so
        # measurement noise varies across trials without threading a
        # seed through every experiment signature.  An explicit seed
        # always wins; outside a trial scope nothing changes.
        if seed == 0:
            from repro.faults.context import active_trial_seed
            trial_seed = active_trial_seed()
            if trial_seed is not None:
                seed = trial_seed
        self.rng = RandomStreams(seed)
        self.machines: List[Machine] = [
            Machine(self.sim, self.net, spec, node_id=i,
                    rng=self.rng.spawn(f"node{i}"))
            for i in range(n_nodes)
        ]
        # The topology owns every fabric resource and the routing
        # function; the full mesh reproduces the seed's per-pair wires
        # byte-for-byte.
        self.topology = topology.build(n_nodes, spec.nic.wire_bw)
        # Fault injection: arm the ambient fault plan, if one is
        # installed (see repro.faults.context).  Imported lazily so the
        # hardware layer has no hard dependency on the faults package.
        self.fault_injector = None
        from repro.faults.context import active_faults
        installed = active_faults()
        if installed is not None:
            from repro.faults.injector import FaultInjector
            self.fault_injector = FaultInjector(
                self, installed.plan, installed.reliability).arm()
        # Telemetry: register this cluster's nodes/wires as trace lanes
        # with the ambient Telemetry, if one is installed (same lazy
        # pattern as the fault binding above).
        tele = _obs_context.active_telemetry()
        if tele is not None:
            tele.bind_cluster(self)

    @property
    def switch(self) -> Optional[Resource]:
        """The full mesh's shared switch resource, if configured."""
        return getattr(self.topology, "switch", None)

    def wire(self, src: int, dst: int) -> Resource:
        """First fabric hop of the src->dst route (the injection link)."""
        return self.topology.wire(src, dst)

    def route(self, src: int, dst: int) -> List[Resource]:
        """All fabric resources a src->dst transfer crosses, hop order."""
        return self.topology.route(src, dst)

    # Pre-topology name, kept for callers of the seed API.
    wire_path = route

    def find_link(self, label: str) -> Resource:
        """Look up a fabric link by label (fault targeting)."""
        return self.topology.find_link(label)

    def machine(self, node_id: int) -> Machine:
        return self.machines[node_id]

    def __len__(self) -> int:
        return len(self.machines)
