"""NetPIPE-style ping-pong benchmark (§2.1 of the paper).

Latency is the duration of one message (half the round trip, "time
elapsed between the beginning of MPI_Send and the end of MPI_Recv");
bandwidth divides the transmitted size by that latency.  Unless stated
otherwise the paper measures latency on 4 B and asymptotic bandwidth on
64 MB — exposed here as :data:`LATENCY_SIZE` and :data:`BANDWIDTH_SIZE`.

Buffers are recycled across iterations to exploit the registration cache,
exactly as the paper does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, List, Optional

import numpy as np

from repro.hardware.memory import Buffer
from repro.mpi.comm import CommWorld

__all__ = ["PingPong", "PingPongResult", "LATENCY_SIZE", "BANDWIDTH_SIZE"]

LATENCY_SIZE = 4                    # one float (§2.1)
BANDWIDTH_SIZE = 64 * 1024 * 1024   # 64 MB (§2.1)


@dataclass
class PingPongResult:
    """Per-iteration one-way latencies for one message size."""

    size: int
    latencies: np.ndarray            # seconds, one entry per half ping-pong

    @property
    def median_latency(self) -> float:
        return float(np.median(self.latencies))

    @property
    def p10_latency(self) -> float:
        return float(np.quantile(self.latencies, 0.1))

    @property
    def p90_latency(self) -> float:
        return float(np.quantile(self.latencies, 0.9))

    @property
    def bandwidth(self) -> float:
        """Median goodput, bytes/s."""
        med = self.median_latency
        return self.size / med if med > 0 else 0.0

    @property
    def p10_bandwidth(self) -> float:
        p90 = self.p90_latency
        return self.size / p90 if p90 > 0 else 0.0

    @property
    def p90_bandwidth(self) -> float:
        p10 = self.p10_latency
        return self.size / p10 if p10 > 0 else 0.0

    def summary(self) -> str:
        return (f"size={self.size}B median={self.median_latency*1e6:.2f}us "
                f"bw={self.bandwidth/1e9:.2f}GB/s n={len(self.latencies)}")


class PingPong:
    """Ping-pong driver between two ranks of a :class:`CommWorld`.

    Parameters
    ----------
    world:
        The communicator world (2+ ranks).
    rank_a, rank_b:
        The two endpoints.
    data_numa_a, data_numa_b:
        NUMA node of the ping-pong buffers on each side; defaults to the
        NIC's NUMA node ("data near the NIC").
    """

    def __init__(self, world: CommWorld, rank_a: int = 0, rank_b: int = 1,
                 data_numa_a: Optional[int] = None,
                 data_numa_b: Optional[int] = None):
        if len(world) < 2:
            raise ValueError("ping-pong needs at least two ranks")
        if rank_a == rank_b:
            raise ValueError("ping-pong endpoints must differ")
        self.world = world
        self.rank_a = world.rank(rank_a)
        self.rank_b = world.rank(rank_b)
        self.data_numa_a = (data_numa_a if data_numa_a is not None
                            else self.rank_a.machine.nic_numa.id)
        self.data_numa_b = (data_numa_b if data_numa_b is not None
                            else self.rank_b.machine.nic_numa.id)
        self._bufs: dict = {}

    # ------------------------------------------------------------------
    def _buffers(self, size: int) -> tuple[Buffer, Buffer]:
        """Recycled per-size buffer pair (registration-cache friendly)."""
        pair = self._bufs.get(size)
        if pair is None:
            pair = (self.rank_a.buffer(size, self.data_numa_a, "pp_a"),
                    self.rank_b.buffer(size, self.data_numa_b, "pp_b"))
            self._bufs[size] = pair
        return pair

    def process(self, size: int, reps: int,
                out: Optional[List[float]] = None,
                warmup: int = 2) -> Generator:
        """Simulation process running *reps* ping-pongs of *size* bytes.

        Appends one one-way latency per half ping-pong to *out* (warmup
        iterations excluded).  Returns the list.
        """
        if out is None:
            out = []
        engine = self.world.engine
        buf_a, buf_b = self._buffers(size)
        a, b = self.rank_a, self.rank_b
        for it in range(warmup + reps):
            rec_ab = yield self.world.sim.process(engine.half_transfer(
                a.node_id, a.comm_core, buf_a,
                b.node_id, b.comm_core, buf_b, size))
            rec_ba = yield self.world.sim.process(engine.half_transfer(
                b.node_id, b.comm_core, buf_b,
                a.node_id, a.comm_core, buf_a, size))
            if it >= warmup:
                out.append(rec_ab.duration)
                out.append(rec_ba.duration)
        return out

    def run(self, size: int, reps: int = 25,
            warmup: int = 2) -> PingPongResult:
        """Drive the simulation until *reps* ping-pongs complete."""
        latencies: List[float] = []
        proc = self.world.sim.process(
            self.process(size, reps, out=latencies, warmup=warmup))
        self.world.sim.run()
        if not proc.ok:  # pragma: no cover - surfacing process errors
            _ = proc.value
        return PingPongResult(size=size, latencies=np.asarray(latencies))
