"""Tagged point-to-point messaging with MPI matching semantics.

``isend``/``irecv`` return :class:`Request` objects whose ``done`` event
fires when the transfer completes.  A message transfer starts once both
sides have posted (rendezvous-style matching; the underlying protocol
engine then decides eager vs rendezvous *timing* from the size).

Each node's communication thread executes transfers serially — the
paper's methodology uses exactly one thread for all communications of a
host (§2.1), and this serialisation is what the task-based runtime layer
inherits (§5).
"""

from __future__ import annotations

import logging
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Tuple

from repro.hardware.memory import Buffer
from repro.mpi.comm import CommWorld
from repro.netmodel.protocols import TransferRecord, TransportError
from repro.obs.context import active_telemetry
from repro.sim import Event

__all__ = ["Request", "P2PContext"]

logger = logging.getLogger(__name__)


@dataclass
class Request:
    """Handle for a pending isend/irecv."""

    kind: str                    # "send" | "recv"
    src: int
    dst: int
    tag: int
    buffer: Buffer = field(repr=False)
    size: int = 0
    done: Event = field(default=None, repr=False)
    record: Optional[TransferRecord] = None

    @property
    def completed(self) -> bool:
        return self.done is not None and self.done.triggered


class _SerialQueue:
    """FIFO execution of generator jobs (one comm thread per node)."""

    def __init__(self, sim):
        self.sim = sim
        self._jobs: Deque[Tuple[object, Event]] = deque()
        self._running = False

    def submit(self, job) -> Event:
        """Queue generator *job*; returns an event fired with its result."""
        done = self.sim.event()
        self._jobs.append((job, done))
        if not self._running:
            self._running = True
            self.sim.process(self._drain())
        return done

    @property
    def backlog(self) -> int:
        return len(self._jobs)

    def _drain(self):
        while self._jobs:
            job, done = self._jobs.popleft()
            try:
                result = yield self.sim.process(job)
            except Exception as err:  # propagate to the waiter
                done.fail(err)
                continue
            done.succeed(result)
        self._running = False


class P2PContext:
    """Matching engine + per-node serial communication threads."""

    def __init__(self, world: CommWorld):
        self.world = world
        self.sim = world.sim
        self._pending_sends: Dict[Tuple[int, int, int], Deque[Request]] = {}
        self._pending_recvs: Dict[Tuple[int, int, int], Deque[Request]] = {}
        self._queues: Dict[int, _SerialQueue] = {
            i: _SerialQueue(self.sim) for i in range(len(world.ranks))}
        self.transfers: List[TransferRecord] = []
        self.failures: List[BaseException] = []

    # -- public API --------------------------------------------------------
    def isend(self, src: int, dst: int, buffer: Buffer, tag: int = 0,
              size: Optional[int] = None) -> Request:
        """Post a non-blocking send of *buffer* from rank src to rank dst."""
        req = Request(kind="send", src=src, dst=dst, tag=tag, buffer=buffer,
                      size=size if size is not None else buffer.size,
                      done=self.sim.event())
        self._match(req)
        return req

    def irecv(self, dst: int, src: int, buffer: Buffer, tag: int = 0,
              size: Optional[int] = None) -> Request:
        """Post a non-blocking receive into *buffer* on rank dst."""
        req = Request(kind="recv", src=src, dst=dst, tag=tag, buffer=buffer,
                      size=size if size is not None else buffer.size,
                      done=self.sim.event())
        self._match(req)
        return req

    def send_backlog(self, rank: int) -> int:
        """Transfers queued on rank *rank*'s communication thread."""
        return self._queues[rank].backlog

    def cancel(self, req: Request) -> bool:
        """Withdraw an *unmatched* request.

        Returns True if *req* was still waiting for a partner: it is
        removed from the pending queues and its ``done`` event fails
        with :class:`TransportError` so waiters unblock.  A request that
        already matched started a transfer on the communication thread
        and can no longer be cancelled (mirroring the fluid layer,
        where only the owner of a still-running flow may stop it) —
        then, as for an already-completed one, returns False.
        """
        key = (req.src, req.dst, req.tag)
        pending = (self._pending_sends if req.kind == "send"
                   else self._pending_recvs)
        waiting = pending.get(key)
        if not waiting or req not in waiting:
            return False
        waiting.remove(req)
        if not waiting:
            del pending[key]
        req.done.fail(TransportError(
            "request cancelled", src=req.src, dst=req.dst, size=req.size))
        return True

    # -- matching ----------------------------------------------------------
    def _match(self, req: Request) -> None:
        key = (req.src, req.dst, req.tag)
        mine = (self._pending_sends if req.kind == "send"
                else self._pending_recvs)
        theirs = (self._pending_recvs if req.kind == "send"
                  else self._pending_sends)
        waiting = theirs.get(key)
        if waiting:
            peer = waiting.popleft()
            if not waiting:
                del theirs[key]
            send_req = req if req.kind == "send" else peer
            recv_req = peer if req.kind == "send" else req
            self._launch(send_req, recv_req)
        else:
            mine.setdefault(key, deque()).append(req)

    def _transfer_job(self, send_req: Request, recv_req: Request,
                      size: int):
        """Generator executing one matched transfer; overridable (the
        task-based runtime layer wraps it with its extra software stack)."""
        world = self.world
        src_rank = world.rank(send_req.src)
        dst_rank = world.rank(send_req.dst)
        record = yield world.sim.process(world.engine.half_transfer(
            src_node=src_rank.node_id,
            src_core=src_rank.comm_core,
            src_buf=send_req.buffer,
            dst_node=dst_rank.node_id,
            dst_core=dst_rank.comm_core,
            dst_buf=recv_req.buffer,
            size=size,
        ))
        return record

    def _launch(self, send_req: Request, recv_req: Request) -> None:
        size = min(send_req.size, recv_req.size)
        done = self._queues[send_req.src].submit(
            self._transfer_job(send_req, recv_req, size))

        # Telemetry: span from queue submission to completion, showing
        # serial-queue wait on top of the protocol-level transfer span.
        tele = active_telemetry()
        span = None
        src_machine = None
        if tele is not None:
            from repro.obs.telemetry import QUEUE_TID
            src_machine = self.world.rank(send_req.src).machine
            span = tele.begin_span(
                src_machine, QUEUE_TID, f"p2p {size}B", "p2p",
                dst=send_req.dst, tag=send_req.tag)

        def on_done(event):
            if span is not None:
                tele.finish_span(src_machine, span, ok=event.ok)
            if not event.ok:
                exc = event._exception  # noqa: SLF001
                logger.warning("transfer %d->%d (%dB, tag %d) failed: %s",
                               send_req.src, send_req.dst, size,
                               send_req.tag, exc)
                self.failures.append(exc)
                send_req.done.fail(exc)
                # The receive side sees the same transport failure; any
                # other error is wrapped so both waiters get *an*
                # exception without sharing a traceback-bearing object.
                recv_req.done.fail(
                    exc if isinstance(exc, TransportError)
                    else RuntimeError(str(exc)))
                return
            record: TransferRecord = event.value
            send_req.record = record
            recv_req.record = record
            self.transfers.append(record)
            send_req.done.succeed(record)
            recv_req.done.succeed(record)

        done.add_callback(on_done)
