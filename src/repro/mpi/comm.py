"""Communicator world: ranks bound to machines with a dedicated comm core.

The paper's methodology (§2.1) dedicates one thread — bound to its own
core — to communications on each node.  :class:`CommWorld` captures that
setup: one :class:`Rank` per machine, each with a *communication core*
whose placement (near or far from the NIC) is a first-class experimental
parameter (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.hardware.frequency import CoreActivity
from repro.hardware.memory import Buffer, allocate
from repro.hardware.topology import Cluster, Machine
from repro.netmodel.protocols import ProtocolEngine

__all__ = ["Rank", "CommWorld"]


@dataclass
class Rank:
    """One MPI process: a machine plus its communication core."""

    node_id: int
    machine: Machine = field(repr=False)
    comm_core: int = 0

    def buffer(self, size: int, numa_id: Optional[int] = None,
               label: str = "") -> Buffer:
        """Allocate a message buffer (defaults to the NIC's NUMA node)."""
        if numa_id is None:
            numa_id = self.machine.nic_numa.id
        return allocate(self.machine, numa_id, size, label=label)


class CommWorld:
    """All ranks of a simulated MPI job (one rank per cluster node)."""

    def __init__(self, cluster: Cluster,
                 comm_cores: Optional[Dict[int, int]] = None,
                 comm_placement: str = "far",
                 nodes: Optional[Sequence[int]] = None):
        """
        Parameters
        ----------
        cluster:
            The machines to span.
        comm_cores:
            Explicit mapping node->core id for the communication thread.
        comm_placement:
            Used when *comm_cores* is None: ``"far"`` binds the comm
            thread to the last core of a NUMA node on the non-NIC socket
            (the paper's default in §4.2), ``"near"`` to the last core of
            the NIC's NUMA node.
        nodes:
            Rank->node placement: rank *i* lives on ``nodes[i]``.  Omit
            for the seed behavior (one rank per cluster node, in node
            order).  A subset lets several worlds — several
            *applications* — share one cluster (see repro.core.apps).
        """
        if comm_placement not in ("near", "far"):
            raise ValueError("comm_placement must be 'near' or 'far'")
        self.cluster = cluster
        self.engine = ProtocolEngine(cluster)
        if nodes is None:
            machines = list(cluster.machines)
        else:
            nodes = list(nodes)
            if len(set(nodes)) != len(nodes):
                raise ValueError(f"duplicate node ids in placement {nodes}")
            if any(not 0 <= n < len(cluster) for n in nodes):
                raise ValueError(
                    f"placement {nodes} names nodes outside this "
                    f"{len(cluster)}-node cluster "
                    f"(valid ids: 0..{len(cluster) - 1})")
            machines = [cluster.machine(n) for n in nodes]
        self.ranks: List[Rank] = []
        for machine in machines:
            if comm_cores is not None:
                core = comm_cores[machine.node_id]
            elif comm_placement == "near":
                core = machine.last_core_of_numa(machine.nic_numa.id).id
            else:
                core = machine.far_numa_from_nic().cores[-1].id
            rank = Rank(node_id=machine.node_id, machine=machine,
                        comm_core=core)
            self.ranks.append(rank)
            # The comm thread busy-polls: active for turbo purposes but
            # does not ramp the uncore (§3.2).
            machine.set_core_activity(core, CoreActivity.SCALAR,
                                      uncore_active=False)

    @property
    def sim(self):
        return self.cluster.sim

    def rank(self, index: int) -> Rank:
        """Rank by *world index* (== node id for the default placement)."""
        return self.ranks[index]

    @property
    def nodes(self) -> List[int]:
        """The rank->node placement, world order."""
        return [r.node_id for r in self.ranks]

    def rebind_comm_core(self, node_id: int, core: int) -> None:
        """Move a rank's communication thread to another core."""
        rank = self.ranks[node_id]
        rank.machine.set_core_activity(rank.comm_core, CoreActivity.IDLE)
        rank.comm_core = core
        rank.machine.set_core_activity(core, CoreActivity.SCALAR,
                                       uncore_active=False)

    def __len__(self) -> int:
        return len(self.ranks)
