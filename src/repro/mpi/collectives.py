"""Collective communication built on the point-to-point layer.

The paper deliberately scopes to point-to-point ping-pongs ("analyzing
also collective communications would be beyond the scope of this
article", §2.1).  This module provides the natural extension so the same
interference questions can be asked of collectives:

* :func:`bcast`     — binomial tree (log₂p rounds of p2p messages);
* :func:`reduce`    — mirrored binomial tree plus per-hop reduction cost;
* :func:`allreduce` — reduce + bcast for small payloads, ring
  reduce-scatter/allgather for large ones (the classic Rabenseifner
  switch);
* :func:`barrier`   — zero-byte allreduce.

All collectives are simulation processes returning a
:class:`CollectiveRecord`; they go through the normal protocol engine,
so memory contention, placement and frequency effects apply to every
constituent message.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from repro.hardware.memory import Buffer
from repro.mpi.comm import CommWorld
from repro.mpi.p2p import P2PContext

__all__ = ["CollectiveRecord", "CollectiveContext",
           "RING_ALLREDUCE_THRESHOLD"]

# Above this payload, allreduce switches from tree to ring.
RING_ALLREDUCE_THRESHOLD = 64 * 1024

# Cost of combining one byte during a reduction (memory-bound SUM).
REDUCE_BYTES_FACTOR = 2.0   # read partial + operand per payload byte


@dataclass
class CollectiveRecord:
    """Timing of one collective operation."""

    op: str
    size: int
    n_ranks: int
    start: float
    end: float
    algorithm: str = ""
    messages: int = 0

    @property
    def duration(self) -> float:
        return self.end - self.start


class CollectiveContext:
    """Collectives over all ranks of a :class:`CommWorld`."""

    def __init__(self, world: CommWorld,
                 p2p: Optional[P2PContext] = None):
        if len(world) < 2:
            raise ValueError("collectives need at least two ranks")
        self.world = world
        self.p2p = p2p if p2p is not None else P2PContext(world)
        self._tag = 1 << 20   # private tag space
        self._buffers: Dict[tuple, Buffer] = {}

    # -- helpers ----------------------------------------------------------
    def _next_tag(self) -> int:
        self._tag += 1
        return self._tag

    def _buf(self, rank: int, size: int, label: str) -> Buffer:
        key = (rank, size, label)
        buf = self._buffers.get(key)
        if buf is None:
            buf = self.world.rank(rank).buffer(max(size, 1), label=label)
            self._buffers[key] = buf
        return buf

    def _send_recv(self, src: int, dst: int, size: int, tag: int):
        """Start a matched transfer; returns the recv request."""
        self.p2p.isend(src, dst, self._buf(src, size, "coll_s"), tag=tag,
                       size=size)
        return self.p2p.irecv(dst, src, self._buf(dst, size, "coll_r"),
                              tag=tag, size=size)

    def _reduce_compute(self, rank: int, size: int) -> Generator:
        """Local combine cost at *rank* for *size* payload bytes."""
        if size <= 0:
            return
        machine = self.world.rank(rank).machine
        nbytes = size * REDUCE_BYTES_FACTOR
        flow = machine.net.transfer(
            machine.load_path(self.world.rank(rank).comm_core,
                              machine.nic_numa.id),
            size=nbytes, demand=machine.spec.memory.per_core_bw,
            label="reduce_op")
        yield flow.done

    # -- collectives ----------------------------------------------------------
    def bcast(self, root: int = 0, size: int = 4) -> Generator:
        """Binomial-tree broadcast; returns a :class:`CollectiveRecord`."""
        world = self.world
        p = len(world)
        start = world.sim.now
        rounds = max(1, math.ceil(math.log2(p)))
        # Virtual ranks relative to root.
        have = {root}
        messages = 0
        for r in range(rounds):
            stride = 1 << r
            recvs = []
            for vsrc in range(stride):
                src = (root + vsrc) % p
                vdst = vsrc + stride
                if vdst >= p or src not in have:
                    continue
                dst = (root + vdst) % p
                tag = self._next_tag()
                recvs.append((dst, self._send_recv(src, dst, size, tag)))
                messages += 1
            for dst, req in recvs:
                yield req.done
                have.add(dst)
        return CollectiveRecord(op="bcast", size=size, n_ranks=p,
                                start=start, end=world.sim.now,
                                algorithm="binomial", messages=messages)

    def reduce(self, root: int = 0, size: int = 4) -> Generator:
        """Binomial-tree reduction towards *root*."""
        world = self.world
        p = len(world)
        start = world.sim.now
        rounds = max(1, math.ceil(math.log2(p)))
        messages = 0
        for r in range(rounds):
            stride = 1 << r
            pending = []
            for vdst in range(0, p, stride * 2):
                vsrc = vdst + stride
                if vsrc >= p:
                    continue
                src = (root + vsrc) % p
                dst = (root + vdst) % p
                tag = self._next_tag()
                pending.append((dst, self._send_recv(src, dst, size, tag)))
                messages += 1
            for dst, req in pending:
                yield req.done
                yield from self._reduce_compute(dst, size)
        return CollectiveRecord(op="reduce", size=size, n_ranks=p,
                                start=start, end=world.sim.now,
                                algorithm="binomial", messages=messages)

    def allreduce(self, size: int = 4) -> Generator:
        """Tree (small) or ring (large) allreduce."""
        world = self.world
        p = len(world)
        start = world.sim.now
        if size <= RING_ALLREDUCE_THRESHOLD or p == 2:
            red = yield from self.reduce(root=0, size=size)
            bc = yield from self.bcast(root=0, size=size)
            return CollectiveRecord(
                op="allreduce", size=size, n_ranks=p, start=start,
                end=world.sim.now, algorithm="tree",
                messages=red.messages + bc.messages)
        # Ring: reduce-scatter + allgather, 2(p-1) chunked steps.
        chunk = max(1, size // p)
        messages = 0
        for phase in ("reduce_scatter", "allgather"):
            for step in range(p - 1):
                recvs = []
                for rank in range(p):
                    dst = (rank + 1) % p
                    tag = self._next_tag()
                    recvs.append((dst, self._send_recv(rank, dst, chunk,
                                                       tag)))
                    messages += 1
                for dst, req in recvs:
                    yield req.done
                    if phase == "reduce_scatter":
                        yield from self._reduce_compute(dst, chunk)
        return CollectiveRecord(op="allreduce", size=size, n_ranks=p,
                                start=start, end=world.sim.now,
                                algorithm="ring", messages=messages)

    def barrier(self) -> Generator:
        """Synchronise all ranks (zero-payload allreduce)."""
        record = yield from self.allreduce(size=0)
        return CollectiveRecord(op="barrier", size=0,
                                n_ranks=record.n_ranks,
                                start=record.start, end=record.end,
                                algorithm=record.algorithm,
                                messages=record.messages)

    # -- convenience driver ---------------------------------------------------
    def run(self, op: str, **kwargs) -> CollectiveRecord:
        """Run one collective to completion and return its record.

        Drives the simulation only until the collective finishes, so it
        composes with background activity (looping kernels) that would
        keep the event queue alive forever.
        """
        gen = getattr(self, op)(**kwargs)
        proc = self.world.sim.process(gen)
        while not proc.triggered:
            self.world.sim.step()
        return proc.value
