"""MPI-like message library on top of the protocol engine.

* :mod:`repro.mpi.comm` — :class:`CommWorld`: ranks, comm-thread core
  binding, per-rank default buffers.
* :mod:`repro.mpi.p2p` — tagged ``isend``/``irecv`` with MPI matching
  semantics, executed by each rank's progression loop.
* :mod:`repro.mpi.pingpong` — the NetPIPE-style ping-pong benchmark the
  whole paper is built on (§2.1): latency is the half round-trip,
  bandwidth is size divided by that latency.
"""

from repro.mpi.comm import CommWorld, Rank
from repro.mpi.p2p import P2PContext, Request
from repro.mpi.pingpong import PingPong, PingPongResult

__all__ = ["CommWorld", "Rank", "P2PContext", "Request",
           "PingPong", "PingPongResult"]
