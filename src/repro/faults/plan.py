"""Fault plans: seedable, serialisable schedules of hardware faults.

A :class:`FaultPlan` is an ordered list of fault specs plus a seed.  It
is pure data — arming it against a live cluster is the job of
:class:`~repro.faults.injector.FaultInjector`.  Times are *simulation*
times: every sweep point runs its own simulator starting at ``t=0``, so
a fault window applies to each point whose simulated execution reaches
it (this is what makes faulted sweeps reproducible point by point).
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass
from typing import Dict, List, Optional, Union

from repro.sim.randomness import RandomStreams

__all__ = [
    "FailSlowCore", "DegradedLink", "MessageLoss", "RegCacheFlush",
    "FailStop", "CrashWorker", "FaultPlan", "parse_fault",
]


@dataclass(frozen=True)
class FailSlowCore:
    """Cap a core's (or a whole node's) frequency during a window."""

    node: int
    freq_cap_hz: float
    start: float = 0.0
    duration: float = math.inf
    core: Optional[int] = None      # None = every core of the node


@dataclass(frozen=True)
class DegradedLink:
    """De-rate a fabric link: bandwidth and/or latency multipliers.

    Address the link either by directed node pair (``src``/``dst`` — the
    injection wire of that route, the seed semantics) or by fabric edge
    label (``link="ft.l0.up1"``, ``link="df.g0->g1"``, ... — any label
    from the cluster topology's link catalog).  With ``link`` set the
    latency multiplier applies to every route crossing that edge.
    """

    src: int = -1
    dst: int = -1
    start: float = 0.0
    duration: float = math.inf
    bw_factor: float = 1.0          # multiplier on link capacity (<= 1)
    latency_factor: float = 1.0     # multiplier on wire latency (>= 1)
    link: Optional[str] = None      # fabric edge label; overrides src/dst

    def __post_init__(self):
        if self.link is None and (self.src < 0 or self.dst < 0):
            raise ValueError(
                "DegradedLink needs either src+dst node ids or a "
                "link=<fabric edge label>")


@dataclass(frozen=True)
class MessageLoss:
    """Transient loss/corruption window, optionally scoped to a link."""

    loss_rate: float
    start: float = 0.0
    duration: float = math.inf
    src: Optional[int] = None       # None = any source
    dst: Optional[int] = None       # None = any destination
    corrupt_rate: float = 0.0       # delivered but checksum-rejected


@dataclass(frozen=True)
class RegCacheFlush:
    """Flush a node's NIC registration cache (optionally periodically)."""

    node: int
    at: float
    period: Optional[float] = None
    count: int = 1                  # number of flushes when periodic


@dataclass(frozen=True)
class FailStop:
    """Crash a node: all later transfers to/from it fail."""

    node: int
    at: float


@dataclass(frozen=True)
class CrashWorker:
    """Fail-stop one runtime worker; its in-flight task is requeued."""

    node: int
    at: float
    worker_index: int = 0


Fault = Union[FailSlowCore, DegradedLink, MessageLoss, RegCacheFlush,
              FailStop, CrashWorker]

_FAULT_KINDS: Dict[str, type] = {
    "fail_slow": FailSlowCore,
    "degraded_link": DegradedLink,
    "link": DegradedLink,
    "loss": MessageLoss,
    "reg_flush": RegCacheFlush,
    "fail_stop": FailStop,
    "crash_worker": CrashWorker,
}

_KIND_OF_TYPE = {FailSlowCore: "fail_slow", DegradedLink: "degraded_link",
                 MessageLoss: "loss", RegCacheFlush: "reg_flush",
                 FailStop: "fail_stop", CrashWorker: "crash_worker"}

_INT_FIELDS = {"node", "core", "src", "dst", "count", "worker_index"}
_STR_FIELDS = {"link"}


def _convert(key: str, value: str):
    if value in ("None", "none", ""):
        return None
    if key in _STR_FIELDS:
        return value
    if key in _INT_FIELDS:
        return int(value)
    if value == "inf":
        return math.inf
    return float(value)


def parse_fault(spec: str) -> Fault:
    """Parse a CLI mini-spec like ``"fail_stop:node=1,at=0.01"``."""
    kind, _, rest = spec.partition(":")
    kind = kind.strip()
    cls = _FAULT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown fault kind {kind!r}; pick one of "
            f"{sorted(set(_FAULT_KINDS))}")
    kwargs = {}
    for part in rest.split(","):
        part = part.strip()
        if not part:
            continue
        key, sep, value = part.partition("=")
        if not sep:
            raise ValueError(f"malformed fault field {part!r} in {spec!r}")
        kwargs[key.strip()] = _convert(key.strip(), value.strip())
    try:
        return cls(**kwargs)
    except TypeError as err:
        raise ValueError(f"bad fields for fault {kind!r}: {err}") from None


class FaultPlan:
    """A seed plus an ordered list of faults (builder-style API)."""

    def __init__(self, seed: int = 0, faults: Optional[List[Fault]] = None):
        self.seed = int(seed)
        self.faults: List[Fault] = list(faults or [])

    # -- builders ----------------------------------------------------------
    def add(self, fault: Fault) -> "FaultPlan":
        self.faults.append(fault)
        return self

    def fail_slow(self, node: int, freq_cap_hz: float, start: float = 0.0,
                  duration: float = math.inf,
                  core: Optional[int] = None) -> "FaultPlan":
        return self.add(FailSlowCore(node=node, freq_cap_hz=freq_cap_hz,
                                     start=start, duration=duration,
                                     core=core))

    def degrade_link(self, src: int = -1, dst: int = -1, start: float = 0.0,
                     duration: float = math.inf, bw_factor: float = 1.0,
                     latency_factor: float = 1.0,
                     link: Optional[str] = None) -> "FaultPlan":
        return self.add(DegradedLink(src=src, dst=dst, start=start,
                                     duration=duration, bw_factor=bw_factor,
                                     latency_factor=latency_factor,
                                     link=link))

    def message_loss(self, loss_rate: float, start: float = 0.0,
                     duration: float = math.inf, src: Optional[int] = None,
                     dst: Optional[int] = None,
                     corrupt_rate: float = 0.0) -> "FaultPlan":
        return self.add(MessageLoss(loss_rate=loss_rate, start=start,
                                    duration=duration, src=src, dst=dst,
                                    corrupt_rate=corrupt_rate))

    def flush_reg_cache(self, node: int, at: float,
                        period: Optional[float] = None,
                        count: int = 1) -> "FaultPlan":
        return self.add(RegCacheFlush(node=node, at=at, period=period,
                                      count=count))

    def fail_stop(self, node: int, at: float) -> "FaultPlan":
        return self.add(FailStop(node=node, at=at))

    def crash_worker(self, node: int, at: float,
                     worker_index: int = 0) -> "FaultPlan":
        return self.add(CrashWorker(node=node, at=at,
                                    worker_index=worker_index))

    # -- random generation -------------------------------------------------
    @classmethod
    def random(cls, seed: int, n_nodes: int = 2,
               horizon: float = 0.1) -> "FaultPlan":
        """A plausible mixed fault load, fully determined by *seed*.

        One transient loss window, one degraded link and one fail-slow
        core, with parameters drawn from the seeded stream.  The same
        seed always yields the same plan.
        """
        rng = RandomStreams(seed).stream("plan")
        plan = cls(seed=seed)
        t0 = float(rng.uniform(0.0, 0.3 * horizon))
        plan.message_loss(
            loss_rate=float(rng.uniform(0.002, 0.05)),
            start=t0, duration=float(rng.uniform(0.3, 1.0)) * horizon,
            corrupt_rate=float(rng.uniform(0.0, 0.005)))
        src = int(rng.integers(0, n_nodes))
        dst = int((src + 1 + rng.integers(0, max(1, n_nodes - 1)))
                  % n_nodes)
        plan.degrade_link(
            src=src, dst=dst,
            start=float(rng.uniform(0.0, 0.5 * horizon)),
            duration=float(rng.uniform(0.2, 0.8)) * horizon,
            bw_factor=float(rng.uniform(0.3, 0.9)),
            latency_factor=float(rng.uniform(1.1, 3.0)))
        plan.fail_slow(
            node=int(rng.integers(0, n_nodes)),
            freq_cap_hz=float(rng.uniform(1.0e9, 1.8e9)),
            start=float(rng.uniform(0.0, 0.5 * horizon)),
            duration=float(rng.uniform(0.3, 1.0)) * horizon)
        return plan

    # -- serialisation ------------------------------------------------------
    def to_dict(self) -> dict:
        faults = []
        for f in self.faults:
            entry = dict(kind=_KIND_OF_TYPE[type(f)], **asdict(f))
            # Pair-addressed link faults serialise exactly as before the
            # fabric-edge extension (no "link": None key).
            if isinstance(f, DegradedLink) and f.link is None:
                del entry["link"]
            faults.append(entry)
        return {"seed": self.seed, "faults": faults}

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        plan = cls(seed=data.get("seed", 0))
        for entry in data.get("faults", []):
            entry = dict(entry)
            kind = entry.pop("kind")
            plan.add(_FAULT_KINDS[kind](**entry))
        return plan

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FaultPlan(seed={self.seed}, {len(self.faults)} faults)"
