"""Deterministic fault injection for the simulated cluster.

The paper measures interference on *healthy* hardware; production
clusters are dominated by fail-slow NICs, flaky links and stragglers.
This package lets every experiment run under a seeded, reproducible
:class:`FaultPlan`:

* **fail-slow cores** — frequency capped mid-run;
* **degraded links** — bandwidth/latency multipliers applied to the
  fluid wire resources;
* **transient message loss / corruption** — consumed by the reliable
  transport in :mod:`repro.netmodel.protocols`;
* **registration-cache flushes** — NIC pin-down cache invalidation;
* **fail-stop node crashes** — transfers to/from the node raise
  :class:`TransportError`, the node's runtime workers stop and their
  in-flight tasks are requeued.

All faults are ordinary simulation events with start/duration windows,
and every random decision (loss draws, random plan generation) comes
from :class:`~repro.sim.randomness.RandomStreams` seeded by the plan's
seed — two runs with the same ``--fault-seed`` are bit-identical.

Usage::

    plan = FaultPlan(seed=7).fail_stop(node=1, at=0.05)
    with fault_context(plan):
        result = fig4a(core_counts=[0, 5], reps=4)
    result.failures            # structured per-point fault annotations
"""

from repro.faults.context import (
    InstalledFaults, active_faults, active_point_scope, clear_faults,
    derive_point_seed, fault_context, install_faults, point_scope,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    CrashWorker, DegradedLink, FailSlowCore, FailStop, FaultPlan,
    MessageLoss, RegCacheFlush, parse_fault,
)
from repro.faults.chaos import maybe_chaos
from repro.faults.reliability import (ReliabilityConfig, TransportError,
                                      backoff_delay)

__all__ = [
    "FaultPlan", "FailSlowCore", "DegradedLink", "MessageLoss",
    "RegCacheFlush", "FailStop", "CrashWorker", "parse_fault",
    "ReliabilityConfig", "TransportError", "backoff_delay", "maybe_chaos",
    "FaultInjector",
    "InstalledFaults", "install_faults", "clear_faults", "active_faults",
    "fault_context",
    "derive_point_seed", "point_scope", "active_point_scope",
]
