"""Harness-level chaos injection for resilience tests and CI smoke runs.

The faults package simulates failures *inside* the model (lossy links,
fail-stop nodes).  This module injects failures into the harness
itself — the worker process executing a sweep point — so the executor's
timeout / retry / requeue machinery can be exercised end to end:

* ``crash`` — the worker calls ``os._exit``, producing the same
  ``BrokenProcessPool`` a segfault or OOM kill would;
* ``hang`` — the worker sleeps past the point deadline, exercising the
  timeout-and-kill path (or, with a long ``for=``, a stuck point).

Chaos is configured through the ``REPRO_CHAOS`` environment variable so
it crosses the ``fork`` into pool workers without any plumbing::

    REPRO_CHAOS="crash:size=65536"              # _exit(1) on matching points
    REPRO_CHAOS="crash:size=65536:once=/tmp/d"  # ...but only the first time
    REPRO_CHAOS="hang:core4:for=30"             # sleep 30 s on matching points
    REPRO_CHAOS="crash:a;hang:b:for=5"          # multiple directives

Each ``;``-separated directive is ``kind:match[:opt=val,...]``.  A
directive applies when *match* is a substring of ``experiment/key`` of
the point about to run.  Options:

``once=<dir>``
    Fire at most once per (directive, point): a marker file named after
    the directive and point is created in ``<dir>`` before the chaos
    act, so the retried point runs clean.  This is how tests assert
    that a crashed point's *retry* is byte-identical to an undisturbed
    run.
``for=<seconds>``
    Hang duration (default 3600).
``code=<int>``
    Exit code for ``crash`` (default 1).

:func:`maybe_chaos` is called by the executor's worker entry just
before the point runs; with ``REPRO_CHAOS`` unset it is a no-op costing
one environment lookup.
"""

from __future__ import annotations

import hashlib
import os
import time
from typing import List, Optional, Tuple

__all__ = ["maybe_chaos", "parse_chaos"]

ENV_VAR = "REPRO_CHAOS"


def parse_chaos(raw: str) -> List[Tuple[str, str, dict]]:
    """Parse a ``REPRO_CHAOS`` value into ``(kind, match, opts)`` triples."""
    directives = []
    for part in raw.split(";"):
        part = part.strip()
        if not part:
            continue
        fields = part.split(":")
        if len(fields) < 2:
            raise ValueError(
                f"chaos directive {part!r} must be kind:match[:opt=val,...]")
        kind, match = fields[0], fields[1]
        if kind not in ("crash", "hang"):
            raise ValueError(f"unknown chaos kind {kind!r} in {part!r}")
        opts: dict = {}
        for opt in ":".join(fields[2:]).split(","):
            opt = opt.strip()
            if not opt:
                continue
            if "=" not in opt:
                raise ValueError(f"chaos option {opt!r} must be key=value")
            key, value = opt.split("=", 1)
            if key == "for":
                opts["for"] = float(value)
            elif key == "code":
                opts["code"] = int(value)
            elif key == "once":
                opts["once"] = value
            else:
                raise ValueError(f"unknown chaos option {key!r} in {part!r}")
        directives.append((kind, match, opts))
    return directives


def _once_marker(once_dir: str, kind: str, match: str, target: str) -> str:
    digest = hashlib.sha256(
        f"{kind}:{match}:{target}".encode()).hexdigest()[:24]
    return os.path.join(once_dir, f"chaos-{digest}")


def maybe_chaos(experiment: str, key: str) -> None:
    """Apply any matching ``REPRO_CHAOS`` directive to the current point.

    Called in the worker process right before a point executes.  A
    ``crash`` directive never returns; a ``hang`` directive returns
    after its sleep (by which time the parent has usually killed us).
    """
    raw = os.environ.get(ENV_VAR)
    if not raw:
        return
    target = f"{experiment}/{key}"
    for kind, match, opts in parse_chaos(raw):
        if match not in target:
            continue
        once_dir = opts.get("once")
        if once_dir is not None:
            marker = _once_marker(once_dir, kind, match, target)
            try:
                # O_EXCL: winning the create means we fire; a retry (or
                # a requeued sibling) finds the marker and runs clean.
                fd = os.open(marker, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
                os.close(fd)
            except FileExistsError:
                continue
        if kind == "crash":
            os._exit(opts.get("code", 1))
        elif kind == "hang":
            time.sleep(opts.get("for", 3600.0))
