"""Arms a :class:`FaultPlan` against a live cluster.

The injector translates each fault spec into simulation events
(start/end callbacks) and keeps the *live* fault state that the
reliable transport queries on every message: which nodes are dead,
the latency multiplier of each link, and the loss/corruption rate of
the active windows.  All probabilistic decisions draw from one
dedicated RNG stream seeded by the plan — independent from the
measurement-noise streams, so a plan with zero loss perturbs nothing.
"""

from __future__ import annotations

import logging
import math
from typing import Dict, List, Optional, Set, Tuple

from repro.faults.plan import (
    CrashWorker, DegradedLink, FailSlowCore, FailStop, FaultPlan,
    MessageLoss, RegCacheFlush,
)
from repro.faults.reliability import ReliabilityConfig
from repro.sim.randomness import RandomStreams

__all__ = ["FaultInjector"]

logger = logging.getLogger(__name__)


class FaultInjector:
    """Live fault state of one cluster under an armed plan."""

    def __init__(self, cluster, plan: FaultPlan,
                 reliability: Optional[ReliabilityConfig] = None):
        self.cluster = cluster
        self.plan = plan
        self.reliability = reliability if reliability is not None \
            else ReliabilityConfig()
        # Inside a sweep point the RNG seed is a pure function of
        # (campaign seed, experiment, point key) — see
        # repro.faults.context.derive_point_seed — so seeded campaigns
        # inject identical faults at any --jobs level.  Outside a point
        # scope (bare clusters, unit tests) the plan seed is used as is.
        from repro.faults.context import active_point_scope, \
            derive_point_seed
        scope = active_point_scope()
        seed = plan.seed if scope is None \
            else derive_point_seed(plan.seed, *scope)
        self._rng = RandomStreams(seed).stream("loss")
        self._dead: Set[int] = set()
        self._lat_factor: Dict[Tuple[int, int], float] = {}
        # Latency factors for edge-addressed link faults, keyed by the
        # fabric Resource (identity); applied to every route crossing
        # the edge.  Empty unless a plan uses link=<label> targeting, so
        # the pair-addressed fast path is untouched.
        self._res_lat_factor: Dict[object, float] = {}
        self._loss_windows: List[MessageLoss] = []
        self._engines: List[object] = []      # ProtocolEngines to flush
        self._runtimes: List[object] = []     # RuntimeSystems to crash
        self.log: List[dict] = []             # applied-fault timeline
        self._armed = False

    # -- registration (engines/runtimes announce themselves) --------------
    def register_engine(self, engine) -> None:
        self._engines.append(engine)

    def register_runtime(self, runtime) -> None:
        self._runtimes.append(runtime)

    # -- arming ------------------------------------------------------------
    def arm(self) -> "FaultInjector":
        """Schedule every fault of the plan as simulation events."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        sim = self.cluster.sim
        now = sim.now
        for fault in self.plan.faults:
            if isinstance(fault, FailSlowCore):
                sim.schedule_at(max(now, fault.start),
                                self._start_fail_slow, fault)
                if math.isfinite(fault.duration):
                    sim.schedule_at(max(now, fault.start + fault.duration),
                                    self._end_fail_slow, fault)
            elif isinstance(fault, DegradedLink):
                sim.schedule_at(max(now, fault.start),
                                self._start_link, fault)
                if math.isfinite(fault.duration):
                    sim.schedule_at(max(now, fault.start + fault.duration),
                                    self._end_link, fault)
            elif isinstance(fault, MessageLoss):
                sim.schedule_at(max(now, fault.start),
                                self._start_loss, fault)
                if math.isfinite(fault.duration):
                    sim.schedule_at(max(now, fault.start + fault.duration),
                                    self._end_loss, fault)
            elif isinstance(fault, RegCacheFlush):
                repeats = fault.count if fault.period is not None else 1
                for k in range(max(1, repeats)):
                    at = fault.at + k * (fault.period or 0.0)
                    sim.schedule_at(max(now, at), self._flush, fault)
            elif isinstance(fault, FailStop):
                sim.schedule_at(max(now, fault.at), self._fail_stop, fault)
            elif isinstance(fault, CrashWorker):
                sim.schedule_at(max(now, fault.at), self._crash_worker,
                                fault)
            else:  # pragma: no cover - new fault kinds must be wired here
                raise TypeError(f"unhandled fault spec {fault!r}")
        return self

    def _note(self, action: str, fault) -> None:
        logger.info("t=%.6f %s %s %s", self.cluster.sim.now, action,
                    type(fault).__name__, fault)
        self.log.append({"t": self.cluster.sim.now, "action": action,
                         "fault": type(fault).__name__})
        from repro.obs.context import active_telemetry
        tele = active_telemetry()
        if tele is not None:
            tele.on_fault(self.cluster, action, fault)

    # -- fail-slow cores ---------------------------------------------------
    def _cores_of(self, fault: FailSlowCore) -> List[int]:
        machine = self.cluster.machine(fault.node)
        if fault.core is not None:
            return [fault.core]
        return [c.id for c in machine.cores]

    def _start_fail_slow(self, fault: FailSlowCore) -> None:
        machine = self.cluster.machine(fault.node)
        for core in self._cores_of(fault):
            machine.freq.set_core_cap(core, fault.freq_cap_hz)
        self._note("start", fault)

    def _end_fail_slow(self, fault: FailSlowCore) -> None:
        machine = self.cluster.machine(fault.node)
        for core in self._cores_of(fault):
            machine.freq.set_core_cap(core, None)
        self._note("end", fault)

    # -- degraded links ----------------------------------------------------
    def _link_res(self, fault: DegradedLink):
        """The fabric resource a link fault targets: an edge by label,
        or the injection wire of the (src, dst) route."""
        if fault.link is not None:
            return self.cluster.find_link(fault.link)
        return self.cluster.wire(fault.src, fault.dst)

    def _start_link(self, fault: DegradedLink) -> None:
        wire = self._link_res(fault)
        if fault.bw_factor != 1.0:
            wire.set_capacity(wire.capacity * fault.bw_factor)
        if fault.latency_factor != 1.0:
            if fault.link is not None:
                self._res_lat_factor[wire] = (
                    self._res_lat_factor.get(wire, 1.0)
                    * fault.latency_factor)
            else:
                key = (fault.src, fault.dst)
                self._lat_factor[key] = (self._lat_factor.get(key, 1.0)
                                         * fault.latency_factor)
        self._note("start", fault)

    def _end_link(self, fault: DegradedLink) -> None:
        wire = self._link_res(fault)
        if fault.bw_factor != 1.0:
            wire.set_capacity(wire.capacity / fault.bw_factor)
        if fault.latency_factor != 1.0:
            if fault.link is not None:
                factor = (self._res_lat_factor.get(wire, 1.0)
                          / fault.latency_factor)
                if abs(factor - 1.0) < 1e-12:
                    self._res_lat_factor.pop(wire, None)
                else:
                    self._res_lat_factor[wire] = factor
            else:
                key = (fault.src, fault.dst)
                factor = (self._lat_factor.get(key, 1.0)
                          / fault.latency_factor)
                if abs(factor - 1.0) < 1e-12:
                    self._lat_factor.pop(key, None)
                else:
                    self._lat_factor[key] = factor
        self._note("end", fault)

    # -- loss windows -------------------------------------------------------
    def _start_loss(self, fault: MessageLoss) -> None:
        self._loss_windows.append(fault)
        self._note("start", fault)

    def _end_loss(self, fault: MessageLoss) -> None:
        if fault in self._loss_windows:
            self._loss_windows.remove(fault)
        self._note("end", fault)

    # -- registration-cache flushes -----------------------------------------
    def _flush(self, fault: RegCacheFlush) -> None:
        for engine in self._engines:
            cache = engine.reg_caches.get(fault.node)
            if cache is not None:
                cache.flush()
        self._note("flush", fault)

    # -- crashes -------------------------------------------------------------
    def _fail_stop(self, fault: FailStop) -> None:
        if fault.node in self._dead:
            return
        self._dead.add(fault.node)
        for runtime in self._runtimes:
            if runtime.rank_id == fault.node:
                runtime.crash()
        self._note("fail_stop", fault)

    def _crash_worker(self, fault: CrashWorker) -> None:
        for runtime in self._runtimes:
            if runtime.rank_id != fault.node:
                continue
            if 0 <= fault.worker_index < len(runtime.workers):
                runtime.workers[fault.worker_index].crash()
        self._note("crash_worker", fault)

    # -- live queries (the reliable transport's view) ----------------------
    def node_alive(self, node: int) -> bool:
        return node not in self._dead

    @property
    def dead_nodes(self) -> Set[int]:
        return set(self._dead)

    def link_latency_factor(self, src: int, dst: int) -> float:
        factor = self._lat_factor.get((src, dst), 1.0)
        if self._res_lat_factor:
            res_factors = self._res_lat_factor
            for res in self.cluster.route(src, dst):
                f = res_factors.get(res)
                if f is not None:
                    factor *= f
        return factor

    def _window_rate(self, src: int, dst: int, attr: str) -> float:
        """Combined rate of the active windows matching the link."""
        keep = 1.0
        for window in self._loss_windows:
            if window.src is not None and window.src != src:
                continue
            if window.dst is not None and window.dst != dst:
                continue
            keep *= 1.0 - getattr(window, attr)
        return 1.0 - keep

    def loss_rate(self, src: int, dst: int) -> float:
        return self._window_rate(src, dst, "loss_rate")

    def corrupt_rate(self, src: int, dst: int) -> float:
        return self._window_rate(src, dst, "corrupt_rate")

    def draw_loss(self, src: int, dst: int) -> bool:
        """Bernoulli loss draw; consumes RNG only under an active window."""
        rate = self.loss_rate(src, dst)
        return rate > 0.0 and float(self._rng.random()) < rate

    def draw_corrupt(self, src: int, dst: int) -> bool:
        rate = self.corrupt_rate(src, dst)
        return rate > 0.0 and float(self._rng.random()) < rate
