"""Process-wide fault installation consumed by new clusters.

Experiments build their :class:`~repro.hardware.topology.Cluster`
instances internally (often one per sweep point), so faults are
injected through an ambient context rather than threaded through every
experiment signature: ``install_faults(plan)`` (or the
``fault_context`` manager) makes every subsequently constructed cluster
arm a :class:`~repro.faults.injector.FaultInjector` for the plan.

This module deliberately imports nothing from the hardware layer so the
topology module can depend on it without a cycle.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional, Tuple

__all__ = ["InstalledFaults", "install_faults", "clear_faults",
           "active_faults", "fault_context",
           "derive_point_seed", "point_scope", "active_point_scope",
           "trial_scope", "active_trial_seed"]


@dataclass(frozen=True)
class InstalledFaults:
    """The currently installed plan plus transport policy."""

    plan: object                       # FaultPlan
    reliability: Optional[object] = None   # ReliabilityConfig or None


_STACK: List[InstalledFaults] = []


def install_faults(plan, reliability=None) -> InstalledFaults:
    """Install *plan* for every cluster constructed from now on."""
    installed = InstalledFaults(plan=plan, reliability=reliability)
    _STACK.append(installed)
    return installed


def clear_faults() -> None:
    """Remove the most recently installed plan (no-op when empty)."""
    if _STACK:
        _STACK.pop()


def active_faults() -> Optional[InstalledFaults]:
    """The innermost installed plan, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextmanager
def fault_context(plan, reliability=None):
    """Scope a fault plan to a ``with`` block."""
    installed = install_faults(plan, reliability)
    try:
        yield installed
    finally:
        if _STACK and _STACK[-1] is installed:
            _STACK.pop()
        elif installed in _STACK:  # pragma: no cover - unbalanced nesting
            _STACK.remove(installed)


# ---------------------------------------------------------------------------
# Per-point seed derivation
# ---------------------------------------------------------------------------
#
# A parallel sweep executes points in arbitrary wall-clock order, so any
# seed that depends on *when* a point runs breaks --jobs determinism.
# Instead every sweep point announces itself through ``point_scope`` and
# the fault injector derives its RNG seed as a pure function of
# (campaign seed, experiment, point key): identical at --jobs 1 and
# --jobs 8, and stable across resumes.

_POINT_SCOPE: List[Tuple[str, str]] = []


def derive_point_seed(campaign_seed: int, experiment: str,
                      key: str) -> int:
    """Stable 64-bit seed for one sweep point.

    Pure function of its arguments (blake2b over the identity triple),
    so the seed never depends on execution or submission order.
    """
    digest = hashlib.blake2b(
        f"{int(campaign_seed)}:{experiment}:{key}".encode(),
        digest_size=8).digest()
    return int.from_bytes(digest, "little")


@contextmanager
def point_scope(experiment: str, key: str):
    """Mark the current sweep point (consumed by the fault injector)."""
    scope = (experiment, key)
    _POINT_SCOPE.append(scope)
    try:
        yield scope
    finally:
        if _POINT_SCOPE and _POINT_SCOPE[-1] is scope:
            _POINT_SCOPE.pop()
        elif scope in _POINT_SCOPE:  # pragma: no cover - unbalanced
            _POINT_SCOPE.remove(scope)


def active_point_scope() -> Optional[Tuple[str, str]]:
    """The innermost ``(experiment, key)`` point scope, or ``None``."""
    return _POINT_SCOPE[-1] if _POINT_SCOPE else None


# ---------------------------------------------------------------------------
# Multi-seed trials
# ---------------------------------------------------------------------------
#
# A multi-trial campaign re-runs every sweep point under a different
# measurement-noise seed.  Experiments construct their clusters with the
# default seed, so — like faults — the trial seed travels ambiently:
# the executor installs ``trial_scope(seed)`` around trial >= 1 points
# and every cluster built with the *default* seed picks it up.  Trial 0
# installs nothing, keeping single-trial runs byte-identical.

_TRIAL_SEEDS: List[int] = []


@contextmanager
def trial_scope(seed: int):
    """Scope a derived trial seed for clusters built inside the block."""
    seed = int(seed)
    _TRIAL_SEEDS.append(seed)
    try:
        yield seed
    finally:
        if _TRIAL_SEEDS and _TRIAL_SEEDS[-1] == seed:
            _TRIAL_SEEDS.pop()
        elif seed in _TRIAL_SEEDS:  # pragma: no cover - unbalanced
            _TRIAL_SEEDS.remove(seed)


def active_trial_seed() -> Optional[int]:
    """The innermost installed trial seed, or ``None`` (= trial 0)."""
    return _TRIAL_SEEDS[-1] if _TRIAL_SEEDS else None
