"""Process-wide fault installation consumed by new clusters.

Experiments build their :class:`~repro.hardware.topology.Cluster`
instances internally (often one per sweep point), so faults are
injected through an ambient context rather than threaded through every
experiment signature: ``install_faults(plan)`` (or the
``fault_context`` manager) makes every subsequently constructed cluster
arm a :class:`~repro.faults.injector.FaultInjector` for the plan.

This module deliberately imports nothing from the hardware layer so the
topology module can depend on it without a cycle.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import List, Optional

__all__ = ["InstalledFaults", "install_faults", "clear_faults",
           "active_faults", "fault_context"]


@dataclass(frozen=True)
class InstalledFaults:
    """The currently installed plan plus transport policy."""

    plan: object                       # FaultPlan
    reliability: Optional[object] = None   # ReliabilityConfig or None


_STACK: List[InstalledFaults] = []


def install_faults(plan, reliability=None) -> InstalledFaults:
    """Install *plan* for every cluster constructed from now on."""
    installed = InstalledFaults(plan=plan, reliability=reliability)
    _STACK.append(installed)
    return installed


def clear_faults() -> None:
    """Remove the most recently installed plan (no-op when empty)."""
    if _STACK:
        _STACK.pop()


def active_faults() -> Optional[InstalledFaults]:
    """The innermost installed plan, or ``None``."""
    return _STACK[-1] if _STACK else None


@contextmanager
def fault_context(plan, reliability=None):
    """Scope a fault plan to a ``with`` block."""
    installed = install_faults(plan, reliability)
    try:
        yield installed
    finally:
        if _STACK and _STACK[-1] is installed:
            _STACK.pop()
        elif installed in _STACK:  # pragma: no cover - unbalanced nesting
            _STACK.remove(installed)
