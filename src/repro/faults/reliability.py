"""Reliable-transport parameters and the terminal transport failure.

The reliability layer is strictly pay-for-what-you-use: without an
installed :class:`~repro.faults.plan.FaultPlan` the protocol engine
executes the exact pre-fault code path (same events, same RNG draws),
so fault-free experiments stay bit-identical to the seed behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = ["ReliabilityConfig", "TransportError", "backoff_delay"]


def backoff_delay(base: float, attempt: int, factor: float = 2.0,
                  cap: Optional[float] = None, jitter: float = 0.0) -> float:
    """Exponential-backoff delay for the *attempt*-th retry (>= 1).

    The arithmetic (``base * factor ** max(0, attempt - 1)``, then the
    cap) is the reliable transport's retransmit-timeout policy, shared
    here so the sweep executor's point retries back off exactly like
    simulated retransmissions do.  *jitter* in ``[0, 1)`` scales the
    delay by ``1 + jitter`` — callers derive it deterministically (the
    executor hashes the point seed) so retry schedules stay reproducible.
    """
    delay = base * factor ** max(0, attempt - 1)
    if cap is not None:
        delay = min(delay, cap)
    if jitter:
        delay *= 1.0 + jitter
    return delay


class TransportError(RuntimeError):
    """A message could not be delivered (retries exhausted or peer dead)."""

    def __init__(self, reason: str, src: Optional[int] = None,
                 dst: Optional[int] = None, size: Optional[int] = None,
                 retries: int = 0, timeouts: int = 0):
        super().__init__(
            f"{reason} (src={src}, dst={dst}, size={size}, "
            f"retries={retries}, timeouts={timeouts})")
        self.reason = reason
        self.src = src
        self.dst = dst
        self.size = size
        self.retries = retries
        self.timeouts = timeouts


@dataclass(frozen=True)
class ReliabilityConfig:
    """Ack/timeout/retransmit policy of the reliable transport.

    ``timeout_s`` is the base retransmit timeout armed when the sender
    hands a message to the NIC; it doubles (``backoff_factor``) after
    every consecutive timeout up to ``max_backoff_s``.  Rendezvous
    messages use ``handshake_timeout_s`` for the RTS/CTS handshake
    (default: same as ``timeout_s``).  After ``max_retries`` failed
    retransmissions the transfer raises :class:`TransportError` — a
    faulted simulation therefore always terminates, never hangs.

    Acks are piggybacked on the reverse control channel and add no
    latency of their own, but when ``ack_loss`` is true they traverse
    the same lossy links as data: a lost ack forces a (redundant)
    retransmission exactly like a lost message.
    """

    timeout_s: float = 100e-6
    max_retries: int = 10
    backoff_factor: float = 2.0
    max_backoff_s: Optional[float] = 10e-3
    handshake_timeout_s: Optional[float] = None
    ack_loss: bool = True

    def __post_init__(self) -> None:
        if self.timeout_s <= 0:
            raise ValueError("timeout_s must be > 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.backoff_factor < 1.0:
            raise ValueError("backoff_factor must be >= 1")
        if self.max_backoff_s is not None and self.max_backoff_s <= 0:
            raise ValueError("max_backoff_s must be > 0")
        if self.handshake_timeout_s is not None \
                and self.handshake_timeout_s <= 0:
            raise ValueError("handshake_timeout_s must be > 0")

    def retransmit_timeout(self, n_timeouts: int, rendezvous: bool) -> float:
        """Timeout armed after *n_timeouts* consecutive losses (>= 1)."""
        base = (self.handshake_timeout_s
                if rendezvous and self.handshake_timeout_s is not None
                else self.timeout_s)
        return backoff_delay(base, n_timeouts, self.backoff_factor,
                             self.max_backoff_s)
