"""repro — reproduction of "Interferences between Communications and
Computations in Distributed HPC Systems" (Denis, Jeannot, Swartvagher,
ICPP 2021).

The package simulates distributed HPC nodes (NUMA topology, DVFS/turbo
frequencies, fluid memory-bandwidth sharing, InfiniBand-style NICs, an
MPI-like message library and a StarPU-like task runtime) and ships the
paper's complete interference benchmark suite on top.

Quick start::

    from repro import Cluster, CommWorld, PingPong

    cluster = Cluster("henri", n_nodes=2)
    world = CommWorld(cluster, comm_placement="near")
    result = PingPong(world).run(size=4, reps=30)
    print(f"latency: {result.median_latency * 1e6:.2f} us")

Per-figure experiment entry points live in :mod:`repro.core.experiments`
(``fig1a`` … ``fig10``), and ``python -m repro`` runs them from the
command line.
"""

from repro.hardware import (
    BILLY, BORA, HENRI, PYXIS, Cluster, CoreActivity, Machine, MachineSpec,
    available_presets, get_preset,
)
from repro.kernels import (
    Kernel, copy_kernel, prime_kernel, avx_kernel, run_kernel, triad_kernel,
    tunable_triad,
)
from repro.mpi import CommWorld, P2PContext, PingPong, PingPongResult
from repro.core import experiments
from repro.core.placement import Placement
from repro.core.results import ExperimentResult, Series
from repro.core.sidebyside import (
    SideBySideConfig, run_duration_protocol, run_throughput_protocol,
)
from repro.runtime import PollingSpec, RuntimeComm, RuntimeSystem
from repro.runtime.apps import run_cg, run_gemm

__version__ = "1.0.0"

__all__ = [
    "HENRI", "BORA", "BILLY", "PYXIS",
    "Cluster", "Machine", "MachineSpec", "CoreActivity",
    "available_presets", "get_preset",
    "Kernel", "copy_kernel", "triad_kernel", "tunable_triad",
    "prime_kernel", "avx_kernel", "run_kernel",
    "CommWorld", "P2PContext", "PingPong", "PingPongResult",
    "experiments", "Placement", "ExperimentResult", "Series",
    "SideBySideConfig", "run_throughput_protocol", "run_duration_protocol",
    "RuntimeSystem", "RuntimeComm", "PollingSpec",
    "run_cg", "run_gemm",
    "__version__",
]
