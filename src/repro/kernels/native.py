"""Host-native STREAM kernels (real NumPy, no simulation).

Runs COPY/TRIAD on the actual machine this library executes on, to give
users a live reference point for the simulator's memory-bandwidth
numbers and to demonstrate the same benchmark protocol on real hardware.
Follows the scientific-python guidance: vectorised NumPy, in-place
operations, no Python-level loops over elements.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Dict, Optional

import numpy as np

__all__ = ["NativeStreamResult", "native_copy", "native_triad",
           "native_tunable_triad", "run_native_stream"]


@dataclass
class NativeStreamResult:
    """Measured host performance of one native kernel."""

    kernel: str
    elems: int
    iterations: int
    best_seconds: float
    bytes_per_iteration: float

    @property
    def bandwidth(self) -> float:
        """Best-iteration DRAM traffic estimate in bytes/s."""
        return self.bytes_per_iteration / self.best_seconds

    def summary(self) -> str:
        return (f"{self.kernel}: {self.bandwidth/1e9:.2f} GB/s "
                f"(best of {self.iterations})")


def native_copy(b: np.ndarray, a: np.ndarray) -> None:
    """b[:] = a[:] (STREAM COPY)."""
    np.copyto(b, a)


def native_triad(c: np.ndarray, a: np.ndarray, b: np.ndarray,
                 scalar: float = 3.0) -> None:
    """c[:] = a + scalar*b (STREAM TRIAD), allocation-free."""
    np.multiply(b, scalar, out=c)
    np.add(c, a, out=c)


def native_tunable_triad(c: np.ndarray, a: np.ndarray, b: np.ndarray,
                         cursor: int, scalar: float = 3.0) -> None:
    """TRIAD repeated *cursor* times per sweep (the §4.5 cursor idea;
    NumPy cannot repeat per-element, so the repetition is per-array —
    the flops:bytes ratio scales the same way once arrays exceed LLC)."""
    native_triad(c, a, b, scalar)
    for _ in range(cursor - 1):
        np.multiply(b, scalar, out=c)
        np.add(c, a, out=c)


def run_native_stream(kernel: str = "triad", elems: int = 20_000_000,
                      iterations: int = 5, cursor: int = 1,
                      rng: Optional[np.random.Generator] = None,
                      ) -> NativeStreamResult:
    """Measure a native kernel; returns best-of-N bandwidth.

    ``bytes_per_iteration`` uses STREAM's counting rules (16 B/elem for
    COPY, 24 B/elem for TRIAD).
    """
    if iterations < 1 or elems < 1:
        raise ValueError("iterations and elems must be >= 1")
    if rng is None:
        rng = np.random.default_rng(0)
    a = rng.random(elems)
    b = rng.random(elems)
    c = np.empty_like(a)

    runners: Dict[str, Callable[[], None]] = {
        "copy": lambda: native_copy(c, a),
        "triad": lambda: native_triad(c, a, b),
        "tunable_triad": lambda: native_tunable_triad(c, a, b, cursor),
    }
    if kernel not in runners:
        raise ValueError(f"unknown kernel {kernel!r}; pick from {sorted(runners)}")
    run = runners[kernel]
    run()  # warmup
    best = float("inf")
    for _ in range(iterations):
        t0 = time.perf_counter()
        run()
        best = min(best, time.perf_counter() - t0)
    nbytes = elems * (16.0 if kernel == "copy" else 24.0)
    if kernel == "tunable_triad":
        nbytes *= cursor  # each repetition re-streams the arrays
    return NativeStreamResult(kernel=kernel, elems=elems,
                              iterations=iterations, best_seconds=best,
                              bytes_per_iteration=nbytes)
