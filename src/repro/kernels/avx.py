"""AVX-512 FLOP kernel (§3.3 of the paper).

"Each computing core does the same amount of computation: a set of
multiple AVX512 floating instructions (weak scalability)."

The kernel operates entirely in registers (no DRAM traffic); its sole
effects are (a) loading the core at the AVX-512 frequency license, and
(b) taking ``work_flops / (avx_flops_per_cycle × f)`` seconds — so the
computation duration grows as more cores pull the license frequency down
(Figure 3a: 135 ms on 4 cores at 3 GHz vs 210 ms on 20 cores at 2.3 GHz).
"""

from __future__ import annotations

from repro.kernels.roofline import Kernel

__all__ = ["avx_kernel", "DEFAULT_AVX_WORK_FLOPS"]

# Work per core per sweep, calibrated so that 4 henri cores at their
# 3.0 GHz AVX license need ~135 ms (Figure 3b).
DEFAULT_AVX_WORK_FLOPS = 1.3e10


def avx_kernel(work_flops: float = DEFAULT_AVX_WORK_FLOPS,
               chunk_elems: int = 50) -> Kernel:
    """In-register AVX-512 kernel doing *work_flops* per sweep."""
    if work_flops <= 0:
        raise ValueError("work_flops must be > 0")
    elems = 1000
    return Kernel(name="avx512", elems=elems, bytes_per_elem=0.0,
                  flops_per_elem=work_flops / elems, vector=True,
                  chunk_elems=chunk_elems)
