"""Roofline-based kernel execution on simulated cores.

A :class:`Kernel` is characterised by per-element flops and memory
traffic (the roofline reduction the paper itself applies in §4.5).  The
executor runs it in chunks:

* the compute part takes ``flops / (flops_per_cycle × f)`` seconds at the
  core's *live* frequency (so DVFS/turbo/AVX licensing feed straight into
  compute time, §3);
* the memory part is a fluid flow through the core's NUMA path with a
  demand of ``min(per_core_bw, what compute can consume)`` — under
  contention the achieved share shrinks and the chunk becomes
  memory-stalled (§4);
* compute and memory overlap: the chunk lasts ``max(compute, memory)``
  and the excess of memory time over compute time is recorded as memory
  stall in the cycle counters (the paper's Figure 10 metric).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Generator, Optional

from repro.hardware.frequency import CoreActivity
from repro.hardware.topology import Machine
from repro.obs.context import active_telemetry
from repro.sim import Event, noisy

__all__ = ["Kernel", "KernelStats", "KernelRun", "run_kernel",
           "arithmetic_intensity"]


@dataclass(frozen=True)
class Kernel:
    """Roofline description of a computation kernel.

    Parameters
    ----------
    name:
        Human-readable identifier.
    elems:
        Elements per full sweep over the working set.
    bytes_per_elem:
        DRAM traffic per element (0 for in-cache/CPU-bound kernels).
    flops_per_elem:
        Floating-point operations per element.
    cycles_per_elem:
        Extra non-FLOP cycles per element (integer work, e.g. the naive
        prime counter's divisions).
    vector:
        True for AVX-512 kernels: uses the machine's AVX flops/cycle and
        triggers the AVX frequency license.
    chunk_elems:
        Elements per simulation chunk (granularity/accuracy trade-off).
    """

    name: str
    elems: int
    bytes_per_elem: float = 0.0
    flops_per_elem: float = 0.0
    cycles_per_elem: float = 0.0
    vector: bool = False
    chunk_elems: int = 100_000

    def __post_init__(self):
        if self.elems <= 0 or self.chunk_elems <= 0:
            raise ValueError("elems and chunk_elems must be positive")
        if min(self.bytes_per_elem, self.flops_per_elem,
               self.cycles_per_elem) < 0:
            raise ValueError("per-element costs must be non-negative")
        if (self.bytes_per_elem == 0 and self.flops_per_elem == 0
                and self.cycles_per_elem == 0):
            raise ValueError("kernel does nothing")

    @property
    def streaming(self) -> bool:
        """Whether the kernel produces sustained DRAM traffic."""
        return self.bytes_per_elem > 0

    @property
    def intensity(self) -> float:
        """Arithmetic intensity in flop/byte (inf for CPU-only kernels)."""
        return arithmetic_intensity(self.flops_per_elem, self.bytes_per_elem)

    def compute_time_per_elem(self, machine: Machine, hz: float) -> float:
        """Seconds of pure compute per element at frequency *hz*."""
        fpc = (machine.spec.avx_flops_per_cycle if self.vector
               else machine.spec.flops_per_cycle)
        cycles = self.cycles_per_elem
        if self.flops_per_elem:
            cycles += self.flops_per_elem / fpc
        return cycles / hz


def arithmetic_intensity(flops: float, nbytes: float) -> float:
    """Roofline arithmetic intensity, flop/byte."""
    if nbytes <= 0:
        return math.inf
    return flops / nbytes


@dataclass
class KernelStats:
    """Accumulated results of one kernel run on one core."""

    core_id: int
    start: float = 0.0
    end: float = 0.0
    elems_done: int = 0
    sweeps_done: int = 0
    busy: float = 0.0
    mem_stall: float = 0.0
    bytes_moved: float = 0.0
    flops: float = 0.0

    @property
    def duration(self) -> float:
        return self.end - self.start

    @property
    def memory_bandwidth(self) -> float:
        """Achieved DRAM bytes/s of this core (the STREAM metric)."""
        return self.bytes_moved / self.duration if self.duration > 0 else 0.0

    @property
    def flop_rate(self) -> float:
        return self.flops / self.duration if self.duration > 0 else 0.0

    @property
    def stall_fraction(self) -> float:
        return self.mem_stall / self.busy if self.busy > 0 else 0.0


@dataclass
class KernelRun:
    """Handle for a kernel launched with :func:`run_kernel`."""

    stats: KernelStats
    stop: Event = field(repr=False)
    process: object = field(default=None, repr=False)

    def request_stop(self) -> None:
        """Ask the kernel to stop after the current sweep chunk."""
        if not self.stop.triggered:
            self.stop.succeed()


def run_kernel(machine: Machine, core_id: int, kernel: Kernel,
               data_numa: int = 0, sweeps: Optional[int] = 1,
               noise: Optional[float] = None) -> KernelRun:
    """Launch *kernel* on *core_id*, streaming from *data_numa*.

    ``sweeps`` full passes over the working set are executed (``None`` =
    loop until :meth:`KernelRun.request_stop`).  Returns a
    :class:`KernelRun` whose ``process`` event fires with the
    :class:`KernelStats` when done.
    """
    if kernel.streaming and not (0 <= data_numa < len(machine.numa_nodes)):
        raise ValueError(f"no NUMA node {data_numa}")
    stats = KernelStats(core_id=core_id)
    run = KernelRun(stats=stats, stop=machine.sim.event())
    run.process = machine.sim.process(
        _kernel_body(machine, core_id, kernel, data_numa, sweeps, run,
                     noise))
    return run


def _kernel_body(machine: Machine, core_id: int, kernel: Kernel,
                 data_numa: int, sweeps: Optional[int], run: KernelRun,
                 noise: Optional[float]) -> Generator:
    sim = machine.sim
    stats = run.stats
    stats.start = sim.now
    rng = machine.rng.stream(f"kernel.{kernel.name}.{core_id}")
    rel_noise = machine.spec.noise if noise is None else noise

    activity = CoreActivity.AVX512 if kernel.vector else CoreActivity.SCALAR
    machine.set_core_activity(core_id, activity, uncore_active=True)
    per_core_bw = machine.spec.memory.per_core_bw
    tele = active_telemetry()
    span = None if tele is None else tele.begin_span(
        machine, core_id, kernel.name, "kernel",
        elems=kernel.elems, vector=kernel.vector)

    discarded = False
    try:
        sweep = 0
        while sweeps is None or sweep < sweeps:
            remaining = kernel.elems
            while remaining > 0:
                if run.stop.triggered:
                    return stats
                n = min(kernel.chunk_elems, remaining)
                hz = machine.freq.core_hz(core_id)
                cpu_time = noisy(
                    n * kernel.compute_time_per_elem(machine, hz),
                    rel_noise, rng)
                nbytes = n * kernel.bytes_per_elem
                chunk_start = sim.now
                if nbytes > 0:
                    demand = per_core_bw
                    if cpu_time > 0:
                        demand = min(per_core_bw, nbytes / cpu_time)
                    machine.set_streaming(
                        core_id, machine.streaming_weight(demand))
                    flow = machine.net.transfer(
                        machine.load_path(core_id, data_numa), size=nbytes,
                        demand=demand,
                        label=f"{kernel.name}@c{core_id}")
                    yield flow.done
                    mem_time = sim.now - chunk_start
                    if mem_time < cpu_time:
                        yield cpu_time - mem_time
                elif cpu_time > 0:
                    yield cpu_time
                chunk_time = sim.now - chunk_start
                mem_stall = max(0.0, chunk_time - cpu_time)
                # Excess over the uncontended memory time: cycles lost
                # to *other* traffic, not to the kernel's own roofline.
                uncontended = nbytes / demand if nbytes > 0 else 0.0
                contention = max(0.0, min(mem_stall,
                                          chunk_time - max(cpu_time,
                                                           uncontended)))
                stats.busy += chunk_time
                stats.mem_stall += mem_stall
                stats.bytes_moved += nbytes
                stats.flops += n * kernel.flops_per_elem
                stats.elems_done += n
                machine.counters.record(
                    core_id, busy=chunk_time, mem_stall=mem_stall,
                    flops=n * kernel.flops_per_elem, bytes_moved=nbytes,
                    contention_stall=contention)
                remaining -= n
            sweep += 1
            stats.sweeps_done = sweep
        return stats
    except GeneratorExit:
        # Closed because the simulation was discarded (GC of a dead
        # cluster): touching the machine or telemetry now would inject
        # state changes at a GC-dependent moment.
        discarded = True
        raise
    finally:
        if not discarded:
            stats.end = sim.now
            machine.set_core_activity(core_id, CoreActivity.IDLE)
            machine.set_streaming(core_id, False)
            if tele is not None:
                tele.finish_span(machine, span, sweeps=stats.sweeps_done,
                                 elems=stats.elems_done)
                tele.on_kernel_done(machine, core_id, kernel.name)
