"""CPU-bound prime-counting kernel (§3.2 of the paper).

"A computing benchmark counts in a very naive way the number of prime
numbers in an interval.  This forces the CPU to execute instructions
which do not require any memory access."

The naive trial-division count of primes below N costs roughly
``sum_{i<N} sqrt(i) ≈ (2/3)·N^1.5`` division operations.  Each candidate
is one kernel element; the per-element cycle cost is the average number
of trial divisions times the cycles per division.
"""

from __future__ import annotations

from repro.kernels.roofline import Kernel

__all__ = ["prime_kernel", "prime_workload_ops"]

CYCLES_PER_TRIAL_DIVISION = 26.0   # integer div + loop overhead


def prime_workload_ops(n: int) -> float:
    """Total trial divisions of the naive sieve over [2, n)."""
    if n < 2:
        return 0.0
    return (2.0 / 3.0) * n ** 1.5


def prime_kernel(n: int = 4_000_000, chunk_elems: int = 200_000) -> Kernel:
    """Kernel counting primes below *n*: zero memory traffic, pure cycles.

    The default n makes one sweep last ~60 ms per core at ~2.5 GHz,
    comparable to the paper's 183 ms computing phases.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    avg_trials = prime_workload_ops(n) / n
    return Kernel(name=f"prime_{n}", elems=n,
                  bytes_per_elem=0.0, flops_per_elem=0.0,
                  cycles_per_elem=avg_trials * CYCLES_PER_TRIAL_DIVISION,
                  chunk_elems=chunk_elems)
