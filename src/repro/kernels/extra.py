"""Additional computation kernels beyond the paper's benchmark set.

The paper uses COPY/TRIAD, prime counting, AVX and CG/GEMM.  Real HPC
applications sit on a wider intensity spectrum; these kernels extend the
library so users can place *their* codes on the paper's interference
map:

* :func:`scale_kernel` / :func:`add_kernel` — the other two STREAM
  kernels (McCalpin's full quartet);
* :func:`spmv_kernel` — CSR sparse matrix-vector product, the classic
  ultra-memory-bound kernel (~0.1 flop/B including index traffic);
* :func:`stencil_kernel` — 3-D 7-point stencil sweep, the PDE workhorse
  (~0.2-0.5 flop/B depending on cache blocking);
* :func:`dgemm_kernel` — a cache-blocked single-core DGEMM slice, the
  CPU-bound end of the spectrum.
"""

from __future__ import annotations

from repro.kernels.roofline import Kernel

__all__ = ["scale_kernel", "add_kernel", "spmv_kernel", "stencil_kernel",
           "dgemm_kernel"]


def scale_kernel(elems: int = 10_000_000,
                 chunk_elems: int = 100_000) -> Kernel:
    """STREAM SCALE: b[i] = s*a[i] — 16 B and 1 flop per element."""
    return Kernel(name="stream_scale", elems=elems,
                  bytes_per_elem=16.0, flops_per_elem=1.0,
                  chunk_elems=chunk_elems)


def add_kernel(elems: int = 10_000_000,
               chunk_elems: int = 100_000) -> Kernel:
    """STREAM ADD: c[i] = a[i]+b[i] — 24 B and 1 flop per element."""
    return Kernel(name="stream_add", elems=elems,
                  bytes_per_elem=24.0, flops_per_elem=1.0,
                  chunk_elems=chunk_elems)


def spmv_kernel(rows: int = 2_000_000, nnz_per_row: int = 20,
                chunk_elems: int = 50_000) -> Kernel:
    """CSR SpMV: per row, ``nnz`` (value + column index) streams plus the
    gathered x accesses — ~12.5 B and 2 flops per nonzero.

    Intensity ≈ 2/12.5 ≈ 0.16 flop/B: below TRIAD, the most
    contention-generating realistic kernel in the library.
    """
    if rows < 1 or nnz_per_row < 1:
        raise ValueError("rows and nnz_per_row must be >= 1")
    bytes_per_row = nnz_per_row * (8 + 4) + 8 + 0.5 * nnz_per_row * 8
    flops_per_row = 2.0 * nnz_per_row
    return Kernel(name=f"spmv{nnz_per_row}", elems=rows,
                  bytes_per_elem=bytes_per_row,
                  flops_per_elem=flops_per_row,
                  chunk_elems=chunk_elems)


def stencil_kernel(n: int = 256, blocked: bool = True,
                   chunk_elems: int = 100_000) -> Kernel:
    """3-D 7-point stencil over an n³ grid.

    8 flops per point; with cache blocking each point costs ~16 B of
    DRAM traffic (read once + write once), unblocked ~40 B (neighbour
    planes fall out of cache).
    """
    if n < 8:
        raise ValueError("grid too small")
    bytes_per_point = 16.0 if blocked else 40.0
    return Kernel(name=f"stencil{n}{'b' if blocked else ''}",
                  elems=n ** 3, bytes_per_elem=bytes_per_point,
                  flops_per_elem=8.0, chunk_elems=chunk_elems)


def dgemm_kernel(n: int = 1024, block: int = 192,
                 chunk_elems: int = 4) -> Kernel:
    """Single-core blocked DGEMM C += A·B (n³ flops, AVX-512).

    DRAM traffic ≈ ``2·n³/block × 8 B`` (each operand panel streamed
    once per block sweep); intensity ≈ ``block/8`` flop/B — dozens,
    i.e. firmly CPU-bound like the paper's MKL GEMM.
    """
    if n < block:
        raise ValueError("n must be >= block")
    total_flops = 2.0 * n ** 3
    total_bytes = 2.0 * n ** 3 / block * 8.0
    elems = max(chunk_elems, (n // block) ** 2)
    return Kernel(name=f"dgemm{n}", elems=elems,
                  bytes_per_elem=total_bytes / elems,
                  flops_per_elem=total_flops / elems,
                  vector=True, chunk_elems=chunk_elems)
