"""STREAM kernels (McCalpin [16]) and the tunable-intensity TRIAD.

The paper's §4 uses two STREAM kernels:

* ``COPY``  — ``b[i] = a[i]``: 16 B of DRAM traffic per element, 0 flops.
* ``TRIAD`` — ``c[i] = a[i] + C*b[i]``: 24 B per element, 2 flops.

§4.5 modifies TRIAD with a *cursor*: the operation is repeated ``cursor``
times on each element before moving on, multiplying the flops while the
traffic stays constant — sweeping the kernel from memory-bound to
CPU-bound.  Arithmetic intensity is ``2·cursor / 24 = cursor/12`` flop/B,
so the paper's 6 flop/B henri ridge corresponds to cursor ≈ 72.
"""

from __future__ import annotations

from repro.kernels.roofline import Kernel

__all__ = [
    "STREAM_ARRAY_BYTES", "COPY_BYTES_PER_ELEM", "TRIAD_BYTES_PER_ELEM",
    "copy_kernel", "triad_kernel", "tunable_triad",
    "intensity_of_cursor", "cursor_for_intensity",
]

# Default working set: 3 arrays of 10M doubles (240 MB), far beyond LLC,
# matching STREAM's "much larger than cache" rule.
STREAM_ARRAY_ELEMS = 10_000_000
COPY_BYTES_PER_ELEM = 16.0    # read a[i], write b[i]
TRIAD_BYTES_PER_ELEM = 24.0   # read a[i], read b[i], write c[i]
TRIAD_FLOPS_PER_ELEM = 2.0    # multiply + add
STREAM_ARRAY_BYTES = int(STREAM_ARRAY_ELEMS * TRIAD_BYTES_PER_ELEM)


def copy_kernel(elems: int = STREAM_ARRAY_ELEMS,
                chunk_elems: int = 100_000) -> Kernel:
    """STREAM COPY: pure bandwidth, no flops."""
    return Kernel(name="stream_copy", elems=elems,
                  bytes_per_elem=COPY_BYTES_PER_ELEM,
                  flops_per_elem=0.0, chunk_elems=chunk_elems)


def triad_kernel(elems: int = STREAM_ARRAY_ELEMS,
                 chunk_elems: int = 100_000) -> Kernel:
    """STREAM TRIAD: 2 flops per 24 B (intensity 1/12 flop/B)."""
    return Kernel(name="stream_triad", elems=elems,
                  bytes_per_elem=TRIAD_BYTES_PER_ELEM,
                  flops_per_elem=TRIAD_FLOPS_PER_ELEM,
                  chunk_elems=chunk_elems)


def tunable_triad(cursor: int, elems: int = STREAM_ARRAY_ELEMS,
                  chunk_elems: int = 100_000) -> Kernel:
    """TRIAD with the paper's cursor: repeat the FMA *cursor* times per
    element (§4.5).  cursor=1 is plain TRIAD."""
    if cursor < 1:
        raise ValueError("cursor must be >= 1")
    return Kernel(name=f"triad_cursor{cursor}", elems=elems,
                  bytes_per_elem=TRIAD_BYTES_PER_ELEM,
                  flops_per_elem=TRIAD_FLOPS_PER_ELEM * cursor,
                  chunk_elems=chunk_elems)


def intensity_of_cursor(cursor: int) -> float:
    """Arithmetic intensity (flop/B) of :func:`tunable_triad`."""
    return TRIAD_FLOPS_PER_ELEM * cursor / TRIAD_BYTES_PER_ELEM


def cursor_for_intensity(intensity: float) -> int:
    """Smallest cursor whose intensity is >= *intensity* flop/B."""
    if intensity <= 0:
        raise ValueError("intensity must be > 0")
    cursor = int(round(intensity * TRIAD_BYTES_PER_ELEM
                       / TRIAD_FLOPS_PER_ELEM))
    return max(1, cursor)
