"""Tile-level BLAS cost models (flops, DRAM bytes) for the runtime apps.

The paper's §6 kernels — dense conjugate gradient and GEMM built on
StarPU + MKL — decompose into tile operations.  Each tile operation is
characterised by its flop count and its DRAM traffic, from which the
roofline executor derives time and memory pressure.  The decisive
difference the paper measures is arithmetic intensity: a ``b×b`` GEMM
tile reuses operands ``b`` times (intensity ~ b/12 flop/B: tens of
flop/B), while CG's GEMV/AXPY/DOT stream their operands once
(~0.1–0.25 flop/B) — hence 20 % vs 70 % memory-stall cycles and the
20 % vs 90 % communication penalty of Figure 10.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["TileCost", "gemm_tile_cost", "gemv_tile_cost", "axpy_cost",
           "dot_cost", "DOUBLE"]

DOUBLE = 8  # bytes per float64


@dataclass(frozen=True)
class TileCost:
    """Cost of one tile-level operation.

    ``vector`` marks kernels implemented with wide SIMD (MKL BLAS3/2):
    workers then compute at the machine's AVX flops/cycle and under the
    AVX frequency license.
    """

    name: str
    flops: float
    bytes: float
    vector: bool = False

    @property
    def intensity(self) -> float:
        return self.flops / self.bytes if self.bytes > 0 else float("inf")

    def scaled(self, k: float, name: str = "") -> "TileCost":
        """Cost of *k* back-to-back executions of this tile op."""
        return TileCost(name=name or f"{self.name}x{k:g}",
                        flops=self.flops * k, bytes=self.bytes * k,
                        vector=self.vector)


def gemm_tile_cost(b: int, cache_resident_fraction: float = 0.85) -> TileCost:
    """C += A·B on b×b float64 tiles.

    2·b³ flops.  A blocked implementation touches each of the three
    tiles from DRAM roughly once plus a modest re-fetch overhead; the
    ``cache_resident_fraction`` discounts traffic served by the LLC.
    """
    if b < 1:
        raise ValueError("tile size must be >= 1")
    flops = 2.0 * b ** 3
    raw_bytes = 4.0 * b * b * DOUBLE       # read A, B, C; write C
    eff_bytes = raw_bytes * (1.0 - cache_resident_fraction) + raw_bytes * 0.15
    return TileCost(name=f"gemm{b}", flops=flops,
                    bytes=max(eff_bytes, raw_bytes * 0.2), vector=True)


def gemv_tile_cost(rows: int, cols: int) -> TileCost:
    """y += A·x on a rows×cols float64 block: streams A once (dense CG's
    dominant cost — intensity ≈ 0.25 flop/B)."""
    if rows < 1 or cols < 1:
        raise ValueError("block dims must be >= 1")
    flops = 2.0 * rows * cols
    nbytes = rows * cols * DOUBLE + (rows + cols) * DOUBLE
    return TileCost(name=f"gemv{rows}x{cols}", flops=flops, bytes=nbytes,
                    vector=True)


def axpy_cost(n: int) -> TileCost:
    """y = a·x + y over n float64: 2 flops per 24 B (like TRIAD)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return TileCost(name=f"axpy{n}", flops=2.0 * n, bytes=24.0 * n)


def dot_cost(n: int) -> TileCost:
    """x·y over n float64: 2 flops per 16 B."""
    if n < 1:
        raise ValueError("n must be >= 1")
    return TileCost(name=f"dot{n}", flops=2.0 * n, bytes=16.0 * n)
