"""Computation kernels executed on the simulated machine.

The paper's computational workloads, reduced to their roofline
characteristics and executed chunk-by-chunk on simulated cores:

* :mod:`repro.kernels.roofline` — the executor: a kernel is a stream of
  (flops, bytes) chunks; each chunk's duration is the maximum of its
  compute time (at the core's live frequency) and its memory time (a
  fluid flow through the NUMA path), with stall cycles accounted.
* :mod:`repro.kernels.stream` — STREAM COPY / TRIAD (§4.1) and the
  tunable-arithmetic-intensity TRIAD with the paper's *cursor* (§4.5).
* :mod:`repro.kernels.prime` — the CPU-bound naive prime counter (§3.2).
* :mod:`repro.kernels.avx` — the AVX-512 weak-scaling FLOP kernel (§3.3).
* :mod:`repro.kernels.blas` — tile-level (flops, bytes) cost models for
  GEMM/GEMV/AXPY/DOT, used by the task-based runtime applications (§6).
* :mod:`repro.kernels.native` — a *real* NumPy STREAM run on the host,
  for live demonstration/calibration outside the simulator.
"""

from repro.kernels.roofline import (
    Kernel, KernelRun, KernelStats, run_kernel, arithmetic_intensity,
)
from repro.kernels.stream import (
    copy_kernel, triad_kernel, tunable_triad, cursor_for_intensity,
    intensity_of_cursor, STREAM_ARRAY_BYTES,
)
from repro.kernels.prime import prime_kernel, prime_workload_ops
from repro.kernels.avx import avx_kernel
from repro.kernels.blas import (
    gemm_tile_cost, gemv_tile_cost, axpy_cost, dot_cost, TileCost,
)

__all__ = [
    "Kernel", "KernelRun", "KernelStats", "run_kernel",
    "arithmetic_intensity",
    "copy_kernel", "triad_kernel", "tunable_triad",
    "cursor_for_intensity", "intensity_of_cursor", "STREAM_ARRAY_BYTES",
    "prime_kernel", "prime_workload_ops", "avx_kernel",
    "gemm_tile_cost", "gemv_tile_cost", "axpy_cost", "dot_cost", "TileCost",
]
