"""Statistics and model-fitting helpers for experiment results."""

from repro.analysis.stats import (
    NonFiniteSampleWarning, SummaryStats, summarize, median, decile_band,
    bootstrap_ci,
)
from repro.analysis.fitting import (
    fit_latency_frequency, detect_ridge, crossover_index, relative_change,
)

__all__ = [
    "NonFiniteSampleWarning", "SummaryStats", "summarize", "median",
    "decile_band", "bootstrap_ci",
    "fit_latency_frequency", "detect_ridge", "crossover_index",
    "relative_change",
]
