"""Model fitting and feature detection on experiment series.

* :func:`fit_latency_frequency` — fits the LogP decomposition
  ``latency = L + O / f`` to (frequency, latency) pairs, recovering the
  hardware latency and the software overhead in cycles (§3.1's analysis).
* :func:`detect_ridge` — finds the arithmetic-intensity ridge where a
  sweep stops being memory-bound (§4.5's 6 flop/B boundary).
* :func:`crossover_index` — first index where a series degrades past a
  relative threshold (e.g. "bandwidth impacted from 3 computing cores").
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

import numpy as np

__all__ = ["fit_latency_frequency", "detect_ridge", "crossover_index",
           "relative_change"]


def fit_latency_frequency(freqs_hz: Sequence[float],
                          latencies_s: Sequence[float]
                          ) -> Tuple[float, float]:
    """Least-squares fit of ``latency = L + O/f``.

    Returns ``(L_seconds, O_cycles)``.
    """
    f = np.asarray(freqs_hz, dtype=float)
    lat = np.asarray(latencies_s, dtype=float)
    if f.size != lat.size or f.size < 2:
        raise ValueError("need >= 2 matching (frequency, latency) points")
    design = np.column_stack([np.ones_like(f), 1.0 / f])
    (L, O), *_ = np.linalg.lstsq(design, lat, rcond=None)
    return float(L), float(O)


def relative_change(baseline: float, value: float) -> float:
    """(value - baseline) / baseline; 0 when baseline is 0."""
    if baseline == 0:
        return 0.0
    return (value - baseline) / baseline


def crossover_index(xs: Sequence[float], values: Sequence[float],
                    baseline: float, threshold: float = 0.10,
                    direction: str = "above") -> Optional[float]:
    """First x where *values* deviates from *baseline* by > threshold.

    ``direction="above"`` looks for values rising past
    ``baseline*(1+threshold)`` (latency degradation); ``"below"`` for
    values dropping under ``baseline*(1-threshold)`` (bandwidth
    degradation).  Returns None if never crossed.
    """
    if direction not in ("above", "below"):
        raise ValueError("direction must be 'above' or 'below'")
    xs = list(xs)
    values = list(values)
    if len(xs) != len(values):
        raise ValueError("xs and values must have the same length")
    for x, v in zip(xs, values):
        if direction == "above" and v > baseline * (1 + threshold):
            return x
        if direction == "below" and v < baseline * (1 - threshold):
            return x
    return None


def detect_ridge(intensities: Sequence[float], values: Sequence[float],
                 recovered_fraction: float = 0.9) -> Optional[float]:
    """Intensity where *values* (e.g. network bandwidth under compute)
    recovers to *recovered_fraction* of its final (CPU-bound) plateau.

    Assumes the sweep is ordered by increasing intensity and that the
    last point is fully CPU-bound.
    """
    intens = np.asarray(intensities, dtype=float)
    vals = np.asarray(values, dtype=float)
    if intens.size != vals.size or intens.size < 2:
        raise ValueError("need >= 2 matching points")
    plateau = vals[-1]
    if plateau <= 0:
        return None
    for x, v in zip(intens, vals):
        if v >= plateau * recovered_fraction:
            return float(x)
    return None
