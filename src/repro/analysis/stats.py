"""Summary statistics used by all experiments.

The paper plots the *median* of several runs with a band delimited by the
first and last decile (§2.1); :func:`summarize` produces exactly those
three numbers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

__all__ = ["SummaryStats", "summarize", "median", "decile_band",
           "bootstrap_ci"]


@dataclass(frozen=True)
class SummaryStats:
    """Median and decile band of a sample, as plotted in the paper."""

    median: float
    p10: float
    p90: float
    n: int

    @property
    def band_width(self) -> float:
        return self.p90 - self.p10


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Median + first/last decile of *samples*."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    return SummaryStats(
        median=float(np.median(arr)),
        p10=float(np.quantile(arr, 0.1)),
        p90=float(np.quantile(arr, 0.9)),
        n=int(arr.size),
    )


def median(samples: Sequence[float]) -> float:
    return summarize(samples).median


def decile_band(samples: Sequence[float]) -> Tuple[float, float]:
    s = summarize(samples)
    return (s.p10, s.p90)


def bootstrap_ci(samples: Sequence[float], confidence: float = 0.95,
                 n_boot: int = 2000, seed: int = 0) -> Tuple[float, float]:
    """Bootstrap confidence interval on the median."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0 < confidence < 1):
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    medians = np.median(arr[idx], axis=1)
    lo = (1 - confidence) / 2
    return (float(np.quantile(medians, lo)),
            float(np.quantile(medians, 1 - lo)))
