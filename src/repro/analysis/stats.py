"""Summary statistics and campaign-level trial analysis.

The paper plots the *median* of several runs with a band delimited by the
first and last decile (§2.1); :func:`summarize` produces exactly those
three numbers.

On top of the per-sample summaries this module analyses whole
multi-seed campaigns: :class:`TrialSet` holds the per-trial medians of
one sweep point, :class:`CampaignResults` loads every trial set out of
a campaign journal (mirroring fuzzbench's ``ExperimentResults`` as a
lazily-derived view over raw trial records), and
:func:`mann_whitney_u` / :func:`a12_effect_size` compare two campaigns
point by point without assuming normality.  Everything here is pure
``numpy`` + stdlib — no scipy.
"""

from __future__ import annotations

import json
import math
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

__all__ = ["SummaryStats", "summarize", "median", "decile_band",
           "bootstrap_ci", "aggregate_trial_series",
           "mann_whitney_u", "a12_effect_size", "MannWhitneyResult",
           "NonFiniteSampleWarning",
           "TrialSet", "CampaignResults", "Comparison",
           "read_journal_entries"]


class NonFiniteSampleWarning(UserWarning):
    """Non-finite samples were dropped before summarizing.

    A journal record can carry a NaN/inf metric delta (e.g. a rate
    sampled across a division-by-zero window); ``np.median`` would
    silently propagate it into every derived number and ultimately the
    HTML report.  Mirroring ``attribution_report``'s
    ``insufficient_data`` treatment, the offending samples are dropped
    up front and the drop is reported — structurally via
    ``SummaryStats.dropped`` and loudly via this warning category —
    while an *all*-non-finite sample raises instead of emitting NaN.
    """


@dataclass(frozen=True)
class SummaryStats:
    """Median and decile band of a sample, as plotted in the paper."""

    median: float
    p10: float
    p90: float
    n: int
    #: Non-finite samples dropped before summarizing (0 for healthy
    #: input, so existing call sites and serialized forms are
    #: unchanged).
    dropped: int = 0

    @property
    def band_width(self) -> float:
        return self.p90 - self.p10


def summarize(samples: Sequence[float]) -> SummaryStats:
    """Median + first/last decile of *samples*.

    Non-finite samples (NaN/inf) are dropped with a
    :class:`NonFiniteSampleWarning` and counted in ``dropped``; an
    all-non-finite sample raises ``ValueError`` rather than summarize
    nothing.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot summarize an empty sample")
    finite = np.isfinite(arr)
    dropped = int(arr.size - int(finite.sum()))
    if dropped:
        if dropped == arr.size:
            raise ValueError(
                f"cannot summarize: all {arr.size} samples are non-finite")
        warnings.warn(
            f"dropped {dropped} non-finite of {arr.size} samples",
            NonFiniteSampleWarning, stacklevel=2)
        arr = arr[finite]
    return SummaryStats(
        median=float(np.median(arr)),
        p10=float(np.quantile(arr, 0.1)),
        p90=float(np.quantile(arr, 0.9)),
        n=int(arr.size),
        dropped=dropped,
    )


def median(samples: Sequence[float]) -> float:
    return summarize(samples).median


def decile_band(samples: Sequence[float]) -> Tuple[float, float]:
    s = summarize(samples)
    return (s.p10, s.p90)


def bootstrap_ci(samples: Sequence[float], confidence: float = 0.95,
                 n_boot: int = 2000, seed: int = 0) -> Tuple[float, float]:
    """Bootstrap confidence interval on the median."""
    arr = np.asarray(samples, dtype=float)
    if arr.size == 0:
        raise ValueError("cannot bootstrap an empty sample")
    if not (0 < confidence < 1):
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, arr.size, size=(n_boot, arr.size))
    medians = np.median(arr[idx], axis=1)
    lo = (1 - confidence) / 2
    return (float(np.quantile(medians, lo)),
            float(np.quantile(medians, 1 - lo)))


# ---------------------------------------------------------------------------
# Trial aggregation (consumed by SweepGuard.run_specs)
# ---------------------------------------------------------------------------

def aggregate_trial_series(series_by_trial: Sequence[Mapping[str, list]]
                           ) -> Dict[str, list]:
    """Fold per-trial journal series into one aggregated series dict.

    Each input is one trial's ``{series_key: [[x, med, p10, p90], ...]}``
    as journaled.  The aggregate keeps one row per x: the median of the
    trial medians, with a conservative envelope band (min of the trial
    p10s, max of the trial p90s).  Series/row order follows first
    appearance across trials (trial 0 first), so single-surviving-trial
    aggregation degenerates to that trial's own rows.

    Trial rows carrying a non-finite median or band edge are dropped
    (with one :class:`NonFiniteSampleWarning` per series) before
    folding — ``np.median``/``min``/``max`` would otherwise propagate
    the NaN into the aggregate.  A point whose rows are *all*
    non-finite raises ``ValueError``.
    """
    keys: List[str] = []
    for sd in series_by_trial:
        for k in sd:
            if k not in keys:
                keys.append(k)
    out: Dict[str, list] = {}
    for k in keys:
        order: List[float] = []
        rows_by_x: Dict[float, List[list]] = {}
        for sd in series_by_trial:
            for row in sd.get(k, ()):
                x = row[0]
                if x not in rows_by_x:
                    rows_by_x[x] = []
                    order.append(x)
                rows_by_x[x].append(row)
        dropped = 0
        rows = []
        for x in order:
            finite = [r for r in rows_by_x[x]
                      if math.isfinite(r[1]) and math.isfinite(r[2])
                      and math.isfinite(r[3])]
            bad = len(rows_by_x[x]) - len(finite)
            if bad:
                if not finite:
                    raise ValueError(
                        f"series {k!r} x={x}: all {bad} trial rows "
                        f"are non-finite")
                dropped += bad
            rows.append([x,
                         float(np.median([r[1] for r in finite])),
                         min(r[2] for r in finite),
                         max(r[3] for r in finite)])
        if dropped:
            warnings.warn(
                f"series {k!r}: dropped {dropped} non-finite trial "
                f"row(s) before aggregating",
                NonFiniteSampleWarning, stacklevel=2)
        if rows:
            out[k] = rows
    return out


# ---------------------------------------------------------------------------
# Rank statistics: Mann-Whitney U + Vargha-Delaney A12
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class MannWhitneyResult:
    """Two-sided Mann-Whitney U comparison of two samples.

    ``u`` is the U statistic of the first sample; ``p_value`` uses the
    normal approximation with tie correction and continuity correction
    (exact tables are pointless here — trial counts are small but the
    comparison is advisory, and the approximation is what fuzzbench's
    analysis layer effectively reports too).  ``effect_size`` is the
    Vargha-Delaney A12: P(a > b) + 0.5 P(a == b).
    """

    u: float
    p_value: float
    n_a: int
    n_b: int
    effect_size: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


def a12_effect_size(a: Sequence[float], b: Sequence[float]) -> float:
    """Vargha-Delaney A12: probability a random draw from *a* beats one
    from *b* (0.5 = no effect)."""
    a = list(map(float, a))
    b = list(map(float, b))
    if not a or not b:
        return 0.5
    gt = sum(1 for x in a for y in b if x > y)
    eq = sum(1 for x in a for y in b if x == y)
    return (gt + 0.5 * eq) / (len(a) * len(b))


def _rank_with_ties(values: Sequence[float]) -> Tuple[List[float], float]:
    """Average ranks (1-based) and the tie-correction term Σ(t³ - t)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    tie_term = 0.0
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) \
                and values[order[j + 1]] == values[order[i]]:
            j += 1
        avg = (i + j + 2) / 2.0  # ranks are 1-based
        for k in range(i, j + 1):
            ranks[order[k]] = avg
        t = j - i + 1
        if t > 1:
            tie_term += t ** 3 - t
        i = j + 1
    return ranks, tie_term


def mann_whitney_u(a: Sequence[float],
                   b: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann-Whitney U test (normal approximation, tie and
    continuity corrected).

    Degenerate inputs (an empty side, or all values identical so the
    rank variance is zero) return ``p_value = 1.0`` rather than NaN —
    "no evidence of a difference" is the honest report there.
    """
    a = [float(x) for x in a]
    b = [float(x) for x in b]
    n_a, n_b = len(a), len(b)
    effect = a12_effect_size(a, b)
    if n_a == 0 or n_b == 0:
        return MannWhitneyResult(u=0.0, p_value=1.0, n_a=n_a, n_b=n_b,
                                 effect_size=effect)
    ranks, tie_term = _rank_with_ties(a + b)
    r_a = sum(ranks[:n_a])
    # U of the first sample: pairs where a beats b (+ half the ties),
    # the same direction as A12.  The two-sided p is symmetric in it.
    u_a = r_a - n_a * (n_a + 1) / 2.0
    n = n_a + n_b
    mu = n_a * n_b / 2.0
    var = n_a * n_b / 12.0 * ((n + 1) - tie_term / (n * (n - 1)))
    if var <= 0:  # every value tied: no rank information at all
        return MannWhitneyResult(u=u_a, p_value=1.0, n_a=n_a, n_b=n_b,
                                 effect_size=effect)
    z = (abs(u_a - mu) - 0.5) / math.sqrt(var)
    z = max(z, 0.0)  # continuity correction cannot flip the sign
    p = 2.0 * (1.0 - 0.5 * (1.0 + math.erf(z / math.sqrt(2.0))))
    return MannWhitneyResult(u=u_a, p_value=min(1.0, p), n_a=n_a,
                             n_b=n_b, effect_size=effect)


# ---------------------------------------------------------------------------
# Campaign-level views over journals
# ---------------------------------------------------------------------------

def read_journal_entries(path) -> List[dict]:
    """Tolerantly parse a JSON-lines campaign journal.

    Unlike ``CampaignJournal._load`` (which owns the file and may be
    strict), this reader serves *live* journals: a line currently being
    written by the campaign process may be incomplete, so malformed
    lines are skipped instead of raising.
    """
    entries: List[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError:
                continue  # in-flight partial line
            if isinstance(entry, dict) and "experiment" in entry:
                entries.append(entry)
    return entries


@dataclass(frozen=True)
class TrialSet:
    """The per-trial medians of one (experiment, series, x) point."""

    experiment: str
    series: str
    x: float
    values: Tuple[float, ...]
    # Per-trial decile bands, for a band fallback when n == 1.
    bands: Tuple[Tuple[float, float], ...] = ()

    @property
    def n(self) -> int:
        return len(self.values)

    @property
    def mean(self) -> float:
        return float(np.mean(self.values))

    @property
    def median(self) -> float:
        return float(np.median(self.values))

    def ci(self, confidence: float = 0.95,
           n_boot: int = 2000) -> Tuple[float, float]:
        """Bootstrap CI on the median of the trial medians.

        With a single trial there is nothing to resample: fall back to
        that trial's own decile band (or a degenerate interval).
        """
        if self.n == 1:
            if self.bands:
                return self.bands[0]
            return (self.values[0], self.values[0])
        return bootstrap_ci(self.values, confidence=confidence,
                            n_boot=n_boot)


@dataclass(frozen=True)
class Comparison:
    """One A/B point comparison between two campaigns."""

    experiment: str
    series: str
    x: float
    median_a: float
    median_b: float
    test: MannWhitneyResult

    @property
    def delta_pct(self) -> Optional[float]:
        if self.median_a == 0:
            return None
        return (self.median_b - self.median_a) / abs(self.median_a) * 100.0


@dataclass
class CampaignResults:
    """Everything the analysis layer needs out of one campaign journal.

    Mirrors fuzzbench's ``ExperimentResults``: raw trial records go in,
    derived views (trial sets, failures, folded metrics) come out as
    properties computed on demand.
    """

    name: str
    entries: List[dict] = field(default_factory=list)

    @classmethod
    def from_journal(cls, path, name: Optional[str] = None
                     ) -> "CampaignResults":
        path = Path(path)
        return cls(name=name or path.name,
                   entries=read_journal_entries(path))

    # -- derived views ------------------------------------------------------
    def experiments(self) -> List[str]:
        seen: List[str] = []
        for e in self.entries:
            if e["experiment"] not in seen:
                seen.append(e["experiment"])
        return seen

    def trials(self, experiment: str) -> int:
        """Number of distinct trial indices journaled (>= 1)."""
        return 1 + max((int(e.get("trial", 0)) for e in self.entries
                        if e["experiment"] == experiment), default=0)

    def trial_sets(self, experiment: Optional[str] = None
                   ) -> List[TrialSet]:
        """One :class:`TrialSet` per (experiment, series, x), in first-
        appearance order, folding every ``ok`` trial record in."""
        order: List[Tuple[str, str, float]] = []
        values: Dict[Tuple[str, str, float], List[float]] = {}
        bands: Dict[Tuple[str, str, float], List[Tuple[float, float]]] = {}
        for e in self.entries:
            if e.get("status") != "ok":
                continue
            if experiment is not None and e["experiment"] != experiment:
                continue
            for series, rows in (e.get("series") or {}).items():
                for row in rows:
                    k = (e["experiment"], series, float(row[0]))
                    if k not in values:
                        order.append(k)
                        values[k] = []
                        bands[k] = []
                    values[k].append(float(row[1]))
                    bands[k].append((float(row[2]), float(row[3])))
        return [TrialSet(experiment=exp, series=series, x=x,
                         values=tuple(values[(exp, series, x)]),
                         bands=tuple(bands[(exp, series, x)]))
                for exp, series, x in order]

    def series_points(self, experiment: str
                      ) -> Dict[str, List[TrialSet]]:
        """Trial sets grouped by series key, rows in journal order."""
        out: Dict[str, List[TrialSet]] = {}
        for ts in self.trial_sets(experiment):
            out.setdefault(ts.series, []).append(ts)
        return out

    def failures(self) -> List[dict]:
        """Failed trial records, flattened and trial-labelled."""
        out = []
        for e in self.entries:
            if e.get("status") == "ok":
                continue
            trial = int(e.get("trial", 0))
            key = e["key"] if not trial else f"{e['key']}#t{trial}"
            info = e.get("failure") or {}
            out.append({"experiment": e["experiment"], "key": key,
                        "trial": trial,
                        "error": info.get("error", "?"),
                        "message": info.get("message", ""),
                        "harness": bool(info.get("harness"))})
        return out

    def status_counts(self) -> Dict[str, int]:
        counts: Dict[str, int] = {}
        for e in self.entries:
            s = e.get("status", "?")
            counts[s] = counts.get(s, 0) + 1
        return counts

    def point_metrics(self) -> List[Tuple[dict, dict]]:
        """``(entry, metrics_delta)`` for entries that journaled one."""
        return [(e, e["metrics"]) for e in self.entries
                if e.get("metrics")]

    # -- A/B comparison -----------------------------------------------------
    def compare(self, other: "CampaignResults") -> List[Comparison]:
        """Mann-Whitney U per common (experiment, series, x) point."""
        theirs = {(ts.experiment, ts.series, ts.x): ts
                  for ts in other.trial_sets()}
        out: List[Comparison] = []
        for ts in self.trial_sets():
            peer = theirs.get((ts.experiment, ts.series, ts.x))
            if peer is None:
                continue
            out.append(Comparison(
                experiment=ts.experiment, series=ts.series, x=ts.x,
                median_a=ts.median, median_b=peer.median,
                test=mann_whitney_u(ts.values, peer.values)))
        return out
