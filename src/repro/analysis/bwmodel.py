"""Closed-form memory-bandwidth sharing model (Langguth et al. style).

The paper's related work cites Langguth, Cai & Sourouri's theoretical
model of memory-bandwidth sharing between computing and communicating
threads [12].  This module provides the analogous closed form for this
simulator's arbitration — weighted max-min with demand caps and usage
multipliers — specialised to the canonical §4.2 scenario: ``n`` STREAM
cores and one NIC DMA flow sharing a single memory controller.

It serves two purposes:

* an **independent validation** of the fluid engine: the simulation must
  agree with the algebra (see ``tests/test_analysis_bwmodel.py``);
* a **fast predictor** for sweeps (no event loop), e.g. to pre-compute
  where contention regimes begin before running the full benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.hardware.presets import MachineSpec, get_preset

__all__ = ["SharePrediction", "predict_stream_vs_dma", "predict_fig4b"]


@dataclass(frozen=True)
class SharePrediction:
    """Closed-form allocation for n STREAM cores + one DMA flow."""

    n_cores: int
    stream_per_core: float    # bytes/s each computing core achieves
    nic_rate: float           # payload bytes/s of the DMA flow
    controller_saturated: bool
    nic_demand_limited: bool


def _dma_demand(spec: MachineSpec, rho_other: float) -> float:
    """NIC demand after latency-sensitivity de-rating at load rho."""
    nic = spec.nic
    rho = min(1.0, max(0.0, rho_other))
    eff = 1.0 - nic.dma_eff_gamma * rho ** nic.dma_eff_power
    return nic.wire_bw * max(eff, 0.05)


def predict_stream_vs_dma(spec: MachineSpec | str, n_cores: int,
                          capacity: float = None) -> SharePrediction:
    """Solve the single-controller max-min allocation analytically.

    Flows: ``n_cores`` streams with demand ``per_core_bw``, weight 1,
    usage 1; one DMA flow with demand ``wire_bw × efficiency(ρ)``,
    weight ``dma_weight``, usage ``dma_usage``.

    Cases (progressive filling):

    1. everything fits: each flow at its demand;
    2. NIC demand-limited at the water level: NIC at demand, cores share
       the rest equally (capped at per-core demand);
    3. all bottlenecked: level ``u = C / (n + w·β)``; cores get ``u``,
       NIC gets ``w·u``.
    """
    s = get_preset(spec) if isinstance(spec, str) else spec
    C = capacity if capacity is not None else s.memory.controller_bw
    d_core = s.memory.per_core_bw
    w = s.nic.dma_weight
    beta = s.nic.dma_usage

    rho_other = min(1.0, n_cores * d_core / C)
    d_nic = _dma_demand(s, rho_other)

    if n_cores == 0:
        nic = min(d_nic, C / beta)
        return SharePrediction(0, 0.0, nic, nic * beta >= C * (1 - 1e-9),
                               nic >= d_nic * (1 - 1e-9))

    total_usage = n_cores * d_core + beta * d_nic
    if total_usage <= C:
        # Case 1: no contention.
        return SharePrediction(n_cores, d_core, d_nic, False, True)

    # Water level if nothing is demand-limited.
    u_full = C / (n_cores + w * beta)
    if w * u_full >= d_nic:
        # Case 2: NIC pinned at demand, cores split the remainder.
        leftover = C - beta * d_nic
        per_core = min(d_core, leftover / n_cores)
        return SharePrediction(n_cores, per_core, d_nic, True, True)
    if u_full >= d_core:
        # Cores demand-limited, NIC takes the rest (rare: tiny n).
        leftover = C - n_cores * d_core
        nic = min(d_nic, leftover / beta)
        return SharePrediction(n_cores, d_core, nic, True,
                               nic >= d_nic * (1 - 1e-9))
    # Case 3: everyone bottlenecked at the level.
    return SharePrediction(n_cores, u_full, w * u_full, True, False)


def predict_fig4b(spec: MachineSpec | str = "henri",
                  core_counts=None) -> List[Tuple[int, float, float]]:
    """Analytic fig-4b curve: (n, stream_per_core, nic_bw) triples.

    Only the single-controller part of the figure (computing cores on
    the NIC's NUMA node); cross-socket cores additionally bottleneck on
    the inter-socket link, which this closed form ignores.
    """
    s = get_preset(spec) if isinstance(spec, str) else spec
    if core_counts is None:
        core_counts = list(range(0, s.cores_per_numa * s.numa_per_socket))
    out = []
    for n in core_counts:
        p = predict_stream_vs_dma(s, n)
        out.append((n, p.stream_per_core, p.nic_rate))
    return out
