"""NetPIPE-style characterisation of a simulated network.

The paper uses NetPIPE's metrics (§2.1); this module produces the full
NetPIPE view of a cluster — the latency/bandwidth curve over the whole
size range — and fits the standard models to it:

* LogP ``lat = L + O/f`` across frequency points (§3.1's analysis);
* the postal model ``lat(s) = α + s/β`` per protocol regime, yielding
  the effective α (startup) and β (asymptotic bandwidth) users quote;
* the *half-performance size* ``n₁/₂`` (size reaching half of β).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import PingPong

__all__ = ["NetPipeCurve", "measure_netpipe", "fit_postal", "n_half"]


@dataclass
class NetPipeCurve:
    """Measured latency per size, plus derived metrics."""

    sizes: np.ndarray
    latencies: np.ndarray          # median seconds per size

    @property
    def bandwidths(self) -> np.ndarray:
        return self.sizes / self.latencies

    @property
    def zero_latency(self) -> float:
        """Smallest-message latency (NetPIPE's headline number)."""
        return float(self.latencies[0])

    @property
    def asymptotic_bandwidth(self) -> float:
        return float(self.bandwidths[-1])

    def row(self, i: int) -> Tuple[int, float, float]:
        return (int(self.sizes[i]), float(self.latencies[i]),
                float(self.bandwidths[i]))


def measure_netpipe(spec: MachineSpec | str = "henri",
                    sizes: Optional[Sequence[int]] = None,
                    reps: int = 10,
                    comm_placement: str = "near") -> NetPipeCurve:
    """Run the ping-pong over the full NetPIPE size range."""
    s = get_preset(spec) if isinstance(spec, str) else spec
    if sizes is None:
        sizes = [1 << i for i in range(2, 27)]   # 4 B .. 64 MB
    world = CommWorld(Cluster(s, 2), comm_placement=comm_placement)
    pingpong = PingPong(world)
    lats: List[float] = []
    for size in sizes:
        res = pingpong.run(size, reps=reps)
        lats.append(res.median_latency)
    return NetPipeCurve(sizes=np.asarray(sizes, dtype=float),
                        latencies=np.asarray(lats))


def fit_postal(curve: NetPipeCurve,
               min_size: int = 0) -> Tuple[float, float]:
    """Least-squares postal model ``lat = alpha + size/beta``.

    Returns ``(alpha_seconds, beta_bytes_per_second)``.  Fit the
    rendezvous regime by passing ``min_size`` above the eager threshold.
    """
    mask = curve.sizes >= min_size
    if mask.sum() < 2:
        raise ValueError("need >= 2 points above min_size")
    sizes = curve.sizes[mask]
    lats = curve.latencies[mask]
    design = np.column_stack([np.ones_like(sizes), sizes])
    (alpha, inv_beta), *_ = np.linalg.lstsq(design, lats, rcond=None)
    if inv_beta <= 0:
        raise ValueError("degenerate fit: non-positive per-byte cost")
    return float(alpha), float(1.0 / inv_beta)


def n_half(curve: NetPipeCurve) -> float:
    """Half-performance message size n₁/₂ (Hockney's metric)."""
    target = curve.asymptotic_bandwidth / 2.0
    bws = curve.bandwidths
    for i in range(len(bws)):
        if bws[i] >= target:
            if i == 0:
                return float(curve.sizes[0])
            # log-linear interpolation between the straddling points
            s0, s1 = curve.sizes[i - 1], curve.sizes[i]
            b0, b1 = bws[i - 1], bws[i]
            frac = (target - b0) / (b1 - b0)
            return float(s0 * (s1 / s0) ** frac)
    return float(curve.sizes[-1])
