"""Interference prediction (§8: "predict and quantify them").

The paper's first future-work item is to *predict* the interference
instead of just measuring it.  This module provides that predictor for
the simulator's machine model, combining

* the closed-form max-min share of :mod:`repro.analysis.bwmodel` for the
  bandwidth channel,
* the LogP + PIO-co-location algebra for the latency channel,
* the roofline reduction for the application side (an application is
  summarised by its per-core arithmetic intensity).

Given a machine spec, a placement, the number of computing cores and
the computation's intensity, :func:`predict_interference` returns the
expected latency and bandwidth degradation factors — no event loop.
The tests validate it against the full simulation across the fig-4 and
fig-7 sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.analysis.bwmodel import predict_stream_vs_dma
from repro.core.placement import Placement
from repro.hardware.presets import MachineSpec, get_preset

__all__ = ["InterferencePrediction", "predict_interference",
           "core_demand_from_intensity"]


@dataclass(frozen=True)
class InterferencePrediction:
    """Predicted communication performance under computation."""

    n_cores: int
    intensity: float
    latency_ratio: float       # contended / nominal latency (>= 1)
    bandwidth_ratio: float     # contended / nominal bandwidth (<= 1)
    compute_slowdown: float    # computation contended / alone (>= 1)


def core_demand_from_intensity(spec: MachineSpec, intensity: float,
                               vector: bool = False) -> float:
    """Per-core DRAM demand (bytes/s) of a kernel at *intensity* flop/B.

    Roofline: the compute side consumes ``fpc·f`` flops/s, i.e.
    ``fpc·f / I`` bytes/s, capped by the per-core streaming limit.
    """
    if intensity <= 0:
        return spec.memory.per_core_bw
    fpc = spec.avx_flops_per_cycle if vector else spec.flops_per_cycle
    # All-core turbo: the relevant operating point under full load.
    f = spec.freq.turbo.min_frequency
    flops_rate = fpc * f
    return min(spec.memory.per_core_bw, flops_rate / intensity)


def predict_interference(spec: MachineSpec | str, n_cores: int,
                         intensity: float = 1.0 / 12.0,
                         placement: Optional[Placement] = None,
                         vector: bool = False) -> InterferencePrediction:
    """Predict latency/bandwidth degradation without simulating.

    Parameters mirror the §4 experiments: *n_cores* computing cores
    running a kernel of the given arithmetic *intensity*, with the
    paper's default placement (data near the NIC, comm thread far)
    unless overridden.
    """
    s = get_preset(spec) if isinstance(spec, str) else spec
    if placement is None:
        placement = Placement("near", "far")
    demand = core_demand_from_intensity(s, intensity, vector=vector)
    per_socket = s.numa_per_socket * s.cores_per_numa

    # ---- bandwidth channel: max-min on the data-side controller -------
    # Cores spread over the machine in logical order; those on the data
    # controller's socket contend directly.  Scale the single-controller
    # closed form by the demand the intensity leaves.
    weight = demand / s.memory.per_core_bw if s.memory.per_core_bw else 1.0
    eff_cores = n_cores * weight
    share = predict_stream_vs_dma(s, max(0, round(eff_cores)))
    nominal = predict_stream_vs_dma(s, 0)
    bandwidth_ratio = share.nic_rate / nominal.nic_rate \
        if nominal.nic_rate > 0 else 1.0

    # ---- latency channel: LogP + co-location penalty -------------------
    hops = 1 if placement.comm_thread == "far" else 0
    if placement.comm_thread == "far":
        colocated = max(0, min(n_cores - per_socket, per_socket - 1))
    else:
        colocated = min(n_cores, per_socket - 1)
    frac = (colocated / max(1, per_socket - 1)) * min(
        1.0, demand / (s.memory.controller_bw / per_socket))
    penalty = 2 * s.contention.pio_penalty(frac, hops)

    # Nominal latency at the loaded operating point (all-core turbo,
    # ramped uncore — computation is running).
    f = s.freq.turbo.min_frequency
    o = (s.nic.o_send_cycles + s.nic.o_recv_cycles) / f
    g = 2 * s.nic.pio_uncore_cycles / s.uncore.max_hz
    wire = s.nic.wire_latency + 2 * hops * s.interconnect.hop_latency
    nominal_lat = o + g + wire
    latency_ratio = (nominal_lat + penalty) / nominal_lat

    # ---- computation side ----------------------------------------------
    if share.controller_saturated and n_cores > 0 and demand > 0:
        alone = predict_stream_vs_dma(
            s.with_overrides(nic=s.nic), max(0, round(eff_cores)))
        # Compare the per-core share with vs without the NIC flow:
        # without the NIC, cores split the full controller.
        no_nic_share = min(s.memory.per_core_bw,
                           s.memory.controller_bw
                           / max(1.0, eff_cores))
        with_nic = share.stream_per_core
        compute_slowdown = no_nic_share / with_nic if with_nic > 0 else 1.0
    else:
        compute_slowdown = 1.0

    return InterferencePrediction(
        n_cores=n_cores, intensity=intensity,
        latency_ratio=max(1.0, latency_ratio),
        bandwidth_ratio=min(1.0, bandwidth_ratio),
        compute_slowdown=max(1.0, compute_slowdown),
    )
