"""The message engine: eager and rendezvous protocols on the machine model.

One :class:`ProtocolEngine` per cluster executes point-to-point transfers
as simulation processes.  A transfer decomposes exactly the way the
paper's analysis does:

* **software overheads** (``o_send``/``o_recv``) — cycle counts divided
  by the communication core's *current* frequency (§3.1: latency 1.8 µs
  at 2.3 GHz vs 3.1 µs at 1 GHz);
* **PIO doorbell** — paid at the comm socket's uncore frequency, plus the
  co-location congestion penalty (§4.3: far-from-NIC comm threads double
  their latency under memory contention);
* **eager path** (size ≤ threshold) — wire latency plus a CPU-driven copy
  flowing through the memory system (this is the traffic that starts
  hurting STREAM from 4 KB messages, §4.4);
* **rendezvous path** (size > threshold) — an RTS/CTS handshake, a
  registration-cache lookup, then a DMA fluid flow whose *demand* is
  de-rated by memory pressure (latency-sensitive DMA engines) and whose
  *share* is arbitrated max-min against the computing cores' streams
  (§4.2: bandwidth −2/3 with all cores computing).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from repro.faults.reliability import ReliabilityConfig, TransportError
from repro.obs.context import active_telemetry
from repro.hardware.memory import Buffer
from repro.hardware.nic import RegistrationCache, dma_demand
from repro.hardware.topology import Cluster, Machine
from repro.sim import noisy
from repro.sim.fluid import Flow

__all__ = ["TransferRecord", "ProtocolEngine", "TransportError"]

logger = logging.getLogger(__name__)

# Below this size the eager copy is modelled analytically instead of as a
# fluid flow (see half_transfer).
_EAGER_FLOW_MIN = 2048


@dataclass
class TransferRecord:
    """Timing breakdown of one one-way message.

    Under the reliable transport (fault injection active) ``start`` is
    the first attempt's start and ``end`` the successful delivery, so
    ``duration`` is the *end-to-end* latency including retransmissions;
    ``retries``/``timeouts`` count the recovery work and ``components``
    describe the final (successful) attempt plus the accumulated
    ``retransmit_wait``.
    """

    size: int
    protocol: str                 # "eager" | "rendezvous"
    start: float
    end: float
    components: Dict[str, float] = field(default_factory=dict)
    retries: int = 0              # retransmissions before success
    timeouts: int = 0             # timer expiries (loss, corruption, acks)
    # Cycle activity overlapping this transfer, summed over both end
    # machines (telemetry only; 0.0 when telemetry is off).  The ratio
    # mem_stall_overlap / busy_overlap is the paper's Fig-10 x-axis.
    mem_stall_overlap: float = 0.0
    busy_overlap: float = 0.0

    @property
    def duration(self) -> float:
        """One-way latency in seconds (the paper's 'latency' metric)."""
        return self.end - self.start

    @property
    def attempts(self) -> int:
        return self.retries + 1

    @property
    def bandwidth(self) -> float:
        """Payload bytes divided by the one-way duration."""
        if self.duration <= 0:
            return 0.0
        return self.size / self.duration


class ProtocolEngine:
    """Executes messages between the nodes of a :class:`Cluster`."""

    def __init__(self, cluster: Cluster):
        self.cluster = cluster
        self.sim = cluster.sim
        self.net = cluster.net
        self.reg_caches: Dict[int, RegistrationCache] = {
            m.node_id: RegistrationCache() for m in cluster.machines}
        # Fault injection: when the cluster was built under an installed
        # FaultPlan, route every message through the reliable transport
        # (ack + timeout + retransmit).  Without a plan the engine runs
        # the exact pre-fault code path — same events, same RNG draws.
        self.injector = getattr(cluster, "fault_injector", None)
        if self.injector is not None:
            self.injector.register_engine(self)
        # Extra per-message overhead in cycles (used by the task-based
        # runtime layer, §5.2: StarPU's longer software stack).
        self.extra_cycles_send = 0.0
        self.extra_cycles_recv = 0.0
        # Extra per-message fixed delay in seconds (lock contention from
        # polling workers, §5.4).
        self.extra_delay_send = 0.0
        self.extra_delay_recv = 0.0
        # Owning application's name under multi-app co-scheduling (see
        # repro.core.apps); labels telemetry samples/metrics per app.
        self.app: Optional[str] = None

    # ------------------------------------------------------------------
    def half_transfer(
        self,
        src_node: int,
        src_core: int,
        src_buf: Buffer,
        dst_node: int,
        dst_core: int,
        dst_buf: Buffer,
        size: Optional[int] = None,
    ) -> Generator:
        """Process: move *size* bytes from ``src_buf`` to ``dst_buf``.

        Returns a :class:`TransferRecord`.  The caller is responsible for
        having bound/activated the comm cores (their frequency is read
        live).  With a fault plan armed, the message travels over the
        reliable transport and may raise :class:`TransportError`.
        """
        tele = active_telemetry()
        if tele is None:
            # Zero-telemetry path: the exact pre-observability code.
            if self.injector is None:
                record = yield from self._attempt(
                    src_node, src_core, src_buf, dst_node, dst_core,
                    dst_buf, size)
            else:
                record = yield from self._reliable_transfer(
                    src_node, src_core, src_buf, dst_node, dst_core,
                    dst_buf, size)
            return record

        # Telemetry: sample both machines' cycle counters around the
        # transfer so the record carries the overlapping stall/busy
        # deltas (pure reads — the simulation is not perturbed).
        src_ctr = self.cluster.machine(src_node).counters
        dst_ctr = self.cluster.machine(dst_node).counters
        pre_src = src_ctr.totals()
        pre_dst = dst_ctr.totals() if dst_ctr is not src_ctr else None
        try:
            if self.injector is None:
                record = yield from self._attempt(
                    src_node, src_core, src_buf, dst_node, dst_core,
                    dst_buf, size)
            else:
                record = yield from self._reliable_transfer(
                    src_node, src_core, src_buf, dst_node, dst_core,
                    dst_buf, size)
        except TransportError as err:
            logger.info("transport error %d->%d: %s", src_node, dst_node,
                        err)
            tele.on_transport_error(self.cluster, src_node, dst_node,
                                    str(err))
            raise
        post_src = src_ctr.totals()
        record.mem_stall_overlap = post_src.mem_stall - pre_src.mem_stall
        record.busy_overlap = post_src.busy - pre_src.busy
        if pre_dst is not None:
            post_dst = dst_ctr.totals()
            record.mem_stall_overlap += post_dst.mem_stall - pre_dst.mem_stall
            record.busy_overlap += post_dst.busy - pre_dst.busy
        tele.on_transfer(self.cluster, src_node, dst_node, record,
                         app=self.app)
        return record

    # ------------------------------------------------------------------
    def _wire_latency(self, src_node: int, dst_node: int,
                      base: float) -> float:
        """Wire latency with any degraded-link multiplier applied."""
        if self.injector is None:
            return base
        return base * self.injector.link_latency_factor(src_node, dst_node)

    def _attempt(
        self,
        src_node: int,
        src_core: int,
        src_buf: Buffer,
        dst_node: int,
        dst_core: int,
        dst_buf: Buffer,
        size: Optional[int] = None,
    ) -> Generator:
        """One unreliable delivery attempt (the pre-fault transfer path)."""
        src_m = self.cluster.machine(src_node)
        dst_m = self.cluster.machine(dst_node)
        if size is None:
            size = src_buf.size
        if size < 0:
            raise ValueError("negative message size")
        spec = src_m.spec.nic
        rng = src_m.rng.stream("net")
        noise = src_m.spec.noise
        comps: Dict[str, float] = {}
        start = self.sim.now

        # --- sender side ------------------------------------------------
        f_src = src_m.freq.core_hz(src_core)
        o_send = noisy(
            (spec.o_send_cycles + self.extra_cycles_send) / f_src,
            noise, rng) + self.extra_delay_send
        comps["o_send"] = o_send
        yield o_send

        g_src = self._doorbell(src_m, src_core)
        comps["doorbell_send"] = g_src
        yield g_src

        hop_lat = (src_m.pio_extra_hops(src_core)
                   * src_m.spec.interconnect.hop_latency
                   + dst_m.pio_extra_hops(dst_core)
                   * dst_m.spec.interconnect.hop_latency)

        wire_lat = self._wire_latency(src_node, dst_node, spec.wire_latency)
        # Multi-hop fabrics add a per-switch-traversal latency; exactly
        # 0.0 on the full mesh, keeping the seed arithmetic untouched.
        fabric_lat = self.cluster.topology.extra_latency(src_node, dst_node)
        if fabric_lat:
            wire_lat += fabric_lat

        # --- in flight ----------------------------------------------------
        if size <= spec.eager_threshold:
            comps["protocol"] = 0.0
            wire = wire_lat + hop_lat
            comps["wire"] = wire
            yield wire
            if 0 < size < _EAGER_FLOW_MIN:
                # Tiny messages: the copy rides in store buffers/PIO slots;
                # it neither suffers from nor contributes to memory-bus
                # contention measurably (§4.4: no mutual impact below
                # ~4 KB).  Modelled analytically to keep the event count
                # of 4-byte latency ping-pongs low.
                copy = size / spec.eager_copy_bw
                comps["copy"] = copy
                yield copy
            elif size > 0:
                flow = self._eager_flow(src_m, src_core, src_buf,
                                        dst_m, dst_buf, size)
                t0 = self.sim.now
                yield flow.done
                comps["copy"] = self.sim.now - t0
            protocol = "eager"
        else:
            # RTS/CTS handshake: a small control-message round trip.
            f_dst = dst_m.freq.core_hz(dst_core)
            rtt = spec.rndv_rtt_factor * (
                2 * (wire_lat + hop_lat)
                + (spec.o_send_cycles + spec.o_recv_cycles) / f_src
                + (spec.o_send_cycles + spec.o_recv_cycles) / f_dst
                + self._doorbell(src_m, src_core)
                + self._doorbell(dst_m, dst_core))
            comps["protocol"] = rtt
            yield rtt

            reg = 0.0
            if not self.reg_caches[src_node].lookup(src_buf):
                reg += spec.registration_cost
            if not self.reg_caches[dst_node].lookup(dst_buf):
                reg += dst_m.spec.nic.registration_cost
            comps["registration"] = reg
            if reg:
                yield reg

            comps["wire"] = wire_lat + hop_lat
            yield comps["wire"]

            flow = self._dma_flow(src_m, src_buf, dst_m, dst_buf, size)
            t0 = self.sim.now
            yield flow.done
            comps["dma"] = self.sim.now - t0
            protocol = "rendezvous"

        # --- receiver side -------------------------------------------------
        f_dst = dst_m.freq.core_hz(dst_core)
        o_recv = noisy(
            (dst_m.spec.nic.o_recv_cycles + self.extra_cycles_recv) / f_dst,
            noise, rng) + self.extra_delay_recv
        comps["o_recv"] = o_recv
        yield o_recv
        g_dst = self._doorbell(dst_m, dst_core)
        comps["doorbell_recv"] = g_dst
        yield g_dst

        return TransferRecord(size=size, protocol=protocol,
                              start=start, end=self.sim.now,
                              components=comps)

    # ------------------------------------------------------------------
    def _reliable_transfer(
        self,
        src_node: int,
        src_core: int,
        src_buf: Buffer,
        dst_node: int,
        dst_core: int,
        dst_buf: Buffer,
        size: Optional[int] = None,
    ) -> Generator:
        """Ack + timeout + exponential-backoff retransmit around
        :meth:`_attempt`.

        Loss is decided at sender handoff time from the injector's
        active windows; a lost message costs the sender its software
        overheads plus the armed retransmit timeout.  A corrupted
        message (checksum-rejected by the receiver) and a lost ack cost
        a full attempt plus the *residual* timeout.  After
        ``max_retries`` retransmissions the transfer raises
        :class:`TransportError` — it never hangs.
        """
        inj = self.injector
        rel: ReliabilityConfig = inj.reliability
        src_m = self.cluster.machine(src_node)
        spec = src_m.spec.nic
        if size is None:
            size = src_buf.size
        rendezvous = size > spec.eager_threshold
        start = self.sim.now
        retries = 0
        timeouts = 0
        waited = 0.0
        while True:
            if not inj.node_alive(src_node):
                raise TransportError("source node failed", src=src_node,
                                     dst=dst_node, size=size,
                                     retries=retries, timeouts=timeouts)
            if not inj.node_alive(dst_node):
                raise TransportError("destination node failed",
                                     src=src_node, dst=dst_node, size=size,
                                     retries=retries, timeouts=timeouts)
            t_attempt = self.sim.now
            if not inj.draw_loss(src_node, dst_node):
                record = yield from self._attempt(
                    src_node, src_core, src_buf, dst_node, dst_core,
                    dst_buf, size)
                delivered = (inj.node_alive(dst_node)
                             and not inj.draw_corrupt(src_node, dst_node))
                if delivered and rel.ack_loss:
                    # The piggybacked ack crosses the reverse link; a
                    # lost ack forces a redundant retransmission (the
                    # receiver dedups by sequence number).
                    delivered = not inj.draw_loss(dst_node, src_node)
                if delivered:
                    record.start = start
                    record.retries = retries
                    record.timeouts = timeouts
                    if waited > 0.0:
                        record.components["retransmit_wait"] = waited
                    return record
            else:
                # Dropped in flight: the sender still pays its software
                # overheads and doorbell before the timer arms.
                yield from self._send_side_cost(src_m, src_core)
            timeouts += 1
            logger.debug("timeout #%d on %d->%d (%dB), retry %d",
                         timeouts, src_node, dst_node, size, retries + 1)
            tele = active_telemetry()
            if tele is not None:
                tele.on_retransmit(self.cluster, src_node, dst_node, size,
                                   "timeout", timeouts)
            if retries >= rel.max_retries:
                raise TransportError(
                    "retries exhausted", src=src_node, dst=dst_node,
                    size=size, retries=retries, timeouts=timeouts)
            retries += 1
            rto = rel.retransmit_timeout(timeouts, rendezvous)
            wait = max(0.0, rto - (self.sim.now - t_attempt))
            if wait > 0.0:
                yield wait
            waited += wait

    def _send_side_cost(self, src_m: Machine, src_core: int) -> Generator:
        """Sender-side overheads of an attempt that dies on the wire."""
        spec = src_m.spec.nic
        rng = src_m.rng.stream("net")
        f_src = src_m.freq.core_hz(src_core)
        o_send = noisy(
            (spec.o_send_cycles + self.extra_cycles_send) / f_src,
            src_m.spec.noise, rng) + self.extra_delay_send
        yield o_send
        yield self._doorbell(src_m, src_core)

    # ------------------------------------------------------------------
    @staticmethod
    def _doorbell(machine: Machine, core: int) -> float:
        spec = machine.spec.nic
        socket = machine.cores[core].socket_id
        uncore_hz = machine.freq.uncore_hz(socket)
        return spec.pio_uncore_cycles / uncore_hz + machine.pio_delay(core)

    def _eager_flow(self, src_m: Machine, src_core: int, src_buf: Buffer,
                    dst_m: Machine, dst_buf: Buffer, size: int) -> Flow:
        """CPU-copy pipeline through src memory, the wire, dst memory."""
        # The local load path may already contain the destination
        # controller on loopback-style setups; Flow.__init__ dedupes the
        # path order-preservingly.
        path = (src_m.load_path(src_core, src_buf.numa_id)
                + [src_m.pcie]
                + self.cluster.route(src_m.node_id, dst_m.node_id)
                + [dst_m.pcie,
                   dst_m.numa_nodes[dst_buf.numa_id].controller])
        return self.net.transfer(
            path, size=size, demand=src_m.spec.nic.eager_copy_bw,
            label=f"eager:{src_m.node_id}->{dst_m.node_id}")

    def _dma_flow(self, src_m: Machine, src_buf: Buffer,
                  dst_m: Machine, dst_buf: Buffer, size: int) -> Flow:
        """Zero-copy rendezvous DMA through both memory systems."""
        spec = src_m.spec.nic
        src_path = src_m.dma_path(src_buf.numa_id)
        dst_path = list(reversed(dst_m.dma_path(dst_buf.numa_id)))
        path = (src_path
                + self.cluster.route(src_m.node_id, dst_m.node_id)
                + dst_path)
        usage = {
            src_m.numa_nodes[src_buf.numa_id].controller: spec.dma_usage,
            dst_m.numa_nodes[dst_buf.numa_id].controller:
                dst_m.spec.nic.dma_usage,
        }
        demand = min(dma_demand(src_m, src_buf.numa_id),
                     dma_demand(dst_m, dst_buf.numa_id))
        if spec.onload_copy:
            # Omni-Path style onloaded transfer: the copy is CPU-driven
            # and cannot exceed a few GB/s per comm thread.
            demand = min(demand, 4.0 * spec.eager_copy_bw)
        return self.net.transfer(
            path, size=size, demand=demand, weight=spec.dma_weight,
            usage=usage,
            label=f"dma:{src_m.node_id}->{dst_m.node_id}")
