"""LogP-style decomposition of small-message latency.

The paper (§3.1) explains the frequency sensitivity of latency with the
LogP model [Culler et al.]: latency = hardware latency *L* + software
overhead *o*, where *o* is a cycle count divided by the core frequency.
This module exposes that decomposition for analysis and tests; the
actual message timing lives in :mod:`repro.netmodel.protocols` and uses
the same terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hardware.topology import Machine

__all__ = ["LogPSample", "sample_logp"]


@dataclass(frozen=True)
class LogPSample:
    """Instantaneous LogP parameters for one (machine, comm core)."""

    L: float        # wire + hop latency, seconds (frequency-independent)
    o_send: float   # sender software overhead, seconds
    o_recv: float   # receiver software overhead, seconds
    g: float        # per-message gap (PIO doorbell), seconds
    G: float        # per-byte gap at the wire, seconds/byte

    @property
    def small_message_latency(self) -> float:
        """Predicted half ping-pong for a tiny message (both endpoints
        pay the per-message gap: doorbell on send, poll on receive)."""
        return self.L + self.o_send + self.o_recv + 2 * self.g


def sample_logp(machine: Machine, comm_core: int) -> LogPSample:
    """Sample the LogP parameters at the current machine state.

    ``o_send``/``o_recv`` are the spec's cycle counts divided by the comm
    core's *current* frequency — pinning the core to 1 GHz vs 2.3 GHz
    reproduces the paper's 3.1 µs vs 1.8 µs (Figure 1a).  ``g`` is the
    PIO doorbell paid at the comm socket's uncore frequency plus the
    congestion penalty.
    """
    spec = machine.spec.nic
    hz = machine.freq.core_hz(comm_core)
    socket = machine.cores[comm_core].socket_id
    uncore_hz = machine.freq.uncore_hz(socket)
    hops = machine.pio_extra_hops(comm_core)
    return LogPSample(
        L=spec.wire_latency + hops * machine.spec.interconnect.hop_latency,
        o_send=spec.o_send_cycles / hz,
        o_recv=spec.o_recv_cycles / hz,
        g=spec.pio_uncore_cycles / uncore_hz + machine.pio_delay(comm_core),
        G=1.0 / spec.wire_bw,
    )
