"""Network performance model (LogP-style overheads + wire protocols).

* :mod:`repro.netmodel.logp` — software overheads in CPU cycles (so they
  scale with core frequency, the §3.1 mechanism) and instantaneous LogP
  parameter sampling.
* :mod:`repro.netmodel.protocols` — the message engine: eager (PIO/copy)
  vs rendezvous (registration + DMA) protocols, including the congestion
  couplings that make communications and computations interfere.
"""

from repro.netmodel.logp import LogPSample, sample_logp
from repro.netmodel.protocols import ProtocolEngine, TransferRecord

__all__ = ["LogPSample", "sample_logp", "ProtocolEngine", "TransferRecord"]
