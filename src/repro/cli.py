"""Command-line interface: run paper experiments and print/record results.

Usage::

    python -m repro list [--long]
    python -m repro run fig4a [--spec henri] [--fast]
    python -m repro run all --fast --out EXPERIMENTS_RUN.md
    python -m repro run --scenario examples/scenario_fig1a_loss.toml
    python -m repro run fig1a --fast --trials 5 --journal c.jsonl
    python -m repro status c.jsonl
    python -m repro report c.jsonl --compare other.jsonl -o report.html

``--fast`` substitutes reduced sweep parameters (fewer repetitions and
points) so every figure finishes in seconds; omit it to regenerate the
full figures.

Every experiment — name, ``--fast`` profile, capabilities, rendering —
comes from :mod:`repro.core.registry`; this module only parses flags
and wires execution contexts (faults, telemetry, journaling, process
pools) around registry dispatch.  Custom parameter/fault/output
combinations live in scenario TOML files (docs/SCENARIOS.md).
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Dict, Optional

from repro.core import registry
from repro.core.registry import run_experiment
from repro.core.report import write_experiments_md

__all__ = ["main", "run_experiment"]


def _build_fault_plan(args):
    """Fault plan + reliability config from CLI flags (None, None when
    fault injection is not requested — the zero-cost default path)."""
    from repro.faults import FaultPlan, ReliabilityConfig, parse_fault

    plan = None
    seed = args.fault_seed if args.fault_seed is not None else 0
    if args.fault:
        plan = FaultPlan(seed=seed,
                         faults=tuple(parse_fault(s) for s in args.fault))
    elif args.fault_seed is not None:
        plan = FaultPlan.random(args.fault_seed)

    reliability = None
    overrides = {}
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if overrides:
        reliability = ReliabilityConfig(**overrides)
        if plan is None:
            # Reliability knobs imply the reliable transport even with
            # an empty fault plan (e.g. to measure its pure overhead).
            plan = FaultPlan(seed=seed, faults=())
    return plan, reliability


def _setup_logging(level: str) -> None:
    """Structured logging to stderr (module loggers across the stack)."""
    logging.basicConfig(
        level=getattr(logging, level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr)


def _bench_lap(names, spec: str, jobs: int) -> Dict[str, float]:
    """Time the bench subset once, serially or under a --jobs pool."""
    from contextlib import ExitStack

    from repro.core.executor import executor_context
    seconds: Dict[str, float] = {}
    label = f"jobs={jobs}" if jobs != 1 else "serial"
    with ExitStack() as stack:
        if jobs != 1:
            stack.enter_context(executor_context(jobs))
        for name in names:
            t0 = time.perf_counter()
            run_experiment(name, spec=spec, fast=True)
            seconds[name] = round(time.perf_counter() - t0, 3)
            print(f"[bench {label}] {name}: {seconds[name]:.1f}s",
                  file=sys.stderr)
    return seconds


def _bench_micro() -> Dict[str, float]:
    """Time the fluid-solver microbenches (the shapes of
    benchmarks/test_fluid_solver.py, shared via repro.sim.microbench)."""
    from repro.sim.microbench import (churn, churn_wide, sampler_dense,
                                      tiny_components)
    out: Dict[str, float] = {}
    for name, fn in (("fluid_churn", churn),
                     ("fluid_churn_wide", churn_wide),
                     ("sampler_dense", sampler_dense),
                     ("tiny_components", tiny_components)):
        t0 = time.perf_counter()
        fn()
        out[name] = round(time.perf_counter() - t0, 3)
        print(f"[bench micro] {name}: {out[name]:.1f}s", file=sys.stderr)
    return out


def _profile(args) -> int:
    """cProfile one --fast experiment and write the profile artifact.

    Runs under a metrics-only telemetry sink with the opt-in engine
    counters enabled, so the artifact records where the time went *and*
    what the event engine did (dispatches, stale skips, compactions).
    """
    import cProfile
    import io
    import os
    import platform
    import pstats

    name = args.experiment
    if name not in registry.names():
        print(f"unknown experiment: {name!r} (see `repro list`)",
              file=sys.stderr)
        return 2
    os.environ["REPRO_ENGINE_COUNTERS"] = "1"
    from repro.obs.telemetry import telemetry_context
    out = args.out if args.out else f"PROFILE_{name}.txt"
    top = args.top
    profiler = cProfile.Profile()
    wall0 = time.perf_counter()
    cpu0 = time.process_time()
    with telemetry_context(trace=False, metrics=True) as tele:
        profiler.enable()
        run_experiment(name, spec=args.spec, fast=True)
        profiler.disable()
        run_wall = time.perf_counter() - wall0
        run_cpu = time.process_time() - cpu0
        engine_stats = {
            metric_name: int(inst.value)
            for (metric_name, _labels), inst in tele.registry
            if metric_name.startswith("engine.")}
    render0 = time.perf_counter()
    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf).strip_dirs()
    buf.write(f"# repro profile {name} (fast, spec={args.spec}, "
              f"python {platform.python_version()})\n")
    buf.write(f"# wall {run_wall:.3f}s, cpu {run_cpu:.3f}s\n")
    for key, value in engine_stats.items():
        buf.write(f"# {key} = {value}\n")
    buf.write(f"\n== top {top} by cumulative time ==\n")
    stats.sort_stats("cumulative").print_stats(top)
    buf.write(f"\n== top {top} by internal time ==\n")
    stats.sort_stats("tottime").print_stats(top)
    text = buf.getvalue()
    render_wall = time.perf_counter() - render0
    with open(out, "w", encoding="utf-8") as fh:
        fh.write(text)
    if args.metrics:
        # Per-phase wall-clock counters ride in the same registry the
        # run populated (engine.* included when nonzero).
        reg = tele.registry
        reg.gauge("profile.run_wall_seconds").set(round(run_wall, 3))
        reg.gauge("profile.run_cpu_seconds").set(round(run_cpu, 3))
        reg.gauge("profile.render_wall_seconds").set(round(render_wall, 3))
        with open(args.metrics, "w", encoding="utf-8") as fh:
            fh.write(reg.to_json(extra={"experiment": name,
                                        "spec": args.spec}))
    try:
        print(text)
        print(f"wrote {out}")
    except BrokenPipeError:
        # stdout went to a pager/head that quit; the report file is
        # already written, so a quiet exit is the right behaviour.
        import os as _os
        _os.dup2(_os.open(_os.devnull, _os.O_WRONLY), 1)
    return 0


def _bench_tag(args) -> Optional[str]:
    """The baseline tag: explicit --tag, else derived from --out."""
    if args.tag:
        return args.tag
    if args.out:
        import os
        stem = os.path.splitext(os.path.basename(args.out))[0]
        return stem[len("BENCH_"):] if stem.startswith("BENCH_") else stem
    return None


def _bench(args) -> int:
    """Timed --fast experiment subset: the repo's perf trajectory."""
    names = [n.strip() for n in args.experiments.split(",") if n.strip()]
    unknown = [n for n in names if n not in registry.names()]
    if unknown:
        print(f"unknown bench experiment(s): {unknown}", file=sys.stderr)
        return 2
    tag = _bench_tag(args)
    if tag is None:
        print("bench needs a baseline tag: pass --tag, or --out to "
              "derive one from the filename", file=sys.stderr)
        return 2
    import os
    import platform
    out = args.out if args.out else f"BENCH_{tag}.json"
    seconds = _bench_lap(names, args.spec, jobs=1)
    # Solver microbenches ride along in the serial lap only (they
    # never touch the executor pool, so a parallel lap would just
    # repeat the same numbers).
    seconds.update(_bench_micro())
    doc = {
        "bench": tag,
        "mode": "fast",
        "spec": args.spec,
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "seconds": seconds,
        "total_seconds": round(sum(seconds.values()), 3),
    }
    if args.jobs != 1:
        if (os.cpu_count() or 1) <= 1:
            # A 1-CPU host cannot overlap worker processes: the lap
            # would only measure pool overhead and read as a perf
            # regression in trend tooling.
            doc["jobs"] = args.jobs
            doc["seconds_parallel"] = "skipped_1cpu"
            print("[bench] parallel lap skipped: host has 1 CPU",
                  file=sys.stderr)
        else:
            parallel = _bench_lap(names, args.spec, jobs=args.jobs)
            doc["jobs"] = args.jobs
            doc["seconds_parallel"] = parallel
            doc["total_seconds_parallel"] = round(sum(parallel.values()), 3)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} (total {doc['total_seconds']:.1f}s)")
    return 0


def _status(args) -> int:
    """Read-only campaign progress view over a journal (+ sidecar)."""
    import os

    from repro.core.measurer import read_status, render_status
    if not os.path.exists(args.journal):
        print(f"no journal at {args.journal}", file=sys.stderr)
        return 2
    print(render_status(read_status(args.journal)))
    return 0


def _report(args) -> int:
    """Render a campaign journal into a self-contained HTML report."""
    import os

    from repro.analysis.stats import CampaignResults
    from repro.core.htmlreport import (render_html_report,
                                       validate_html_report)
    for path in filter(None, (args.journal, args.compare)):
        if not os.path.exists(path):
            print(f"no journal at {path}", file=sys.stderr)
            return 2
    results = CampaignResults.from_journal(args.journal)
    if not results.entries:
        print(f"{args.journal}: no readable journal records",
              file=sys.stderr)
        return 2
    compare = CampaignResults.from_journal(args.compare) \
        if args.compare else None
    text = render_html_report(results, compare=compare, title=args.title)
    problems = validate_html_report(text)
    if problems:
        print(f"refusing to write {args.out}: rendered report is "
              f"invalid ({len(problems)} problem(s)):", file=sys.stderr)
        for p in problems[:10]:
            print(f"  {p}", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        fh.write(text)
    print(f"wrote {args.out} ({len(text)} bytes, "
          f"{len(results.experiments())} experiment(s)"
          f"{', compared against ' + args.compare if args.compare else ''})",
          file=sys.stderr)
    return 0


def _trace_summary(args) -> int:
    """Validate + summarise a Chrome-tracing JSON file."""
    from repro.obs.export import (render_trace_summary,
                                  summarize_chrome_trace,
                                  validate_chrome_trace)
    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        print(f"cannot read {args.path}: {err}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(text)
    if problems:
        print(f"{args.path}: INVALID trace "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for p in problems[:20]:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(render_trace_summary(summarize_chrome_trace(text)))
    return 0


def _apply_scenario(args, parser):
    """Load --scenario and fold it into *args* (CLI flags win).

    Returns the :class:`~repro.core.scenario.Scenario` (or None), with
    ``args`` fully resolved either way.
    """
    if not args.scenario:
        if not args.experiment:
            parser.error("an experiment name (or 'all') or --scenario "
                         "is required")
        args.spec = args.spec or "henri"
        args.jobs = 1 if args.jobs is None else args.jobs
        return None

    from repro.core.scenario import ScenarioError, load_scenario
    if args.experiment:
        parser.error("give either an experiment name or --scenario, "
                     "not both")
    try:
        scenario = load_scenario(args.scenario)
    except ScenarioError as err:
        parser.error(str(err))

    args.experiment = scenario.experiment
    args.spec = args.spec or scenario.spec
    args.fast = args.fast or scenario.fast
    if args.jobs is None:
        args.jobs = scenario.jobs if scenario.jobs is not None else 1
    if args.trials is None:
        args.trials = scenario.trials
    args.out = args.out or scenario.report
    args.plot = args.plot or scenario.plot
    args.trace = args.trace or scenario.trace
    args.metrics = args.metrics or scenario.metrics
    args.fault = args.fault or list(scenario.fault_specs)
    if args.fault_seed is None:
        args.fault_seed = scenario.fault_seed
    if args.timeout is None:
        args.timeout = scenario.timeout
    if args.max_retries is None:
        args.max_retries = scenario.max_retries
    args.journal = args.journal or scenario.journal
    args.resume = args.resume or scenario.resume
    if args.point_timeout is None:
        args.point_timeout = scenario.point_timeout
    if args.point_retries is None:
        args.point_retries = scenario.point_retries
    if args.keep_going is None:
        args.keep_going = scenario.keep_going
    return scenario


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the figures of 'Interferences between "
        "Communications and Computations in Distributed HPC Systems' "
        "(ICPP 2021) on the simulator.")
    parser.add_argument("--log-level", default="WARNING",
                        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                        help="stderr logging level (module loggers: "
                        "faults, transport, campaigns)")
    sub = parser.add_subparsers(dest="command", required=True)
    lst = sub.add_parser("list", help="list available experiments")
    lst.add_argument("--long", action="store_true",
                     help="one line per experiment with kind, "
                     "capabilities and title")
    topo = sub.add_parser("topology",
                          help="print a cluster preset's topology")
    topo.add_argument("--spec", default="henri")
    bench = sub.add_parser(
        "bench", help="time the --fast experiment subset and write a "
        "perf-baseline JSON (BENCH_<tag>.json)")
    bench.add_argument("--tag", default=None,
                       help="baseline tag; names the output file and the "
                       "'bench' field (derived from --out when omitted)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: BENCH_<tag>.json)")
    bench.add_argument("--spec", default="henri")
    bench.add_argument("--experiments", default=None,
                       help="comma-separated experiment names to time "
                       "(default: the registry's bench subset)")
    bench.add_argument("--jobs", type=int, default=1,
                       help="also time the subset under a --jobs process "
                       "pool and record both laps side by side "
                       "(0 = cpu count)")
    profile = sub.add_parser(
        "profile", help="cProfile one --fast experiment and write a "
        "PROFILE_<experiment>.txt artifact (top-N cumulative/internal "
        "functions + engine hot-loop counters)")
    profile.add_argument("experiment", help="experiment name "
                         "(see `repro list`)")
    profile.add_argument("--spec", default="henri")
    profile.add_argument("--top", type=int, default=10,
                         help="functions per ranking (default 10)")
    profile.add_argument("--out", default=None,
                         help="artifact path "
                         "(default PROFILE_<experiment>.txt)")
    profile.add_argument("--metrics", default=None, metavar="PATH",
                         help="also export the run's metrics registry "
                         "with per-phase wall-clock gauges as JSON")
    summary = sub.add_parser(
        "trace-summary",
        help="validate + summarise a Chrome-tracing JSON (from --trace)")
    summary.add_argument("path", help="trace JSON file")
    status = sub.add_parser(
        "status", help="campaign progress from a journal: done/cached/"
        "failed/pending counts and an ETA (read-only and lock-free — "
        "safe against a live campaign at any --jobs level)")
    status.add_argument("journal", help="campaign journal (JSON lines)")
    report = sub.add_parser(
        "report", help="render a campaign journal into a self-contained "
        "HTML report: CI error bars per point, paper-vs-measured table, "
        "attribution trend, failures")
    report.add_argument("journal", help="campaign journal (JSON lines)")
    report.add_argument("--compare", default=None, metavar="JOURNAL",
                        help="second journal for an A/B section: "
                        "two-sided Mann-Whitney U + Vargha-Delaney A12 "
                        "per common sweep point")
    report.add_argument("-o", "--out", default="report.html",
                        help="output HTML path (default report.html)")
    report.add_argument("--title", default=None,
                        help="report title (default: derived from the "
                        "journal name)")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment", nargs="?", default=None,
                     help="experiment name (see `repro list`) or 'all'; "
                     "omit when using --scenario")
    run.add_argument("--scenario", default=None, metavar="TOML",
                     help="run a scenario file: base experiment + "
                     "parameter overrides + fault plan + outputs "
                     "(docs/SCENARIOS.md); other flags override the "
                     "file's values")
    run.add_argument("--spec", default=None,
                     help="cluster preset (henri/bora/billy/pyxis)")
    run.add_argument("--fast", action="store_true",
                     help="reduced sweeps, seconds per figure")
    run.add_argument("--jobs", type=int, default=None,
                     help="fan sweep points out over N worker processes "
                     "(0 = cpu count, default 1 = serial); seeded runs "
                     "are byte-identical at any level — see "
                     "docs/PARALLEL.md")
    run.add_argument("--trials", type=int, default=None,
                     help="seeded trials per sweep point (default 1); "
                     "trial 0 is byte-identical to a plain run, later "
                     "trials re-seed the simulation noise so reports "
                     "carry bootstrap CIs (docs/OBSERVABILITY.md)")
    robust = run.add_argument_group(
        "execution robustness", "self-healing sweep execution: per-point "
        "deadlines, retry with backoff, crash requeue and degraded "
        "completion (docs/PARALLEL.md 'Failure semantics'); timeouts "
        "need --jobs >= 2")
    robust.add_argument("--point-timeout", type=float, default=None,
                        metavar="SECONDS",
                        help="wall-clock deadline per sweep point; a "
                        "point past it has its worker killed and is "
                        "retried (default: no deadline)")
    robust.add_argument("--point-retries", type=int, default=None,
                        metavar="N",
                        help="retries per point after a worker crash or "
                        "timeout, with jittered exponential backoff "
                        "(default 2); retries reuse the point's derived "
                        "seed, so a retried success is byte-identical")
    robust.add_argument("--keep-going", default=None,
                        action=argparse.BooleanOptionalAction,
                        help="complete the sweep when a point exhausts "
                        "its retries, journaling a structured failure "
                        "and exiting non-zero (default); --no-keep-going "
                        "aborts instead")
    robust.add_argument("--check-invariants", action="store_true",
                        help="runtime self-checks after every rate "
                        "solve: capacity/rate/usage-cache invariants "
                        "plus a sampled bitwise cross-check of the "
                        "incremental fluid solver against a from-scratch "
                        "solve (env: REPRO_CHECK_INVARIANTS=1)")
    run.add_argument("--out", default=None,
                     help="write a markdown record to this path")
    run.add_argument("--plot", action="store_true",
                     help="render the series as an ASCII chart")
    obs = run.add_argument_group(
        "observability", "cross-layer telemetry (see "
        "docs/OBSERVABILITY.md); off by default — the zero-telemetry "
        "path is bit-identical")
    obs.add_argument("--trace", default=None, metavar="PATH",
                     help="export a Chrome-tracing/Perfetto JSON of the "
                     "whole run (per-node/core/NIC/wire lanes + counter "
                     "tracks)")
    obs.add_argument("--metrics", default=None, metavar="PATH",
                     help="export the metrics registry + interference-"
                     "attribution report as JSON")
    faults = run.add_argument_group(
        "fault injection", "deterministic fault injection + reliable "
        "transport (see docs/FAULTS.md)")
    faults.add_argument("--fault", action="append", metavar="SPEC",
                        help="inject one fault, repeatable; e.g. "
                        "'fail_stop:node=1,at=0.01', "
                        "'loss:loss_rate=0.05,start=0,duration=1', "
                        "'link:src=0,dst=1,bw_factor=0.5,start=0,"
                        "duration=1'")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="seed for fault randomness; without --fault "
                        "this draws a random fault plan from the seed")
    faults.add_argument("--timeout", type=float, default=None,
                        help="transport retransmit timeout in seconds")
    faults.add_argument("--max-retries", type=int, default=None,
                        help="retransmissions before TransportError")
    faults.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint sweep points to a JSON-lines "
                        "campaign journal")
    faults.add_argument("--resume", action="store_true",
                        help="replay completed points from --journal and "
                        "re-run only failed/missing ones")
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    if args.command == "bench":
        if args.experiments is None:
            args.experiments = ",".join(registry.bench_names())
        return _bench(args)

    if args.command == "profile":
        return _profile(args)

    if args.command == "trace-summary":
        return _trace_summary(args)

    if args.command == "status":
        return _status(args)

    if args.command == "report":
        return _report(args)

    if args.command == "list":
        print(registry.render_listing(long=args.long))
        return 0

    if args.command == "topology":
        from repro.hardware import Cluster
        from repro.hardware.hwloc import render_topology
        cluster = Cluster(args.spec, n_nodes=1)
        print(render_topology(cluster.machine(0)))
        return 0

    scenario = _apply_scenario(args, parser)
    names = registry.names(in_all=True) if args.experiment == "all" \
        else [args.experiment]
    if args.experiment != "all":
        try:
            registry.get(args.experiment)
        except registry.UnknownExperimentError as err:
            parser.error(str(err))

    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    try:
        plan, reliability = _build_fault_plan(args)
    except ValueError as err:
        parser.error(str(err))

    from repro.core.executor import ExecutionPolicy
    policy_kwargs = {}
    if args.point_timeout is not None:
        policy_kwargs["point_timeout"] = args.point_timeout
    if args.point_retries is not None:
        policy_kwargs["point_retries"] = args.point_retries
    if args.keep_going is not None:
        policy_kwargs["keep_going"] = args.keep_going
    if args.trials is not None:
        policy_kwargs["trials"] = args.trials
    try:
        policy = ExecutionPolicy(**policy_kwargs)
    except ValueError as err:
        parser.error(str(err))
    if policy.trials > 1:
        not_sweep = [n for n in names
                     if not registry.get(n).journal_capable]
        if not_sweep:
            print(f"note: --trials only affects sweep experiments; "
                  f"{', '.join(not_sweep)} run(s) once regardless",
                  file=sys.stderr)

    from contextlib import ExitStack
    sections: Dict[str, str] = {}
    results: Dict[str, object] = {}
    with ExitStack() as stack:
        if args.check_invariants:
            from repro.sim.invariants import invariant_checks
            stack.enter_context(invariant_checks())
        if plan is not None:
            from repro.faults import fault_context
            stack.enter_context(fault_context(plan, reliability))
        tele = None
        if args.trace or args.metrics:
            from repro.obs import telemetry_context
            tele = stack.enter_context(
                telemetry_context(trace=bool(args.trace)))
        journal = None
        if args.journal:
            from repro.core.campaign import CampaignJournal
            from repro.core.measurer import CampaignMeasurer
            journal = stack.enter_context(
                CampaignJournal(args.journal, resume=args.resume))
            CampaignMeasurer.attach(journal)
        if args.jobs != 1 or policy.trials > 1:
            # trials ride on the executor policy, so a multi-trial run
            # needs an installed executor even when it stays serial.
            from repro.core.executor import executor_context
            stack.enter_context(executor_context(args.jobs, policy))
        for name in names:
            defn = registry.get(name)
            t0 = time.time()
            if tele is not None:
                tele.set_run(name)
            overrides = scenario.params if scenario is not None else None
            result = defn.run(spec=args.spec, fast=args.fast,
                              journal=journal, overrides=overrides)
            results[name] = result
            text = defn.render(result)
            if getattr(args, "plot", False) and defn.plot_capable:
                from repro.core.plotting import plot_experiment
                text += "\n" + plot_experiment(result)
            sections[name] = text
            print(text)
            print(f"[{name} done in {time.time() - t0:.1f}s]",
                  file=sys.stderr)
        if tele is not None:
            report = tele.render_attribution()
            print(report)
            sections["attribution"] = report
            if args.trace:
                n = tele.export_trace(args.trace)
                print(f"wrote {args.trace} ({n} trace events)",
                      file=sys.stderr)
            if args.metrics:
                tele.export_metrics(args.metrics)
                print(f"wrote {args.metrics}", file=sys.stderr)

    if args.out:
        write_experiments_md(sections, path=args.out,
                             title=f"Experiment run ({args.spec}"
                             f"{', fast' if args.fast else ''})")
        print(f"wrote {args.out}", file=sys.stderr)

    # Harness-level point losses (worker crash / timeout with retries
    # exhausted) mean the campaign is degraded: reports render with the
    # holes marked, the journal has structured failure entries, and the
    # exit code says so.  Simulated-fault failures are expected output
    # and do not affect the exit code.
    from repro.core.report import (collect_harness_failures,
                                   render_failure_table)
    harness = collect_harness_failures(results)
    if harness:
        print(f"\ncampaign DEGRADED: {len(harness)} point(s) lost to "
              f"harness failures (retries exhausted)", file=sys.stderr)
        print(render_failure_table(harness), file=sys.stderr)
        return 3
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
