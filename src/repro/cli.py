"""Command-line interface: run paper experiments and print/record results.

Usage::

    python -m repro list
    python -m repro run fig4a [--spec henri] [--fast]
    python -m repro run all --fast --out EXPERIMENTS_RUN.md

``--fast`` substitutes reduced sweep parameters (fewer repetitions and
points) so every figure finishes in seconds; omit it to regenerate the
full figures.
"""

from __future__ import annotations

import argparse
import json
import logging
import sys
import time
from typing import Callable, Dict, Optional

from repro.core import experiments as E
from repro.core.report import render_experiment, write_experiments_md

__all__ = ["main", "EXPERIMENTS", "run_experiment"]

# Experiments timed by `repro bench` (fast mode): one per modelled layer
# — raw latency sweep, frequency effects, runtime overhead, NUMA
# placement, polling contention, and the fig-10 worker sweep.
_BENCH_EXPERIMENTS = ("fig1a", "fig2", "runtime_overhead", "fig8",
                      "fig9", "fig10")

# Reduced parameter sets for --fast mode.
_FAST_KWARGS: Dict[str, dict] = {
    "fig1": dict(sizes=[4, 65536, 67108864], reps=6),
    "fig1a": dict(sizes=[4, 65536, 67108864], reps=6),
    "fig1b": dict(sizes=[4, 65536, 67108864], reps=6),
    "fig2": dict(phase_seconds=0.04),
    "fig3a": dict(core_counts=(4, 20), reps=5),
    "fig3bc": dict(phase_seconds=0.05),
    "fig4a": dict(core_counts=[0, 3, 5, 12, 20, 26, 31, 35], reps=6),
    "fig4b": dict(core_counts=[0, 3, 5, 12, 20, 26, 31, 35], reps=4),
    "fig5": dict(core_counts=[0, 5, 20, 35], reps=4),
    "table1": dict(core_counts=[0, 5, 20, 35], reps=4),
    "fig6a": dict(sizes=[4, 1024, 4096, 65536, 1048576, 67108864], reps=4),
    "fig6b": dict(sizes=[4, 128, 1024, 4096, 65536, 1048576, 67108864],
                  reps=4),
    "fig7a": dict(cursors=[1, 8, 24, 48, 72, 96, 144, 480], reps=4,
                  elems=1_000_000),
    "fig7b": dict(cursors=[1, 8, 24, 72, 144, 480], reps=3,
                  elems=2_000_000, sweeps=3),
    "runtime_overhead": dict(reps=10),
    "fig8": dict(reps=10),
    "fig9": dict(sizes=[4, 1024], reps=8),
    "fig10": dict(worker_counts=(1, 8, 16, 24, 34)),
    "overlap": dict(sizes=[65536, 1 << 20, 16 << 20], n_compute_cores=6),
    "multipair": dict(pair_counts=[1, 2, 4], sizes=[4, 16 << 20], reps=4),
    "gpu_vs_network": dict(reps=6, chunk=8 << 20),
    "gpu_vs_stream": dict(core_counts=[0, 4, 12], copies_per_point=4),
}

def _overlap(spec="henri", **kwargs):
    from repro.core.overlap import overlap_experiment
    return overlap_experiment(spec=spec, **kwargs)


def _multipair(spec="henri", **kwargs):
    from repro.core.multipair import multipair_experiment
    return multipair_experiment(spec=spec, **kwargs)


def _gpu_network(spec="henri", **kwargs):
    from repro.core.gpu_experiments import gpu_vs_network
    return gpu_vs_network(spec=spec, **kwargs)


def _gpu_stream(spec="henri", **kwargs):
    from repro.core.gpu_experiments import gpu_vs_stream
    return gpu_vs_stream(spec=spec, **kwargs)


EXPERIMENTS: Dict[str, Callable] = {
    "fig1a": E.fig1a, "fig1b": E.fig1b, "fig2": E.fig2,
    "fig3a": E.fig3a, "fig3bc": E.fig3bc,
    "fig4a": E.fig4a, "fig4b": E.fig4b,
    "table1": E.table1,
    "fig6a": E.fig6a, "fig6b": E.fig6b,
    "fig7a": E.fig7a, "fig7b": E.fig7b,
    "runtime_overhead": E.runtime_overhead,
    "fig8": E.fig8, "fig9": E.fig9, "fig10": E.fig10,
    # Extensions beyond the paper's figures:
    "overlap": _overlap,
    "multipair": _multipair,
    "gpu_vs_network": _gpu_network,
    "gpu_vs_stream": _gpu_stream,
}


# Experiments whose sweeps are checkpointable through a CampaignJournal
# (and, equivalently, parallelisable with --jobs: both ride on PointSpec
# sweeps — see docs/PARALLEL.md).
_JOURNAL_CAPABLE = {"fig1", "fig1a", "fig1b", "fig3a", "fig4a", "fig4b",
                    "fig5", "fig6a", "fig6b", "fig7a", "fig7b", "fig9",
                    "fig10", "overlap"}


def run_experiment(name: str, spec: str = "henri", fast: bool = False,
                   journal=None):
    """Run one named experiment; returns its result object."""
    kwargs = dict(_FAST_KWARGS.get(name, {})) if fast else {}
    if journal is not None and name in _JOURNAL_CAPABLE:
        kwargs["journal"] = journal
    if name == "fig5":
        return E.fig5(spec=spec, **kwargs)
    func = EXPERIMENTS[name]
    return func(spec=spec, **kwargs)


def _build_fault_plan(args):
    """Fault plan + reliability config from CLI flags (None, None when
    fault injection is not requested — the zero-cost default path)."""
    from repro.faults import FaultPlan, ReliabilityConfig, parse_fault

    plan = None
    seed = args.fault_seed if args.fault_seed is not None else 0
    if args.fault:
        plan = FaultPlan(seed=seed,
                         faults=tuple(parse_fault(s) for s in args.fault))
    elif args.fault_seed is not None:
        plan = FaultPlan.random(args.fault_seed)

    reliability = None
    overrides = {}
    if args.timeout is not None:
        overrides["timeout_s"] = args.timeout
    if args.max_retries is not None:
        overrides["max_retries"] = args.max_retries
    if overrides:
        reliability = ReliabilityConfig(**overrides)
        if plan is None:
            # Reliability knobs imply the reliable transport even with
            # an empty fault plan (e.g. to measure its pure overhead).
            plan = FaultPlan(seed=seed, faults=())
    return plan, reliability


def _setup_logging(level: str) -> None:
    """Structured logging to stderr (module loggers across the stack)."""
    logging.basicConfig(
        level=getattr(logging, level.upper()),
        format="%(levelname)s %(name)s: %(message)s",
        stream=sys.stderr)


def _bench_lap(names, spec: str, jobs: int) -> Dict[str, float]:
    """Time the bench subset once, serially or under a --jobs pool."""
    from contextlib import ExitStack

    from repro.core.executor import executor_context
    seconds: Dict[str, float] = {}
    label = f"jobs={jobs}" if jobs != 1 else "serial"
    with ExitStack() as stack:
        if jobs != 1:
            stack.enter_context(executor_context(jobs))
        for name in names:
            t0 = time.perf_counter()
            run_experiment(name, spec=spec, fast=True)
            seconds[name] = round(time.perf_counter() - t0, 3)
            print(f"[bench {label}] {name}: {seconds[name]:.1f}s",
                  file=sys.stderr)
    return seconds


def _bench(args) -> int:
    """Timed --fast experiment subset: the repo's perf trajectory."""
    names = [n.strip() for n in args.experiments.split(",") if n.strip()]
    unknown = [n for n in names if n not in EXPERIMENTS]
    if unknown:
        print(f"unknown bench experiment(s): {unknown}", file=sys.stderr)
        return 2
    import os
    import platform
    out = args.out if args.out else f"BENCH_{args.tag}.json"
    seconds = _bench_lap(names, args.spec, jobs=1)
    doc = {
        "bench": args.tag,
        "mode": "fast",
        "spec": args.spec,
        "python": platform.python_version(),
        "host_cpus": os.cpu_count(),
        "seconds": seconds,
        "total_seconds": round(sum(seconds.values()), 3),
    }
    if args.jobs != 1:
        parallel = _bench_lap(names, args.spec, jobs=args.jobs)
        doc["jobs"] = args.jobs
        doc["seconds_parallel"] = parallel
        doc["total_seconds_parallel"] = round(sum(parallel.values()), 3)
    with open(out, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1, sort_keys=True)
        fh.write("\n")
    print(f"wrote {out} (total {doc['total_seconds']:.1f}s)")
    return 0


def _trace_summary(args) -> int:
    """Validate + summarise a Chrome-tracing JSON file."""
    from repro.obs.export import (render_trace_summary,
                                  summarize_chrome_trace,
                                  validate_chrome_trace)
    try:
        with open(args.path, "r", encoding="utf-8") as fh:
            text = fh.read()
    except OSError as err:
        print(f"cannot read {args.path}: {err}", file=sys.stderr)
        return 2
    problems = validate_chrome_trace(text)
    if problems:
        print(f"{args.path}: INVALID trace "
              f"({len(problems)} problem(s)):", file=sys.stderr)
        for p in problems[:20]:
            print(f"  {p}", file=sys.stderr)
        return 1
    print(render_trace_summary(summarize_chrome_trace(text)))
    return 0


def _render(name: str, result) -> str:
    if name == "fig5":
        return "\n".join(render_experiment(r) for r in result.values())
    if name == "table1":
        from repro.core.report import render_table
        rows = [[r["data"], r["comm_thread"],
                 f'{r["latency_impact_from_cores"]}',
                 f'{r["latency_max_ratio"]:.2f}x',
                 f'{r["bandwidth_min_ratio"]:.2f}']
                for r in result.meta["rows"]]
        return render_table(
            ["data", "comm thread", "lat. impact from cores",
             "lat. max ratio", "bw min ratio"], rows)
    return render_experiment(result)


def main(argv: Optional[list] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-bench",
        description="Reproduce the figures of 'Interferences between "
        "Communications and Computations in Distributed HPC Systems' "
        "(ICPP 2021) on the simulator.")
    parser.add_argument("--log-level", default="WARNING",
                        choices=["DEBUG", "INFO", "WARNING", "ERROR"],
                        help="stderr logging level (module loggers: "
                        "faults, transport, campaigns)")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiments")
    topo = sub.add_parser("topology",
                          help="print a cluster preset's topology")
    topo.add_argument("--spec", default="henri")
    bench = sub.add_parser(
        "bench", help="time the --fast experiment subset and write a "
        "perf-baseline JSON (BENCH_<tag>.json)")
    bench.add_argument("--tag", default="pr4",
                       help="baseline tag; names the output file and the "
                       "'bench' field (default: pr4)")
    bench.add_argument("--out", default=None,
                       help="output JSON path (default: BENCH_<tag>.json)")
    bench.add_argument("--spec", default="henri")
    bench.add_argument("--experiments",
                       default=",".join(_BENCH_EXPERIMENTS),
                       help="comma-separated experiment names to time")
    bench.add_argument("--jobs", type=int, default=1,
                       help="also time the subset under a --jobs process "
                       "pool and record both laps side by side "
                       "(0 = cpu count)")
    summary = sub.add_parser(
        "trace-summary",
        help="validate + summarise a Chrome-tracing JSON (from --trace)")
    summary.add_argument("path", help="trace JSON file")
    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument("experiment",
                     help="experiment name (fig1a..fig10, table1, fig5, "
                     "runtime_overhead) or 'all'")
    run.add_argument("--spec", default="henri",
                     help="cluster preset (henri/bora/billy/pyxis)")
    run.add_argument("--fast", action="store_true",
                     help="reduced sweeps, seconds per figure")
    run.add_argument("--jobs", type=int, default=1,
                     help="fan sweep points out over N worker processes "
                     "(0 = cpu count, default 1 = serial); seeded runs "
                     "are byte-identical at any level — see "
                     "docs/PARALLEL.md")
    run.add_argument("--out", default=None,
                     help="write a markdown record to this path")
    run.add_argument("--plot", action="store_true",
                     help="render the series as an ASCII chart")
    obs = run.add_argument_group(
        "observability", "cross-layer telemetry (see "
        "docs/OBSERVABILITY.md); off by default — the zero-telemetry "
        "path is bit-identical")
    obs.add_argument("--trace", default=None, metavar="PATH",
                     help="export a Chrome-tracing/Perfetto JSON of the "
                     "whole run (per-node/core/NIC/wire lanes + counter "
                     "tracks)")
    obs.add_argument("--metrics", default=None, metavar="PATH",
                     help="export the metrics registry + interference-"
                     "attribution report as JSON")
    faults = run.add_argument_group(
        "fault injection", "deterministic fault injection + reliable "
        "transport (see docs/FAULTS.md)")
    faults.add_argument("--fault", action="append", metavar="SPEC",
                        help="inject one fault, repeatable; e.g. "
                        "'fail_stop:node=1,at=0.01', "
                        "'loss:loss_rate=0.05,start=0,duration=1', "
                        "'link:src=0,dst=1,bw_factor=0.5,start=0,"
                        "duration=1'")
    faults.add_argument("--fault-seed", type=int, default=None,
                        help="seed for fault randomness; without --fault "
                        "this draws a random fault plan from the seed")
    faults.add_argument("--timeout", type=float, default=None,
                        help="transport retransmit timeout in seconds")
    faults.add_argument("--max-retries", type=int, default=None,
                        help="retransmissions before TransportError")
    faults.add_argument("--journal", default=None, metavar="PATH",
                        help="checkpoint sweep points to a JSON-lines "
                        "campaign journal")
    faults.add_argument("--resume", action="store_true",
                        help="replay completed points from --journal and "
                        "re-run only failed/missing ones")
    args = parser.parse_args(argv)
    _setup_logging(args.log_level)

    if args.command == "bench":
        return _bench(args)

    if args.command == "trace-summary":
        return _trace_summary(args)

    if args.command == "list":
        for name in list(EXPERIMENTS) + ["fig5"]:
            print(name)
        return 0

    if args.command == "topology":
        from repro.hardware import Cluster
        from repro.hardware.hwloc import render_topology
        cluster = Cluster(args.spec, n_nodes=1)
        print(render_topology(cluster.machine(0)))
        return 0

    names = (list(EXPERIMENTS) + ["fig5"]) if args.experiment == "all" \
        else [args.experiment]
    unknown = [n for n in names if n not in EXPERIMENTS and n != "fig5"]
    if unknown:
        parser.error(f"unknown experiment(s): {unknown}; "
                     f"try: {sorted(EXPERIMENTS)}")

    if args.resume and not args.journal:
        parser.error("--resume requires --journal")
    try:
        plan, reliability = _build_fault_plan(args)
    except ValueError as err:
        parser.error(str(err))

    from contextlib import ExitStack
    sections: Dict[str, str] = {}
    with ExitStack() as stack:
        if plan is not None:
            from repro.faults import fault_context
            stack.enter_context(fault_context(plan, reliability))
        tele = None
        if args.trace or args.metrics:
            from repro.obs import telemetry_context
            tele = stack.enter_context(
                telemetry_context(trace=bool(args.trace)))
        journal = None
        if args.journal:
            from repro.core.campaign import CampaignJournal
            journal = stack.enter_context(
                CampaignJournal(args.journal, resume=args.resume))
        if args.jobs != 1:
            from repro.core.executor import executor_context
            stack.enter_context(executor_context(args.jobs))
        for name in names:
            t0 = time.time()
            if tele is not None:
                tele.set_run(name)
            result = run_experiment(name, spec=args.spec, fast=args.fast,
                                    journal=journal)
            text = _render(name, result)
            if getattr(args, "plot", False) \
                    and name not in ("fig5", "table1"):
                from repro.core.plotting import plot_experiment
                text += "\n" + plot_experiment(result)
            sections[name] = text
            print(text)
            print(f"[{name} done in {time.time() - t0:.1f}s]",
                  file=sys.stderr)
        if tele is not None:
            report = tele.render_attribution()
            print(report)
            sections["attribution"] = report
            if args.trace:
                n = tele.export_trace(args.trace)
                print(f"wrote {args.trace} ({n} trace events)",
                      file=sys.stderr)
            if args.metrics:
                tele.export_metrics(args.metrics)
                print(f"wrote {args.metrics}", file=sys.stderr)

    if args.out:
        write_experiments_md(sections, path=args.out,
                             title=f"Experiment run ({args.spec}"
                             f"{', fast' if args.fast else ''})")
        print(f"wrote {args.out}", file=sys.stderr)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
