"""Worker threads: task execution and busy-wait polling.

Each worker is bound to one core (§5.1: one worker per core not reserved
for the main or communication thread).  An idle worker polls the shared
ready list; the steady-state contention of that polling is accounted by
the scheduler (see :mod:`repro.runtime.scheduler`), while the *reaction
latency* — half a backoff period between a task being pushed and a
worker noticing — is simulated here.

Task execution follows the roofline model exactly like standalone
kernels: compute at the live core frequency, memory as a fluid flow from
the task's dominant data's NUMA node, stalls recorded in the counters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.hardware.frequency import CoreActivity
from repro.hardware.topology import Machine
from repro.obs.context import active_telemetry
from repro.runtime.task import Task
from repro.sim import noisy
from repro.sim.events import Interrupt

__all__ = ["Worker"]


class Worker:
    """One worker thread bound to a core."""

    def __init__(self, runtime, machine: Machine, core_id: int):
        self.runtime = runtime
        self.machine = machine
        self.core_id = core_id
        self.tasks_executed = 0
        self.busy_time = 0.0
        self.paused = False
        self.crashed = False
        self.current_task: Optional[Task] = None
        self._requeue_on_crash = True
        self._process = None
        self._rng = None  # lazily bound noise stream (one per worker)

    def start(self) -> None:
        self._process = self.machine.sim.process(self._loop())

    def crash(self, requeue: bool = True) -> None:
        """Fail-stop this worker (fault injection).

        The worker thread dies at its current yield point; with
        *requeue* its in-flight task goes back to the scheduler's ready
        list, where the surviving workers pick it up through the normal
        pop/steal machinery.
        """
        if self.crashed:
            return
        self.crashed = True
        self._requeue_on_crash = requeue
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("worker crash")

    def pause(self) -> None:
        """Stop taking tasks after the current one (the §8 'reduce the
        number of workers' knob); the core stops polling entirely."""
        if not self.paused:
            self.paused = True
            # Recycle idle workers so a parked poller re-registers as a
            # non-polling sleeper.
            self.runtime._wake_all()  # noqa: SLF001 - cooperating classes

    def resume(self) -> None:
        if self.paused:
            self.paused = False
            self.runtime._wake_all()  # noqa: SLF001 - cooperating classes

    # ------------------------------------------------------------------
    def _loop(self) -> Generator:
        runtime = self.runtime
        sched = runtime.scheduler
        polling = sched.polling
        machine = self.machine
        machine.set_core_activity(self.core_id, CoreActivity.SCALAR,
                                  uncore_active=False)
        discarded = False
        try:
            my_socket = machine.cores[self.core_id].socket_id
            if hasattr(sched, "register_worker"):
                sched.register_worker(self.core_id)
            while not runtime.stopped:
                task = None if self.paused \
                    else sched.pop(worker_socket=my_socket,
                                   core_id=self.core_id)
                if task is None:
                    polls = not self.paused
                    runtime.worker_went_idle(polls=polls)
                    try:
                        wake = runtime.wake_event()
                        yield wake
                    finally:
                        runtime.worker_woke_up(polls=polls)
                    if runtime.stopped:
                        return
                    if self.paused:
                        continue
                    if not polling.paused:
                        # Reaction latency: on average half a backoff
                        # period passes before the poll notices the push.
                        yield polling.poll_period / 2.0
                    else:
                        # Paused workers must be resumed by the runtime -
                        # a far slower wake-up path (futex + context
                        # switch).
                        yield runtime.spec.worker_resume_s
                    continue
                yield from self._execute(task)
        except Interrupt:
            # Crash injection: the worker dies here.  Its in-flight
            # task (if any) survives by going back to the ready list —
            # the stealing machinery hands it to a living worker.
            task, self.current_task = self.current_task, None
            if task is not None and not task.done and self._requeue_on_crash:
                runtime.requeue(task)
        except GeneratorExit:
            # The suspended loop is being closed because its simulation
            # was discarded (GC of a dead cluster).  Restoring core
            # state would mutate a dead machine at a GC-dependent
            # moment — observable as nondeterministic telemetry.
            discarded = True
            raise
        finally:
            if not discarded:
                machine.set_core_activity(self.core_id, CoreActivity.IDLE)
                machine.set_streaming(self.core_id, False)

    def _execute(self, task: Task) -> Generator:
        machine = self.machine
        sim = machine.sim
        rng = self._rng
        if rng is None:
            rng = self._rng = machine.rng.stream(f"worker{self.core_id}")
        spec = machine.spec
        self.current_task = task
        task.start_time = sim.now
        tele = active_telemetry()
        span = None if tele is None else tele.begin_span(
            machine, self.core_id, task.name, "task",
            flops=task.cost.flops, bytes=task.cost.bytes)

        # Per-task runtime management overhead (dequeue, codelet setup).
        overhead = noisy(self.runtime.spec.task_overhead_s, spec.noise, rng)
        yield overhead

        vector = getattr(task.cost, "vector", False)
        activity = CoreActivity.AVX512 if vector else CoreActivity.SCALAR
        nbytes = task.cost.bytes
        machine.set_core_activity(self.core_id, activity,
                                  uncore_active=nbytes > 0)
        hz = machine.freq.core_hz(self.core_id)
        fpc = spec.avx_flops_per_cycle if vector else spec.flops_per_cycle
        cpu_time = task.cost.flops / (fpc * hz) \
            if task.cost.flops > 0 else 0.0
        cpu_time = noisy(cpu_time, spec.noise, rng)
        data_numa = task.data_numa()
        if data_numa is None:
            data_numa = machine.cores[self.core_id].numa_id

        t0 = sim.now
        uncontended = 0.0
        if nbytes > 0:
            demand = spec.memory.per_core_bw
            if cpu_time > 0:
                demand = min(demand, nbytes / cpu_time)
            uncontended = nbytes / demand
            machine.set_streaming(self.core_id,
                                  machine.streaming_weight(demand))
            flow = machine.net.transfer(
                machine.load_path(self.core_id, data_numa), size=nbytes,
                demand=demand, label=f"task:{task.name}")
            try:
                yield flow.done
            except Interrupt:
                # Crash mid-flow: release the fluid bandwidth the dead
                # worker was consuming before propagating.
                machine.net.stop_flow(flow)
                machine.set_streaming(self.core_id, False)
                raise
            mem_time = sim.now - t0
            if mem_time < cpu_time:
                yield cpu_time - mem_time
            machine.set_streaming(self.core_id, False)
        elif cpu_time > 0:
            yield cpu_time
        machine.set_core_activity(self.core_id, CoreActivity.SCALAR,
                                  uncore_active=False)

        exec_time = sim.now - t0
        stall = max(0.0, exec_time - cpu_time)
        contention = max(0.0, min(
            stall, exec_time - max(cpu_time, uncontended)))
        machine.counters.record(self.core_id, busy=exec_time + overhead,
                                mem_stall=stall, flops=task.cost.flops,
                                bytes_moved=nbytes,
                                contention_stall=contention)
        task.end_time = sim.now
        self.tasks_executed += 1
        self.busy_time += exec_time + overhead
        self.current_task = None
        if tele is not None:
            tele.finish_span(machine, span)
            tele.on_task_done(machine, self.core_id, task,
                              busy=exec_time + overhead, stall=stall)
        self.runtime.on_task_done(task)
