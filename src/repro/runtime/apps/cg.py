"""Distributed dense conjugate gradient on the task runtime (§6).

The dense CG iteration on two ranks, block-row distributed:

* ``q = A·p`` — each rank owns ``N/2`` rows of A; the local columns can
  be processed immediately, the remote half of ``p`` must arrive first
  (one rendezvous-sized vector message per direction per iteration,
  overlapped with the local GEMV tasks);
* dot products + the scalar exchange (two tiny messages per direction);
* AXPY updates.

CG's GEMV/AXPY/DOT tasks stream their operands once (arithmetic
intensity ≈ 0.1–0.25 flop/B), so the memory system saturates with a
handful of workers — the paper measures 70 % memory-stall cycles and a
90 % loss of sending bandwidth at full worker count.

Matrix tiles are allocated round-robin across NUMA nodes (first-touch by
workers, §5.3), so computation traffic also crosses the inter-socket
links.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.hardware.memory import allocate
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.kernels.blas import DOUBLE, axpy_cost, dot_cost, gemv_tile_cost
from repro.mpi.comm import CommWorld
from repro.runtime.mpi_layer import RuntimeComm
from repro.runtime.runtime import RuntimeSystem, make_scheduler as _make_scheduler
from repro.runtime.scheduler import PollingSpec
from repro.runtime.task import AccessMode, DataHandle, Task

__all__ = ["CGResult", "run_cg"]


@dataclass
class CGResult:
    """Measured outcome of one CG run."""

    n: int
    iterations: int
    n_workers: int
    duration: float
    sending_bandwidth: float          # §6 metric, bytes/s (avg both nodes)
    stall_fraction: float             # memory-stalled share of busy cycles
    bytes_sent: float
    messages: int

    def summary(self) -> str:
        return (f"CG n={self.n} workers={self.n_workers}: "
                f"{self.duration*1e3:.1f} ms, "
                f"send bw {self.sending_bandwidth/1e9:.2f} GB/s, "
                f"stalls {self.stall_fraction*100:.0f}%")


def _build_rank_data(machine, rank: int, n: int, tile_rows: int):
    """Allocate the rank's matrix row-block tiles (interleaved NUMA) and
    vector buffers."""
    half = n // 2
    n_tiles = max(1, half // tile_rows)
    a_handles: List[DataHandle] = []
    for t in range(n_tiles):
        numa = t % len(machine.numa_nodes)
        buf = allocate(machine, numa, tile_rows * n * DOUBLE,
                       label=f"A[{rank}][{t}]")
        a_handles.append(DataHandle(buffer=buf, home_rank=rank,
                                    label=f"A{t}"))
    p_local = DataHandle(
        buffer=allocate(machine, machine.nic_numa.id, half * DOUBLE,
                        label=f"p_local[{rank}]"),
        home_rank=rank, label="p_local")
    p_remote = DataHandle(
        buffer=allocate(machine, machine.nic_numa.id, half * DOUBLE,
                        label=f"p_remote[{rank}]"),
        home_rank=rank, label="p_remote")
    scalar = DataHandle(
        buffer=allocate(machine, machine.nic_numa.id, DOUBLE,
                        label=f"dot[{rank}]"),
        home_rank=rank, label="dot")
    y_handles = [DataHandle(
        buffer=allocate(machine, t % len(machine.numa_nodes),
                        tile_rows * DOUBLE, label=f"y[{rank}][{t}]"),
        home_rank=rank, label=f"y{t}") for t in range(n_tiles)]
    return a_handles, y_handles, p_local, p_remote, scalar


def _driver(rank: int, other: int, rt: RuntimeSystem, comm: RuntimeComm,
            data, n: int, tile_rows: int, iterations: int):
    """Main-thread process of one rank: submit tasks, exchange vectors."""
    a_handles, y_handles, p_local, p_remote, scalar = data
    half = n // 2
    sim = rt.sim

    for _it in range(iterations):
        # Vector exchange, overlapped with the local-column GEMVs.
        send = comm.isend(rank, other, p_local.buffer, tag=10 + rank)
        recv = comm.irecv(rank, other, p_remote.buffer, tag=10 + other)

        gate = rt.external_dependency()
        local_tasks = []
        for a, y in zip(a_handles, y_handles):
            t = Task(name="gemv_local",
                     cost=gemv_tile_cost(tile_rows, half),
                     accesses=[(a, AccessMode.R), (p_local, AccessMode.R),
                               (y, AccessMode.RW)],
                     rank=rank)
            rt.submit(t)
            local_tasks.append(t)
        remote_tasks = []
        for a, y in zip(a_handles, y_handles):
            t = Task(name="gemv_remote",
                     cost=gemv_tile_cost(tile_rows, half),
                     accesses=[(a, AccessMode.R), (p_remote, AccessMode.R),
                               (y, AccessMode.RW)],
                     rank=rank)
            t.deps = [gate] + [lt for lt in local_tasks
                               if lt.accesses[2][0] is y]
            rt.submit(t)
            remote_tasks.append(t)

        yield recv.done
        rt.complete_external(gate)
        yield rt.wait_all()

        # Dot products, then AXPY updates of x/r/p; the scalar exchange
        # (tiny latency-bound messages) flies while the AXPYs stream, as
        # in a pipelined CG where communications never find the memory
        # system idle.
        for y in y_handles:
            rt.submit(Task(name="dot", cost=dot_cost(tile_rows),
                           accesses=[(y, AccessMode.R)], rank=rank))
        yield rt.wait_all()
        for y in y_handles:
            rt.submit(Task(name="axpy",
                           cost=axpy_cost(tile_rows).scaled(3.0),
                           accesses=[(y, AccessMode.RW)], rank=rank))
        s_send = comm.isend(rank, other, scalar.buffer, tag=20 + rank)
        s_recv = comm.irecv(rank, other, scalar.buffer, tag=20 + other)
        yield s_recv.done
        yield send.done
        yield s_send.done
        yield rt.wait_all()


def run_cg(spec: MachineSpec | str = "henri", n: int = 120_000,
           tile_rows: Optional[int] = None, iterations: int = 3,
           n_workers: Optional[int] = None,
           polling: Optional[PollingSpec] = None,
           autotune: bool = False,
           scheduler: str = "eager",
           seed: int = 0,
           cluster: Optional[Cluster] = None,
           nodes: Sequence[int] = (0, 1)) -> CGResult:
    """Run distributed CG on two simulated nodes; returns §6's metrics.

    ``tile_rows`` defaults to a partition fine enough to feed every
    worker of the machine (StarPU applications tile for the full core
    count regardless of how many workers are enabled).  With
    ``autotune=True`` a :class:`~repro.runtime.autotune.WorkerAutotuner`
    controls each node's active worker count (the paper's §8 proposal).
    Pass an existing *cluster* (and a two-node *nodes* placement) to run
    on a shared fabric next to other applications (see repro.core.apps).
    """
    if n % 2:
        raise ValueError("n must be even (block-row distribution)")
    nodes = tuple(nodes)
    if len(nodes) != 2:
        raise ValueError("CG is two-rank: nodes must name 2 nodes")
    if cluster is None:
        machine_spec = get_preset(spec) if isinstance(spec, str) else spec
        cluster = Cluster(machine_spec, n_nodes=max(nodes) + 1, seed=seed)
    else:
        machine_spec = cluster.spec
    if tile_rows is None:
        tile_rows = max(200, (n // 2) // (2 * machine_spec.n_cores))
    world = CommWorld(cluster, comm_placement="far", nodes=nodes)
    runtimes = {}
    for r in (0, 1):
        sched = _make_scheduler(scheduler, polling, world.rank(r).machine)
        runtimes[r] = RuntimeSystem(world, r, n_workers=n_workers,
                                    polling=polling, scheduler=sched)
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()
    tuners = []
    if autotune:
        from repro.runtime.autotune import WorkerAutotuner
        tuners = [WorkerAutotuner(rt, comm=comm).start()
                  for rt in runtimes.values()]

    data = {r: _build_rank_data(world.rank(r).machine, r, n, tile_rows)
            for r in (0, 1)}
    snapshots = {r: world.rank(r).machine.counters.snapshot()
                 for r in (0, 1)}
    t0 = cluster.sim.now
    drivers = [cluster.sim.process(
        _driver(r, 1 - r, runtimes[r], comm, data[r], n, tile_rows,
                iterations)) for r in (0, 1)]
    if tuners:
        # The tuners' control loops keep the event queue alive; drive
        # until the application itself is done.
        while not all(d.triggered for d in drivers):
            cluster.sim.step()
    else:
        cluster.sim.run()
    for d in drivers:
        if not d.ok:  # surface driver errors
            _ = d.value
    duration = cluster.sim.now - t0
    for tuner in tuners:
        tuner.stop()
    for rt in runtimes.values():
        rt.shutdown()
    cluster.sim.run()

    worker_cores = [w.core_id for rt in runtimes.values()
                    for w in rt.workers]
    stalls = []
    for r in (0, 1):
        machine = world.rank(r).machine
        agg = machine.counters.delta(snapshots[r])
        denom = duration * len(machine.cores)
        if denom > 0:
            stalls.append(agg.mem_stall / denom)
    total_sent = sum(s.bytes_sent for s in comm.send_stats.values())
    total_msgs = sum(s.messages for s in comm.send_stats.values())
    return CGResult(
        n=n, iterations=iterations,
        n_workers=len(runtimes[0].workers),
        duration=duration,
        sending_bandwidth=comm.sending_bandwidth(),
        stall_fraction=float(np.mean(stalls)) if stalls else 0.0,
        bytes_sent=total_sent,
        messages=total_msgs,
    )
