"""Distributed tiled GEMM on the task runtime (§6).

``C = A·B`` on two ranks with block-row distribution of A, B and C:

``C_r = A_{r,0}·B_0 + A_{r,1}·B_1`` — the ``B_{1-r}`` half lives on the
other rank and is streamed over, tile row by tile row (rendezvous-sized
messages), overlapped with the local-half GEMM tasks.

GEMM tiles reuse operands ~b times, so even the full worker count keeps
the memory system below saturation; the paper measures only ~20 %
memory-stall cycles and ~20 % sending-bandwidth loss.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.hardware.memory import allocate
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.kernels.blas import DOUBLE, gemm_tile_cost
from repro.mpi.comm import CommWorld
from repro.runtime.mpi_layer import RuntimeComm
from repro.runtime.runtime import RuntimeSystem, make_scheduler as _make_scheduler
from repro.runtime.scheduler import PollingSpec
from repro.runtime.task import AccessMode, DataHandle, Task

__all__ = ["GEMMResult", "run_gemm"]


@dataclass
class GEMMResult:
    """Measured outcome of one distributed GEMM run."""

    n: int
    tile: int
    n_workers: int
    duration: float
    sending_bandwidth: float
    stall_fraction: float
    bytes_sent: float
    messages: int

    def summary(self) -> str:
        return (f"GEMM n={self.n} b={self.tile} workers={self.n_workers}: "
                f"{self.duration*1e3:.1f} ms, "
                f"send bw {self.sending_bandwidth/1e9:.2f} GB/s, "
                f"stalls {self.stall_fraction*100:.0f}%")


def _tile_handles(machine, rank: int, n_tiles: int, tile_bytes: int,
                  label: str) -> List[DataHandle]:
    """Tiles allocated round-robin over NUMA nodes (first-touch)."""
    handles = []
    for t in range(n_tiles):
        numa = t % len(machine.numa_nodes)
        buf = allocate(machine, numa, tile_bytes, label=f"{label}[{rank}][{t}]")
        handles.append(DataHandle(buffer=buf, home_rank=rank,
                                  label=f"{label}{t}"))
    return handles


def _driver(rank: int, other: int, rt: RuntimeSystem, comm: RuntimeComm,
            n: int, b: int):
    """Submit C-tile tasks; stream the remote B half row-block by
    row-block, overlapping with the local-half GEMMs."""
    machine = rt.machine
    half = n // 2
    rows_i = max(1, half // b)          # C row tiles on this rank
    cols_j = max(1, n // b)             # C column tiles
    k_steps = max(1, half // b)         # accumulation depth per half

    row_bytes = b * n * DOUBLE          # one b-row slab of B
    local_b = _tile_handles(machine, rank, k_steps, row_bytes, "Bl")
    remote_b = _tile_handles(machine, rank, k_steps, row_bytes, "Br")
    c_tiles = _tile_handles(machine, rank, rows_i * cols_j,
                            b * b * DOUBLE, "C")

    # Stream the remote half of B (one message per row-slab).
    recvs = [comm.irecv(rank, other, h.buffer, tag=100 + k)
             for k, h in enumerate(remote_b)]
    sends = [comm.isend(rank, other, h.buffer, tag=100 + k)
             for k, h in enumerate(local_b)]

    per_tile = gemm_tile_cost(b, cache_resident_fraction=0.5)
    gates = [rt.external_dependency() for _ in remote_b]

    for i in range(rows_i):
        for j in range(cols_j):
            c = c_tiles[i * cols_j + j]
            # Local-half accumulation: ready immediately.
            t_local = Task(name=f"gemm_local[{i},{j}]",
                           cost=per_tile.scaled(k_steps),
                           accesses=[(local_b[(i + j) % k_steps],
                                      AccessMode.R),
                                     (c, AccessMode.RW)],
                           rank=rank)
            rt.submit(t_local)
            # Remote-half accumulation: gated on the slab arrivals.
            t_remote = Task(name=f"gemm_remote[{i},{j}]",
                            cost=per_tile.scaled(k_steps),
                            accesses=[(remote_b[(i + j) % k_steps],
                                       AccessMode.R),
                                      (c, AccessMode.RW)],
                            rank=rank)
            t_remote.deps = [gates[(i + j) % k_steps], t_local]
            rt.submit(t_remote)

    for recv, gate in zip(recvs, gates):
        yield recv.done
        rt.complete_external(gate)
    yield rt.wait_all()
    for send in sends:
        yield send.done


def run_gemm(spec: MachineSpec | str = "henri", n: int = 4096,
             tile: int = 128, n_workers: Optional[int] = None,
             polling: Optional[PollingSpec] = None,
             scheduler: str = "eager",
             seed: int = 0,
             cluster: Optional[Cluster] = None,
             nodes: Sequence[int] = (0, 1)) -> GEMMResult:
    """Run distributed GEMM on two simulated nodes; returns §6 metrics.

    Pass an existing *cluster* (and a two-node *nodes* placement) to run
    on a shared fabric — e.g. one rank pair of a larger topology, next
    to other applications (see repro.core.apps).
    """
    if n % 2 or n % tile:
        raise ValueError("n must be even and a multiple of the tile size")
    nodes = tuple(nodes)
    if len(nodes) != 2:
        raise ValueError("GEMM is two-rank: nodes must name 2 nodes")
    if cluster is None:
        machine_spec = get_preset(spec) if isinstance(spec, str) else spec
        cluster = Cluster(machine_spec, n_nodes=max(nodes) + 1, seed=seed)
    world = CommWorld(cluster, comm_placement="far", nodes=nodes)
    runtimes = {}
    for r in (0, 1):
        sched = _make_scheduler(scheduler, polling, world.rank(r).machine)
        runtimes[r] = RuntimeSystem(world, r, n_workers=n_workers,
                                    polling=polling, scheduler=sched)
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()

    snapshots = {r: world.rank(r).machine.counters.snapshot()
                 for r in (0, 1)}
    t0 = cluster.sim.now
    drivers = [cluster.sim.process(
        _driver(r, 1 - r, runtimes[r], comm, n, tile)) for r in (0, 1)]
    cluster.sim.run()
    for d in drivers:
        if not d.ok:
            _ = d.value
    duration = cluster.sim.now - t0
    for rt in runtimes.values():
        rt.shutdown()
    cluster.sim.run()

    stalls = []
    for r in (0, 1):
        machine = world.rank(r).machine
        agg = machine.counters.delta(snapshots[r])
        denom = duration * len(machine.cores)
        if denom > 0:
            stalls.append(agg.mem_stall / denom)
    total_sent = sum(s.bytes_sent for s in comm.send_stats.values())
    total_msgs = sum(s.messages for s in comm.send_stats.values())
    return GEMMResult(
        n=n, tile=tile, n_workers=len(runtimes[0].workers),
        duration=duration,
        sending_bandwidth=comm.sending_bandwidth(),
        stall_fraction=float(np.mean(stalls)) if stalls else 0.0,
        bytes_sent=total_sent, messages=total_msgs,
    )
