"""Distributed task-graph applications for §6 (Figure 10)."""

from repro.runtime.apps.cg import CGResult, run_cg
from repro.runtime.apps.gemm import GEMMResult, run_gemm

__all__ = ["CGResult", "run_cg", "GEMMResult", "run_gemm"]
