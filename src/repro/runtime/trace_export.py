"""Execution-trace export (FxT/ViTE-like, in Chrome-tracing JSON).

StarPU ships FxT tracing viewable in ViTE; the paper's §6 profiling
("using the profiling utility provided by the communication library")
relies on such traces.  This module records task executions and runtime
messages and exports them in the Chrome tracing format
(``chrome://tracing`` / Perfetto), one lane per worker core plus one per
communication thread.

Usage::

    tracer = RuntimeTracer()
    tracer.attach(runtime)         # one or more runtimes
    tracer.attach_comm(comm)       # the RuntimeComm layer
    ... run the application ...
    tracer.export("trace.json")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.export import chrome_trace_json

__all__ = ["TraceEvent", "RuntimeTracer"]


@dataclass
class TraceEvent:
    """One complete-duration event ('X' phase in the Chrome format)."""

    name: str
    category: str         # "task" | "message"
    start: float          # seconds of simulated time
    duration: float
    pid: int              # node id
    tid: int              # core id (or -1 for the comm thread lane)
    args: Dict[str, object] = field(default_factory=dict)

    def to_chrome(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "cat": self.category,
            "ph": "X",
            "ts": self.start * 1e6,        # microseconds
            "dur": self.duration * 1e6,
            "pid": self.pid,
            "tid": self.tid,
            "args": self.args,
        }


class RuntimeTracer:
    """Collects task/message events from runtimes and comm layers."""

    def __init__(self):
        self.events: List[TraceEvent] = []
        self._lanes: Dict[int, str] = {}

    # -- attachment ----------------------------------------------------------
    def attach(self, runtime) -> None:
        """Hook a RuntimeSystem: one trace lane per worker core."""
        self.attach_workers(runtime)

    def attach_comm(self, comm) -> None:
        """Hook a RuntimeComm (or P2PContext) transfer log."""
        original_launch = comm._launch

        def wrapped(send_req, recv_req):
            original_launch(send_req, recv_req)

            def on_done(event):
                if not event.ok:
                    return
                rec = send_req.record
                if rec is None:
                    return
                self.events.append(TraceEvent(
                    name=f"msg {rec.size}B", category="message",
                    start=rec.start, duration=rec.duration,
                    pid=send_req.src, tid=-1,
                    args={"size": rec.size, "dst": send_req.dst,
                          "protocol": rec.protocol}))

            send_req.done.add_callback(on_done)

        comm._launch = wrapped

    def attach_workers(self, runtime) -> None:
        """Per-worker lanes: wrap each worker's execute path."""
        node = runtime.rank_id
        for worker in runtime.workers:
            original = worker._execute
            core = worker.core_id

            def wrapped(task, _orig=original, _core=core):
                start = runtime.sim.now

                def gen():
                    result = yield from _orig(task)
                    self.events.append(TraceEvent(
                        name=task.name, category="task",
                        start=start, duration=runtime.sim.now - start,
                        pid=node, tid=_core,
                        args={"flops": task.cost.flops,
                              "bytes": task.cost.bytes}))
                    return result

                return gen()

            worker._execute = wrapped

    # -- export ----------------------------------------------------------
    def to_chrome_json(self) -> str:
        # Serialisation lives in repro.obs.export; indent=1 preserves
        # this exporter's historical byte-for-byte output.
        return chrome_trace_json([e.to_chrome() for e in self.events],
                                 indent=1)

    def export(self, path: str) -> int:
        """Write the Chrome-tracing JSON; returns the event count."""
        with open(path, "w") as fh:
            fh.write(self.to_chrome_json())
        return len(self.events)

    # -- queries (useful for tests/analysis) ---------------------------------
    def events_by_category(self, category: str) -> List[TraceEvent]:
        return [e for e in self.events if e.category == category]

    def busy_time(self, pid: int, tid: Optional[int] = None) -> float:
        return sum(e.duration for e in self.events
                   if e.pid == pid and (tid is None or e.tid == tid))
