"""Automatic worker-count selection (§8 future work of the paper).

The paper closes with: *"task-based runtime systems could select
(automatically) the optimal number of workers which reduces memory
contention and maximizes performances for the whole program execution"*.

:class:`WorkerAutotuner` implements that proposal as a **stall-band
feedback controller**: every adaptation window it reads the active
workers' memory-stall fraction from the cycle counters (the simulated
``perf`` of Figure 10) and

* **pauses** workers while the stall fraction exceeds ``stall_high`` —
  those cycles are pure queueing on a saturated memory system, so
  shedding workers does not cost compute throughput but frees the
  communication path (PIO co-location, DMA share, runtime-stack
  stalls);
* **resumes** workers while it is below ``stall_low`` and there is work
  queued — headroom means more workers add real throughput.

Within the band it holds.  For memory-bound applications (CG) the
controller settles near the saturation knee, well below the core count;
for compute-bound applications (GEMM) it keeps everyone running.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List, Optional

from repro.runtime.mpi_layer import RuntimeComm
from repro.runtime.runtime import RuntimeSystem

__all__ = ["AutotuneConfig", "AutotuneSample", "WorkerAutotuner"]


@dataclass(frozen=True)
class AutotuneConfig:
    """Stall-band controller parameters."""

    window: float = 30e-3         # seconds per adaptation window; must
                                  # exceed typical task durations so each
                                  # window sees whole-task completions
    step: int = 2                 # workers paused/resumed per move
    min_workers: int = 1
    stall_high: float = 0.40      # pause workers above this stall level
    stall_low: float = 0.20       # resume workers below this level
    min_busy_fraction: float = 0.2   # ignore windows with little work

    def __post_init__(self):
        if self.window <= 0 or self.step < 1 or self.min_workers < 1:
            raise ValueError("invalid autotune configuration")
        if not (0 <= self.stall_low < self.stall_high <= 1):
            raise ValueError("need 0 <= stall_low < stall_high <= 1")


@dataclass
class AutotuneSample:
    """One adaptation-window observation."""

    time: float
    active_workers: int
    stall_fraction: float
    busy_fraction: float
    action: str                   # "pause" | "resume" | "hold" | "idle"


class WorkerAutotuner:
    """Feedback controller over a runtime's active worker count."""

    def __init__(self, runtime: RuntimeSystem,
                 comm: Optional[RuntimeComm] = None,
                 config: Optional[AutotuneConfig] = None):
        self.runtime = runtime
        self.comm = comm            # kept for API symmetry / reporting
        self.config = config if config is not None else AutotuneConfig()
        self.history: List[AutotuneSample] = []
        self._running = False
        self._process = None

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "WorkerAutotuner":
        if self._running:
            raise RuntimeError("autotuner already running")
        self._running = True
        self._process = self.runtime.sim.process(self._control_loop())
        return self

    def stop(self) -> None:
        self._running = False

    @property
    def chosen_workers(self) -> int:
        return self.runtime.active_workers

    # -- measurement ----------------------------------------------------------
    def _window_stats(self, before, window: float):
        """(contention-stall fraction, busy fraction) of active workers.

        Uses the *contention* stall — memory time in excess of the
        uncontended roofline — so an intrinsically memory-bound kernel
        on an idle machine reads 0: only queueing behind other traffic
        triggers adaptation.
        """
        cores = [w.core_id for w in self.runtime.workers if not w.paused]
        if not cores:
            return 0.0, 0.0
        counters = self.runtime.machine.counters
        agg = counters.delta(before, cores=cores)
        busy_capacity = window * len(cores)
        busy_frac = agg.busy / busy_capacity if busy_capacity > 0 else 0.0
        # Median per-worker contention: robust against the few workers
        # whose tasks are pinned behind an inter-socket link (pausing
        # others cannot help those).
        fractions = []
        for core in cores:
            d = counters.delta(before, cores=[core])
            if d.busy > 1e-9:
                fractions.append(d.contention_stall / d.busy)
        if not fractions:
            return 0.0, busy_frac
        fractions.sort()
        stall_frac = fractions[len(fractions) // 2]
        return stall_frac, busy_frac

    # -- control loop ----------------------------------------------------------
    def _control_loop(self) -> Generator:
        cfg = self.config
        runtime = self.runtime
        while self._running and not runtime.stopped:
            before = runtime.machine.counters.snapshot()
            yield cfg.window
            if not self._running or runtime.stopped:
                return
            stall, busy = self._window_stats(before, cfg.window)
            n = runtime.active_workers
            if busy < cfg.min_busy_fraction:
                action = "idle"            # between phases: don't adapt
            elif stall > cfg.stall_high and n > cfg.min_workers:
                runtime.set_active_workers(
                    max(cfg.min_workers, n - cfg.step))
                action = "pause"
            elif stall < cfg.stall_low and n < len(runtime.workers) \
                    and len(runtime.scheduler) > 0:
                runtime.set_active_workers(
                    min(len(runtime.workers), n + cfg.step))
                action = "resume"
            else:
                action = "hold"
            self.history.append(AutotuneSample(
                time=runtime.sim.now,
                active_workers=runtime.active_workers,
                stall_fraction=stall, busy_fraction=busy,
                action=action))
