"""Distributed layer of the task runtime (starpu_mpi-like), §5.2–§5.3.

Messages issued through the runtime traverse a longer software stack
than plain MPI: request list → worker → communication thread → network
library.  :class:`RuntimeComm` wraps the plain point-to-point context
with:

* the per-message **software-stack overhead** (+38 µs on henri, §5.2);
* the **lock-contention delay** caused by polling workers on both the
  sending and receiving node (§5.4);
* the **NUMA-mismatch penalty** when the transmitted data does not live
  on the communication thread's NUMA node (§5.3, Figure 8);

and it accumulates the paper's §6 metric: *sending bandwidth* — bytes
sent divided by the time the sending side spent in sends.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.mpi.comm import CommWorld
from repro.mpi.p2p import P2PContext, Request
from repro.runtime.runtime import RuntimeSystem

__all__ = ["SendStats", "RuntimeComm"]


@dataclass
class SendStats:
    """Per-node accounting of time spent sending (§6's profiling metric)."""

    bytes_sent: float = 0.0
    time_in_send: float = 0.0
    messages: int = 0

    @property
    def sending_bandwidth(self) -> float:
        """Network bandwidth as perceived by the sending node."""
        if self.time_in_send <= 0:
            return 0.0
        return self.bytes_sent / self.time_in_send


class RuntimeComm(P2PContext):
    """Point-to-point messaging through the task runtime's comm thread."""

    def __init__(self, world: CommWorld,
                 runtimes: Dict[int, RuntimeSystem]):
        super().__init__(world)
        self.runtimes = dict(runtimes)
        self.send_stats: Dict[int, SendStats] = {
            node: SendStats() for node in self.runtimes}

    def _runtime(self, node: int) -> RuntimeSystem:
        return self.runtimes[node]

    @staticmethod
    def _memory_pressure(machine) -> float:
        """Mean utilisation over the machine's memory controllers (the
        runtime's shared structures are spread across the node)."""
        utils = [machine.net.utilization(n.controller)
                 for n in machine.numa_nodes]
        return sum(utils) / len(utils)

    def _transfer_job(self, send_req: Request, recv_req: Request,
                      size: int):
        src_rt = self._runtime(send_req.src)
        dst_rt = self._runtime(send_req.dst)
        sim = self.world.sim
        start = sim.now

        # Sender-side software stack: request list, worker handoff, comm
        # thread pickup — plus the lock contention of polling workers and
        # the NUMA penalty if the data is remote to the comm thread.
        # Half the stack runs at submission, half during progression and
        # completion; each half stalls under the memory pressure live at
        # that moment.
        src_rank = self.world.rank(send_req.src)
        extra_send = (src_rt.spec.send_overhead_s
                      + src_rt.scheduler.message_lock_delay())
        comm_numa = src_rank.machine.numa_of_core(src_rank.comm_core).id
        if send_req.buffer.numa_id != comm_numa:
            extra_send += src_rt.spec.numa_mismatch_penalty_s
        yield 0.5 * extra_send * src_rt.spec.stack_inflation(
            self._memory_pressure(src_rank.machine))

        record = yield from super()._transfer_job(send_req, recv_req, size)

        yield 0.5 * extra_send * src_rt.spec.stack_inflation(
            self._memory_pressure(src_rank.machine))

        # Receiver-side stack (detection, request completion, callback).
        dst_rank = self.world.rank(send_req.dst)
        extra_recv = (dst_rt.spec.recv_overhead_s
                      + dst_rt.scheduler.message_lock_delay())
        dst_comm_numa = dst_rank.machine.numa_of_core(dst_rank.comm_core).id
        if recv_req.buffer.numa_id != dst_comm_numa:
            extra_recv += dst_rt.spec.numa_mismatch_penalty_s
        extra_recv *= dst_rt.spec.stack_inflation(
            self._memory_pressure(dst_rank.machine))
        yield extra_recv

        # Stretch the record to cover the runtime stack, so that latency
        # measured through the runtime includes it (like the paper's
        # StarPU ping-pong does).
        record.end = sim.now
        record.start = start
        stats = self.send_stats[send_req.src]
        stats.bytes_sent += size
        stats.time_in_send += record.duration
        stats.messages += 1
        return record

    # -- convenience --------------------------------------------------------
    def reset_stats(self) -> None:
        for stats in self.send_stats.values():
            stats.bytes_sent = 0.0
            stats.time_in_send = 0.0
            stats.messages = 0

    def sending_bandwidth(self, node: Optional[int] = None) -> float:
        """Average §6 sending bandwidth (over one node or all nodes)."""
        if node is not None:
            return self.send_stats[node].sending_bandwidth
        values = [s.sending_bandwidth for s in self.send_stats.values()
                  if s.messages > 0]
        return sum(values) / len(values) if values else 0.0
