"""Task-based runtime system (StarPU-like), §5 and §6 of the paper.

* :mod:`repro.runtime.task` — tasks, data handles, access modes, and
  sequential-consistency dependency inference.
* :mod:`repro.runtime.scheduler` — the central eager queue whose shared
  list + lock are what polling workers hammer (§5.4).
* :mod:`repro.runtime.worker` — workers bound to cores, executing tasks
  through the roofline model, busy-waiting with exponential backoff.
* :mod:`repro.runtime.runtime` — the runtime façade: core reservation
  (one core for the comm thread, one for the main thread, workers on the
  rest, §5.1), task submission and graph execution.
* :mod:`repro.runtime.mpi_layer` — the distributed layer: a dedicated
  communication thread with a request list, adding the §5.2 software
  overhead to every message.
* :mod:`repro.runtime.apps` — distributed CG and GEMM task graphs (§6).
"""

from repro.runtime.task import AccessMode, DataHandle, Task, TaskGraph
from repro.runtime.scheduler import EagerScheduler, PollingSpec
from repro.runtime.stealing import WorkStealingScheduler
from repro.runtime.worker import Worker
from repro.runtime.runtime import RuntimeSystem, RuntimeSpec, runtime_spec_for
from repro.runtime.mpi_layer import RuntimeComm, SendStats
from repro.runtime.autotune import AutotuneConfig, WorkerAutotuner
from repro.runtime.trace_export import RuntimeTracer

__all__ = [
    "AccessMode", "DataHandle", "Task", "TaskGraph",
    "EagerScheduler", "WorkStealingScheduler", "PollingSpec", "Worker",
    "RuntimeSystem", "RuntimeSpec", "runtime_spec_for",
    "RuntimeComm", "SendStats",
    "AutotuneConfig", "WorkerAutotuner", "RuntimeTracer",
]
