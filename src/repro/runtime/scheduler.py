"""Central eager scheduler and the worker-polling contention model.

StarPU's default ``eager`` scheduler keeps submitted tasks in one shared
list; idle workers busy-wait on it with an exponential backoff of ``nop``
instructions (§5.4 of the paper).  The shared list and its lock are the
contention point: the more often workers poll, the longer every *other*
lock acquisition (task push, communication-request handling) takes.

The polling itself is modelled analytically in steady state rather than
event-by-event (a backoff of 2 nops would mean ~10⁸ simulation events per
second of simulated time):

* each idle worker holds the lock for ``lock_hold`` seconds out of every
  ``lock_hold + nops/f`` seconds → a per-worker duty cycle;
* the expected extra wait suffered by one lock acquisition is
  ``lock_hold × Σ duty`` (capped at a queue of all workers), i.e. the
  probability-weighted time spent behind polling holders.

``Paused`` workers (the paper's fourth configuration) have duty 0.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.runtime.task import Task

__all__ = ["PollingSpec", "EagerScheduler"]


@dataclass(frozen=True)
class PollingSpec:
    """Worker busy-wait behaviour (§5.4)."""

    backoff_max_nops: int = 32       # StarPU's default maximum backoff
    paused: bool = False             # workers paused: no polling at all
    nop_seconds: float = 0.4e-9      # one nop at ~2.5 GHz
    lock_hold: float = 20e-9         # time the list lock is held per poll
    locks_per_message: int = 10      # lock acquisitions per runtime message

    def __post_init__(self):
        if self.backoff_max_nops < 1:
            raise ValueError("backoff must be >= 1 nop")

    @property
    def poll_period(self) -> float:
        """Steady-state seconds between two polls of one idle worker."""
        return self.lock_hold + self.backoff_max_nops * self.nop_seconds

    def worker_duty(self) -> float:
        """Fraction of time one idle polling worker holds the lock."""
        if self.paused:
            return 0.0
        return self.lock_hold / self.poll_period


@dataclass
class SchedulerStats:
    pushed: int = 0
    popped: int = 0
    max_queue: int = 0


class EagerScheduler:
    """Shared ready-task list with lock-contention accounting.

    ``pop`` optionally prefers tasks whose dominant data lives on the
    requesting worker's socket (dmda-style data-aware scheduling); pass
    ``locality=False`` for the plain locality-blind eager list.
    """

    def __init__(self, polling: Optional[PollingSpec] = None,
                 machine=None, locality: bool = True,
                 locality_window: int = 16):
        self.polling = polling if polling is not None else PollingSpec()
        self.machine = machine
        self.locality = locality and machine is not None
        self.locality_window = locality_window
        self._ready: Deque[Task] = deque()
        self.stats = SchedulerStats()
        self._idle_pollers = 0

    # -- queue ------------------------------------------------------------
    def push(self, task: Task) -> None:
        self._ready.append(task)
        self.stats.pushed += 1
        self.stats.max_queue = max(self.stats.max_queue, len(self._ready))

    def pop(self, worker_socket: Optional[int] = None,
            core_id: Optional[int] = None) -> Optional[Task]:
        if not self._ready:
            return None
        self.stats.popped += 1
        if self.locality and worker_socket is not None:
            window = min(self.locality_window, len(self._ready))
            for idx in range(window):
                task = self._ready[idx]
                numa = task.data_numa()
                if numa is not None and \
                        self.machine.socket_of_numa(numa) == worker_socket:
                    del self._ready[idx]
                    return task
        return self._ready.popleft()

    def __len__(self) -> int:
        return len(self._ready)

    # -- polling-contention model ----------------------------------------
    def set_idle_pollers(self, n: int) -> None:
        """Number of workers currently idle-polling the list."""
        if n < 0:
            raise ValueError("negative poller count")
        self._idle_pollers = n

    @property
    def idle_pollers(self) -> int:
        return self._idle_pollers

    def lock_wait(self) -> float:
        """Expected extra delay for one lock acquisition right now."""
        duty = self.polling.worker_duty()
        return self.polling.lock_hold * self._idle_pollers * duty

    def message_lock_delay(self) -> float:
        """Extra delay added to one runtime-layer message (§5.4)."""
        return self.lock_wait() * self.polling.locks_per_message
