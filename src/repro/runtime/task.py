"""Tasks, data handles and dependency inference.

Applications are modelled as a task graph (§5.1): each :class:`Task`
declares the data handles it accesses and with which mode; dependencies
are inferred with StarPU's sequential-consistency rule (a reader depends
on the last writer; a writer depends on the last writer *and* all
readers since).
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hardware.memory import Buffer
from repro.kernels.blas import TileCost

__all__ = ["AccessMode", "DataHandle", "Task", "TaskGraph"]

_handle_ids = itertools.count()
_task_ids = itertools.count()


class AccessMode(enum.Enum):
    R = "R"
    W = "W"
    RW = "RW"

    @property
    def writes(self) -> bool:
        return self in (AccessMode.W, AccessMode.RW)

    @property
    def reads(self) -> bool:
        return self in (AccessMode.R, AccessMode.RW)


@dataclass
class DataHandle:
    """A registered piece of data (one buffer per owning rank)."""

    buffer: Buffer = field(repr=False)
    home_rank: int = 0
    label: str = ""
    id: int = field(default_factory=lambda: next(_handle_ids))

    @property
    def size(self) -> int:
        return self.buffer.size

    @property
    def numa_id(self) -> int:
        return self.buffer.numa_id

    def __hash__(self) -> int:
        return self.id


@dataclass
class Task:
    """One codelet execution: a tile cost plus data accesses."""

    name: str
    cost: TileCost
    accesses: Sequence[Tuple[DataHandle, AccessMode]] = ()
    rank: int = 0                      # which node executes it
    id: int = field(default_factory=lambda: next(_task_ids))
    # Filled during execution:
    deps: List["Task"] = field(default_factory=list, repr=False)
    n_waiting: int = 0
    done: bool = False
    start_time: float = -1.0
    end_time: float = -1.0
    # Memoized data_numa (False = not computed yet; None is a valid answer).
    _data_numa: object = field(default=False, repr=False, compare=False)

    @property
    def duration(self) -> float:
        if self.start_time < 0 or self.end_time < 0:
            return 0.0
        return self.end_time - self.start_time

    def data_numa(self) -> Optional[int]:
        """NUMA node of the task's dominant (largest) accessed handle.

        Accesses and buffer placement are fixed once a task is built
        (buffers never migrate), so the answer is memoized — locality
        schedulers ask for it on every queue scan.
        """
        cached = self._data_numa
        if cached is not False:
            return cached
        best = None
        for handle, _mode in self.accesses:
            if best is None or handle.size > best.size:
                best = handle
        result = best.numa_id if best is not None else None
        self._data_numa = result
        return result

    def __hash__(self) -> int:
        return self.id


class TaskGraph:
    """Builds dependencies with the sequential-consistency rule."""

    def __init__(self):
        self.tasks: List[Task] = []
        self._last_writer: Dict[int, Task] = {}
        self._readers_since: Dict[int, List[Task]] = {}

    def add(self, task: Task) -> Task:
        """Insert *task*, inferring dependencies from its accesses."""
        deps: List[Task] = []
        for handle, mode in task.accesses:
            hid = handle.id
            if mode.reads:
                writer = self._last_writer.get(hid)
                if writer is not None:
                    deps.append(writer)
            if mode.writes:
                writer = self._last_writer.get(hid)
                if writer is not None:
                    deps.append(writer)
                deps.extend(self._readers_since.get(hid, ()))
        # Deduplicate while preserving order.
        seen = set()
        task.deps = [d for d in deps
                     if d.id not in seen and not seen.add(d.id)]
        task.n_waiting = len(task.deps)
        for handle, mode in task.accesses:
            hid = handle.id
            if mode.writes:
                self._last_writer[hid] = task
                self._readers_since[hid] = []
            elif mode.reads:
                self._readers_since.setdefault(hid, []).append(task)
        self.tasks.append(task)
        return task

    @property
    def n_tasks(self) -> int:
        return len(self.tasks)

    def roots(self) -> List[Task]:
        return [t for t in self.tasks if t.n_waiting == 0]

    def validate_acyclic(self) -> bool:
        """Sanity check: sequential-consistency graphs are DAGs by
        construction (deps always point to earlier insertions)."""
        order = {t.id: i for i, t in enumerate(self.tasks)}
        return all(order[d.id] < order[t.id]
                   for t in self.tasks for d in t.deps)
