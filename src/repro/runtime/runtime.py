"""Runtime façade: core reservation, submission, graph execution.

Resource usage follows §5.1 of the paper: on each node one core is
reserved for the communication thread, one for the main (submission)
thread, and one worker is bound to every remaining core (or to the first
``n_workers`` of them).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.hardware.presets import MachineSpec
from repro.mpi.comm import CommWorld
from repro.runtime.scheduler import EagerScheduler, PollingSpec
from repro.runtime.task import Task, TaskGraph
from repro.runtime.worker import Worker
from repro.sim import Event

__all__ = ["RuntimeSpec", "runtime_spec_for", "RuntimeSystem"]


@dataclass(frozen=True)
class RuntimeSpec:
    """Software-stack overheads of the task-based runtime (§5.2).

    ``send_overhead_s`` + ``recv_overhead_s`` is the extra one-way
    latency of a runtime-level message compared to plain MPI (the paper
    measures +38 µs on henri, +23 µs on billy, +45 µs on pyxis): the
    message crosses the request list, a worker, and the communication
    thread before reaching the network library.
    """

    send_overhead_s: float = 23e-6
    recv_overhead_s: float = 15e-6
    task_overhead_s: float = 1.5e-6
    # Extra small-message delay when the data and the communication
    # thread sit on different NUMA nodes (§5.3, Figure 8).
    numa_mismatch_penalty_s: float = 2.0e-6
    worker_resume_s: float = 20e-6
    # The runtime's own request-list / packing operations are memory
    # accesses; as the machine's memory system saturates they stall like
    # everything else (§6: the comm thread's stack inflates, which is
    # what collapses CG's sending bandwidth by ~90 % while GEMM — whose
    # memory system stays well below saturation — only loses ~20 %).
    stack_stall_k: float = 14.0      # inflation factor - 1 at saturation
    stack_stall_power: float = 4.0   # convexity of the inflation curve

    @property
    def message_overhead_s(self) -> float:
        return self.send_overhead_s + self.recv_overhead_s

    def stack_inflation(self, rho: float) -> float:
        """Multiplier on the message software stack at memory load *rho*."""
        rho = min(max(rho, 0.0), 1.0)
        return 1.0 + self.stack_stall_k * rho ** self.stack_stall_power


_RUNTIME_SPECS: Dict[str, RuntimeSpec] = {
    # Calibrated to §5.2: latency overhead vs plain MPI.
    "henri": RuntimeSpec(send_overhead_s=23e-6, recv_overhead_s=15e-6),
    "billy": RuntimeSpec(send_overhead_s=14e-6, recv_overhead_s=9e-6),
    "pyxis": RuntimeSpec(send_overhead_s=27e-6, recv_overhead_s=18e-6),
    "bora": RuntimeSpec(send_overhead_s=21e-6, recv_overhead_s=14e-6),
}


def runtime_spec_for(spec: MachineSpec) -> RuntimeSpec:
    """Runtime overhead calibration for a machine preset."""
    return _RUNTIME_SPECS.get(spec.name, RuntimeSpec())


def make_scheduler(name: str, polling: Optional[PollingSpec],
                   machine) -> object:
    """Build a scheduler by name: ``"eager"`` (central list, StarPU's
    default) or ``"lws"`` (locality work stealing)."""
    if name == "eager":
        return EagerScheduler(polling, machine=machine)
    if name == "lws":
        from repro.runtime.stealing import WorkStealingScheduler
        return WorkStealingScheduler(polling, machine=machine)
    raise ValueError(f"unknown scheduler {name!r}; pick 'eager' or 'lws'")


class RuntimeSystem:
    """One node's task runtime (a StarPU instance)."""

    def __init__(self, world: CommWorld, rank: int,
                 n_workers: Optional[int] = None,
                 polling: Optional[PollingSpec] = None,
                 spec: Optional[RuntimeSpec] = None,
                 scheduler: Optional[object] = None):
        """
        ``scheduler`` may be any object implementing the
        :class:`~repro.runtime.scheduler.EagerScheduler` interface, e.g.
        a :class:`~repro.runtime.stealing.WorkStealingScheduler`; by
        default the StarPU-like central eager list is used.
        """
        self.world = world
        self.rank_id = rank
        self.rank = world.rank(rank)
        self.machine = self.rank.machine
        self.sim = world.sim
        self.spec = spec if spec is not None \
            else runtime_spec_for(self.machine.spec)
        self.scheduler = scheduler if scheduler is not None \
            else EagerScheduler(polling, machine=self.machine)

        # Core reservation (§5.1): comm core already taken by the world;
        # the next-to-last available core hosts the main thread.
        reserved = {self.rank.comm_core}
        candidates = [c.id for c in self.machine.cores
                      if c.id not in reserved]
        self.main_core = candidates[-1]
        reserved.add(self.main_core)
        worker_cores = [c for c in candidates if c != self.main_core]
        max_workers = len(worker_cores)
        if n_workers is None:
            n_workers = max_workers
        if not (0 <= n_workers <= max_workers):
            raise ValueError(
                f"n_workers must be in [0, {max_workers}], got {n_workers}")
        self.workers: List[Worker] = [
            Worker(self, self.machine, core)
            for core in worker_cores[:n_workers]]

        self.stopped = False
        self.crashed = False
        self._wake: Event = self.sim.event()
        self._idle_workers = 0
        self._idle_pollers = 0
        self._children: Dict[int, List[Task]] = {}
        self._n_pending = 0
        self._all_done: Optional[Event] = None
        self._started = False

        # Fault injection: a fail-stop of this node must reach the
        # runtime so workers die and waiters fail instead of hanging.
        injector = getattr(world.cluster, "fault_injector", None)
        if injector is not None:
            injector.register_runtime(self)

    # -- lifecycle ---------------------------------------------------------
    def start(self) -> "RuntimeSystem":
        if self._started:
            raise RuntimeError("runtime already started")
        self._started = True
        for worker in self.workers:
            worker.start()
        return self

    def shutdown(self) -> None:
        self.stopped = True
        self._wake_all()

    def crash(self) -> None:
        """Fail-stop the whole node's runtime (fault injection).

        Workers die where they stand (their in-flight tasks are
        requeued, though nothing on this node will ever pop them) and a
        pending :meth:`wait_all` fails with a
        :class:`~repro.faults.reliability.TransportError` so campaigns
        observe a structured failure instead of a hang.
        """
        if self.crashed:
            return
        self.crashed = True
        self.stopped = True
        for worker in self.workers:
            worker.crash()
        self._wake_all()
        if self._all_done is not None and not self._all_done.triggered:
            from repro.faults.reliability import TransportError
            self._all_done.fail(
                TransportError("node failed", src=self.rank_id))

    # -- worker wake bookkeeping -----------------------------------------
    def wake_event(self) -> Event:
        return self._wake

    def _wake_all(self) -> None:
        if not self._wake.triggered:
            self._wake.succeed()
        self._wake = self.sim.event()

    def worker_went_idle(self, polls: bool = True) -> None:
        self._idle_workers += 1
        if polls and not self.scheduler.polling.paused:
            self._idle_pollers += 1
            self.scheduler.set_idle_pollers(self._idle_pollers)

    def worker_woke_up(self, polls: bool = True) -> None:
        self._idle_workers = max(0, self._idle_workers - 1)
        if polls and not self.scheduler.polling.paused:
            self._idle_pollers = max(0, self._idle_pollers - 1)
            self.scheduler.set_idle_pollers(self._idle_pollers)

    @property
    def idle_workers(self) -> int:
        return self._idle_workers

    # -- submission --------------------------------------------------------
    def submit(self, task: Task) -> None:
        """Submit one task (dependencies must already be resolved via a
        :class:`TaskGraph` or set manually)."""
        self._n_pending += 1
        for dep in task.deps:
            if not dep.done:
                self._children.setdefault(dep.id, []).append(task)
        task.n_waiting = sum(1 for d in task.deps if not d.done)
        if task.n_waiting == 0:
            self._make_ready(task)

    def submit_graph(self, graph: TaskGraph) -> None:
        for task in graph.tasks:
            if task.rank == self.rank_id:
                self.submit(task)

    def _make_ready(self, task: Task) -> None:
        self.scheduler.push(task)
        self._wake_all()

    def requeue(self, task: Task) -> None:
        """Return a crashed worker's in-flight task to the ready list.

        The task re-enters through the ordinary push path, so the
        stealing machinery distributes it to a surviving worker; its
        pending/dependency bookkeeping is untouched (it was never
        completed).
        """
        task.start_time = None
        self._make_ready(task)

    def on_task_done(self, task: Task) -> None:
        task.done = True
        self._n_pending -= 1
        for child in self._children.pop(task.id, ()):  # release dependents
            child.n_waiting -= 1
            if child.n_waiting == 0:
                self._make_ready(child)
        if self._n_pending == 0 and self._all_done is not None \
                and not self._all_done.triggered:
            self._all_done.succeed()

    def wait_all(self) -> Event:
        """Event firing when every submitted task has completed."""
        self._all_done = self.sim.event()
        if self._n_pending == 0:
            self._all_done.succeed()
        return self._all_done

    # -- dynamic worker-count control (§8 future work) ----------------------
    def set_active_workers(self, n: int) -> None:
        """Keep *n* workers active, paused/resumed socket-balanced (the
        paper's §8 proposal: 'select the optimal number of workers which
        reduces memory contention').

        The active set interleaves sockets so that reducing workers does
        not strand one socket's data behind the inter-socket link.
        """
        if not (0 <= n <= len(self.workers)):
            raise ValueError(
                f"active workers must be in [0, {len(self.workers)}]")
        by_socket: Dict[int, List] = {}
        for worker in self.workers:
            socket = self.machine.cores[worker.core_id].socket_id
            by_socket.setdefault(socket, []).append(worker)
        interleaved: List = []
        queues = list(by_socket.values())
        idx = 0
        while any(queues):
            queue = queues[idx % len(queues)]
            if queue:
                interleaved.append(queue.pop(0))
            idx += 1
        for i, worker in enumerate(interleaved):
            if i < n:
                worker.resume()
            else:
                worker.pause()

    @property
    def active_workers(self) -> int:
        return sum(1 for w in self.workers if not w.paused)

    # -- external-completion hooks (used by the comm layer) ----------------
    def external_dependency(self) -> Task:
        """A zero-cost placeholder task completed by the comm layer when
        a receive lands; dependents of it are released like any other."""
        from repro.kernels.blas import TileCost
        task = Task(name="recv_gate", cost=TileCost("noop", 0.0, 0.0),
                    rank=self.rank_id)
        return task

    def complete_external(self, task: Task) -> None:
        """Mark an external dependency as done, releasing dependents."""
        self._n_pending += 1  # balance the decrement in on_task_done
        self.on_task_done(task)
