"""Work-stealing scheduler (StarPU's ``lws``-style alternative).

§5.4's polling contention is a property of the *central* eager list: all
idle workers hammer one shared structure.  StarPU's locality work
stealing (``lws``) keeps a deque per worker and steals from topology
neighbours instead — trading the central lock for occasional steal
traffic.

This implementation mirrors the :class:`~repro.runtime.scheduler.EagerScheduler`
interface (``push``/``pop``/``set_idle_pollers``/``message_lock_delay``)
so :class:`~repro.runtime.runtime.RuntimeSystem` accepts either.  The
scheduling behaviour differs:

* ``push`` routes a task to the worker deque with the best data
  locality (same NUMA node, then same socket, then shortest queue);
* ``pop(worker)`` serves the worker's own deque first (LIFO — cache-hot
  tail), then steals from the topologically closest victim (FIFO —
  oldest task, most likely cold anyway);
* idle pollers spin on their *own* empty deque, so the §5.4 lock
  contention on the message path is a fraction of the eager list's
  (only steal attempts touch remote state).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, List, Optional

from repro.obs.context import active_telemetry
from repro.runtime.scheduler import PollingSpec, SchedulerStats
from repro.runtime.task import Task

__all__ = ["WorkStealingScheduler"]


class WorkStealingScheduler:
    """Per-worker deques with locality-aware placement and stealing."""

    # Fraction of the central-list lock contention that steal attempts
    # still impose on the communication path.
    REMOTE_CONTENTION_FACTOR = 0.15

    def __init__(self, polling: Optional[PollingSpec] = None,
                 machine=None, locality: bool = True,
                 locality_window: int = 16):
        self.polling = polling if polling is not None else PollingSpec()
        self.machine = machine
        self.locality = locality and machine is not None
        self.stats = SchedulerStats()
        self._idle_pollers = 0
        self._deques: Dict[int, Deque[Task]] = {}
        self._worker_sockets: Dict[int, int] = {}
        self.steals = 0

    # -- worker registration (done lazily on first pop) --------------------
    def register_worker(self, core_id: int) -> None:
        if core_id not in self._deques:
            self._deques[core_id] = deque()
            if self.machine is not None:
                self._worker_sockets[core_id] = \
                    self.machine.cores[core_id].socket_id

    # -- queue API ----------------------------------------------------------
    def push(self, task: Task) -> None:
        self.stats.pushed += 1
        target = self._best_deque_for(task)
        self._deques[target].append(task)
        self.stats.max_queue = max(self.stats.max_queue, len(self))

    def _best_deque_for(self, task: Task) -> int:
        if not self._deques:
            self.register_worker(-1)   # pre-start submissions
            return -1
        numa = task.data_numa() if self.locality else None
        task_socket = None
        if numa is not None and self.machine is not None:
            task_socket = self.machine.socket_of_numa(numa)

        def score(core_id: int):
            queue_len = len(self._deques[core_id])
            if task_socket is None or core_id < 0:
                return (1, queue_len)
            same_socket = self._worker_sockets.get(core_id) == task_socket
            return (0 if same_socket else 1, queue_len)

        return min(self._deques, key=score)

    def pop(self, worker_socket: Optional[int] = None,
            core_id: Optional[int] = None) -> Optional[Task]:
        # RuntimeSystem's workers call pop(worker_socket=...); accept an
        # explicit core for direct use.
        if core_id is None:
            core_id = self._match_core(worker_socket)
        self.register_worker(core_id)
        own = self._deques[core_id]
        if own:
            self.stats.popped += 1
            return own.pop()            # LIFO: cache-hot tail
        victim = self._pick_victim(core_id)
        if victim is not None:
            self.steals += 1
            self.stats.popped += 1
            tele = active_telemetry()
            if tele is not None and self.machine is not None:
                tele.on_steal(self.machine, core_id)
            return self._deques[victim].popleft()   # FIFO from victim
        # Drain the pre-start deque if any.
        pre = self._deques.get(-1)
        if pre:
            self.stats.popped += 1
            return pre.popleft()
        return None

    def _match_core(self, worker_socket: Optional[int]) -> int:
        # Without an explicit core, pick any registered worker on the
        # socket (RuntimeSystem workers are distinguishable by socket
        # only through this path).
        for core, socket in self._worker_sockets.items():
            if worker_socket is None or socket == worker_socket:
                if self._deques.get(core):
                    return core
        for core in self._deques:
            if core >= 0:
                return core
        return -1

    def _pick_victim(self, thief: int) -> Optional[int]:
        thief_socket = self._worker_sockets.get(thief)
        best = None
        best_key = None
        for core, dq in self._deques.items():
            if core == thief or not dq:
                continue
            same = self._worker_sockets.get(core) == thief_socket
            key = (0 if same else 1, -len(dq))
            if best_key is None or key < best_key:
                best, best_key = core, key
        return best

    def __len__(self) -> int:
        return sum(len(dq) for dq in self._deques.values())

    # -- polling-contention model ----------------------------------------
    def set_idle_pollers(self, n: int) -> None:
        if n < 0:
            raise ValueError("negative poller count")
        self._idle_pollers = n

    @property
    def idle_pollers(self) -> int:
        return self._idle_pollers

    def lock_wait(self) -> float:
        duty = self.polling.worker_duty()
        return (self.polling.lock_hold * self._idle_pollers * duty
                * self.REMOTE_CONTENTION_FACTOR)

    def message_lock_delay(self) -> float:
        return self.lock_wait() * self.polling.locks_per_message
