"""Thread and data placement schemes (§4.3 / Table 1 of the paper).

Three placement decisions shape the interference:

* where the **communication thread** runs — near the NIC (last core of
  the NIC's NUMA node) or far (last core of a NUMA node on the other
  socket, the paper's §4.2 default);
* where the **data** lives — ping-pong buffers and STREAM arrays on the
  NIC's NUMA node (near) or on the opposite socket (far);
* which cores **compute** — bound "respecting the order of the logical
  core numbering" (§4.2), skipping the comm core.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.hardware.topology import Machine

__all__ = ["Placement", "comm_core_for", "data_numa_for",
           "compute_core_ids"]


@dataclass(frozen=True)
class Placement:
    """One cell of the paper's Table 1."""

    data: str            # "near" | "far"
    comm_thread: str     # "near" | "far"

    def __post_init__(self):
        for field_name, value in (("data", self.data),
                                  ("comm_thread", self.comm_thread)):
            if value not in ("near", "far"):
                raise ValueError(f"{field_name} must be 'near' or 'far', "
                                 f"got {value!r}")

    @property
    def key(self) -> str:
        return f"data_{self.data}_thread_{self.comm_thread}"


ALL_PLACEMENTS = (
    Placement("near", "near"),
    Placement("near", "far"),
    Placement("far", "near"),
    Placement("far", "far"),
)


def comm_core_for(machine: Machine, where: str) -> int:
    """Core id for the communication thread (*near*/*far* the NIC)."""
    if where == "near":
        return machine.last_core_of_numa(machine.nic_numa.id).id
    if where == "far":
        return machine.far_numa_from_nic().cores[-1].id
    raise ValueError("where must be 'near' or 'far'")


def data_numa_for(machine: Machine, where: str) -> int:
    """NUMA node id for data placed *near*/*far* from the NIC."""
    if where == "near":
        return machine.nic_numa.id
    if where == "far":
        return machine.far_numa_from_nic().id
    raise ValueError("where must be 'near' or 'far'")


def compute_core_ids(machine: Machine, n: int, comm_core: int) -> List[int]:
    """First *n* cores in logical order, skipping the comm core (§4.2)."""
    if n < 0:
        raise ValueError("n must be >= 0")
    available = [c.id for c in machine.cores if c.id != comm_core]
    if n > len(available):
        raise ValueError(
            f"asked for {n} computing cores but only {len(available)} "
            "are available next to the comm thread")
    return available[:n]
