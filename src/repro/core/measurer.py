"""Incremental campaign measurer: live progress + running aggregates.

fuzzbench splits experiment execution into a dispatcher (runs trials)
and a measurer (folds results into analysis-ready aggregates *as they
land*, not post-hoc).  This module is the measurer half for campaign
journals: the CLI attaches a :class:`CampaignMeasurer` to the journal,
``SweepGuard.run_specs`` calls :meth:`begin_sweep` / :meth:`on_point`
as records land, and the measurer

* folds every per-point metrics delta into a running
  :class:`~repro.obs.metrics.MetricsRegistry` (so mid-campaign metric
  aggregates exist without re-reading the journal);
* tracks per-experiment progress (done / replayed / failed counts and
  mean observed point duration → a pending-work ETA);
* mirrors that state into an atomically-replaced JSON *sidecar* next to
  the journal (``<journal>.progress.json``), which ``repro status``
  reads without touching the journal's ``flock``.

``repro status`` itself (:func:`read_status` / :func:`render_status`)
works on the journal alone too — the sidecar only adds pending/ETA
information a finished journal cannot carry.  Journal reads go through
the tolerant :func:`~repro.analysis.stats.read_journal_entries`, so a
*live* journal (exclusively flocked by the campaign process, possibly
mid-write under ``--jobs N``) is safe to inspect: the advisory lock is
never requested and a half-written trailing line is skipped.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, List, Optional

from repro.analysis.stats import read_journal_entries

__all__ = ["CampaignMeasurer", "sidecar_path", "read_status",
           "render_status"]


def sidecar_path(journal_path) -> Path:
    """The progress sidecar path for a journal."""
    return Path(f"{journal_path}.progress.json")


class CampaignMeasurer:
    """Folds per-point deltas into running aggregates as records land."""

    def __init__(self, journal_path, sidecar: bool = True):
        from repro.obs.metrics import MetricsRegistry
        self.path = Path(journal_path)
        self.sidecar = sidecar_path(journal_path) if sidecar else None
        self.registry = MetricsRegistry()
        # experiment -> running tallies (insertion order = sweep order)
        self._sweeps: Dict[str, dict] = {}

    @classmethod
    def attach(cls, journal, sidecar: bool = True) -> "CampaignMeasurer":
        """Attach a measurer to a :class:`CampaignJournal`."""
        measurer = cls(journal.path, sidecar=sidecar)
        journal.measurer = measurer
        return measurer

    # -- hooks called by SweepGuard.run_specs ------------------------------
    def begin_sweep(self, experiment: str, total: int, trials: int,
                    cached: int, jobs: int) -> None:
        self._sweeps[experiment] = {
            "total": total, "trials": trials, "cached": cached,
            "jobs": max(1, jobs), "done": 0, "replayed": 0,
            "failed": 0, "wall_sum": 0.0, "wall_n": 0,
        }
        self._write_sidecar()

    def on_point(self, experiment: str, key: str, trial: int,
                 status: str, wall_s: Optional[float],
                 metrics: Optional[dict]) -> None:
        sweep = self._sweeps.get(experiment)
        if sweep is None:  # run_point legacy path: no begin_sweep
            sweep = self._sweeps.setdefault(experiment, {
                "total": None, "trials": 1, "cached": 0, "jobs": 1,
                "done": 0, "replayed": 0, "failed": 0,
                "wall_sum": 0.0, "wall_n": 0})
        if status == "failed":
            sweep["failed"] += 1
        elif status == "replayed":
            sweep["replayed"] += 1
        else:
            sweep["done"] += 1
        if wall_s is not None and status != "replayed":
            # Cache replays land in ~0s; folding them into the mean
            # would make the ETA claim the remaining *fresh* points are
            # nearly free.  Only fresh executions inform the estimate
            # (a warm resume with only replays so far reports no ETA).
            sweep["wall_sum"] += wall_s
            sweep["wall_n"] += 1
        if metrics:
            self.registry.merge_delta(metrics)
        self._write_sidecar()

    # -- derived views ------------------------------------------------------
    def pending(self, experiment: str) -> Optional[int]:
        sweep = self._sweeps.get(experiment)
        if sweep is None or sweep["total"] is None:
            return None
        processed = sweep["done"] + sweep["replayed"] + sweep["failed"]
        return max(0, sweep["total"] - processed)

    def eta_seconds(self, experiment: str) -> Optional[float]:
        """Pending work x mean *fresh* point duration / pool width.

        Cache replays are excluded from the mean (see ``on_point``);
        ``None`` until at least one fresh point has landed.
        """
        sweep = self._sweeps.get(experiment)
        pending = self.pending(experiment)
        if sweep is None or pending is None or not sweep["wall_n"]:
            return None
        mean = sweep["wall_sum"] / sweep["wall_n"]
        return pending * mean / sweep["jobs"]

    def progress(self) -> dict:
        """JSON-able snapshot, the sidecar document."""
        experiments = {}
        all_done = True
        for name, sweep in self._sweeps.items():
            pending = self.pending(name)
            eta = self.eta_seconds(name)
            mean = (sweep["wall_sum"] / sweep["wall_n"]
                    if sweep["wall_n"] else None)
            if pending is None or pending > 0:
                all_done = False
            experiments[name] = {
                "total": sweep["total"], "trials": sweep["trials"],
                "jobs": sweep["jobs"], "done": sweep["done"],
                "replayed": sweep["replayed"], "failed": sweep["failed"],
                "pending": pending,
                "mean_point_s": round(mean, 6) if mean is not None
                else None,
                "eta_s": round(eta, 3) if eta is not None else None,
            }
        return {"journal": str(self.path),
                "state": "complete" if experiments and all_done
                else "running",
                "experiments": experiments}

    def _write_sidecar(self) -> None:
        """Atomic replace; no fsync — the sidecar is advisory state and
        must never slow the per-record journal path down."""
        if self.sidecar is None:
            return
        tmp = self.sidecar.with_name(self.sidecar.name + ".tmp")
        try:
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump(self.progress(), fh, indent=1, sort_keys=True)
                fh.write("\n")
            os.replace(tmp, self.sidecar)
        except OSError:  # pragma: no cover - read-only dir etc.
            pass


# ---------------------------------------------------------------------------
# repro status: read-only view over journal + sidecar
# ---------------------------------------------------------------------------

def read_status(journal_path) -> dict:
    """Campaign status from the journal (+ sidecar when present).

    Read-only and lock-free: safe against a campaign currently holding
    the journal's exclusive flock, at any ``--jobs`` level.
    """
    entries = read_journal_entries(journal_path)
    per: Dict[str, dict] = {}
    for e in entries:
        exp = per.setdefault(e["experiment"], {
            "records": 0, "ok": 0, "failed": 0, "trials": 1,
            "points": set()})
        exp["records"] += 1
        trial = int(e.get("trial", 0))
        exp["trials"] = max(exp["trials"], trial + 1)
        exp["points"].add(e["key"])
        if e.get("status") == "ok":
            exp["ok"] += 1
        else:
            exp["failed"] += 1
    progress = None
    sidecar = sidecar_path(journal_path)
    if sidecar.exists():
        try:
            with open(sidecar, "r", encoding="utf-8") as fh:
                progress = json.load(fh)
        except (OSError, json.JSONDecodeError):
            progress = None
    experiments: Dict[str, dict] = {}
    for name, exp in per.items():
        experiments[name] = {
            "records": exp["records"], "ok": exp["ok"],
            "failed": exp["failed"], "trials": exp["trials"],
            "points": len(exp["points"]),
            "cached": None, "pending": None, "eta_s": None,
        }
    if progress:
        for name, info in progress.get("experiments", {}).items():
            row = experiments.setdefault(name, {
                "records": 0, "ok": 0, "failed": 0, "trials": 1,
                "points": 0, "cached": None, "pending": None,
                "eta_s": None})
            row["trials"] = max(row["trials"], info.get("trials") or 1)
            row["cached"] = info.get("replayed")
            row["pending"] = info.get("pending")
            row["eta_s"] = info.get("eta_s")
    return {"journal": str(journal_path),
            "records": len(entries),
            "state": (progress or {}).get("state",
                                          "complete" if entries else "?"),
            "experiments": experiments}


def render_status(status: dict) -> str:
    """Stable, grep-friendly status view (asserted by CI)."""
    from repro.core.report import render_table
    lines = [f"campaign {status['journal']}: {status['records']} "
             f"record(s), {len(status['experiments'])} experiment(s) "
             f"[{status['state']}]"]
    rows: List[list] = []
    for name, row in status["experiments"].items():

        def _fmt(v, suffix=""):
            return "-" if v is None else f"{v}{suffix}"

        eta = row["eta_s"]
        rows.append([name, row["trials"], row["points"], row["ok"],
                     _fmt(row["cached"]), row["failed"],
                     _fmt(row["pending"]),
                     "-" if eta is None else f"~{eta:.1f}s"])
    lines.append(render_table(
        ["experiment", "trials", "points", "done", "cached", "failed",
         "pending", "eta"], rows))
    return "\n".join(lines)
