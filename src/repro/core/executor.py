"""Process-parallel sweep execution with deterministic delta-merge.

A figure is a sweep of independent points — each builds its own
cluster/simulator and shares no state — so the sweep is embarrassingly
parallel.  What is *not* trivially parallel is reproducibility: seeded
runs must produce byte-identical reports, journals and telemetry
exports at any ``--jobs`` level.  This module gets there by
construction rather than by accident:

* every point is described by a picklable :class:`PointSpec` (runner
  referenced by ``"module:function"`` name, plus plain parameters);
* a point executes in :func:`_execute_point` — the *same* function
  whether in-process (``jobs=1``) or in a pool worker — against a
  fresh ambient fault context and a fresh per-point telemetry sink,
  and returns a journal-shaped entry (series rows, metrics delta,
  or a structured failure) plus a telemetry payload;
* the parent merges entries in **submission order**, regardless of
  worker completion order, through the same replay path the campaign
  journal uses (:meth:`~repro.core.campaign.SweepGuard.run_specs`).

Because ``jobs=1`` and ``jobs=N`` share every byte of the per-point
code path — including the per-point-local metric accumulation, whose
float additions would otherwise associate differently — their outputs
are identical by construction, not merely close.

The module also provides the content-addressed point cache:
:func:`point_fingerprint` hashes the runner, the canonicalised
parameters and the :func:`code_version`, so a resumed journal replays
points only while both the parameters and the simulation code are
unchanged.  The ambient fault plan is deliberately *excluded* from the
fingerprint: resuming a faulted campaign without the fault must replay
the completed points and re-run only the failed ones (see
``tests/test_campaign.py``).
"""

from __future__ import annotations

import hashlib
import importlib
import json
import logging
import os
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from repro.analysis.stats import summarize

__all__ = [
    "PointSpec", "SweepExecutor", "executor_context", "active_executor",
    "stat_row", "value_row", "build_env", "code_version",
    "point_fingerprint", "resolve_runner",
]

logger = logging.getLogger(__name__)


@dataclass(frozen=True)
class PointSpec:
    """One sweep point, as pure picklable data.

    ``runner`` names a module-level function (``"pkg.module:func"``)
    taking the ``params`` dict and returning ``{series_key: [row, ...]}``
    where each row is ``[x, median, p10, p90]`` — exactly the shape the
    campaign journal stores and replays.
    """

    experiment: str
    key: str
    runner: str
    params: Dict[str, object] = field(default_factory=dict)


# -- row helpers (runners build journal-shaped rows) ----------------------

def stat_row(x: float, samples) -> List[float]:
    """Row from raw samples — the counterpart of ``Series.add``."""
    stats = summarize(samples)
    return [float(x), stats.median, stats.p10, stats.p90]


def value_row(x: float, value: float) -> List[float]:
    """Row from one deterministic value (degenerate band)."""
    v = float(value)
    return [float(x), v, v, v]


# -- content-addressed point cache ----------------------------------------

# Presentation-only modules: they render results but cannot change what
# a sweep point computes, so editing them must not invalidate caches.
_NON_SEMANTIC = {
    "cli.py", "core/report.py", "core/plotting.py", "core/record.py",
    "core/registry.py", "core/scenario.py", "obs/export.py",
}

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the simulation sources (cache-busting token).

    Overridable through ``REPRO_CODE_VERSION`` so tests (and users who
    know a change is presentation-only) can pin it.
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in _NON_SEMANTIC:
                continue
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _canon(value):
    """Canonicalise a parameter value for hashing.

    Callables hash by qualified name (their repr embeds a memory
    address); dataclass-like objects fall back to ``repr``, which is
    deterministic for frozen spec objects.
    """
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", None)
        return f"{module}:{name}" if name else repr(value)
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def point_fingerprint(spec: PointSpec) -> str:
    """Content hash of one point: runner + params + code version.

    The ambient fault plan and seeds derived from it are deliberately
    not part of the hash — resuming a campaign under a different (or
    no) fault plan replays completed points (see module docstring).
    """
    blob = json.dumps(
        {"runner": spec.runner, "key": spec.key,
         "params": _canon(spec.params), "code": code_version()},
        sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- worker-side execution -------------------------------------------------

def resolve_runner(ref: str) -> Callable[[dict], dict]:
    """``"pkg.module:func"`` -> the function object."""
    module, sep, name = ref.partition(":")
    if not sep:
        raise ValueError(f"runner reference {ref!r} is not 'module:func'")
    return getattr(importlib.import_module(module), name)


def _failure_entry(err: BaseException) -> dict:
    """Structured failure matching ``ExperimentResult.record_failure``."""
    entry: dict = {"error": type(err).__name__, "message": str(err)}
    for attr in ("reason", "src", "dst", "retries", "timeouts"):
        value = getattr(err, attr, None)
        if value is not None:
            entry[attr] = value
    return entry


def build_env() -> dict:
    """Snapshot the ambient contexts a point must run under, as data.

    Captured in the parent and re-installed around every point —
    in-process and in pool workers alike — so both run against
    identical, *fresh* fault and telemetry state.
    """
    env: dict = {}
    from repro.faults.context import active_faults
    installed = active_faults()
    if installed is not None:
        from dataclasses import asdict
        env["fault_plan"] = installed.plan.to_dict()
        rel = installed.reliability
        env["reliability"] = asdict(rel) if rel is not None else None
    from repro.obs.context import active_telemetry
    tele = active_telemetry()
    if tele is not None:
        env["telemetry"] = {"trace": tele.tracer is not None,
                            "metrics": tele.registry is not None,
                            "run": tele.run_label}
    return env


def _execute_point(task: Tuple[PointSpec, dict]) -> dict:
    """Run one sweep point under its environment; never raises for a
    point-level failure (returns a ``"failed"`` entry instead).

    This is the single execution path for every ``--jobs`` level: a
    fresh per-point telemetry sink collects the point's events and
    metric deltas locally, so the parent-side merge is associativity-
    safe (identical floats whether or not a pool is involved).
    """
    spec, env = task
    from repro.faults.context import point_scope
    entry: dict = {"key": spec.key}
    with ExitStack() as stack:
        fault_env = env.get("fault_plan")
        if fault_env is not None:
            from repro.faults import (FaultPlan, ReliabilityConfig,
                                      fault_context)
            rel_env = env.get("reliability")
            reliability = ReliabilityConfig(**rel_env) \
                if rel_env is not None else None
            stack.enter_context(
                fault_context(FaultPlan.from_dict(fault_env), reliability))
        tele = None
        tele_env = env.get("telemetry")
        if tele_env is not None:
            from repro.obs.telemetry import telemetry_context
            tele = stack.enter_context(telemetry_context(
                trace=tele_env["trace"], metrics=tele_env["metrics"]))
            tele.set_run(tele_env["run"])
        stack.enter_context(point_scope(spec.experiment, spec.key))
        try:
            rows = resolve_runner(spec.runner)(dict(spec.params))
        except Exception as err:
            entry["status"] = "failed"
            entry["failure"] = _failure_entry(err)
        else:
            entry["status"] = "ok"
            entry["series"] = rows
        if tele is not None:
            if tele.registry is not None:
                entry["metrics"] = tele.registry.delta({})
            entry["obs"] = tele.point_payload()
    return entry


def _worker_init() -> None:
    """Pool-worker initializer: forked children inherit the parent's
    ambient fault/telemetry stacks (with clusters bound to the parent's
    sink); clear them so points install only what their env says."""
    from repro.faults import context as fault_ctx
    fault_ctx._STACK.clear()          # noqa: SLF001
    fault_ctx._POINT_SCOPE.clear()    # noqa: SLF001
    from repro.obs import context as obs_ctx
    obs_ctx._STACK.clear()            # noqa: SLF001
    obs_ctx._ACTIVE = None            # noqa: SLF001


# -- the executor ----------------------------------------------------------

class SweepExecutor:
    """Maps points over a process pool, yielding in submission order.

    ``jobs <= 1`` stays in-process (no pool, no pickling) but still
    routes through :func:`_execute_point` — the serial path is the
    parallel path with a pool of zero.  ``jobs == 0`` at construction
    means "one per CPU".
    """

    def __init__(self, jobs: int = 1):
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, jobs)
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx,
                initializer=_worker_init)
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- mapping -----------------------------------------------------------
    def map_points(self, tasks: Iterable[Tuple[PointSpec, dict]]
                   ) -> Iterator[dict]:
        """Execute every ``(spec, env)`` task; yield entries in task
        order.  A crashed worker process (as opposed to a point that
        merely raised) surfaces as a ``RuntimeError``."""
        tasks = list(tasks)
        if self.jobs <= 1:
            return (_execute_point(task) for task in tasks)
        return self._map_parallel(tasks)

    def _map_parallel(self, tasks: List[Tuple[PointSpec, dict]]
                      ) -> Iterator[dict]:
        pool = self._ensure_pool()
        # chunksize=1: points are seconds-long simulations, so per-task
        # dispatch overhead is noise and small chunks keep the pool
        # balanced when point durations are skewed.
        results = pool.map(_execute_point, tasks, chunksize=1)
        while True:
            try:
                entry = next(results)
            except StopIteration:
                return
            except BrokenProcessPool as err:
                self.close()
                keys = [spec.key for spec, _env in tasks]
                raise RuntimeError(
                    f"sweep worker process died while executing "
                    f"{keys!r}; the sweep cannot be merged "
                    f"deterministically — re-run (a campaign journal "
                    f"resumes the completed points)") from err
            yield entry


# -- ambient executor context (mirrors faults/telemetry) -------------------

_EXECUTORS: List[SweepExecutor] = []


def active_executor() -> Optional[SweepExecutor]:
    """The innermost installed executor, or ``None`` (= serial)."""
    return _EXECUTORS[-1] if _EXECUTORS else None


@contextmanager
def executor_context(jobs: int):
    """Install a :class:`SweepExecutor` for every sweep run inside the
    ``with`` block (consumed by ``SweepGuard.run_specs``)."""
    executor = SweepExecutor(jobs=jobs)
    _EXECUTORS.append(executor)
    try:
        yield executor
    finally:
        if _EXECUTORS and _EXECUTORS[-1] is executor:
            _EXECUTORS.pop()
        elif executor in _EXECUTORS:  # pragma: no cover - unbalanced
            _EXECUTORS.remove(executor)
        executor.close()
