"""Process-parallel sweep execution with deterministic delta-merge.

A figure is a sweep of independent points — each builds its own
cluster/simulator and shares no state — so the sweep is embarrassingly
parallel.  What is *not* trivially parallel is reproducibility: seeded
runs must produce byte-identical reports, journals and telemetry
exports at any ``--jobs`` level.  This module gets there by
construction rather than by accident:

* every point is described by a picklable :class:`PointSpec` (runner
  referenced by ``"module:function"`` name, plus plain parameters);
* a point executes in :func:`_execute_point` — the *same* function
  whether in-process (``jobs=1``) or in a pool worker — against a
  fresh ambient fault context and a fresh per-point telemetry sink,
  and returns a journal-shaped entry (series rows, metrics delta,
  or a structured failure) plus a telemetry payload;
* the parent merges entries in **submission order**, regardless of
  worker completion order, through the same replay path the campaign
  journal uses (:meth:`~repro.core.campaign.SweepGuard.run_specs`).

Because ``jobs=1`` and ``jobs=N`` share every byte of the per-point
code path — including the per-point-local metric accumulation, whose
float additions would otherwise associate differently — their outputs
are identical by construction, not merely close.

The module also provides the content-addressed point cache:
:func:`point_fingerprint` hashes the runner, the canonicalised
parameters and the :func:`code_version`, so a resumed journal replays
points only while both the parameters and the simulation code are
unchanged.  The ambient fault plan is deliberately *excluded* from the
fingerprint: resuming a faulted campaign without the fault must replay
the completed points and re-run only the failed ones (see
``tests/test_campaign.py``).

Failure semantics (docs/PARALLEL.md "Failure semantics"): the parallel
path is *self-healing*.  Each point gets an optional wall-clock
deadline; a timed-out or crashed point is retried with exponential
backoff (the transport's :func:`~repro.faults.reliability.backoff_delay`
policy) under the **same** derived point seed, so a successful retry is
byte-identical to a first-try success.  A ``BrokenProcessPool`` rebuilds
the pool and requeues only the in-flight points — completed entries are
never recomputed.  Exhausted retries produce a structured *harness*
failure entry (``failure.harness = True``) instead of aborting the
sweep, unless :attr:`ExecutionPolicy.keep_going` is off.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import logging
import os
import time
from bisect import insort
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
from concurrent.futures import wait as _futures_wait
from concurrent.futures.process import BrokenProcessPool
from contextlib import ExitStack, contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Callable, Dict, Iterable, Iterator, List, Optional,
                    Tuple)

from repro.analysis.stats import summarize
from repro.faults.reliability import backoff_delay as _backoff

__all__ = [
    "PointSpec", "ExecutionPolicy", "PointTimeout", "WorkerCrash",
    "SweepExecutor", "executor_context", "active_executor",
    "stat_row", "value_row", "build_env", "code_version",
    "point_fingerprint", "resolve_runner",
]

logger = logging.getLogger(__name__)


class WorkerCrash(RuntimeError):
    """A pool worker process died while the point was in flight."""


class PointTimeout(RuntimeError):
    """A point exceeded its wall-clock deadline and its worker was killed."""


@dataclass(frozen=True)
class ExecutionPolicy:
    """Timeout / retry / degradation policy for a parallel sweep.

    ``point_timeout`` is a wall-clock deadline in seconds per point
    (``None`` = no deadline; only enforceable with ``jobs >= 2``, the
    serial path cannot preempt itself).  A timed-out or crashed point is
    retried up to ``point_retries`` times with jittered exponential
    backoff.  With ``keep_going`` (the default) an exhausted point
    degrades to a structured journal failure entry; without it, the
    sweep raises instead, reproducing the pre-self-healing abort.
    """

    point_timeout: Optional[float] = None
    point_retries: int = 2
    keep_going: bool = True
    backoff_base_s: float = 0.5
    backoff_factor: float = 2.0
    backoff_cap_s: float = 30.0
    # Multi-seed trials: every sweep point fans out into ``trials``
    # seeded repetitions (consumed by ``SweepGuard.run_specs``).
    trials: int = 1

    def __post_init__(self) -> None:
        if self.point_timeout is not None and self.point_timeout <= 0:
            raise ValueError("point_timeout must be > 0")
        if self.point_retries < 0:
            raise ValueError("point_retries must be >= 0")
        if self.backoff_base_s < 0:
            raise ValueError("backoff_base_s must be >= 0")
        if self.trials < 1:
            raise ValueError("trials must be >= 1")


@dataclass(frozen=True)
class PointSpec:
    """One sweep point, as pure picklable data.

    ``runner`` names a module-level function (``"pkg.module:func"``)
    taking the ``params`` dict and returning ``{series_key: [row, ...]}``
    where each row is ``[x, median, p10, p90]`` — exactly the shape the
    campaign journal stores and replays.

    ``trial`` is the multi-seed repetition index.  Trial 0 executes
    exactly as a pre-trial point did (same scope, same fingerprint, no
    extra ambient state), so ``--trials 1`` campaigns stay
    byte-identical; trial >= 1 runs under a derived trial seed and a
    per-trial point scope.
    """

    experiment: str
    key: str
    runner: str
    params: Dict[str, object] = field(default_factory=dict)
    trial: int = 0

    @property
    def scope_key(self) -> str:
        """The journal/scope label: the key, trial-tagged past trial 0."""
        return self.key if self.trial == 0 else f"{self.key}#t{self.trial}"


# -- row helpers (runners build journal-shaped rows) ----------------------

def stat_row(x: float, samples) -> List[float]:
    """Row from raw samples — the counterpart of ``Series.add``."""
    stats = summarize(samples)
    return [float(x), stats.median, stats.p10, stats.p90]


def value_row(x: float, value: float) -> List[float]:
    """Row from one deterministic value (degenerate band)."""
    v = float(value)
    return [float(x), v, v, v]


# -- content-addressed point cache ----------------------------------------

# Presentation-only modules: they render results but cannot change what
# a sweep point computes, so editing them must not invalidate caches.
_NON_SEMANTIC = {
    "cli.py", "core/report.py", "core/plotting.py", "core/record.py",
    "core/registry.py", "core/scenario.py", "obs/export.py",
    "core/measurer.py", "core/htmlreport.py",
}

_CODE_VERSION: Optional[str] = None


def code_version() -> str:
    """Hash of the simulation sources (cache-busting token).

    Overridable through ``REPRO_CODE_VERSION`` so tests (and users who
    know a change is presentation-only) can pin it.
    """
    global _CODE_VERSION
    override = os.environ.get("REPRO_CODE_VERSION")
    if override:
        return override
    if _CODE_VERSION is None:
        root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(root.rglob("*.py")):
            rel = path.relative_to(root).as_posix()
            if rel in _NON_SEMANTIC:
                continue
            digest.update(rel.encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _CODE_VERSION = digest.hexdigest()[:16]
    return _CODE_VERSION


def _canon(value):
    """Canonicalise a parameter value for hashing.

    Callables hash by qualified name (their repr embeds a memory
    address); dataclass-like objects fall back to ``repr``, which is
    deterministic for frozen spec objects.
    """
    if callable(value):
        module = getattr(value, "__module__", "?")
        name = getattr(value, "__qualname__", None)
        return f"{module}:{name}" if name else repr(value)
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if value is None or isinstance(value, (str, int, float, bool)):
        return value
    return repr(value)


def point_fingerprint(spec: PointSpec) -> str:
    """Content hash of one point: runner + params + code version.

    The ambient fault plan and seeds derived from it are deliberately
    not part of the hash — resuming a campaign under a different (or
    no) fault plan replays completed points (see module docstring).

    The trial index enters the hash only past trial 0, so trial-0
    fingerprints are stable against pre-trial journals (cache fp
    stability) while each extra trial caches independently.
    """
    payload = {"runner": spec.runner, "key": spec.key,
               "params": _canon(spec.params), "code": code_version()}
    if spec.trial:
        payload["trial"] = spec.trial
    blob = json.dumps(payload, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# -- worker-side execution -------------------------------------------------

def resolve_runner(ref: str) -> Callable[[dict], dict]:
    """``"pkg.module:func"`` -> the function object."""
    module, sep, name = ref.partition(":")
    if not sep:
        raise ValueError(f"runner reference {ref!r} is not 'module:func'")
    return getattr(importlib.import_module(module), name)


def _failure_entry(err: BaseException) -> dict:
    """Structured failure matching ``ExperimentResult.record_failure``."""
    entry: dict = {"error": type(err).__name__, "message": str(err)}
    for attr in ("reason", "src", "dst", "retries", "timeouts"):
        value = getattr(err, attr, None)
        if value is not None:
            entry[attr] = value
    return entry


def build_env() -> dict:
    """Snapshot the ambient contexts a point must run under, as data.

    Captured in the parent and re-installed around every point —
    in-process and in pool workers alike — so both run against
    identical, *fresh* fault and telemetry state.
    """
    env: dict = {}
    from repro.faults.context import active_faults
    installed = active_faults()
    if installed is not None:
        from dataclasses import asdict
        env["fault_plan"] = installed.plan.to_dict()
        rel = installed.reliability
        env["reliability"] = asdict(rel) if rel is not None else None
    from repro.obs.context import active_telemetry
    tele = active_telemetry()
    if tele is not None:
        env["telemetry"] = {"trace": tele.tracer is not None,
                            "metrics": tele.registry is not None,
                            "run": tele.run_label}
    from repro.sim import invariants as _inv
    if _inv.ENABLED:
        env["check_invariants"] = {"sample": _inv.SAMPLE_EVERY}
    return env


def _execute_point(task: Tuple[PointSpec, dict]) -> dict:
    """Run one sweep point under its environment; never raises for a
    point-level failure (returns a ``"failed"`` entry instead).

    This is the single execution path for every ``--jobs`` level: a
    fresh per-point telemetry sink collects the point's events and
    metric deltas locally, so the parent-side merge is associativity-
    safe (identical floats whether or not a pool is involved).
    """
    spec, env = task
    from repro.faults.chaos import maybe_chaos
    from repro.faults.context import (derive_point_seed, point_scope,
                                      trial_scope)
    maybe_chaos(spec.experiment, spec.scope_key)
    entry: dict = {"key": spec.key}
    t0 = time.perf_counter()
    with ExitStack() as stack:
        fault_env = env.get("fault_plan")
        if fault_env is not None:
            from repro.faults import (FaultPlan, ReliabilityConfig,
                                      fault_context)
            rel_env = env.get("reliability")
            reliability = ReliabilityConfig(**rel_env) \
                if rel_env is not None else None
            stack.enter_context(
                fault_context(FaultPlan.from_dict(fault_env), reliability))
        tele = None
        tele_env = env.get("telemetry")
        if tele_env is not None:
            from repro.obs.telemetry import telemetry_context
            tele = stack.enter_context(telemetry_context(
                trace=tele_env["trace"], metrics=tele_env["metrics"]))
            tele.set_run(tele_env["run"])
        inv_env = env.get("check_invariants")
        if inv_env is not None:
            from repro.sim.invariants import invariant_checks
            stack.enter_context(invariant_checks(inv_env["sample"]))
        # The point scope keys fault-injector seed derivation; the
        # trial-tagged key gives every trial its own injection draw.
        # Trial >= 1 additionally installs a derived trial seed so the
        # cluster's measurement-noise RNG varies per trial; trial 0
        # installs nothing and stays byte-identical to a pre-trial run.
        stack.enter_context(point_scope(spec.experiment, spec.scope_key))
        if spec.trial:
            stack.enter_context(trial_scope(derive_point_seed(
                spec.trial, spec.experiment, spec.key)))
        try:
            rows = resolve_runner(spec.runner)(dict(spec.params))
        except Exception as err:
            entry["status"] = "failed"
            entry["failure"] = _failure_entry(err)
        else:
            entry["status"] = "ok"
            entry["series"] = rows
        if tele is not None:
            if tele.registry is not None:
                entry["metrics"] = tele.registry.delta({})
            entry["obs"] = tele.point_payload()
    # Wall-clock cost of the point, for the live measurer's ETA only.
    # The guard pops it before journaling — it must never reach an
    # artifact, or byte-identity across machines/runs would break.
    entry["wall"] = time.perf_counter() - t0
    return entry


def _worker_init() -> None:
    """Pool-worker initializer: forked children inherit the parent's
    ambient fault/telemetry stacks (with clusters bound to the parent's
    sink); clear them so points install only what their env says."""
    from repro.faults import context as fault_ctx
    fault_ctx._STACK.clear()          # noqa: SLF001
    fault_ctx._POINT_SCOPE.clear()    # noqa: SLF001
    fault_ctx._TRIAL_SEEDS.clear()    # noqa: SLF001
    from repro.obs import context as obs_ctx
    obs_ctx._STACK.clear()            # noqa: SLF001
    obs_ctx._ACTIVE = None            # noqa: SLF001


# -- the executor ----------------------------------------------------------

def _obs_inc(name: str, n: float = 1.0) -> None:
    """Parent-side executor counter (only materialised when hit, so
    crash-free runs export byte-identical metrics at any jobs level)."""
    from repro.obs.context import active_telemetry
    tele = active_telemetry()
    if tele is not None and tele.registry is not None:
        tele.registry.counter(name).inc(n)


def _retry_jitter(spec: PointSpec, attempt: int) -> float:
    """Deterministic backoff jitter in ``[0, 0.25)`` for a retry.

    Derived from the point identity and attempt number (not the wall
    clock), so a re-run of the same degraded sweep retries on the same
    schedule.  Jitter only spreads wall-clock submissions; it cannot
    affect results — those depend solely on the point seed.
    """
    from repro.faults.context import derive_point_seed
    seed = derive_point_seed(attempt, spec.experiment, spec.key)
    return (seed % 997) / 997.0 * 0.25


class SweepExecutor:
    """Maps points over a process pool, yielding in submission order.

    ``jobs <= 1`` stays in-process (no pool, no pickling) but still
    routes through :func:`_execute_point` — the serial path is the
    parallel path with a pool of zero.  ``jobs == 0`` at construction
    means "one per CPU".

    The parallel path is a submission-order futures loop (window =
    ``jobs``) rather than ``pool.map``: each in-flight point carries a
    deadline, crashes and timeouts requeue the affected points with
    backoff, and results are buffered per index and yielded contiguously
    — the merge order is identical whatever the completion (or retry)
    order was.
    """

    def __init__(self, jobs: int = 1,
                 policy: Optional[ExecutionPolicy] = None):
        jobs = int(jobs)
        if jobs == 0:
            jobs = os.cpu_count() or 1
        self.jobs = max(1, jobs)
        self.policy = policy if policy is not None else ExecutionPolicy()
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle ----------------------------------------------------
    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context()
            self._pool = ProcessPoolExecutor(
                max_workers=self.jobs, mp_context=ctx,
                initializer=_worker_init)
        return self._pool

    def close(self, graceful: bool = True) -> None:
        """Shut the pool down.

        On the clean path this *waits* for workers: tearing them down
        mid-write (``wait=False``) can orphan a worker inside a
        half-finished journal append or telemetry pickle.  Error paths
        pass ``graceful=False`` to stay non-blocking — the pool is
        already broken or about to be killed.
        """
        if self._pool is not None:
            self._pool.shutdown(wait=graceful, cancel_futures=True)
            self._pool = None

    def _kill_workers(self) -> None:
        """Terminate every pool worker and discard the pool.

        A running task cannot be cancelled through the executor API, so
        enforcing a deadline means killing the worker under it; the pool
        is rebuilt lazily on the next submission.
        """
        pool = self._pool
        if pool is None:
            return
        for proc in list(getattr(pool, "_processes", {}).values()):
            proc.terminate()
        pool.shutdown(wait=False, cancel_futures=True)
        self._pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, exc_type, *exc) -> None:
        self.close(graceful=exc_type is None)

    # -- mapping -----------------------------------------------------------
    def map_points(self, tasks: Iterable[Tuple[PointSpec, dict]]
                   ) -> Iterator[dict]:
        """Execute every ``(spec, env)`` task; yield entries in task
        order.  Worker crashes and point timeouts are retried per
        :attr:`policy`; a point that exhausts its retries yields a
        structured harness-failure entry (``keep_going``) or raises."""
        tasks = list(tasks)
        if self.jobs <= 1:
            return (_execute_point(task) for task in tasks)
        return self._map_parallel(tasks)

    def _map_parallel(self, tasks: List[Tuple[PointSpec, dict]]
                      ) -> Iterator[dict]:
        policy = self.policy
        n = len(tasks)
        # (ready_at, index) pairs awaiting (re)submission, kept sorted;
        # the initial load is all-ready in index order, so first
        # submissions happen in task order.
        waiting: List[Tuple[float, int]] = [(0.0, i) for i in range(n)]
        inflight: Dict[object, int] = {}     # future -> task index
        deadlines: Dict[object, float] = {}  # future -> monotonic deadline
        failures = [0] * n                   # failed attempts per point
        buffered: Dict[int, dict] = {}       # index -> finished entry
        next_emit = 0

        def submit_ready() -> None:
            now = time.monotonic()
            i = 0
            while i < len(waiting) and len(inflight) < self.jobs:
                ready_at, idx = waiting[i]
                if ready_at > now:
                    break  # sorted: nothing later is ready either
                waiting.pop(i)
                try:
                    future = self._ensure_pool().submit(
                        _execute_point, tasks[idx])
                except BrokenProcessPool:
                    # A previously-submitted point already killed the
                    # pool and its futures are not harvested yet:
                    # requeue this point untouched and let the wait
                    # loop surface the crash for the in-flight ones.
                    insort(waiting, (ready_at, idx))
                    self.close(graceful=False)
                    break
                inflight[future] = idx
                if policy.point_timeout is not None:
                    # Window == pool width, so a submitted task starts
                    # (approximately) immediately; deadline-from-submit
                    # is the per-point wall-clock deadline.
                    deadlines[future] = time.monotonic() \
                        + policy.point_timeout
            return

        def charge(idx: int, err: BaseException) -> None:
            """Count a failed attempt; requeue with backoff or exhaust."""
            failures[idx] += 1
            spec = tasks[idx][0]
            if failures[idx] > policy.point_retries:
                if not policy.keep_going:
                    self.close(graceful=False)
                    raise RuntimeError(
                        f"sweep point {spec.key!r} failed after "
                        f"{failures[idx]} attempt(s): {err} "
                        f"(keep_going is off; a campaign journal resumes "
                        f"the completed points)") from err
                _obs_inc("executor.points_failed")
                logger.warning("point %s/%s failed permanently after "
                               "%d attempt(s): %s", spec.experiment,
                               spec.key, failures[idx], err)
                buffered[idx] = {
                    "key": spec.key, "status": "failed",
                    "failure": {"error": type(err).__name__,
                                "message": str(err), "harness": True,
                                "attempts": failures[idx]}}
            else:
                _obs_inc("executor.point_retries")
                delay = _backoff(policy.backoff_base_s, failures[idx],
                                 policy.backoff_factor,
                                 policy.backoff_cap_s,
                                 _retry_jitter(spec, failures[idx]))
                logger.info("retrying point %s/%s in %.2fs (attempt %d "
                            "failed: %s)", spec.experiment, spec.key,
                            delay, failures[idx], err)
                insort(waiting, (time.monotonic() + delay, idx))

        def harvest(future) -> Optional[dict]:
            """Entry of a done future, or ``None`` if it died with it."""
            if future.done() and not future.cancelled():
                try:
                    return future.result()
                except BaseException:  # noqa: BLE001 - crash/teardown
                    return None
            return None

        while next_emit < n:
            submit_ready()
            if not inflight:
                if not waiting:  # pragma: no cover - defensive
                    raise RuntimeError("sweep stalled with points missing")
                time.sleep(max(0.0, waiting[0][0] - time.monotonic()))
                continue

            wait_s = None
            if deadlines:
                wait_s = max(0.0, min(deadlines.values()) - time.monotonic())
            if waiting and len(inflight) < self.jobs:
                wake = max(0.0, waiting[0][0] - time.monotonic())
                wait_s = wake if wait_s is None else min(wait_s, wake)
            done, _ = _futures_wait(list(inflight), timeout=wait_s,
                                    return_when=FIRST_COMPLETED)

            crashed = False
            for future in done:
                idx = inflight.pop(future)
                deadlines.pop(future, None)
                try:
                    entry = future.result()
                except BrokenProcessPool:
                    crashed = True
                    charge(idx, WorkerCrash(
                        f"worker process died while executing "
                        f"{tasks[idx][0].key!r}"))
                except Exception as err:  # unpicklable result, teardown
                    charge(idx, WorkerCrash(
                        f"point {tasks[idx][0].key!r} was lost to a "
                        f"harness error: {type(err).__name__}: {err}"))
                else:
                    # No per-entry attempt annotation: a retried success
                    # must stay byte-identical to a first-try success.
                    buffered[idx] = entry

            if crashed:
                # The pool is broken: every other in-flight future is
                # dead too.  Drain any that still carry a result, charge
                # the rest (the culprit cannot be attributed, and with
                # window == jobs they were all running), rebuild the
                # pool lazily, and carry on — completed entries are
                # already buffered and are never recomputed.
                _obs_inc("executor.worker_crashes")
                doomed = list(inflight.items())
                inflight.clear()
                deadlines.clear()
                self.close(graceful=False)
                for future, idx in doomed:
                    entry = harvest(future)
                    if entry is not None:
                        buffered[idx] = entry
                    else:
                        charge(idx, WorkerCrash(
                            f"worker pool broke while "
                            f"{tasks[idx][0].key!r} was in flight"))
            elif deadlines:
                now = time.monotonic()
                expired = {f for f, dl in deadlines.items()
                           if dl <= now and not f.done()}
                if expired:
                    # Hung workers cannot be cancelled: kill the pool,
                    # charge the expired points a timeout, and requeue
                    # the innocent in-flight bystanders at no charge.
                    victims = []
                    bystanders = []
                    for future, idx in list(inflight.items()):
                        entry = harvest(future)
                        if entry is not None:
                            buffered[idx] = entry
                        elif future in expired:
                            victims.append(idx)
                        else:
                            bystanders.append(idx)
                    inflight.clear()
                    deadlines.clear()
                    self._kill_workers()
                    _obs_inc("executor.point_timeouts", float(len(victims)))
                    for idx in victims:
                        charge(idx, PointTimeout(
                            f"point {tasks[idx][0].key!r} exceeded its "
                            f"{policy.point_timeout:g}s deadline"))
                    now = time.monotonic()
                    for idx in bystanders:
                        insort(waiting, (now, idx))

            while next_emit in buffered:
                yield buffered.pop(next_emit)
                next_emit += 1


# -- ambient executor context (mirrors faults/telemetry) -------------------

_EXECUTORS: List[SweepExecutor] = []


def active_executor() -> Optional[SweepExecutor]:
    """The innermost installed executor, or ``None`` (= serial)."""
    return _EXECUTORS[-1] if _EXECUTORS else None


@contextmanager
def executor_context(jobs: int, policy: Optional[ExecutionPolicy] = None):
    """Install a :class:`SweepExecutor` for every sweep run inside the
    ``with`` block (consumed by ``SweepGuard.run_specs``)."""
    executor = SweepExecutor(jobs=jobs, policy=policy)
    _EXECUTORS.append(executor)
    try:
        yield executor
    finally:
        if _EXECUTORS and _EXECUTORS[-1] is executor:
            _EXECUTORS.pop()
        elif executor in _EXECUTORS:  # pragma: no cover - unbalanced
            _EXECUTORS.remove(executor)
        executor.close()
