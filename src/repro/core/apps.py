"""Multi-application co-scheduling on one simulated cluster.

An :class:`Application` is a unit of co-scheduled work: its own
rank→node placement (a :class:`~repro.mpi.comm.CommWorld` over a node
subset), its own communication pattern, and its own telemetry identity —
every transfer it performs is labelled with the app's name (metric
``app=`` labels, ``TransferSample.run``), so journals and reports
attribute fabric traffic per application.

Several applications run *simultaneously*: :func:`run_apps` starts all
their processes on the shared simulator and drives one ``sim.run()``, so
their flows contend for fabric links inside the same fluid solve — the
cross-application interference channel of "Modeling and Analysis of
Application Interference on Dragonfly+".

Patterns (all recycle buffers, NetPIPE-style):

``pingpong``
    Ranks are taken pairwise ``(0,1), (2,3), ...``; each pair ping-pongs
    ``reps`` times at ``size`` bytes.  The canonical victim/probe.
``ring``
    Every rank streams ``reps`` messages to its ring successor, all
    ranks concurrently — a shift exchange saturating many links at once.
``uniform``
    Every rank sends ``reps`` messages round-robin over all other ranks
    — an all-to-all-ish background load.

Task-graph applications (GEMM/CG on the task runtime) co-locate on a
shared cluster through the same placement mechanism: ``run_gemm`` /
``run_cg`` accept ``cluster=``/``nodes=`` (see repro.runtime.apps).
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.hardware.topology import Cluster
from repro.mpi.comm import CommWorld

__all__ = ["AppSpec", "AppResult", "Application", "run_apps"]

PATTERNS = ("pingpong", "ring", "uniform")


@dataclass(frozen=True)
class AppSpec:
    """Declarative description of one co-scheduled application."""

    name: str
    pattern: str = "pingpong"
    nodes: Tuple[int, ...] = ()
    size: int = 1 << 20
    reps: int = 8
    warmup: int = 2
    comm_placement: str = "far"

    def __post_init__(self):
        if not self.name:
            raise ValueError("application needs a non-empty name")
        if self.pattern not in PATTERNS:
            raise ValueError(
                f"unknown app pattern {self.pattern!r}; pick one of "
                f"{', '.join(PATTERNS)}")
        object.__setattr__(self, "nodes", tuple(self.nodes))
        if len(self.nodes) < 2:
            raise ValueError(
                f"app {self.name!r} needs at least 2 nodes, got "
                f"{list(self.nodes)}")
        if self.pattern == "pingpong" and len(self.nodes) % 2:
            raise ValueError(
                f"app {self.name!r}: pingpong needs an even rank count, "
                f"got {len(self.nodes)}")
        if self.size < 1:
            raise ValueError("size must be >= 1 byte")
        if self.reps < 1:
            raise ValueError("reps must be >= 1")
        if self.warmup < 0:
            raise ValueError("warmup must be >= 0")

    @classmethod
    def from_dict(cls, data: dict) -> "AppSpec":
        """Build from a scenario ``[[apps]]`` table, validating keys."""
        valid = {f.name for f in fields(cls)}
        bad = sorted(set(data) - valid)
        if bad:
            raise ValueError(
                f"unknown app field(s) {bad}; accepted: "
                f"{', '.join(sorted(valid))}")
        return cls(**data)


@dataclass
class AppResult:
    """Measured outcome of one application's co-scheduled run."""

    name: str
    pattern: str
    nodes: Tuple[int, ...]
    size: int
    latencies: np.ndarray            # per-message one-way durations (s)
    bytes_moved: float               # payload bytes incl. warmup
    duration: float                  # first start -> last completion (s)

    @property
    def median_latency(self) -> float:
        return float(np.median(self.latencies)) if len(self.latencies) \
            else 0.0

    @property
    def bandwidth(self) -> float:
        """Per-message goodput at the median latency, bytes/s."""
        med = self.median_latency
        return self.size / med if med > 0 else 0.0

    @property
    def aggregate_bandwidth(self) -> float:
        """All payload bytes over the app's wall-clock window, bytes/s."""
        return self.bytes_moved / self.duration if self.duration > 0 \
            else 0.0

    def summary(self) -> str:
        return (f"{self.name}[{self.pattern} x{len(self.nodes)}]: "
                f"median {self.median_latency*1e6:.2f} us, "
                f"bw {self.bandwidth/1e9:.2f} GB/s, "
                f"aggregate {self.aggregate_bandwidth/1e9:.2f} GB/s")


class Application:
    """A live application: a world over its nodes plus pattern drivers."""

    def __init__(self, cluster: Cluster, spec: AppSpec):
        for node in spec.nodes:
            if not 0 <= node < len(cluster):
                raise ValueError(
                    f"app {spec.name!r} places a rank on node {node}, "
                    f"outside this {len(cluster)}-node cluster "
                    f"(valid ids: 0..{len(cluster) - 1})")
        self.spec = spec
        self.cluster = cluster
        self.world = CommWorld(cluster, comm_placement=spec.comm_placement,
                               nodes=spec.nodes)
        # Every transfer this app performs carries its name.
        self.world.engine.app = spec.name
        self._latencies: List[float] = []
        self._bytes = 0.0
        self._procs: List[object] = []
        self._t0 = 0.0
        self._t_end = 0.0

    # -- pattern drivers ---------------------------------------------------
    def _stream(self, pairs: List[Tuple[int, int]], sequential_reps: int):
        """One driver: ping messages over *pairs* in sequence, reps times."""
        spec = self.spec
        engine = self.world.engine
        sim = self.cluster.sim
        ranks = [self.world.rank(i) for i in range(len(self.world.ranks))]
        bufs: Dict[int, object] = {}

        def buf(idx: int):
            if idx not in bufs:
                bufs[idx] = ranks[idx].buffer(
                    spec.size, label=f"{spec.name}.r{idx}")
            return bufs[idx]

        for it in range(spec.warmup + sequential_reps):
            for a, b in pairs:
                ra, rb = ranks[a], ranks[b]
                rec = yield sim.process(engine.half_transfer(
                    ra.node_id, ra.comm_core, buf(a),
                    rb.node_id, rb.comm_core, buf(b), spec.size))
                self._bytes += spec.size
                if it >= spec.warmup:
                    self._latencies.append(rec.duration)
        self._t_end = max(self._t_end, sim.now)

    def _pingpong_streams(self):
        n = len(self.spec.nodes)
        for i in range(0, n, 2):
            yield [(i, i + 1), (i + 1, i)]

    def _ring_streams(self):
        n = len(self.spec.nodes)
        for i in range(n):
            yield [(i, (i + 1) % n)]

    def _uniform_streams(self):
        n = len(self.spec.nodes)
        for i in range(n):
            yield [(i, d) for d in range(n) if d != i]

    def start(self) -> "Application":
        """Spawn the pattern's driver processes (one per stream)."""
        if self._procs:
            raise RuntimeError(f"app {self.spec.name!r} already started")
        streams = {
            "pingpong": self._pingpong_streams,
            "ring": self._ring_streams,
            "uniform": self._uniform_streams,
        }[self.spec.pattern]()
        sim = self.cluster.sim
        self._t0 = sim.now
        for pairs in streams:
            self._procs.append(
                sim.process(self._stream(pairs, self.spec.reps)))
        return self

    def collect(self) -> AppResult:
        """Harvest results after ``sim.run()``; re-raises driver errors."""
        if not self._procs:
            raise RuntimeError(f"app {self.spec.name!r} was never started")
        for p in self._procs:
            if not p.ok:
                _ = p.value      # re-raise the stream's exception
        return AppResult(
            name=self.spec.name, pattern=self.spec.pattern,
            nodes=self.spec.nodes, size=self.spec.size,
            latencies=np.asarray(self._latencies, dtype=float),
            bytes_moved=self._bytes,
            duration=self._t_end - self._t0)


def run_apps(cluster: Cluster,
             specs: Sequence[AppSpec]) -> Dict[str, AppResult]:
    """Co-schedule *specs* on *cluster*: start every application, drive
    one shared ``sim.run()``, and return results keyed by app name.

    Placements must be disjoint — two apps sharing a node would also
    share its communication core, silently serialising them.
    """
    if not specs:
        raise ValueError("need at least one application")
    names = [s.name for s in specs]
    if len(set(names)) != len(names):
        raise ValueError(f"duplicate application names in {names}")
    used: Dict[int, str] = {}
    for s in specs:
        for node in s.nodes:
            if node in used:
                raise ValueError(
                    f"apps {used[node]!r} and {s.name!r} both place a "
                    f"rank on node {node}; placements must be disjoint")
            used[node] = s.name
    apps = [Application(cluster, s) for s in specs]
    for app in apps:
        app.start()
    cluster.sim.run()
    return {app.spec.name: app.collect() for app in apps}
