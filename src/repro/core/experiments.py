"""One entry point per paper figure and table.

Every function returns an :class:`~repro.core.results.ExperimentResult`
whose series correspond to the curves of the figure.  All functions take
a ``spec`` (cluster preset) and accept reduced sweep parameters so tests
can run quickly; the defaults regenerate the full figures.

Index (see DESIGN.md §5):

========  ==========================================================
fig1      latency/bandwidth vs constant core & uncore frequencies
fig2      frequency traces: comm only / idle / comm + compute
fig3a     AVX compute duration & latency vs computing cores
fig3bc    frequency traces under AVX load (4 vs 20 cores)
fig4a/b   STREAM contention vs latency / bandwidth (data near, thread far)
fig5      all placement combinations × {latency, bandwidth}
table1    qualitative placement summary derived from fig4/fig5
fig6a/b   message-size sweep at 5 / 35 computing cores
fig7a/b   arithmetic-intensity sweep (cursor) vs latency / bandwidth
runtime_overhead   §5.2 runtime-vs-MPI latency overhead
fig8      runtime latency vs data/thread NUMA placement
fig9      runtime latency vs worker-polling backoff
fig10     CG vs GEMM: sending bandwidth + memory stalls vs workers
========  ==========================================================

Each public entry point registers itself in
:mod:`repro.core.registry` via the :func:`~repro.core.registry.experiment`
decorator — the registry (not this docstring or the CLI) is the single
source of truth for names, ``--fast`` profiles, and capabilities.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.analysis.fitting import crossover_index, detect_ridge
from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.executor import PointSpec, stat_row, value_row
from repro.core.placement import (
    ALL_PLACEMENTS, Placement, comm_core_for, compute_core_ids,
    data_numa_for,
)
from repro.core.registry import experiment
from repro.core.results import ExperimentResult, Series
from repro.core.sidebyside import (
    SideBySideConfig, build_world, run_duration_protocol,
    run_throughput_protocol,
)
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.kernels.avx import avx_kernel
from repro.kernels.prime import prime_kernel
from repro.kernels.roofline import run_kernel
from repro.kernels.stream import (
    intensity_of_cursor, triad_kernel, tunable_triad,
)
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE, PingPong
from repro.sim.trace import PeriodicSampler

__all__ = [
    "fig1", "fig1a", "fig1b", "fig2", "fig3a", "fig3bc",
    "fig4a", "fig4b", "fig5", "table1", "fig6a", "fig6b",
    "fig7a", "fig7b", "runtime_overhead", "fig8", "fig9", "fig10",
    "default_core_counts", "default_size_sweep",
]

US = 1e6   # seconds -> microseconds
GB = 1e9


def _spec(spec: MachineSpec | str) -> MachineSpec:
    return get_preset(spec) if isinstance(spec, str) else spec


def default_core_counts(spec: MachineSpec | str = "henri") -> List[int]:
    """The computing-core sweep used by the §4 figures."""
    s = _spec(spec)
    top = s.n_cores - 1            # one core reserved for the comm thread
    counts = [0, 1, 2, 3, 5, 8, 11, 14, 17, 20, 22, 25, 28, 31, 33, 35]
    counts = sorted({min(c, top) for c in counts})
    if top not in counts:
        counts.append(top)
    return counts


def default_size_sweep() -> List[int]:
    """Message sizes, 4 B .. 64 MB (the paper's NetPIPE-style range)."""
    return [4, 64, 256, 1024, 4096, 16384, 65536, 262144,
            1048576, 4194304, 16777216, 67108864]


# ---------------------------------------------------------------------------
# §3.1  Figure 1 — constant frequencies
# ---------------------------------------------------------------------------

def _fig1_point(params: dict) -> dict:
    """One (frequency corner, message size) ping-pong point."""
    s = _spec(params["spec"])
    size = params["size"]
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="near")
    for m in cluster.machines:
        m.freq.set_userspace(params["core_hz"])
        m.set_uncore(params["uncore_hz"])
    res = PingPong(world).run(size, reps=params["reps"])
    corner = params["corner"]
    return {f"latency_{corner}": [stat_row(size, res.latencies)],
            f"bandwidth_{corner}": [stat_row(size, size / res.latencies)]}


def fig1(spec: MachineSpec | str = "henri",
         sizes: Optional[Sequence[int]] = None,
         reps: int = 15,
         journal: Optional[CampaignJournal] = None) -> ExperimentResult:
    """Ping-pong latency/bandwidth for the four frequency corners.

    Each (corner, size) point runs behind a :class:`SweepGuard`: a point
    killed by fault injection is annotated in ``result.failures`` while
    the rest of the figure completes, and with a *journal* the sweep is
    checkpointed/resumable point by point.  Points are independent
    :class:`PointSpec` tasks, so ``--jobs`` fans them out over a
    process pool with byte-identical results.
    """
    s = _spec(spec)
    if sizes is None:
        sizes = default_size_sweep()
    lo_core, hi_core = s.freq.allowed_range
    corners = [
        (hi_core, s.uncore.max_hz),
        (hi_core, s.uncore.min_hz),
        (lo_core, s.uncore.max_hz),
        (lo_core, s.uncore.min_hz),
    ]
    result = ExperimentResult(
        name="fig1", title="Impact of constant frequencies on network "
        "performance")
    guard = SweepGuard(result, journal)
    specs: List[PointSpec] = []
    for core_hz, uncore_hz in corners:
        key = f"core{core_hz/1e9:.1f}_uncore{uncore_hz/1e9:.1f}"
        result.new_series(f"latency_{key}",
                          xlabel="message size (B)",
                          ylabel="latency (s)")
        result.new_series(f"bandwidth_{key}",
                          xlabel="message size (B)",
                          ylabel="bandwidth (B/s)")
        for size in sizes:
            specs.append(PointSpec(
                experiment="fig1", key=f"{key}/size={size}",
                runner="repro.core.experiments:_fig1_point",
                params=dict(spec=spec, corner=key, core_hz=core_hz,
                            uncore_hz=uncore_hz, size=size, reps=reps)))
    guard.run_specs(specs)

    # Headline observations (paper: 1.8 µs vs 3.1 µs; ~10.5 vs 10.1 GB/s).
    # The paper's fig-1a latency anchors correspond to the idle-machine
    # uncore (its minimum): only the core frequency is swept.
    def observations():
        hi = f"core{hi_core/1e9:.1f}_uncore{s.uncore.min_hz/1e9:.1f}"
        lo = f"core{lo_core/1e9:.1f}_uncore{s.uncore.min_hz/1e9:.1f}"
        result.observe("latency_high_core_s", result[f"latency_{hi}"].at(4))
        result.observe("latency_low_core_s", result[f"latency_{lo}"].at(4))
        umax = f"core{hi_core/1e9:.1f}_uncore{s.uncore.max_hz/1e9:.1f}"
        umin = f"core{hi_core/1e9:.1f}_uncore{s.uncore.min_hz/1e9:.1f}"
        big = max(sizes)
        result.observe("bandwidth_uncore_max",
                       result[f"bandwidth_{umax}"].at(big))
        result.observe("bandwidth_uncore_min",
                       result[f"bandwidth_{umin}"].at(big))
    _guarded_observations(result, observations)
    return result


def _guarded_observations(result: ExperimentResult,
                          body: Callable[[], None]) -> None:
    """Compute derived observations; when sweep points failed (fault
    injection) the inputs may be missing — degrade to a recorded failure
    instead of losing the figure."""
    if result.failures:
        try:
            body()
        except Exception as err:
            result.record_failure("__observations__", err)
    else:
        body()


@experiment(title="Constant frequencies vs latency",
            tags=("paper", "frequency"), bench=True,
            params=("sizes", "reps"),
            fast=dict(sizes=[4, 65536, 67108864], reps=6))
def fig1a(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Ping-pong latency at each pinned core frequency (the fig1 sweep
    relabelled to its latency half)."""
    res = fig1(spec, **kw)
    res.name, res.title = "fig1a", "Constant frequencies vs latency"
    return res


@experiment(title="Constant frequencies vs bandwidth",
            tags=("paper", "frequency"),
            params=("sizes", "reps"),
            fast=dict(sizes=[4, 65536, 67108864], reps=6))
def fig1b(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Ping-pong bandwidth at each pinned core frequency (the fig1
    sweep relabelled to its bandwidth half)."""
    res = fig1(spec, **kw)
    res.name, res.title = "fig1b", "Constant frequencies vs bandwidth"
    return res


# ---------------------------------------------------------------------------
# §3.2  Figure 2 — frequency traces with CPU-bound computation
# ---------------------------------------------------------------------------

@experiment(title="Frequency traces: comm only / idle / comm + compute",
            tags=("paper", "frequency"), bench=True,
            fast=dict(phase_seconds=0.04))
def fig2(spec: MachineSpec | str = "henri", n_compute: int = 20,
         phase_seconds: float = 0.12, sample_period: float = 2e-3,
         reps_hint: int = 0) -> ExperimentResult:
    """Phases A (comm only), B (idle), C (comm + prime on n cores)."""
    s = _spec(spec)
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="far")
    sim = cluster.sim
    m0 = cluster.machine(0)
    comm_core = world.rank(0).comm_core

    probes = {f"core{c.id}": (lambda cid=c.id: m0.freq.core_hz(cid) / 1e9)
              for c in m0.cores}
    probes["uncore_s0"] = lambda: m0.freq.uncore_hz(0) / 1e9
    probes["uncore_s1"] = lambda: m0.freq.uncore_hz(1) / 1e9
    # Every probe reads m0's frequency model only: one epoch source
    # buys batched (or probe-skipping) sampling, see sim.trace.
    sampler = PeriodicSampler(sim, probes, period=sample_period,
                              epoch_sources=(m0.freq,)).start()

    pingpong = PingPong(world)
    lat_a: List[float] = []
    lat_c: List[float] = []

    # Phase A: communications only.
    def phase_a():
        engine = world.engine
        buf_a, buf_b = pingpong._buffers(LATENCY_SIZE)  # noqa: SLF001
        a, b = pingpong.rank_a, pingpong.rank_b
        while sim.now < phase_seconds:
            rec = yield sim.process(engine.half_transfer(
                a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core,
                buf_b, LATENCY_SIZE))
            rec2 = yield sim.process(engine.half_transfer(
                b.node_id, b.comm_core, buf_b, a.node_id, a.comm_core,
                buf_a, LATENCY_SIZE))
            lat_a.extend((rec.duration, rec2.duration))

    proc = sim.process(phase_a())
    sim.run(until=phase_seconds)
    while not proc.triggered:
        sim.step()

    # Phase B: everything idle (the comm threads sleep too).
    from repro.hardware.frequency import CoreActivity
    t_b0 = sim.now
    for rank in world.ranks:
        rank.machine.set_core_activity(rank.comm_core, CoreActivity.IDLE)
    sim.run(until=t_b0 + phase_seconds)
    for rank in world.ranks:
        rank.machine.set_core_activity(rank.comm_core, CoreActivity.SCALAR,
                                       uncore_active=False)

    # Phase C: communications + prime counting on n_compute cores.
    t_c0 = sim.now
    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    runs = []
    for machine in cluster.machines:
        cores = compute_core_ids(machine, n_compute,
                                 comm_cores[machine.node_id])
        for core in cores:
            runs.append(run_kernel(machine, core, prime_kernel(),
                                   data_numa=0, sweeps=None))

    def phase_c():
        engine = world.engine
        buf_a, buf_b = pingpong._buffers(LATENCY_SIZE)  # noqa: SLF001
        a, b = pingpong.rank_a, pingpong.rank_b
        while sim.now < t_c0 + phase_seconds:
            rec = yield sim.process(engine.half_transfer(
                a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core,
                buf_b, LATENCY_SIZE))
            rec2 = yield sim.process(engine.half_transfer(
                b.node_id, b.comm_core, buf_b, a.node_id, a.comm_core,
                buf_a, LATENCY_SIZE))
            lat_c.extend((rec.duration, rec2.duration))

    proc_c = sim.process(phase_c())
    sim.run(until=t_c0 + phase_seconds)
    while not proc_c.triggered:
        sim.step()
    for run in runs:
        run.request_stop()
    trace = sampler.stop()
    sim.run()

    result = ExperimentResult(
        name="fig2",
        title="Frequency variations: (A) comm only, (B) idle, "
              "(C) comm + compute")
    result.meta["trace"] = trace
    result.meta["phases"] = {"A": (0.0, phase_seconds),
                             "B": (t_b0, t_c0),
                             "C": (t_c0, t_c0 + phase_seconds)}
    comm_key = f"core{comm_core}"
    compute_key = "core0"
    for phase, (t0, t1) in result.meta["phases"].items():
        result.observe(f"comm_core_ghz_{phase}",
                       trace.mean(comm_key, t0, t1))
        result.observe(f"compute_core_ghz_{phase}",
                       trace.mean(compute_key, t0, t1))
    result.observe("latency_alone_s", float(np.median(lat_a)))
    result.observe("latency_together_s", float(np.median(lat_c)))
    lat_series = result.new_series("latency", ylabel="latency (s)")
    lat_series.add(0, lat_a)   # x=0: alone
    lat_series.add(1, lat_c)   # x=1: together
    return result


# ---------------------------------------------------------------------------
# §3.3  Figure 3 — AVX-512 computations
# ---------------------------------------------------------------------------

def _fig3a_point(params: dict) -> dict:
    """One AVX weak-scaling point (duration + latency, alone/together)."""
    n = params["n"]
    cfg = SideBySideConfig(
        spec=params["spec"], n_compute_cores=n, kernel_factory=avx_kernel,
        message_size=LATENCY_SIZE, reps=params["reps"], sweeps=1)
    out = run_duration_protocol(cfg)
    rows = {
        "compute_alone": [value_row(n, out.compute_alone_duration)],
        "compute_together": [value_row(n, out.compute_together_duration)],
        "latency_alone": [stat_row(n, out.comm_alone.latencies)],
    }
    if out.comm_together is not None:
        rows["latency_together"] = [stat_row(n, out.comm_together.latencies)]
    return rows


@experiment(title="AVX512 compute duration & latency vs computing cores",
            tags=("paper", "frequency"),
            fast=dict(core_counts=(4, 20), reps=5))
def fig3a(spec: MachineSpec | str = "henri",
          core_counts: Sequence[int] = (2, 4, 8, 12, 16, 20),
          reps: int = 12,
          journal: Optional[CampaignJournal] = None) -> ExperimentResult:
    """AVX weak scaling: compute duration and latency, alone/together."""
    result = ExperimentResult(
        name="fig3a", title="Impact of AVX512 computations on network "
        "latency")
    guard = SweepGuard(result, journal)
    dur_alone = result.new_series("compute_alone",
                                  xlabel="computing cores",
                                  ylabel="duration (s)")
    result.new_series("compute_together", xlabel="computing cores",
                      ylabel="duration (s)")
    result.new_series("latency_alone", xlabel="computing cores",
                      ylabel="latency (s)")
    result.new_series("latency_together", xlabel="computing cores",
                      ylabel="latency (s)")
    guard.run_specs([
        PointSpec(experiment="fig3a", key=f"n={n}",
                  runner="repro.core.experiments:_fig3a_point",
                  params=dict(spec=spec, n=n, reps=reps))
        for n in core_counts])

    def observations():
        result.observe("duration_4_cores_s",
                       dur_alone.at(4) if 4 in core_counts else None)
        result.observe("duration_20_cores_s",
                       dur_alone.at(20) if 20 in core_counts else None)
    _guarded_observations(result, observations)
    return result


@experiment(title="Frequency traces under AVX load",
            tags=("paper", "frequency"), index_key="fig3b/c",
            fast=dict(phase_seconds=0.05))
def fig3bc(spec: MachineSpec | str = "henri", n_compute: int = 4,
           phase_seconds: float = 0.2,
           sample_period: float = 2e-3) -> ExperimentResult:
    """Frequency trace while AVX computations run beside communications."""
    s = _spec(spec)
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="far")
    sim = cluster.sim
    m0 = cluster.machine(0)
    comm_core = world.rank(0).comm_core

    probes = {f"core{c.id}": (lambda cid=c.id: m0.freq.core_hz(cid) / 1e9)
              for c in m0.cores}
    sampler = PeriodicSampler(sim, probes, period=sample_period,
                              epoch_sources=(m0.freq,)).start()

    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    runs = []
    for machine in cluster.machines:
        for core in compute_core_ids(machine, n_compute,
                                     comm_cores[machine.node_id]):
            runs.append(run_kernel(machine, core, avx_kernel(),
                                   data_numa=0, sweeps=1))

    pingpong = PingPong(world)
    lats: List[float] = []

    def pp_loop():
        engine = world.engine
        buf_a, buf_b = pingpong._buffers(LATENCY_SIZE)  # noqa: SLF001
        a, b = pingpong.rank_a, pingpong.rank_b
        while any(not r.process.triggered for r in runs):
            rec = yield sim.process(engine.half_transfer(
                a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core,
                buf_b, LATENCY_SIZE))
            lats.append(rec.duration)
            rec2 = yield sim.process(engine.half_transfer(
                b.node_id, b.comm_core, buf_b, a.node_id, a.comm_core,
                buf_a, LATENCY_SIZE))
            lats.append(rec2.duration)

    sim.process(pp_loop())
    while any(not r.process.triggered for r in runs):
        sim.step()
    trace = sampler.stop()
    sim.run()
    duration = max(r.stats.duration for r in runs)

    result = ExperimentResult(
        name="fig3bc",
        title=f"Frequency trace, {n_compute} AVX512 computing cores")
    result.meta["trace"] = trace
    result.observe("compute_duration_s", duration)
    result.observe("comm_core_ghz",
                   trace.mean(f"core{comm_core}", 0, duration))
    result.observe("avx_core_ghz", trace.mean("core0", 0, duration))
    result.observe("latency_together_s",
                   float(np.median(lats)) if lats else None)
    return result


# ---------------------------------------------------------------------------
# §4  Figures 4-7 — memory contention
# ---------------------------------------------------------------------------

def _contention_point(params: dict) -> dict:
    """One core-count point of a fig4/fig5 contention sweep."""
    n = params["n"]
    cfg = SideBySideConfig(
        spec=params["spec"], n_compute_cores=n,
        placement=params["placement"],
        kernel_factory=params["kernel_factory"],
        message_size=params["message_size"], reps=params["reps"])
    out = run_throughput_protocol(cfg)
    rows = {"comm_alone": [stat_row(n, out.comm_alone.latencies)]}
    if out.comm_together is not None:
        rows["comm_together"] = [stat_row(n, out.comm_together.latencies)]
    else:
        rows["comm_together"] = [stat_row(n, out.comm_alone.latencies)]
    if out.compute_alone_bw_per_core:
        rows["compute_alone"] = [stat_row(n, out.compute_alone_bw_per_core)]
        rows["compute_together"] = [
            stat_row(n, out.compute_together_bw_per_core)]
    return rows


def _contention_sweep(name: str, title: str, message_size: int,
                      placement: Placement,
                      spec: MachineSpec | str = "henri",
                      core_counts: Optional[Sequence[int]] = None,
                      reps: int = 12,
                      kernel_factory: Callable = triad_kernel,
                      journal: Optional[CampaignJournal] = None,
                      ) -> ExperimentResult:
    """Shared driver for the fig4/fig5 sweeps."""
    if core_counts is None:
        core_counts = default_core_counts(spec)
    result = ExperimentResult(name=name, title=title)
    result.meta["placement"] = placement
    result.meta["message_size"] = message_size
    guard = SweepGuard(result, journal)
    lat_alone = result.new_series("comm_alone", xlabel="computing cores",
                                  ylabel="latency (s)")
    lat_tog = result.new_series("comm_together", xlabel="computing cores",
                                ylabel="latency (s)")
    result.new_series("compute_alone", xlabel="computing cores",
                      ylabel="bytes/s per core")
    result.new_series("compute_together", xlabel="computing cores",
                      ylabel="bytes/s per core")
    guard.run_specs([
        PointSpec(experiment=name, key=f"n={n}",
                  runner="repro.core.experiments:_contention_point",
                  params=dict(spec=spec, n=n, placement=placement,
                              kernel_factory=kernel_factory,
                              message_size=message_size, reps=reps))
        for n in core_counts])

    # Derived observations.
    def observations():
        base_lat = lat_alone.median[0]
        result.observe("latency_baseline_s", base_lat)
        result.observe(
            "comm_impact_from_cores",
            crossover_index(lat_tog.x, lat_tog.median, base_lat,
                            threshold=0.15, direction="above"))
        if len(lat_tog) > 0:
            result.observe("latency_max_ratio",
                           max(lat_tog.median) / base_lat)
    _guarded_observations(result, observations)
    return result


@experiment(title="Memory-bound computations vs network latency",
            tags=("paper", "contention"),
            params=("core_counts", "reps"),
            fast=dict(core_counts=[0, 3, 5, 12, 20, 26, 31, 35], reps=6))
def fig4a(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Latency under STREAM contention (data near NIC, thread far)."""
    return _contention_sweep(
        "fig4a", "Memory-bound computations vs network latency",
        LATENCY_SIZE, Placement("near", "far"), spec, **kw)


@experiment(title="Memory-bound computations vs network bandwidth",
            tags=("paper", "contention"),
            params=("core_counts", "reps"),
            fast=dict(core_counts=[0, 3, 5, 12, 20, 26, 31, 35], reps=4))
def fig4b(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Bandwidth under STREAM contention (data near NIC, thread far)."""
    res = _contention_sweep(
        "fig4b", "Memory-bound computations vs network bandwidth",
        BANDWIDTH_SIZE, Placement("near", "far"), spec, **kw)
    # Bandwidth view of the same series.
    size = res.meta["message_size"]
    for key in ("comm_alone", "comm_together"):
        lat = res.series[key]
        bw = res.new_series(key + "_bw", xlabel=lat.xlabel,
                            ylabel="bytes/s")
        for x, p10, med, p90 in zip(lat.x, lat.p10, lat.median, lat.p90):
            bw.x.append(x)
            bw.median.append(size / med)
            bw.p10.append(size / p90)
            bw.p90.append(size / p10)
    base_bw = res["comm_alone_bw"].median[0]
    res.observe("bandwidth_baseline", base_bw)
    res.observe("bandwidth_min_ratio",
                min(res["comm_together_bw"].median) / base_bw)
    res.observe("bandwidth_impact_from_cores",
                crossover_index(res["comm_together_bw"].x,
                                res["comm_together_bw"].median,
                                base_bw, threshold=0.05,
                                direction="below"))
    return res


@experiment(title="All placement combinations × {latency, bandwidth}",
            tags=("paper", "contention"), multi_result=True, plot=False,
            index_key="fig5a–f", params=("core_counts", "reps"),
            fast=dict(core_counts=[0, 5, 20, 35], reps=4))
def fig5(spec: MachineSpec | str = "henri",
         placements: Iterable[Placement] = ALL_PLACEMENTS,
         **kw) -> Dict[str, ExperimentResult]:
    """All placement combinations × {latency, bandwidth} (6 new panels +
    the two fig4 panels, as the paper lays them out)."""
    results: Dict[str, ExperimentResult] = {}
    for placement in placements:
        for metric, size in (("latency", LATENCY_SIZE),
                             ("bandwidth", BANDWIDTH_SIZE)):
            key = f"{placement.key}_{metric}"
            if metric == "latency":
                results[key] = _contention_sweep(
                    f"fig5_{key}",
                    f"Latency, data {placement.data}, thread "
                    f"{placement.comm_thread}",
                    size, placement, spec, **kw)
            else:
                res = _contention_sweep(
                    f"fig5_{key}",
                    f"Bandwidth, data {placement.data}, thread "
                    f"{placement.comm_thread}",
                    size, placement, spec, **kw)
                results[key] = res
    return results


@experiment(title="Placement impact summary (paper Table 1)",
            tags=("paper", "contention"), plot=False,
            renderer="repro.core.report:render_table1",
            fast=dict(core_counts=[0, 5, 20, 35], reps=4))
def table1(spec: MachineSpec | str = "henri",
           core_counts: Optional[Sequence[int]] = None,
           reps: int = 8) -> ExperimentResult:
    """Qualitative summary of placement impact (paper Table 1)."""
    if core_counts is None:
        core_counts = default_core_counts(spec)
    result = ExperimentResult(name="table1",
                              title="Impact of data and communication "
                              "thread placement (summary)")
    rows = []
    for placement in ALL_PLACEMENTS:
        lat = _contention_sweep(
            "tmp", "tmp", LATENCY_SIZE, placement, spec,
            core_counts=core_counts, reps=reps)
        bw = _contention_sweep(
            "tmp", "tmp", BANDWIDTH_SIZE, placement, spec,
            core_counts=core_counts, reps=reps)
        base_lat = lat["comm_alone"].median[0]
        lat_from = crossover_index(lat["comm_together"].x,
                                   lat["comm_together"].median,
                                   base_lat, 0.15, "above")
        lat_ratio = max(lat["comm_together"].median) / base_lat
        bw_lat = bw["comm_together"]
        base_bw_lat = bw["comm_alone"].median[0]
        bw_ratio = base_bw_lat / max(bw_lat.median)  # min bandwidth ratio
        rows.append({
            "data": placement.data,
            "comm_thread": placement.comm_thread,
            "latency_impact_from_cores": lat_from,
            "latency_max_ratio": lat_ratio,
            "bandwidth_min_ratio": bw_ratio,
        })
    result.meta["rows"] = rows
    return result


def _size_point(params: dict) -> dict:
    """One message-size point of a fig6 sweep."""
    size = params["size"]
    cfg = SideBySideConfig(
        spec=params["spec"], n_compute_cores=params["n_compute"],
        placement=Placement("near", "far"), message_size=size,
        reps=params["reps"])
    out = run_throughput_protocol(cfg)
    return {
        "comm_alone": [stat_row(size, size / out.comm_alone.latencies)],
        "comm_together": [
            stat_row(size, size / out.comm_together.latencies)],
        "compute_alone": [stat_row(size, out.compute_alone_bw_per_core)],
        "compute_together": [
            stat_row(size, out.compute_together_bw_per_core)],
    }


def _size_experiment(name: str, n_compute: int,
                     spec: MachineSpec | str = "henri",
                     sizes: Optional[Sequence[int]] = None,
                     reps: int = 10,
                     journal: Optional[CampaignJournal] = None,
                     ) -> ExperimentResult:
    """Fig 6 driver: sweep the transmitted size at fixed core count."""
    if sizes is None:
        sizes = default_size_sweep()
    result = ExperimentResult(
        name=name,
        title=f"Impact of message size with {n_compute} computing cores")
    guard = SweepGuard(result, journal)
    comm_alone = result.new_series("comm_alone", xlabel="message size (B)",
                                   ylabel="bandwidth (B/s)")
    comm_tog = result.new_series("comm_together",
                                 xlabel="message size (B)",
                                 ylabel="bandwidth (B/s)")
    st_alone = result.new_series("compute_alone",
                                 xlabel="message size (B)",
                                 ylabel="bytes/s per core")
    st_tog = result.new_series("compute_together",
                               xlabel="message size (B)",
                               ylabel="bytes/s per core")
    guard.run_specs([
        PointSpec(experiment=name, key=f"size={size}",
                  runner="repro.core.experiments:_size_point",
                  params=dict(spec=spec, n_compute=n_compute, size=size,
                              reps=reps))
        for size in sizes])

    # Thresholds (paper: comms degrade from 64 KB @5 cores / 128 B @35;
    # STREAM from 4 KB in both).
    def observations():
        comm_ratio = [t / a
                      for t, a in zip(comm_tog.median, comm_alone.median)]
        result.observe("comm_degraded_from_size",
                       crossover_index(comm_tog.x, comm_ratio, 1.0, 0.08,
                                       "below"))
        st_ratio = [t / a for t, a in zip(st_tog.median, st_alone.median)]
        result.observe("stream_degraded_from_size",
                       crossover_index(st_tog.x, st_ratio, 1.0, 0.02,
                                       "below"))
    _guarded_observations(result, observations)
    return result


@experiment(title="Message-size sweep at 5 computing cores",
            tags=("paper", "contention"),
            params=("sizes", "reps"),
            fast=dict(sizes=[4, 1024, 4096, 65536, 1048576, 67108864],
                      reps=4))
def fig6a(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Message-size sweep with 5 computing cores."""
    return _size_experiment("fig6a", 5, spec, **kw)


@experiment(title="Message-size sweep at 35 computing cores",
            tags=("paper", "contention"),
            params=("sizes", "reps"),
            fast=dict(sizes=[4, 128, 1024, 4096, 65536, 1048576,
                             67108864], reps=4))
def fig6b(spec: MachineSpec | str = "henri", n_compute: Optional[int] = None,
          **kw) -> ExperimentResult:
    """Message-size sweep with (almost) all cores computing."""
    if n_compute is None:
        n_compute = _spec(spec).n_cores - 1
    return _size_experiment("fig6b", n_compute, spec, **kw)


def _intensity_point(params: dict) -> dict:
    """One arithmetic-intensity point of a fig7 sweep.

    The tunable-triad kernel factory closes over the cursor *inside*
    the runner (a lambda cannot cross a process boundary; the cursor
    and element count can).
    """
    cursor = params["cursor"]
    elems = params["elems"]
    intensity = intensity_of_cursor(cursor)
    cfg = SideBySideConfig(
        spec=params["spec"], n_compute_cores=params["n_compute"],
        placement=Placement("near", "far"),
        kernel_factory=lambda: tunable_triad(cursor, elems=elems),
        message_size=params["message_size"], reps=params["reps"],
        sweeps=params["sweeps"], warmup_reps=params["warmup_reps"])
    out = run_duration_protocol(cfg)
    rows = {"comm_alone": [stat_row(intensity, out.comm_alone.latencies)]}
    if out.comm_together is not None and len(out.comm_together.latencies):
        rows["comm_together"] = [
            stat_row(intensity, out.comm_together.latencies)]
    else:
        rows["comm_together"] = [
            stat_row(intensity, out.comm_alone.latencies)]
    rows["compute_alone"] = [
        value_row(intensity, out.compute_alone_duration)]
    rows["compute_together"] = [
        value_row(intensity, out.compute_together_duration)]
    return rows


def _intensity_experiment(name: str, message_size: int,
                          spec: MachineSpec | str = "henri",
                          cursors: Optional[Sequence[int]] = None,
                          n_compute: Optional[int] = None,
                          reps: int = 10,
                          elems: int = 2_000_000,
                          sweeps: int = 1,
                          warmup_reps: int = 1,
                          journal: Optional[CampaignJournal] = None,
                          ) -> ExperimentResult:
    """Fig 7 driver: sweep arithmetic intensity via the cursor."""
    s = _spec(spec)
    if cursors is None:
        cursors = [1, 2, 4, 8, 16, 24, 36, 48, 60, 72, 96, 144, 240, 480]
    if n_compute is None:
        n_compute = s.n_cores - 1
    result = ExperimentResult(
        name=name, title="Impact of memory pressure (tunable arithmetic "
        "intensity)")
    guard = SweepGuard(result, journal)
    comm_alone = result.new_series("comm_alone",
                                   xlabel="arithmetic intensity (flop/B)",
                                   ylabel="latency (s)")
    comm_tog = result.new_series("comm_together",
                                 xlabel="arithmetic intensity (flop/B)",
                                 ylabel="latency (s)")
    result.new_series("compute_alone",
                      xlabel="arithmetic intensity (flop/B)",
                      ylabel="duration (s)")
    result.new_series("compute_together",
                      xlabel="arithmetic intensity (flop/B)",
                      ylabel="duration (s)")
    guard.run_specs([
        PointSpec(experiment=name, key=f"cursor={cursor}",
                  runner="repro.core.experiments:_intensity_point",
                  params=dict(spec=spec, cursor=cursor, elems=elems,
                              n_compute=n_compute,
                              message_size=message_size, reps=reps,
                              sweeps=sweeps, warmup_reps=warmup_reps))
        for cursor in cursors])

    # Ridge: intensity where communication recovers its nominal value.
    def observations():
        if message_size > 1024:
            values = [message_size / m for m in comm_tog.median]
        else:
            nominal = comm_alone.median[0]
            values = [nominal / m for m in comm_tog.median]
        result.observe("ridge_flop_per_byte",
                       detect_ridge(comm_tog.x, values))
    _guarded_observations(result, observations)
    return result


@experiment(title="Arithmetic-intensity sweep vs latency",
            tags=("paper", "contention"),
            params=("cursors", "n_compute", "reps", "elems", "sweeps",
                    "warmup_reps"),
            fast=dict(cursors=[1, 8, 24, 48, 72, 96, 144, 480], reps=4,
                      elems=1_000_000))
def fig7a(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Intensity sweep vs latency."""
    res = _intensity_experiment("fig7a", LATENCY_SIZE, spec, **kw)
    res.title += " - latency"
    return res


@experiment(title="Arithmetic-intensity sweep vs bandwidth",
            tags=("paper", "contention"),
            params=("cursors", "n_compute", "reps", "elems", "sweeps",
                    "warmup_reps"),
            fast=dict(cursors=[1, 8, 24, 72, 144, 480], reps=3,
                      elems=2_000_000, sweeps=3))
def fig7b(spec: MachineSpec | str = "henri", **kw) -> ExperimentResult:
    """Intensity sweep vs bandwidth.

    Several sweeps of fixed work per point so that multiple 64 MB
    ping-pongs fit inside the computation window.
    """
    kw.setdefault("sweeps", 4)
    kw.setdefault("elems", 4_000_000)
    res = _intensity_experiment("fig7b", BANDWIDTH_SIZE, spec, **kw)
    res.title += " - bandwidth"
    size = BANDWIDTH_SIZE
    for key in ("comm_alone", "comm_together"):
        lat = res.series[key]
        bw = res.new_series(key + "_bw", xlabel=lat.xlabel,
                            ylabel="bytes/s")
        for x, p10, med, p90 in zip(lat.x, lat.p10, lat.median, lat.p90):
            bw.x.append(x)
            bw.median.append(size / med)
            bw.p10.append(size / p90)
            bw.p90.append(size / p10)
    return res


# ---------------------------------------------------------------------------
# §5  Runtime-system experiments
# ---------------------------------------------------------------------------

def _runtime_pingpong(world: CommWorld, comm, size: int, reps: int,
                      data_numa_a: int, data_numa_b: int,
                      warmup: int = 2) -> np.ndarray:
    """Ping-pong through the runtime comm layer; one-way latencies."""
    sim = world.sim
    buf_a = world.rank(0).buffer(size, data_numa_a, "rt_pp_a")
    buf_b = world.rank(1).buffer(size, data_numa_b, "rt_pp_b")
    lats: List[float] = []

    def loop():
        for it in range(warmup + reps):
            s = comm.isend(0, 1, buf_a, tag=1)
            r = comm.irecv(1, 0, buf_b, tag=1)
            rec = yield r.done
            if it >= warmup:
                lats.append(rec.duration)
            s2 = comm.isend(1, 0, buf_b, tag=2)
            r2 = comm.irecv(0, 1, buf_a, tag=2)
            rec2 = yield r2.done
            if it >= warmup:
                lats.append(rec2.duration)

    proc = sim.process(loop())
    sim.run()
    if not proc.ok:  # pragma: no cover
        _ = proc.value
    return np.asarray(lats)


@experiment(title="Task-runtime latency overhead (§5.2)",
            tags=("paper", "runtime"), bench=True, index_key="§5.2",
            fast=dict(reps=10))
def runtime_overhead(spec: MachineSpec | str = "henri",
                     reps: int = 20) -> ExperimentResult:
    """§5.2: latency of a runtime-level ping-pong vs plain MPI."""
    from repro.runtime.mpi_layer import RuntimeComm
    from repro.runtime.runtime import RuntimeSystem

    s = _spec(spec)
    # Plain MPI reference.
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="far")
    plain = PingPong(world).run(LATENCY_SIZE, reps=reps)

    # Runtime-level ping-pong (no workers polling: paused baseline).
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, n_workers=0) for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    numa = cluster.machine(0).nic_numa.id
    lats = _runtime_pingpong(world, comm, LATENCY_SIZE, reps, numa, numa)

    result = ExperimentResult(name="runtime_overhead",
                              title="Task-runtime latency overhead (§5.2)")
    result.new_series("plain").add(0, plain.latencies)
    result.new_series("runtime").add(0, lats)
    overhead = float(np.median(lats)) - plain.median_latency
    result.observe("plain_latency_s", plain.median_latency)
    result.observe("runtime_latency_s", float(np.median(lats)))
    result.observe("overhead_s", overhead)
    return result


@experiment(title="Runtime latency vs data/thread NUMA placement",
            tags=("paper", "runtime"), bench=True,
            fast=dict(reps=10))
def fig8(spec: MachineSpec | str = "henri",
         reps: int = 15) -> ExperimentResult:
    """§5.3: runtime latency vs data locality × comm-thread placement."""
    from repro.runtime.mpi_layer import RuntimeComm
    from repro.runtime.runtime import RuntimeSystem

    s = _spec(spec)
    result = ExperimentResult(
        name="fig8", title="Data locality and thread placement with the "
        "runtime (close/far from the NIC)")
    for thread_place in ("near", "far"):
        for data_place in ("near", "far"):
            cluster = Cluster(s, n_nodes=2)
            comm_cores = {m.node_id: comm_core_for(m, thread_place)
                          for m in cluster.machines}
            world = CommWorld(cluster, comm_cores=comm_cores)
            runtimes = {r: RuntimeSystem(world, r, n_workers=0)
                        for r in (0, 1)}
            comm = RuntimeComm(world, runtimes)
            numa_a = data_numa_for(cluster.machine(0), data_place)
            numa_b = data_numa_for(cluster.machine(1), data_place)
            lats = _runtime_pingpong(world, comm, LATENCY_SIZE, reps,
                                     numa_a, numa_b)
            key = f"data_{data_place}_thread_{thread_place}"
            result.new_series(key, ylabel="latency (s)").add(0, lats)
            result.observe(key + "_latency_s", float(np.median(lats)))
    return result


def _fig9_point(params: dict) -> dict:
    """One (backoff, size) point of the polling-interference sweep."""
    from repro.runtime.mpi_layer import RuntimeComm
    from repro.runtime.runtime import RuntimeSystem
    from repro.runtime.scheduler import PollingSpec

    backoff = params["backoff"]
    if backoff == "paused":
        polling = PollingSpec(paused=True)
    else:
        polling = PollingSpec(backoff_max_nops=int(backoff))
    size = params["size"]
    s = _spec(params["spec"])
    cluster = Cluster(s, n_nodes=2)
    world = CommWorld(cluster, comm_placement="far")
    runtimes = {r: RuntimeSystem(world, r, polling=polling)
                for r in (0, 1)}
    comm = RuntimeComm(world, runtimes)
    for rt in runtimes.values():
        rt.start()
    numa = cluster.machine(0).nic_numa.id
    lats = _runtime_pingpong(world, comm, size, params["reps"],
                             numa, numa)
    for rt in runtimes.values():
        rt.shutdown()
    return {params["series"]: [stat_row(size, lats)]}


@experiment(title="Runtime latency vs worker-polling backoff",
            tags=("paper", "runtime"), bench=True,
            fast=dict(sizes=[4, 1024], reps=8))
def fig9(spec: MachineSpec | str = "henri",
         sizes: Optional[Sequence[int]] = None,
         backoffs: Sequence[object] = (2, 32, 10000, "paused"),
         reps: int = 12,
         journal: Optional[CampaignJournal] = None) -> ExperimentResult:
    """§5.4: impact of worker polling on runtime latency."""
    if sizes is None:
        sizes = [4, 64, 1024, 16384]
    result = ExperimentResult(
        name="fig9", title="Impact of polling workers on network latency")
    guard = SweepGuard(result, journal)
    keys = []
    for backoff in backoffs:
        key = "paused" if backoff == "paused" else f"backoff_{backoff}"
        keys.append((backoff, key))
        result.new_series(key, xlabel="message size (B)",
                          ylabel="latency (s)")
    guard.run_specs([
        PointSpec(experiment="fig9", key=f"{key}/size={size}",
                  runner="repro.core.experiments:_fig9_point",
                  params=dict(spec=spec, backoff=backoff, series=key,
                              size=size, reps=reps))
        for backoff, key in keys for size in sizes])

    def observations():
        for _backoff, key in keys:
            result.observe(f"{key}_latency_4B_s", result[key].at(4))
    _guarded_observations(result, observations)
    return result


# ---------------------------------------------------------------------------
# §6  Figure 10 — CG and GEMM
# ---------------------------------------------------------------------------

def _fig10_point(params: dict) -> dict:
    """One worker-count point: CG and GEMM at ``nw`` workers."""
    from repro.runtime.apps import run_cg, run_gemm

    spec = params["spec"]
    nw = params["nw"]
    cg = run_cg(spec=spec, n_workers=nw, **params["cg_kwargs"])
    gm = run_gemm(spec=spec, n_workers=nw, **params["gemm_kwargs"])
    return {
        "cg_sending_bw": [value_row(nw, cg.sending_bandwidth)],
        "cg_stall_fraction": [value_row(nw, cg.stall_fraction)],
        "gemm_sending_bw": [value_row(nw, gm.sending_bandwidth)],
        "gemm_stall_fraction": [value_row(nw, gm.stall_fraction)],
    }


@experiment(title="CG vs GEMM: sending bandwidth + memory stalls",
            tags=("paper", "runtime"), bench=True,
            fast=dict(worker_counts=(1, 8, 16, 24, 34)))
def fig10(spec: MachineSpec | str = "henri",
          worker_counts: Sequence[int] = (1, 2, 4, 8, 16, 24, 30, 34),
          cg_kwargs: Optional[dict] = None,
          gemm_kwargs: Optional[dict] = None,
          journal: Optional[CampaignJournal] = None) -> ExperimentResult:
    """§6: normalized sending bandwidth + memory stalls vs worker count."""
    cg_kwargs = dict(cg_kwargs or {})
    gemm_kwargs = dict(gemm_kwargs or {})
    result = ExperimentResult(
        name="fig10",
        title="Network performance and memory stalls of CG and GEMM")
    guard = SweepGuard(result, journal)
    cg_stall = result.new_series("cg_stall_fraction", xlabel="workers",
                                 ylabel="fraction")
    gm_stall = result.new_series("gemm_stall_fraction", xlabel="workers",
                                 ylabel="fraction")
    result.new_series("cg_sending_bw", xlabel="workers", ylabel="bytes/s")
    result.new_series("gemm_sending_bw", xlabel="workers",
                      ylabel="bytes/s")
    s = _spec(spec)
    max_workers = s.n_cores - 2
    guard.run_specs([
        PointSpec(experiment="fig10", key=f"workers={nw}",
                  runner="repro.core.experiments:_fig10_point",
                  params=dict(spec=spec, nw=nw, cg_kwargs=cg_kwargs,
                              gemm_kwargs=gemm_kwargs))
        for nw in dict.fromkeys(min(n, max_workers)
                                for n in worker_counts)])

    # Normalized views + headline numbers.
    def observations():
        for key in ("cg_sending_bw", "gemm_sending_bw"):
            raw = result.series[key]
            norm = result.new_series(key + "_norm", xlabel="workers",
                                     ylabel="normalized")
            peak = max(raw.median)
            for x, v in zip(raw.x, raw.median):
                norm.add_value(x, v / peak if peak > 0 else 0.0)
        result.observe("cg_bw_loss",
                       1.0 - result["cg_sending_bw_norm"].median[-1])
        result.observe("gemm_bw_loss",
                       1.0 - result["gemm_sending_bw_norm"].median[-1])
        result.observe("cg_stall_max", max(cg_stall.median))
        result.observe("gemm_stall_max", max(gm_stall.median))
    _guarded_observations(result, observations)
    return result
