"""Declarative experiment registry: one source of truth for figures.

Before this module existed, adding an experiment meant editing five
hand-synced structures in ``cli.py`` (the name->function table, the
``--fast`` parameter table, the journal-capability set, the bench
subset, and a ``fig5`` special case at every call site).  Now each
experiment module decorates its entry points with :func:`experiment`
and self-registers an :class:`ExperimentDef` at import; every consumer
— CLI dispatch, ``--fast`` profiles, ``--journal``/``--jobs``
capability checks, bench selection, rendering, the EXPERIMENTS.md
record and the scenario layer (:mod:`repro.core.scenario`) — reads the
registry instead of maintaining its own table.

Capability flags are *derived* where possible: an experiment is
journal-capable (equivalently ``--jobs``-parallelisable — both ride on
:class:`~repro.core.executor.PointSpec` sweeps) exactly when its entry
point accepts a ``journal`` keyword, so the flag cannot drift from the
implementation.

Experiment modules are imported lazily on first registry access
(:func:`load`), keeping ``import repro`` light.  Listing order is
canonical — ``PROVIDER_MODULES`` order, then definition order within a
module — regardless of which provider happened to be imported first,
so ``repro list`` and ``repro run all`` are stable even when a library
user imports one experiment module directly.
"""

from __future__ import annotations

import importlib
import inspect
from dataclasses import dataclass, field
from typing import (Callable, Dict, List, Mapping, Optional, Sequence,
                    Tuple)

__all__ = [
    "ExperimentDef", "UnknownExperimentError", "experiment", "register",
    "load", "get", "names", "all_defs", "bench_names", "run_experiment",
    "render_listing",
]

# Modules whose import populates the registry.  A new experiment module
# only has to be added here (and decorate its entry points); every
# consumer picks it up through the registry.
PROVIDER_MODULES: Tuple[str, ...] = (
    "repro.core.experiments",
    "repro.core.overlap",
    "repro.core.multipair",
    "repro.core.gpu_experiments",
    "repro.core.ablations",
    "repro.core.xapp",
)

_REGISTRY: Dict[str, "ExperimentDef"] = {}
# name -> (provider-module rank, registration sequence): the canonical
# listing order, independent of module import order.
_ORDER: Dict[str, Tuple[int, int]] = {}
_SEQ = 0
_LOADED = False


class UnknownExperimentError(KeyError):
    """Raised for an experiment name the registry does not know.

    Subclasses :class:`KeyError` so callers of the historical
    ``EXPERIMENTS[name]`` dict lookup keep working, but carries an
    actionable message naming the valid experiments.
    """

    def __init__(self, name: str, valid: Sequence[str]):
        self.name = name
        self.valid = list(valid)
        super().__init__(name)

    def __str__(self) -> str:
        return (f"unknown experiment {self.name!r}; "
                f"valid experiments: {', '.join(sorted(self.valid))}")


@dataclass(frozen=True)
class ExperimentDef:
    """One registered experiment: entry point + metadata + capabilities.

    ``fast_kwargs`` is the reduced parameter profile substituted by
    ``--fast``; every experiment must have one (enforced by
    ``tests/test_registry.py``) so the whole suite stays smoke-testable.
    ``renderer`` (optional, ``"module:func"`` or callable) overrides the
    default :func:`~repro.core.report.render_experiment`;
    ``multi_result`` marks entry points returning a dict of results
    (fig5's placement panels) rather than a single
    :class:`~repro.core.results.ExperimentResult`.
    """

    name: str
    runner: Callable
    title: str
    doc: str = ""
    tags: Tuple[str, ...] = ()
    fast_kwargs: Mapping[str, object] = field(default_factory=dict)
    journal_capable: bool = False     # == parallel/resume-capable
    bench: bool = False               # timed by `repro bench`
    multi_result: bool = False        # returns {key: ExperimentResult}
    plot_capable: bool = True         # --plot can chart the result
    in_all: bool = True               # included in `repro run all`
    index_key: str = ""               # row id in the DESIGN.md §5 index
    renderer: Optional[object] = None  # callable or "module:func"
    # Scenario-overridable parameter names for ``**kwargs`` entry points
    # (whose own signature says nothing about what the inner driver
    # accepts); empty means "trust the signature".
    scenario_params: Tuple[str, ...] = ()

    # -- execution --------------------------------------------------------
    def run(self, spec: str = "henri", fast: bool = False,
            journal=None, overrides: Optional[Mapping] = None):
        """Run the experiment; the one dispatch path for every consumer.

        ``overrides`` (scenario-layer parameter overrides) are applied
        on top of the ``--fast`` profile, so a scenario can start from
        the fast profile and change only what it needs.
        """
        kwargs = dict(self.fast_kwargs) if fast else {}
        if overrides:
            kwargs.update(overrides)
        if journal is not None:
            if self.journal_capable:
                kwargs["journal"] = journal
            else:
                import logging
                logging.getLogger(__name__).warning(
                    "experiment %s is not journal-capable; running "
                    "without checkpointing", self.name)
        return self.runner(spec=spec, **kwargs)

    # -- rendering --------------------------------------------------------
    def render(self, result) -> str:
        """Text report for this experiment's result object."""
        from repro.core.report import render_experiment
        if self.multi_result:
            return "\n".join(render_experiment(r)
                             for r in result.values())
        renderer = self.renderer
        if renderer is not None:
            if isinstance(renderer, str):
                from repro.core.executor import resolve_runner
                renderer = resolve_runner(renderer)
            return renderer(result)
        return render_experiment(result)

    # -- capabilities -----------------------------------------------------
    def capabilities(self) -> Tuple[str, ...]:
        """Flag names for listings/snapshots (drift-diffable)."""
        caps: List[str] = ["fast"] if self.fast_kwargs else []
        if self.journal_capable:
            caps.append("journal")
        if self.bench:
            caps.append("bench")
        if self.multi_result:
            caps.append("multi")
        if self.plot_capable:
            caps.append("plot")
        return tuple(caps)

    @property
    def kind(self) -> str:
        return self.tags[0] if self.tags else "experiment"

    def signature_params(self) -> Tuple[Dict[str, object], bool]:
        """(named keyword parameters, accepts-arbitrary-kwargs) of the
        entry point — what the scenario layer validates against.

        When ``scenario_params`` is declared, those names extend the
        signature's own and arbitrary kwargs are *not* allowed: the
        declaration replaces the unknowable ``**kwargs``.
        """
        sig = inspect.signature(self.runner)
        named: Dict[str, object] = {}
        var_kw = False
        for pname, p in sig.parameters.items():
            if p.kind is inspect.Parameter.VAR_KEYWORD:
                var_kw = True
            elif p.kind in (inspect.Parameter.POSITIONAL_OR_KEYWORD,
                            inspect.Parameter.KEYWORD_ONLY):
                named[pname] = p.default
        if self.scenario_params:
            for pname in self.scenario_params:
                named.setdefault(pname, None)
            var_kw = False
        return named, var_kw


# ---------------------------------------------------------------------------
# Registration
# ---------------------------------------------------------------------------

def register(defn: ExperimentDef) -> ExperimentDef:
    """Add one definition; duplicate names are a programming error."""
    global _SEQ
    if defn.name in _REGISTRY:
        raise ValueError(f"experiment {defn.name!r} registered twice "
                         f"(existing: {_REGISTRY[defn.name].runner}, "
                         f"new: {defn.runner})")
    module = getattr(defn.runner, "__module__", "")
    rank = PROVIDER_MODULES.index(module) \
        if module in PROVIDER_MODULES else len(PROVIDER_MODULES)
    _REGISTRY[defn.name] = defn
    _ORDER[defn.name] = (rank, _SEQ)
    _SEQ += 1
    return defn


def experiment(name: Optional[str] = None, *, title: str,
               tags: Sequence[str] = (),
               fast: Optional[Mapping[str, object]] = None,
               bench: bool = False, multi_result: bool = False,
               plot: bool = True, in_all: bool = True,
               index_key: Optional[str] = None,
               renderer: Optional[object] = None,
               journal: Optional[bool] = None,
               params: Sequence[str] = ()) -> Callable:
    """Decorator: register the function as a named experiment.

    The journal/parallel capability is detected from the signature (a
    ``journal`` keyword, or ``**kwargs`` forwarding to a driver that
    takes one) rather than declared, so it cannot drift; pass
    ``journal=False`` for a ``**kwargs`` entry point whose driver is
    not sweep-based.
    """
    def wrap(func: Callable) -> Callable:
        exp_name = name or func.__name__
        if journal is not None:
            journal_capable = journal
        else:
            sig_params = inspect.signature(func).parameters
            journal_capable = "journal" in sig_params or any(
                p.kind is inspect.Parameter.VAR_KEYWORD
                for p in sig_params.values())
        register(ExperimentDef(
            name=exp_name, runner=func, title=title,
            doc=inspect.getdoc(func) or "", tags=tuple(tags),
            fast_kwargs=dict(fast or {}),
            journal_capable=journal_capable, bench=bench,
            multi_result=multi_result, plot_capable=plot, in_all=in_all,
            index_key=index_key or exp_name, renderer=renderer,
            scenario_params=tuple(params)))
        return func
    return wrap


# ---------------------------------------------------------------------------
# Queries (all trigger the lazy load)
# ---------------------------------------------------------------------------

def load() -> None:
    """Import every provider module once, populating the registry."""
    global _LOADED
    if _LOADED:
        return
    _LOADED = True
    for module in PROVIDER_MODULES:
        importlib.import_module(module)


def get(name: str) -> ExperimentDef:
    load()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownExperimentError(name, list(_REGISTRY)) from None


def all_defs() -> List[ExperimentDef]:
    """Every definition, in canonical order (``PROVIDER_MODULES``
    order, then definition order within a module)."""
    load()
    return sorted(_REGISTRY.values(), key=lambda d: _ORDER[d.name])


def names(tag: Optional[str] = None, *,
          in_all: Optional[bool] = None) -> List[str]:
    """Registered names, optionally filtered by tag / ``run all``."""
    out = []
    for defn in all_defs():
        if tag is not None and tag not in defn.tags:
            continue
        if in_all is not None and defn.in_all != in_all:
            continue
        out.append(defn.name)
    return out


def bench_names() -> List[str]:
    """The `repro bench` subset: one experiment per modelled layer."""
    return [d.name for d in all_defs() if d.bench]


def run_experiment(name: str, spec: str = "henri", fast: bool = False,
                   journal=None, overrides: Optional[Mapping] = None):
    """Run one named experiment; returns its result object.

    This is the library API behind ``repro run``.  Unknown names raise
    :class:`UnknownExperimentError` (a ``KeyError``) naming the valid
    experiments.
    """
    return get(name).run(spec=spec, fast=fast, journal=journal,
                         overrides=overrides)


def render_listing(long: bool = False) -> str:
    """The `repro list` text; the long form doubles as the CI drift
    snapshot (``tests/data/registry_listing.txt``)."""
    defs = all_defs()
    if not long:
        return "\n".join(d.name for d in defs)
    rows = [(d.name, d.kind, ",".join(d.capabilities()), d.title)
            for d in defs]
    widths = [max(len(r[i]) for r in rows) for i in range(3)]
    return "\n".join(
        f"{n.ljust(widths[0])}  {k.ljust(widths[1])}  "
        f"{c.ljust(widths[2])}  {t}" for n, k, c, t in rows)
