"""GPU-transfer interference experiments (§8 future work).

Asks the paper's final question — what do host<->GPU data movements do
to communications and computations? — with the same §2.1 side-by-side
methodology:

* :func:`gpu_vs_network` — ping-pong performance while a cudaMemcpy
  stream shuttles data between host memory and the device.  H2D reads
  cross the same memory controller the NIC's DMA uses; the network
  bandwidth drops the same way it does under STREAM (Figure 4b's
  mechanism, new traffic source).
* :func:`gpu_vs_stream` — achieved memcpy bandwidth while computing
  cores run STREAM: the GPU link starves exactly like the NIC does.
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence

import numpy as np

from repro.core.placement import compute_core_ids
from repro.core.registry import experiment
from repro.core.results import ExperimentResult
from repro.hardware.gpu import GPU, GPUSpec, V100, attach_gpu
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.kernels.roofline import run_kernel
from repro.kernels.stream import triad_kernel
from repro.mpi.comm import CommWorld
from repro.mpi.pingpong import BANDWIDTH_SIZE, LATENCY_SIZE

__all__ = ["gpu_vs_network", "gpu_vs_stream"]


def _memcpy_loop(gpu: GPU, nbytes: int, out: List[float],
                 stop: dict) -> Generator:
    """Continuously shuttle *nbytes* H2D, recording per-copy bandwidth."""
    while not stop.get("stop"):
        bw = yield from gpu.memcpy_process(nbytes, host_numa=0,
                                           direction="h2d")
        out.append(bw)


@experiment(title="Host<->GPU transfers vs network performance",
            tags=("extension", "gpu"),
            fast=dict(reps=6, chunk=8 << 20))
def gpu_vs_network(spec: MachineSpec | str = "henri",
                   gpu_spec: GPUSpec = V100,
                   chunk: int = 16 << 20,
                   reps: int = 10,
                   n_stream_cores: int = 20) -> ExperimentResult:
    """Marginal impact of GPU memcpy traffic on network performance.

    Both measurements run beside *n_stream_cores* STREAM cores per node
    (an application already using its memory bandwidth, the realistic
    case); the "with GPU" one adds a continuous H2D memcpy stream on
    each node.  The delta isolates what the GPU's data movements cost
    the network — the paper's §8 question.
    """
    s = get_preset(spec) if isinstance(spec, str) else spec
    result = ExperimentResult(
        name="gpu_vs_network",
        title="Host<->GPU transfers vs network performance")

    for message_size, key in ((LATENCY_SIZE, "latency"),
                              (BANDWIDTH_SIZE, "bandwidth")):
        series = result.new_series(key, xlabel="gpu traffic",
                                   ylabel="seconds")
        for with_gpu in (False, True):
            cluster = Cluster(s, n_nodes=2)
            world = CommWorld(cluster, comm_placement="far")
            comm_cores = {r.node_id: r.comm_core for r in world.ranks}
            runs = []
            for machine in cluster.machines:
                for core in compute_core_ids(
                        machine, n_stream_cores,
                        comm_cores[machine.node_id]):
                    runs.append(run_kernel(machine, core, triad_kernel(),
                                           data_numa=0, sweeps=None))
            copies: List[float] = []
            stop = {"stop": False}
            if with_gpu:
                for machine in cluster.machines:
                    gpu = attach_gpu(machine, gpu_spec)
                    cluster.sim.process(
                        _memcpy_loop(gpu, chunk, copies, stop))
            from repro.mpi.pingpong import PingPong
            pingpong = PingPong(world)
            lats: List[float] = []
            proc = cluster.sim.process(pingpong.process(
                message_size, reps, out=lats))
            while not proc.triggered:
                cluster.sim.step()
            stop["stop"] = True
            for r in runs:
                r.request_stop()
            series.add(1.0 if with_gpu else 0.0, lats)
            if with_gpu and copies:
                result.observe(f"memcpy_bw_during_{key}",
                               float(np.median(copies)))
    lat = result["latency"]
    bw = result["bandwidth"]
    result.observe("latency_ratio", lat.at(1) / lat.at(0))
    result.observe("bandwidth_ratio", bw.at(0) / bw.at(1))
    return result


@experiment(title="Host->GPU copy bandwidth under memory contention",
            tags=("extension", "gpu"),
            fast=dict(core_counts=[0, 4, 12], copies_per_point=4))
def gpu_vs_stream(spec: MachineSpec | str = "henri",
                  gpu_spec: GPUSpec = V100,
                  core_counts: Optional[Sequence[int]] = None,
                  chunk: int = 16 << 20,
                  copies_per_point: int = 8) -> ExperimentResult:
    """Achieved H2D bandwidth vs the number of STREAM cores."""
    s = get_preset(spec) if isinstance(spec, str) else spec
    if core_counts is None:
        core_counts = [0, 2, 4, 8, 12, 17]
    result = ExperimentResult(
        name="gpu_vs_stream",
        title="Host->GPU copy bandwidth under memory contention")
    series = result.new_series("memcpy_bw", xlabel="computing cores",
                               ylabel="bytes/s")
    for n in core_counts:
        cluster = Cluster(s, n_nodes=1)
        machine = cluster.machine(0)
        gpu = attach_gpu(machine, gpu_spec)
        runs = [run_kernel(machine, core, triad_kernel(), data_numa=0,
                           sweeps=None)
                for core in compute_core_ids(machine, n, comm_core=-1)]
        bws: List[float] = []

        def copies() -> Generator:
            for _ in range(copies_per_point):
                bw = yield from gpu.memcpy_process(chunk, host_numa=0)
                bws.append(bw)

        proc = cluster.sim.process(copies())
        while not proc.triggered:
            cluster.sim.step()
        for r in runs:
            r.request_stop()
        series.add(n, bws)
    base = series.median[0]
    result.observe("memcpy_bw_alone", base)
    result.observe("memcpy_bw_min_ratio", min(series.median) / base)
    return result
