"""Communication/computation overlap benchmark (extension).

The paper's related work cites Denis & Trahay's MPI overlap benchmark
[7], which measures how well a library makes communication progress
while the host computes.  This module reproduces that methodology on the
simulator:

* ``t_comm``    — a message alone;
* ``t_comp``    — a computation phase alone;
* ``t_overlap`` — post the message, compute, then wait for completion.

A perfect-overlap system gives ``t_overlap ≈ max(t_comm, t_comp)``; no
overlap gives the sum.  The **overlap ratio**

``(t_comm + t_comp - t_overlap) / min(t_comm, t_comp)``

is 1 for full overlap and 0 for none.  Because this simulator models a
*dedicated communication thread* (the paper's methodology), overlap is
structurally good — except where the two activities interfere through
the memory bus, which is exactly the §4 coupling: overlapping a large
message with memory-bound compute yields a ratio well below 1 even
though progress is perfect.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.executor import PointSpec, value_row
from repro.core.experiments import _guarded_observations
from repro.core.placement import Placement, compute_core_ids, data_numa_for
from repro.core.registry import experiment
from repro.core.results import ExperimentResult
from repro.core.sidebyside import SideBySideConfig, build_world
from repro.kernels.roofline import Kernel, run_kernel
from repro.kernels.stream import triad_kernel, tunable_triad

__all__ = ["OverlapResult", "measure_overlap", "overlap_experiment"]


@dataclass
class OverlapResult:
    """One overlap measurement."""

    message_size: int
    n_compute_cores: int
    t_comm: float
    t_comp: float
    t_overlap: float

    @property
    def overlap_ratio(self) -> float:
        """1 = full overlap, 0 = fully serialised."""
        saved = self.t_comm + self.t_comp - self.t_overlap
        denom = min(self.t_comm, self.t_comp)
        return saved / denom if denom > 0 else 0.0

    @property
    def slowdown(self) -> float:
        """t_overlap relative to the ideal max(comm, comp)."""
        ideal = max(self.t_comm, self.t_comp)
        return self.t_overlap / ideal if ideal > 0 else 1.0


def _transfer_once(world, pingpong, size) -> float:
    engine = world.engine
    buf_a, buf_b = pingpong._buffers(size)  # noqa: SLF001
    a, b = pingpong.rank_a, pingpong.rank_b
    proc = world.sim.process(engine.half_transfer(
        a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core, buf_b,
        size))
    world.sim.run()
    return proc.value.duration


def _compute_once(cluster, config, world) -> float:
    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    machine = cluster.machine(0)
    cores = compute_core_ids(machine, config.n_compute_cores,
                             comm_cores[0])
    data_numa = data_numa_for(machine, config.placement.data)
    runs = [run_kernel(machine, core, config.kernel_factory(),
                       data_numa=data_numa, sweeps=config.sweeps)
            for core in cores]
    cluster.sim.run()
    return max(r.stats.duration for r in runs)


def measure_overlap(message_size: int, n_compute_cores: int = 8,
                    kernel_factory: Callable[[], Kernel] = None,
                    sweeps: int = 1,
                    placement: Optional[Placement] = None,
                    spec="henri", seed: int = 0) -> OverlapResult:
    """Measure comm-alone, comp-alone, and overlapped durations."""
    if kernel_factory is None:
        kernel_factory = lambda: triad_kernel(elems=2_000_000)  # noqa: E731
    if placement is None:
        placement = Placement("near", "far")
    config = SideBySideConfig(
        spec=spec, n_compute_cores=n_compute_cores, placement=placement,
        kernel_factory=kernel_factory, message_size=message_size,
        sweeps=sweeps, seed=seed)

    # Message alone (registration warmed first).
    cluster, world, pingpong = build_world(config)
    _transfer_once(world, pingpong, message_size)
    t_comm = _transfer_once(world, pingpong, message_size)

    # Computation alone.
    cluster, world, _ = build_world(config)
    t_comp = _compute_once(cluster, config, world)

    # Overlapped: post the send, compute, wait for both.
    cluster, world, pingpong = build_world(config)
    engine = world.engine
    buf_a, buf_b = pingpong._buffers(message_size)  # noqa: SLF001
    a, b = pingpong.rank_a, pingpong.rank_b
    # Warm the registration cache without perturbing the measurement.
    warm = world.sim.process(engine.half_transfer(
        a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core, buf_b,
        message_size))
    cluster.sim.run()

    t0 = cluster.sim.now
    comm_proc = world.sim.process(engine.half_transfer(
        a.node_id, a.comm_core, buf_a, b.node_id, b.comm_core, buf_b,
        message_size))
    comm_cores = {r.node_id: r.comm_core for r in world.ranks}
    machine = cluster.machine(0)
    cores = compute_core_ids(machine, n_compute_cores, comm_cores[0])
    data_numa = data_numa_for(machine, placement.data)
    runs = [run_kernel(machine, core, kernel_factory(),
                       data_numa=data_numa, sweeps=sweeps)
            for core in cores]
    cluster.sim.run()
    t_overlap = cluster.sim.now - t0

    return OverlapResult(message_size=message_size,
                         n_compute_cores=n_compute_cores,
                         t_comm=t_comm, t_comp=t_comp,
                         t_overlap=t_overlap)


def _overlap_point(params: dict) -> dict:
    """One message size of the overlap sweep (runs in a worker)."""
    cursor = params["cursor"]
    size = params["size"]
    res = measure_overlap(
        size, n_compute_cores=params["n_compute_cores"],
        kernel_factory=lambda: tunable_triad(cursor, elems=2_000_000),
        spec=params["spec"])
    return {"overlap_ratio": [value_row(size, res.overlap_ratio)],
            "slowdown_vs_ideal": [value_row(size, res.slowdown)]}


@experiment(name="overlap",
            title="Communication/computation overlap efficiency",
            tags=("extension", "overlap"),
            fast=dict(sizes=[65536, 1 << 20, 16 << 20],
                      n_compute_cores=6))
def overlap_experiment(sizes: Optional[Sequence[int]] = None,
                       n_compute_cores: int = 8,
                       cursor: int = 1,
                       spec="henri",
                       journal: Optional[CampaignJournal] = None,
                       ) -> ExperimentResult:
    """Overlap ratio across message sizes (one row of the [7] matrix)."""
    if sizes is None:
        sizes = [4096, 65536, 1 << 20, 8 << 20, 64 << 20]
    result = ExperimentResult(
        name="overlap",
        title="Communication/computation overlap efficiency")
    guard = SweepGuard(result, journal)
    ratio = result.new_series("overlap_ratio", xlabel="message size (B)",
                              ylabel="ratio")
    slow = result.new_series("slowdown_vs_ideal",
                             xlabel="message size (B)", ylabel="x")
    guard.run_specs([
        PointSpec(experiment="overlap", key=f"size={size}",
                  runner="repro.core.overlap:_overlap_point",
                  params=dict(spec=spec, size=size, cursor=cursor,
                              n_compute_cores=n_compute_cores))
        for size in sizes])

    def observations():
        result.observe("min_overlap_ratio", min(ratio.median))
        result.observe("max_slowdown", max(slow.median))
    _guarded_observations(result, observations)
    return result
