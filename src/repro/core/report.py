"""ASCII rendering of experiment results and EXPERIMENTS.md generation.

The paper reports figures; without a plotting dependency we render each
figure's series as aligned text tables, and assemble the
paper-vs-measured record into ``EXPERIMENTS.md``.
"""

from __future__ import annotations

import io
from typing import Dict, Iterable, List, Optional, Sequence

from repro.core.results import ExperimentResult, Series

__all__ = ["render_table", "render_series", "render_experiment",
           "render_table1", "write_experiments_md", "format_si",
           "collect_harness_failures", "render_failure_table"]


def format_si(value: float, unit: str = "") -> str:
    """Human-readable engineering formatting (µ, m, k, M, G)."""
    if value == 0:
        return f"0{unit}"
    abs_v = abs(value)
    for factor, prefix in ((1e9, "G"), (1e6, "M"), (1e3, "k")):
        if abs_v >= factor:
            return f"{value/factor:.3g}{prefix}{unit}"
    if abs_v >= 1:
        return f"{value:.3g}{unit}"
    for factor, prefix in ((1e-3, "m"), (1e-6, "u"), (1e-9, "n")):
        if abs_v >= factor:
            return f"{value/factor:.3g}{prefix}{unit}"
    return f"{value:.3g}{unit}"


def render_table(headers: Sequence[str], rows: Iterable[Sequence[object]],
                 ) -> str:
    """Monospace table with aligned columns."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    sep = "  ".join("-" * w for w in widths)
    body = "\n".join("  ".join(c.ljust(w) for c, w in zip(row, widths))
                     for row in str_rows)
    return f"{line}\n{sep}\n{body}" if str_rows else f"{line}\n{sep}"


def render_series(series: Series, unit: str = "") -> str:
    """One series as an x / p10 / median / p90 table."""
    rows = [(format_si(x), format_si(p10, unit), format_si(med, unit),
             format_si(p90, unit))
            for x, p10, med, p90 in zip(series.x, series.p10,
                                        series.median, series.p90)]
    header = [series.xlabel or "x", "p10", "median", "p90"]
    return f"# {series.label}\n" + render_table(header, rows)


def render_experiment(result: ExperimentResult) -> str:
    """Full text report of one experiment."""
    out = io.StringIO()
    out.write(f"== {result.name}: {result.title} ==\n")
    # Multi-seed campaigns annotate the header; single-trial output is
    # byte-identical to the pre-trial renderer.
    trials = (result.meta.get("sweep") or {}).get("trials", 1) \
        if getattr(result, "meta", None) else 1
    if trials > 1:
        out.write(f"({trials} seeded trials per point; medians are "
                  f"taken over the per-trial medians, bands are the "
                  f"trial envelope)\n")
    for key in sorted(result.series):
        out.write("\n")
        out.write(render_series(result.series[key]))
        out.write("\n")
    if result.observations:
        out.write("\nObservations:\n")
        for key in sorted(result.observations):
            value = result.observations[key]
            if isinstance(value, float):
                value = format_si(value)
            out.write(f"  {key}: {value}\n")
    if result.failures:
        simulated = {k: v for k, v in result.failures.items()
                     if not v.get("harness")}
        harness = {k: v for k, v in result.failures.items()
                   if v.get("harness")}
        if simulated:
            out.write("\nFailed points (fault injection):\n")
            for key in sorted(simulated):
                info = simulated[key]
                detail = info.get("message") or info.get("error") or "failed"
                out.write(f"  {key}: {detail}\n")
        if harness:
            # Harness-level losses (worker crash / point timeout with
            # retries exhausted): the sweep is degraded and these points
            # are holes in the series above, not simulation outcomes.
            out.write("\nMissing points (harness failures, "
                      "sweep degraded):\n")
            for key in sorted(harness):
                info = harness[key]
                detail = info.get("message") or info.get("error") or "lost"
                attempts = info.get("attempts")
                suffix = f" [after {attempts} attempt(s)]" \
                    if attempts is not None else ""
                out.write(f"  {key}: [hole] {detail}{suffix}\n")
    return out.getvalue()


def collect_harness_failures(results: Dict[str, object]) -> List[dict]:
    """Flatten harness-level point failures out of ``{name: result}``.

    Accepts plain :class:`ExperimentResult` values and the
    ``multi_result`` dict-of-results shape alike.  Only failures marked
    ``harness`` (worker crash / timeout, retries exhausted) are
    returned — simulated-fault failures are expected experiment output
    and do not degrade a campaign.
    """
    out: List[dict] = []
    for result in results.values():
        parts = result.values() if isinstance(result, dict) else [result]
        for res in parts:
            failures = getattr(res, "failures", None) or {}
            for key in sorted(failures):
                info = failures[key]
                if not info.get("harness"):
                    continue
                out.append({
                    "experiment": getattr(res, "name", "?"),
                    "key": key,
                    "error": info.get("error", "?"),
                    "attempts": info.get("attempts", "?"),
                    "message": info.get("message", ""),
                })
    return out


def render_failure_table(failures: List[dict]) -> str:
    """Per-point failure table printed when a campaign degrades."""
    rows = [[f["experiment"], f["key"], f["error"], f["attempts"],
             f["message"]] for f in failures]
    return render_table(
        ["experiment", "point", "error", "attempts", "message"], rows)


def render_table1(result: ExperimentResult) -> str:
    """Paper Table 1: placement-impact summary (registered as the
    ``table1`` experiment's renderer)."""
    rows = [[r["data"], r["comm_thread"],
             f'{r["latency_impact_from_cores"]}',
             f'{r["latency_max_ratio"]:.2f}x',
             f'{r["bandwidth_min_ratio"]:.2f}']
            for r in result.meta["rows"]]
    return render_table(
        ["data", "comm thread", "lat. impact from cores",
         "lat. max ratio", "bw min ratio"], rows)


def write_experiments_md(sections: Dict[str, str],
                         path: str = "EXPERIMENTS.md",
                         title: str = "Experiment record") -> str:
    """Assemble named sections into a markdown file; returns the text."""
    out = io.StringIO()
    out.write(f"# {title}\n\n")
    for name in sections:
        out.write(f"## {name}\n\n```\n{sections[name].rstrip()}\n```\n\n")
    text = out.getvalue()
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text
