"""Paper-vs-measured record: builds EXPERIMENTS.md.

:data:`PAPER_CLAIMS` captures every quantitative claim of the paper's
evaluation, one entry per figure/table.  :func:`build_experiments_md`
runs the experiments (at a chosen resolution), extracts the matching
measured values and writes the side-by-side record.
"""

from __future__ import annotations

import io
import time
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.report import format_si

__all__ = ["PAPER_CLAIMS", "build_experiments_md",
           "render_registry_index"]

# (figure id, paper claim, extractor(results) -> measured string)
# ``results`` is the dict of experiment results keyed by figure id.
PAPER_CLAIMS: List[Tuple[str, str, Callable]] = [
    ("fig1a", "Latency 1.8 us at 2.3 GHz vs 3.1 us at 1.0 GHz core "
              "frequency",
     lambda r: f"{r['fig1a'].observations['latency_high_core_s']*1e6:.2f} us"
               f" vs {r['fig1a'].observations['latency_low_core_s']*1e6:.2f}"
               " us"),
    ("fig1b", "Bandwidth 10.5 GB/s at 2.4 GHz vs 10.1 GB/s at 1.2 GHz "
              "uncore frequency; core frequency no effect asymptotically",
     lambda r: f"{r['fig1b'].observations['bandwidth_uncore_max']/1e9:.2f}"
               f" vs {r['fig1b'].observations['bandwidth_uncore_min']/1e9:.2f}"
               " GB/s"),
    ("fig2", "Latency better with side-by-side CPU-bound compute: "
             "1.52 us vs 1.7 us alone; idle cores at min frequency",
     lambda r: f"{r['fig2'].observations['latency_together_s']*1e6:.2f} us "
               f"together vs "
               f"{r['fig2'].observations['latency_alone_s']*1e6:.2f} us "
               f"alone; idle "
               f"{r['fig2'].observations['compute_core_ghz_B']:.1f} GHz"),
    ("fig3a", "AVX512 weak scaling: 135 ms on 4 cores (3 GHz) vs 210 ms "
              "on 20 cores (2.3 GHz); latency never degraded (1.33 vs "
              "1.49 us, slightly better together)",
     lambda r: f"{r['fig3a']['compute_alone'].at(4)*1e3:.0f} ms on 4 cores"
               f" vs {r['fig3a']['compute_alone'].at(20)*1e3:.0f} ms on 20;"
               f" latency together/alone at 20 cores: "
               f"{r['fig3a']['latency_together'].at(20)*1e6:.2f}/"
               f"{r['fig3a']['latency_alone'].at(20)*1e6:.2f} us"),
    ("fig4a", "Latency impacted from ~22 computing cores, doubling at 36 "
              "(data near NIC, thread far); STREAM unaffected by the "
              "latency ping-pong",
     lambda r: f"impacted from "
               f"{r['fig4a'].observations['comm_impact_from_cores']:.0f} "
               f"cores, x"
               f"{r['fig4a'].observations['latency_max_ratio']:.2f} worst"),
    ("fig4b", "Bandwidth impacted from 3 computing cores, reduced by "
              "almost two thirds with all cores; STREAM loses at most "
              "25% (at ~5 cores)",
     lambda r: f"impacted from "
               f"{r['fig4b'].observations['bandwidth_impact_from_cores']:.0f}"
               f" cores, worst ratio "
               f"{r['fig4b'].observations['bandwidth_min_ratio']:.2f}"),
    ("table1", "Near comm thread: slight latency increase from ~6 cores "
               "(~2 us plateau). Far comm thread: strong increase from "
               "~25 cores (x2). Near data: bandwidth decreases steadily; "
               "far data: abruptly.",
     lambda r: "; ".join(
         f"{row['data']}/{row['comm_thread']}: "
         f"x{row['latency_max_ratio']:.2f} lat, "
         f"bw ratio {row['bandwidth_min_ratio']:.2f}"
         for row in r['table1'].meta['rows'])),
    ("fig6a", "5 computing cores: communications degraded from 64 KB "
              "messages, STREAM from 4 KB",
     lambda r: f"comm from "
               f"{format_si(r['fig6a'].observations['comm_degraded_from_size'] or 0, 'B')},"
               f" STREAM from "
               f"{format_si(r['fig6a'].observations['stream_degraded_from_size'] or 0, 'B')}"),
    ("fig6b", "35 computing cores: communications degraded from 128 B, "
              "STREAM from 4 KB",
     lambda r: f"comm from "
               f"{format_si(r['fig6b'].observations['comm_degraded_from_size'] or 0, 'B')},"
               f" STREAM from "
               f"{format_si(r['fig6b'].observations['stream_degraded_from_size'] or 0, 'B')}"),
    ("fig7a", "Below ~6 flop/B the latency doubles and computing "
              "duration is constant; above, communication recovers",
     lambda r: f"low-intensity latency ratio "
               f"{r['fig7a']['comm_together'].at(1/12) / r['fig7a']['comm_alone'].median[0]:.2f}x;"
               f" recovery complete by "
               f"{r['fig7a'].observations['ridge_flop_per_byte']:.0f} flop/B"),
    ("fig7b", "Below ~6 flop/B the bandwidth drops by 60% and "
              "computation is slowed by 10%",
     lambda r: f"bw drop "
               f"{(1 - r['fig7b']['comm_together_bw'].at(1/12) / r['fig7b']['comm_together_bw'].at(40))*100:.0f}%,"
               f" compute slowdown "
               f"{(r['fig7b']['compute_together'].at(1/12) / r['fig7b']['compute_alone'].at(1/12) - 1)*100:.0f}%"),
    ("runtime_overhead", "StarPU latency overhead: +38 us on henri "
                         "(+23 us billy, +45 us pyxis)",
     lambda r: f"+{r['runtime_overhead'].observations['overhead_s']*1e6:.1f}"
               " us on henri"),
    ("fig8", "What matters most is data and the comm thread on the same "
             "NUMA node",
     lambda r: "; ".join(
         f"{k.replace('_latency_s', '')}: {v*1e6:.1f} us"
         for k, v in sorted(r['fig8'].observations.items()))),
    ("fig9", "Latency higher the more often workers poll; huge backoff "
             "equivalent to paused workers",
     lambda r: "; ".join(
         f"{k}: {r['fig9'].observations[f'{k}_latency_4B_s']*1e6:.1f} us"
         for k in ("backoff_2", "backoff_32", "backoff_10000", "paused"))),
    ("fig10", "Sending bandwidth loss up to 90% for CG vs ~20% for GEMM; "
              "70% vs 20% of cycles stalled on memory",
     lambda r: f"CG loss {r['fig10'].observations['cg_bw_loss']*100:.0f}% "
               f"(stalls {r['fig10'].observations['cg_stall_max']*100:.0f}%)"
               f" vs GEMM loss "
               f"{r['fig10'].observations['gemm_bw_loss']*100:.0f}% "
               f"(stalls "
               f"{r['fig10'].observations['gemm_stall_max']*100:.0f}%)"),
]


KNOWN_DEVIATIONS = """
## Known deviations

* **fig6b** — the paper reports communications degraded only from 128 B
  with 35 computing cores, but its own Figure 4a shows the 4 B latency
  doubling under the same load; our model follows Figure 4a, so the
  degradation is visible at every message size (the paper's fig-6b
  curves likely hide the small-size effect in the bandwidth-scale plot).
* **runtime_overhead** — measured ≈ +42 µs vs the paper's +38 µs: the
  default far-from-NIC comm-thread placement adds the §5.3 NUMA-mismatch
  penalty on both sides; with matched placement the overhead is 38 µs.
* **fig7a** — the recovery *onset* sits at the paper's ~6 flop/B; the
  reported number is where recovery *completes* (~2x higher).
* **fig10** — CG sending-bandwidth loss lands at ~75-85 % ("up to 90 %"
  in the paper) and GEMM at ~30 % (~20 %); the ordering, the stall
  split and the monotone trends match.
* **uncore-only latency effect** — ~9-11 % here vs "+5 %" in the paper;
  both negligible against the +72 % core-frequency effect, as the paper
  stresses.
"""


def render_registry_index() -> str:
    """Markdown index of every registered experiment (from the
    registry, so it cannot drift from what `repro run` accepts)."""
    from repro.core import registry

    out = io.StringIO()
    out.write("| Experiment | Kind | Capabilities | Title |\n")
    out.write("|---|---|---|---|\n")
    for defn in registry.all_defs():
        caps = ", ".join(defn.capabilities())
        out.write(f"| {defn.name} | {defn.kind} | {caps} | "
                  f"{defn.title} |\n")
    return out.getvalue()


def build_experiments_md(path: Optional[str] = "EXPERIMENTS.md",
                         fast: bool = True,
                         spec: str = "henri",
                         verbose: bool = False) -> str:
    """Run every experiment and write the paper-vs-measured record."""
    from repro.core.registry import run_experiment

    results: Dict[str, object] = {}
    timings: Dict[str, float] = {}
    needed = {fig for fig, _, _ in PAPER_CLAIMS}
    for fig in sorted(needed):
        t0 = time.time()
        results[fig] = run_experiment(fig, spec=spec, fast=fast)
        timings[fig] = time.time() - t0
        if verbose:
            print(f"[{fig}: {timings[fig]:.1f}s]", flush=True)

    out = io.StringIO()
    out.write("# EXPERIMENTS — paper vs. measured\n\n")
    out.write(
        "Reproduction record for *Interferences between Communications "
        "and Computations in Distributed HPC Systems* (ICPP 2021) on the "
        f"`{spec}` simulated cluster"
        f"{' (fast parameters)' if fast else ''}.  The substrate is a "
        "calibrated simulator (see DESIGN.md), so the *shapes* — "
        "orderings, thresholds and rough factors — are the reproduction "
        "target, not exact absolute values.\n\n")
    out.write("| Figure | Paper claim | Measured here |\n")
    out.write("|---|---|---|\n")
    for fig, claim, extract in PAPER_CLAIMS:
        measured = extract(results)
        out.write(f"| {fig} | {claim} | {measured} |\n")
    out.write(KNOWN_DEVIATIONS)
    out.write("\n## Experiment index\n\n")
    out.write("Generated from the experiment registry "
              "(`repro list --long`); extensions and ablations run via "
              "the same CLI but are not part of the paper-claims table "
              "above.\n\n")
    out.write(render_registry_index())
    out.write("\n## Runtimes\n\n")
    for fig in sorted(timings):
        out.write(f"- {fig}: {timings[fig]:.1f}s\n")
    out.write(
        "\nRegenerate with `python -m repro run all"
        f"{' --fast' if fast else ''} --out EXPERIMENTS_RUN.md`, or each "
        "figure individually via `pytest benchmarks/ --benchmark-only`.\n")
    text = out.getvalue()
    if path:
        with open(path, "w") as fh:
            fh.write(text)
    return text
