"""Cross-application interference on a shared fabric (``fig_xapp``).

The paper measures interference between communications and computations
*inside* one node; at rack scale a second channel appears — independent
applications contending for shared fabric links.  This experiment
quantifies it the paper's way: a victim ping-pong is probed while an
aggressor application drives traffic across the same fat-tree uplinks or
dragonfly global links, sweeping the number of aggressor streams.

Placement is *provably* colliding, not probabilistic: for each topology
the aggressor pairs are chosen so their minimal routes cross the same
fabric edge as the victim's (dragonfly: same group pair → same global
link; fat-tree: same ``(src+dst) % spines`` class → same uplink).  On a
full mesh the pairs share no links — the sweep then shows the flat
baseline that motivates real topologies.

Every application carries its own telemetry identity (``app=`` metric
labels, per-app journal series ``app_bw[<name>]``), so campaign journals
and the HTML report attribute fabric traffic per application.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.apps import AppSpec, run_apps
from repro.core.campaign import CampaignJournal, SweepGuard
from repro.core.executor import PointSpec, stat_row, value_row
from repro.core.registry import experiment
from repro.core.results import ExperimentResult
from repro.hardware.fabric import Dragonfly, FatTree, make_topology
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster

__all__ = ["fig_xapp", "xapp_placements"]


def _spec(spec: MachineSpec | str) -> MachineSpec:
    return get_preset(spec) if isinstance(spec, str) else spec


def xapp_placements(topo, n_nodes: int,
                    streams: int) -> Tuple[Tuple[int, int],
                                           List[Tuple[int, int]]]:
    """Victim pair + *streams* aggressor pairs sharing the victim's links.

    *topo* is a built :class:`~repro.hardware.fabric.Topology`.  Raises
    a descriptive error when the topology is too small for the request.
    """
    if isinstance(topo, Dragonfly):
        gs = topo.group_size
        if topo.n_groups < 2:
            raise ValueError(
                "xapp needs >= 2 dragonfly groups for a cross-group "
                "victim route")
        if streams >= gs:
            raise ValueError(
                f"at most group_size-1 = {gs - 1} aggressor streams fit "
                f"alongside the victim in one dragonfly group pair")
        # Victim group0.r0 <-> group1.r0; aggressor j group0.rj <->
        # group1.rj — every pair crosses the df.g0->g1 / df.g1->g0
        # global links of the victim's route.
        victim = (0, gs)
        pairs = [(j, gs + j) for j in range(1, streams + 1)]
        return victim, pairs
    if isinstance(topo, FatTree):
        hpl, spines = topo.hosts_per_leaf, topo.spines
        if topo.n_leaves < 2:
            raise ValueError(
                "xapp needs >= 2 fat-tree leaves for a cross-leaf "
                "victim route")
        victim = (0, hpl)
        target = topo.spine_of(*victim)
        pairs: List[Tuple[int, int]] = []
        used = {victim[0], victim[1]}
        for a in range(1, hpl):
            if len(pairs) == streams:
                break
            for b in range(hpl + 1, min(2 * hpl, n_nodes)):
                if b in used:
                    continue
                if topo.spine_of(a, b) == target:
                    pairs.append((a, b))
                    used.update((a, b))
                    break
        if len(pairs) < streams:
            raise ValueError(
                f"only {len(pairs)} colliding aggressor pairs fit on "
                f"this fat-tree (hosts_per_leaf={hpl}, spines={spines}); "
                f"asked for {streams}")
        return victim, pairs
    # Full mesh / torus: sequential pairs off the victim's nodes.  On a
    # full mesh they share no fabric links (flat-baseline control); on a
    # torus collisions depend on dimension-order geometry.
    victim = (0, 1)
    needed = 2 + 2 * streams
    if needed > n_nodes:
        raise ValueError(
            f"{streams} aggressor pairs need {needed} nodes, cluster "
            f"has {n_nodes}")
    pairs = [(2 * j, 2 * j + 1) for j in range(1, streams + 1)]
    return victim, pairs


def _xapp_point(params: dict) -> dict:
    """One (aggressor streams = k) co-scheduling point."""
    s = _spec(params["spec"])
    topo = make_topology(params["topology"],
                         **(params.get("topology_params") or {}))
    cluster = Cluster(s, n_nodes=params["n_nodes"], topology=topo)
    k = params["streams"]
    apps_cfg = params.get("apps")
    if apps_cfg:
        # Explicit scenario placements: first app is the victim; k == 0
        # runs it alone (the baseline point), k > 0 co-schedules all.
        specs = [AppSpec.from_dict(dict(a)) for a in apps_cfg]
        if k == 0:
            specs = specs[:1]
    else:
        victim, pairs = xapp_placements(cluster.topology,
                                        params["n_nodes"], k)
        specs = [AppSpec(name="victim", pattern="pingpong", nodes=victim,
                         size=params["size"], reps=params["reps"])]
        for j, pair in enumerate(pairs, start=1):
            specs.append(AppSpec(
                name=f"agg{j}", pattern="pingpong", nodes=pair,
                size=params["aggressor_size"], reps=params["reps"]))
    results = run_apps(cluster, specs)
    victim_res = results[specs[0].name]
    rows = {
        "victim_bw": [stat_row(k, victim_res.size / victim_res.latencies)],
        "victim_latency": [stat_row(k, victim_res.latencies)],
        "aggressor_bw": [value_row(k, sum(
            r.aggregate_bandwidth for name, r in results.items()
            if name != specs[0].name))],
    }
    # Per-app journal series: each application's aggregate goodput.
    for name in sorted(results):
        rows[f"app_bw[{name}]"] = [value_row(
            k, results[name].aggregate_bandwidth)]
    return rows


@experiment(name="fig_xapp",
            title="Cross-application interference on a shared fabric",
            tags=("extension", "cluster"), bench=True,
            params=("topology", "n_nodes", "streams", "size",
                    "aggressor_size", "reps", "topology_params", "apps"),
            fast=dict(n_nodes=16, streams=[0, 1, 3],
                      topology_params=dict(group_size=4),
                      size=1 << 20, aggressor_size=4 << 20, reps=3))
def fig_xapp(spec: MachineSpec | str = "henri",
             topology: str = "dragonfly",
             n_nodes: int = 64,
             streams: Optional[Sequence[int]] = None,
             size: int = 1 << 20,
             aggressor_size: int = 4 << 20,
             reps: int = 6,
             topology_params: Optional[dict] = None,
             apps: Optional[List[dict]] = None,
             journal: Optional[CampaignJournal] = None) -> ExperimentResult:
    """Victim ping-pong bandwidth vs. co-scheduled aggressor streams.

    Default mode generates provably colliding placements on *topology*
    and sweeps the aggressor stream count.  With explicit *apps* (the
    scenario ``[[apps]]`` tables) the first app is the victim and the
    sweep degenerates to two points: the victim alone (``x = 0``) and
    all applications co-scheduled (``x = 1``).
    """
    if streams is None:
        streams = [0, 1, 2, 4, 6] if apps is None else [0, 1]
    if apps is not None:
        streams = [k for k in streams if k in (0, 1)] or [0, 1]
    result = ExperimentResult(
        name="fig_xapp",
        title="Cross-application interference on a shared fabric")
    result.new_series("victim_bw", xlabel="aggressor streams",
                      ylabel="victim bandwidth (B/s)")
    result.new_series("victim_latency", xlabel="aggressor streams",
                      ylabel="victim latency (s)")
    result.new_series("aggressor_bw", xlabel="aggressor streams",
                      ylabel="aggressor aggregate bandwidth (B/s)")
    guard = SweepGuard(result, journal)
    specs = [PointSpec(
        experiment="fig_xapp", key=f"streams={k}",
        runner="repro.core.xapp:_xapp_point",
        params=dict(spec=spec, topology=topology,
                    topology_params=topology_params, n_nodes=n_nodes,
                    streams=k, size=size, aggressor_size=aggressor_size,
                    reps=reps, apps=apps)) for k in streams]
    guard.run_specs(specs)

    def observations():
        bw = result["victim_bw"]
        base = bw.at(min(streams))
        loaded = bw.at(max(streams))
        if base:
            result.observe("victim_bw_retained", loaded / base)
        result.observe("victim_bw_alone", base)
        result.observe("victim_bw_contended", loaded)
    from repro.core.experiments import _guarded_observations
    _guarded_observations(result, observations)
    return result
