"""Resumable experiment campaigns: per-point error boundaries + journal.

A figure is a sweep of independent points (one simulated cluster per
point).  Under fault injection a point may die mid-run — e.g. a
fail-stop node raises :class:`~repro.faults.reliability.TransportError`
through the ping-pong — and without a boundary that would lose the whole
campaign.  :class:`SweepGuard` wraps each point:

* on success, the point's appended series rows are written to a
  :class:`CampaignJournal` (JSON lines, one entry per point);
* on failure, partially-appended rows are rolled back so the series
  stay rectangular, and a structured failure annotation is recorded in
  ``ExperimentResult.failures`` (and journaled);
* on resume, previously-``ok`` points are replayed from the journal
  bit-identically (Python's ``json`` round-trips floats exactly) and
  only failed/missing points are re-run.

Two entry points coexist:

* :meth:`SweepGuard.run_point` — the original closure-based boundary,
  strictly serial (the body mutates the enclosing result in place);
* :meth:`SweepGuard.run_specs` — the
  :class:`~repro.core.executor.PointSpec` path: points are pure data,
  execute through the ambient :class:`~repro.core.executor.SweepExecutor`
  (possibly a process pool), and merge back in submission order, so
  seeded runs are byte-identical at any ``--jobs`` level.  Journal
  entries written this way carry a content fingerprint (``"fp"``) and
  double as a point-level result cache: on resume a point replays only
  while its parameters and the simulation code are unchanged.

Whether a given experiment supports journaling (equivalently ``--jobs``)
is a derived capability on its registry entry — see
``ExperimentDef.journal_capable`` in :mod:`repro.core.registry`.

The journal is optional: with ``journal=None`` the guard still provides
the error boundary, it just cannot resume.  Journal writes are
crash-safe (flushed and fsynced per record) and the file is exclusively
locked — a second concurrent writer is rejected rather than silently
interleaving lines.  Under a process pool only the parent ever writes.
"""

from __future__ import annotations

import json
import logging
import os
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.results import ExperimentResult

try:                             # POSIX; journal locking degrades
    import fcntl                 # gracefully where flock is missing.
except ImportError:              # pragma: no cover - non-POSIX
    fcntl = None

__all__ = ["CampaignJournal", "SweepGuard"]

logger = logging.getLogger(__name__)


class CampaignJournal:
    """JSON-lines checkpoint file for a campaign.

    Each line is one completed (or failed) sweep point::

        {"experiment": "fig1", "key": "core2.3_uncore2.4/size=4",
         "status": "ok", "series": {"latency_...": [[x, med, p10, p90]]},
         "fp": "91be3a60c1f2d9e4"}

    With ``resume=False`` (the default) an existing file is truncated
    and the campaign starts fresh; with ``resume=True`` prior entries
    are loaded so :class:`SweepGuard` can replay ``ok`` points and
    re-run only the failed/missing ones.

    Every record is flushed and fsynced before :meth:`record` returns:
    a crash loses at most the in-flight point, never a journaled one.
    The file is held under an exclusive ``flock`` for the journal's
    lifetime, so two processes cannot corrupt one campaign file — with
    ``--jobs`` parallelism all writes funnel through the parent.
    """

    def __init__(self, path, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        # Keyed (experiment, key, trial); pre-trial entries load as
        # trial 0, so old journals resume into multi-trial campaigns.
        self._entries: Dict[Tuple[str, str, int], dict] = {}
        # Optional live-progress observer (see repro.core.measurer);
        # attached by the CLI, consulted by SweepGuard.
        self.measurer = None
        if resume and self.path.exists():
            self._load()
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if resume else "w",
                        encoding="utf-8")
        self._lock()

    def _lock(self) -> None:
        if fcntl is None:  # pragma: no cover - non-POSIX
            return
        try:
            fcntl.flock(self._fh.fileno(),
                        fcntl.LOCK_EX | fcntl.LOCK_NB)
        except OSError:
            self._fh.close()
            self._fh = None
            raise RuntimeError(
                f"campaign journal {self.path} is locked by another "
                f"process; refusing a second concurrent writer") from None

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                self._entries[(entry["experiment"], entry["key"],
                               int(entry.get("trial", 0)))] = entry

    # -- queries -----------------------------------------------------------
    def lookup(self, experiment: str, key: str,
               trial: int = 0) -> Optional[dict]:
        return self._entries.get((experiment, key, trial))

    def completed(self, experiment: str) -> List[str]:
        return [k if not t else f"{k}#t{t}"
                for (exp, k, t), e in self._entries.items()
                if exp == experiment and e["status"] == "ok"]

    def failed(self, experiment: str) -> List[str]:
        return [k if not t else f"{k}#t{t}"
                for (exp, k, t), e in self._entries.items()
                if exp == experiment and e["status"] != "ok"]

    # -- recording ---------------------------------------------------------
    def record(self, experiment: str, key: str, status: str,
               series: Optional[dict] = None,
               failure: Optional[dict] = None,
               metrics: Optional[dict] = None,
               fp: Optional[str] = None,
               trial: int = 0) -> None:
        entry: dict = {"experiment": experiment, "key": key,
                       "status": status}
        if trial:
            # Trial-0 lines deliberately omit the key: they must stay
            # byte-identical to journals written before trials existed.
            entry["trial"] = int(trial)
        if series:
            entry["series"] = series
        if failure:
            entry["failure"] = failure
        if metrics:
            entry["metrics"] = metrics
        if fp:
            entry["fp"] = fp
        self._entries[(experiment, key, int(trial))] = entry
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()
        os.fsync(self._fh.fileno())

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()          # closing releases the flock
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SweepGuard:
    """Per-point error boundary (and journal hook) for one experiment."""

    def __init__(self, result: ExperimentResult,
                 journal: Optional[CampaignJournal] = None):
        self.result = result
        self.journal = journal
        self.replayed: List[str] = []
        self.failed: List[str] = []

    def run_point(self, key: str, body: Callable[[], object]) -> str:
        """Run one sweep point behind the boundary (serial, in place).

        Returns ``"replayed"`` (journal hit), ``"ok"`` (ran), or
        ``"failed"`` (recorded in ``result.failures``; series rolled
        back to their pre-point length).
        """
        result = self.result
        if self.journal is not None and self.journal.resume:
            entry = self.journal.lookup(result.name, key)
            if entry is not None and entry["status"] == "ok":
                self._replay(entry)
                self.replayed.append(key)
                return "replayed"
        snapshot = {k: len(s.x) for k, s in result.series.items()}
        # Telemetry: journal the per-point metric delta alongside the
        # series, so a campaign journal doubles as a per-point profile.
        from repro.obs.context import active_telemetry
        tele = active_telemetry()
        registry = tele.registry if tele is not None else None
        metrics_before = registry.snapshot() if registry is not None \
            else None
        try:
            body()
        except Exception as err:
            logger.warning("sweep point %s/%s failed: %s",
                           result.name, key, err)
            self._rollback(snapshot)
            result.record_failure(key, err)
            self.failed.append(key)
            if self.journal is not None:
                self.journal.record(result.name, key, "failed",
                                    failure=result.failures[key])
            return "failed"
        if self.journal is not None:
            metrics = registry.delta(metrics_before) \
                if registry is not None else None
            self.journal.record(result.name, key, "ok",
                                series=self._delta(snapshot),
                                metrics=metrics)
        return "ok"

    def run_specs(self, specs) -> Dict[str, str]:
        """Run a whole sweep of :class:`~repro.core.executor.PointSpec`.

        Points execute through the ambient executor (``--jobs`` process
        pool, or in-process when none is installed) and merge back in
        **submission order**: journal-cached points replay and fresh
        results append exactly where a serial run would have put them,
        so the resulting series, journal lines and telemetry are
        byte-identical at any parallelism level.

        With ``trials > 1`` on the executor's policy every point fans
        out into N seeded trials, expanded *trial-major* (all trial-0
        points first, then trial 1, ...) so a multi-trial journal's
        prefix is exactly the single-trial journal.  Each trial is a
        first-class journal record; the in-memory series get one
        aggregated row per base point (median of the trial medians,
        band = the envelope of the trial bands).

        Returns ``{scope_key: "replayed" | "ok" | "failed"}`` (the
        scope key is the point key, ``#tN``-tagged past trial 0) and
        stores tallies in ``result.meta["sweep"]``.
        """
        from dataclasses import replace

        from repro.core.executor import (SweepExecutor, active_executor,
                                         build_env, point_fingerprint)
        result = self.result
        statuses: Dict[str, str] = {}
        specs = list(specs)
        executor = active_executor()
        if executor is None:
            executor = SweepExecutor(jobs=1)
        trials = getattr(executor.policy, "trials", 1)
        expanded = [spec if t == 0 else replace(spec, trial=t)
                    for t in range(trials) for spec in specs]
        # Decide replay-vs-run for every point up front, so the pending
        # subset can be submitted to the pool in one batch while cached
        # points still merge at their original sweep position.
        plan: List[Tuple[object, str, Optional[dict]]] = []
        n_pending = 0
        for spec in expanded:
            fp = point_fingerprint(spec)
            cached = None
            if self.journal is not None and self.journal.resume:
                entry = self.journal.lookup(result.name, spec.key,
                                            spec.trial)
                # Entries without a fingerprint predate the cache
                # (run_point journals); trust them like run_point does.
                if entry is not None and entry["status"] == "ok" \
                        and entry.get("fp", fp) == fp:
                    cached = entry
            plan.append((spec, fp, cached))
            n_pending += cached is None
        env = build_env() if n_pending else {}
        entries = executor.map_points(
            [(spec, env) for spec, _fp, cached in plan
             if cached is None]) if n_pending else iter(())
        from repro.obs.context import active_telemetry
        tele = active_telemetry()
        measurer = self.journal.measurer \
            if self.journal is not None else None
        if measurer is not None:
            measurer.begin_sweep(result.name, total=len(plan),
                                 trials=trials,
                                 cached=len(plan) - n_pending,
                                 jobs=executor.jobs)
        # (key, trial) -> completed ok entry; series merge is deferred
        # until every trial of a point is in, then folded per base spec
        # in sweep order — for trials == 1 that replays the exact same
        # rows in the exact same order as the pre-trial code path.
        collected: Dict[Tuple[str, int], dict] = {}
        for spec, fp, cached in plan:
            label = spec.scope_key
            if cached is not None:
                collected[(spec.key, spec.trial)] = cached
                self.replayed.append(label)
                statuses[label] = "replayed"
                if measurer is not None:
                    measurer.on_point(result.name, spec.key, spec.trial,
                                      "replayed", None,
                                      cached.get("metrics"))
                continue
            entry = next(entries)
            wall = entry.pop("wall", None)
            # Fold the point's telemetry in before touching the journal
            # so trace/metrics state is consistent at every record.
            if tele is not None:
                tele.absorb_point(entry.get("obs") or {},
                                  entry.get("metrics"))
            if entry["status"] == "ok":
                collected[(spec.key, spec.trial)] = entry
                statuses[label] = "ok"
                if self.journal is not None:
                    self.journal.record(result.name, spec.key, "ok",
                                        series=entry.get("series"),
                                        metrics=entry.get("metrics"),
                                        fp=fp, trial=spec.trial)
            else:
                failure = entry["failure"]
                logger.warning("sweep point %s/%s failed: %s",
                               result.name, label,
                               failure.get("message", failure.get("error")))
                result.failures[label] = failure
                self.failed.append(label)
                statuses[label] = "failed"
                if self.journal is not None:
                    self.journal.record(result.name, spec.key, "failed",
                                        failure=failure, fp=fp,
                                        trial=spec.trial)
            if measurer is not None:
                measurer.on_point(result.name, spec.key, spec.trial,
                                  statuses[label], wall,
                                  entry.get("metrics"))
        for spec in specs:
            done = [collected[(spec.key, t)] for t in range(trials)
                    if (spec.key, t) in collected]
            if not done:
                continue
            if trials == 1:
                self._replay(done[0])
            else:
                from repro.analysis.stats import aggregate_trial_series
                self._replay({"series": aggregate_trial_series(
                    [e.get("series", {}) for e in done])})
        sweep: dict = {
            "points": len(specs),
            "replayed": len(plan) - n_pending,
            "failed": len([s for s in statuses.values() if s == "failed"]),
            # Harness-level failures (worker crash / timeout, retries
            # exhausted) — as opposed to simulated faults a point
            # reports.  Non-zero means the campaign is *degraded*:
            # ``repro run`` exits non-zero and prints a failure table.
            "degraded": len([key for key, s in statuses.items()
                             if s == "failed"
                             and result.failures.get(key, {}).get("harness")]),
        }
        if trials > 1:
            sweep["trials"] = trials
            sweep["executed"] = len(plan)
        result.meta["sweep"] = sweep
        return statuses

    # -- internals ---------------------------------------------------------
    def _rollback(self, snapshot: Dict[str, int]) -> None:
        for k, s in self.result.series.items():
            n = snapshot.get(k, 0)
            del s.x[n:], s.median[n:], s.p10[n:], s.p90[n:]

    def _delta(self, snapshot: Dict[str, int]) -> dict:
        out: dict = {}
        for k, s in self.result.series.items():
            n = snapshot.get(k, 0)
            rows = [[x, m, lo, hi] for x, m, lo, hi
                    in zip(s.x[n:], s.median[n:], s.p10[n:], s.p90[n:])]
            if rows:
                out[k] = rows
        return out

    def _replay(self, entry: dict) -> None:
        for k, rows in entry.get("series", {}).items():
            s = self.result.series.get(k)
            if s is None:
                s = self.result.new_series(k)
            for x, med, lo, hi in rows:
                s.x.append(x)
                s.median.append(med)
                s.p10.append(lo)
                s.p90.append(hi)
