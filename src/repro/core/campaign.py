"""Resumable experiment campaigns: per-point error boundaries + journal.

A figure is a sweep of independent points (one simulated cluster per
point).  Under fault injection a point may die mid-run — e.g. a
fail-stop node raises :class:`~repro.faults.reliability.TransportError`
through the ping-pong — and without a boundary that would lose the whole
campaign.  :class:`SweepGuard` wraps each point:

* on success, the point's appended series rows are written to a
  :class:`CampaignJournal` (JSON lines, one entry per point);
* on failure, partially-appended rows are rolled back so the series
  stay rectangular, and a structured failure annotation is recorded in
  ``ExperimentResult.failures`` (and journaled);
* on resume, previously-``ok`` points are replayed from the journal
  bit-identically (Python's ``json`` round-trips floats exactly) and
  only failed/missing points are re-run.

The journal is optional: with ``journal=None`` the guard still provides
the error boundary, it just cannot resume.
"""

from __future__ import annotations

import json
import logging
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple

from repro.core.results import ExperimentResult

__all__ = ["CampaignJournal", "SweepGuard"]

logger = logging.getLogger(__name__)


class CampaignJournal:
    """JSON-lines checkpoint file for a campaign.

    Each line is one completed (or failed) sweep point::

        {"experiment": "fig1", "key": "core2.3_uncore2.4/size=4",
         "status": "ok", "series": {"latency_...": [[x, med, p10, p90]]}}

    With ``resume=False`` (the default) an existing file is truncated
    and the campaign starts fresh; with ``resume=True`` prior entries
    are loaded so :class:`SweepGuard` can replay ``ok`` points and
    re-run only the failed/missing ones.
    """

    def __init__(self, path, resume: bool = False):
        self.path = Path(path)
        self.resume = resume
        self._entries: Dict[Tuple[str, str], dict] = {}
        if resume and self.path.exists():
            self._load()
        if self.path.parent != Path(""):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        self._fh = open(self.path, "a" if resume else "w",
                        encoding="utf-8")

    def _load(self) -> None:
        with open(self.path, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                entry = json.loads(line)
                self._entries[(entry["experiment"], entry["key"])] = entry

    # -- queries -----------------------------------------------------------
    def lookup(self, experiment: str, key: str) -> Optional[dict]:
        return self._entries.get((experiment, key))

    def completed(self, experiment: str) -> List[str]:
        return [k for (exp, k), e in self._entries.items()
                if exp == experiment and e["status"] == "ok"]

    def failed(self, experiment: str) -> List[str]:
        return [k for (exp, k), e in self._entries.items()
                if exp == experiment and e["status"] != "ok"]

    # -- recording ---------------------------------------------------------
    def record(self, experiment: str, key: str, status: str,
               series: Optional[dict] = None,
               failure: Optional[dict] = None,
               metrics: Optional[dict] = None) -> None:
        entry: dict = {"experiment": experiment, "key": key,
                       "status": status}
        if series:
            entry["series"] = series
        if failure:
            entry["failure"] = failure
        if metrics:
            entry["metrics"] = metrics
        self._entries[(experiment, key)] = entry
        self._fh.write(json.dumps(entry) + "\n")
        self._fh.flush()

    def close(self) -> None:
        if self._fh is not None:
            self._fh.close()
            self._fh = None

    def __enter__(self) -> "CampaignJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


class SweepGuard:
    """Per-point error boundary (and journal hook) for one experiment."""

    def __init__(self, result: ExperimentResult,
                 journal: Optional[CampaignJournal] = None):
        self.result = result
        self.journal = journal
        self.replayed: List[str] = []
        self.failed: List[str] = []

    def run_point(self, key: str, body: Callable[[], object]) -> str:
        """Run one sweep point behind the boundary.

        Returns ``"replayed"`` (journal hit), ``"ok"`` (ran), or
        ``"failed"`` (recorded in ``result.failures``; series rolled
        back to their pre-point length).
        """
        result = self.result
        if self.journal is not None and self.journal.resume:
            entry = self.journal.lookup(result.name, key)
            if entry is not None and entry["status"] == "ok":
                self._replay(entry)
                self.replayed.append(key)
                return "replayed"
        snapshot = {k: len(s.x) for k, s in result.series.items()}
        # Telemetry: journal the per-point metric delta alongside the
        # series, so a campaign journal doubles as a per-point profile.
        from repro.obs.context import active_telemetry
        tele = active_telemetry()
        registry = tele.registry if tele is not None else None
        metrics_before = registry.snapshot() if registry is not None \
            else None
        try:
            body()
        except Exception as err:
            logger.warning("sweep point %s/%s failed: %s",
                           result.name, key, err)
            self._rollback(snapshot)
            result.record_failure(key, err)
            self.failed.append(key)
            if self.journal is not None:
                self.journal.record(result.name, key, "failed",
                                    failure=result.failures[key])
            return "failed"
        if self.journal is not None:
            metrics = registry.delta(metrics_before) \
                if registry is not None else None
            self.journal.record(result.name, key, "ok",
                                series=self._delta(snapshot),
                                metrics=metrics)
        return "ok"

    # -- internals ---------------------------------------------------------
    def _rollback(self, snapshot: Dict[str, int]) -> None:
        for k, s in self.result.series.items():
            n = snapshot.get(k, 0)
            del s.x[n:], s.median[n:], s.p10[n:], s.p90[n:]

    def _delta(self, snapshot: Dict[str, int]) -> dict:
        out: dict = {}
        for k, s in self.result.series.items():
            n = snapshot.get(k, 0)
            rows = [[x, m, lo, hi] for x, m, lo, hi
                    in zip(s.x[n:], s.median[n:], s.p10[n:], s.p90[n:])]
            if rows:
                out[k] = rows
        return out

    def _replay(self, entry: dict) -> None:
        for k, rows in entry.get("series", {}).items():
            s = self.result.series.get(k)
            if s is None:
                s = self.result.new_series(k)
            for x, med, lo, hi in rows:
                s.x.append(x)
                s.median.append(med)
                s.p10.append(lo)
                s.p90.append(hi)
