"""Containers for experiment outputs.

A :class:`Series` is one curve of a paper figure: x values plus the
median and first/last-decile band at each x (exactly the paper's plot
format, §2.1).  An :class:`ExperimentResult` groups the series of one
figure/table with metadata and derived observations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.analysis.stats import summarize

__all__ = ["Series", "ExperimentResult"]


@dataclass
class Series:
    """One curve: x -> median value with a decile band."""

    label: str
    x: List[float] = field(default_factory=list)
    median: List[float] = field(default_factory=list)
    p10: List[float] = field(default_factory=list)
    p90: List[float] = field(default_factory=list)
    xlabel: str = ""
    ylabel: str = ""

    def add(self, x: float, samples: Sequence[float]) -> None:
        """Append a point from raw samples (median + decile band)."""
        stats = summarize(samples)
        self.x.append(float(x))
        self.median.append(stats.median)
        self.p10.append(stats.p10)
        self.p90.append(stats.p90)

    def add_value(self, x: float, value: float) -> None:
        """Append a deterministic point (degenerate band)."""
        self.x.append(float(x))
        self.median.append(float(value))
        self.p10.append(float(value))
        self.p90.append(float(value))

    def at(self, x: float) -> float:
        """Median value at the x closest to *x*."""
        if not self.x:
            raise ValueError(f"series {self.label!r} is empty")
        idx = int(np.argmin(np.abs(np.asarray(self.x) - x)))
        return self.median[idx]

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self.median)

    @property
    def xs(self) -> np.ndarray:
        return np.asarray(self.x)

    def __len__(self) -> int:
        return len(self.x)


@dataclass
class ExperimentResult:
    """All series of one figure/table plus derived observations.

    ``failures`` maps a sweep-point key (e.g. ``"n=20"``) to a
    structured description of why that point could not be produced —
    under fault injection a point may die with a
    :class:`~repro.faults.reliability.TransportError` while the rest of
    the figure completes (graceful degradation rather than a lost
    campaign)."""

    name: str                       # e.g. "fig4a"
    title: str
    series: Dict[str, Series] = field(default_factory=dict)
    meta: Dict[str, object] = field(default_factory=dict)
    observations: Dict[str, object] = field(default_factory=dict)
    failures: Dict[str, Dict[str, object]] = field(default_factory=dict)

    def new_series(self, key: str, label: Optional[str] = None,
                   xlabel: str = "", ylabel: str = "") -> Series:
        s = Series(label=label if label is not None else key,
                   xlabel=xlabel, ylabel=ylabel)
        self.series[key] = s
        return s

    def __getitem__(self, key: str) -> Series:
        return self.series[key]

    def observe(self, key: str, value: object) -> None:
        self.observations[key] = value

    def record_failure(self, key: str,
                       error: Optional[BaseException] = None,
                       **info: object) -> None:
        """Record a structured per-point failure annotation."""
        entry: Dict[str, object] = dict(info)
        if error is not None:
            entry.setdefault("error", type(error).__name__)
            entry.setdefault("message", str(error))
            for attr in ("reason", "src", "dst", "retries", "timeouts"):
                value = getattr(error, attr, None)
                if value is not None:
                    entry.setdefault(attr, value)
        self.failures[key] = entry

    @property
    def ok(self) -> bool:
        return not self.failures
