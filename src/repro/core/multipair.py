"""Multi-pair ping-pong: several communicating threads per node.

The paper's related work discusses Gropp, Olson & Samfass's argument
that the classic ping-pong under-predicts real applications because
several processes per SMP node use the NIC *at the same time* — and
notes it does not apply to the paper's setup, where exactly one thread
communicates per node.  This extension lifts that restriction: ``k``
independent pairs of communication threads (one per node side) run
ping-pongs concurrently over the same NIC, with each pair bound to its
own core.

Expected shape (and what Gropp et al. model):

* small messages — latency grows mildly with k (more doorbells, shared
  uncore) until software serialisation dominates;
* large messages — the wire is shared: aggregate bandwidth stays at the
  link's capacity, per-pair bandwidth decays like 1/k.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from repro.core.registry import experiment
from repro.core.results import ExperimentResult
from repro.hardware.presets import MachineSpec, get_preset
from repro.hardware.topology import Cluster
from repro.mpi.comm import CommWorld

__all__ = ["MultiPairResult", "run_multipair", "multipair_experiment"]


@dataclass
class MultiPairResult:
    """Outcome of k concurrent ping-pong pairs."""

    n_pairs: int
    size: int
    per_pair_latencies: List[np.ndarray]

    @property
    def median_latency(self) -> float:
        return float(np.median(np.concatenate(self.per_pair_latencies)))

    @property
    def per_pair_bandwidth(self) -> float:
        return self.size / self.median_latency if self.median_latency > 0 \
            else 0.0

    @property
    def aggregate_bandwidth(self) -> float:
        return self.per_pair_bandwidth * self.n_pairs


def run_multipair(n_pairs: int, size: int, reps: int = 10,
                  spec: MachineSpec | str = "henri",
                  seed: int = 0) -> MultiPairResult:
    """Run *n_pairs* concurrent ping-pongs between two nodes."""
    s = get_preset(spec) if isinstance(spec, str) else spec
    if n_pairs < 1:
        raise ValueError("need at least one pair")
    max_pairs = s.cores_per_numa * s.numa_per_socket  # one socket's worth
    if n_pairs > max_pairs:
        raise ValueError(f"at most {max_pairs} pairs on {s.name}")
    cluster = Cluster(s, n_nodes=2, seed=seed)
    # Pair i's comm threads on core i of the NIC socket, on both nodes.
    world = CommWorld(cluster, comm_cores={0: 0, 1: 0})
    from repro.hardware.frequency import CoreActivity
    for machine in cluster.machines:
        for core in range(n_pairs):
            machine.set_core_activity(core, CoreActivity.SCALAR,
                                      uncore_active=False)

    engine = world.engine
    latencies: List[List[float]] = [[] for _ in range(n_pairs)]

    def pair_loop(pair: int):
        buf_a = world.rank(0).buffer(size, label=f"mp{pair}_a")
        buf_b = world.rank(1).buffer(size, label=f"mp{pair}_b")
        for it in range(reps + 2):
            rec = yield cluster.sim.process(engine.half_transfer(
                0, pair, buf_a, 1, pair, buf_b, size))
            rec2 = yield cluster.sim.process(engine.half_transfer(
                1, pair, buf_b, 0, pair, buf_a, size))
            if it >= 2:
                latencies[pair].append(rec.duration)
                latencies[pair].append(rec2.duration)

    procs = [cluster.sim.process(pair_loop(i)) for i in range(n_pairs)]
    cluster.sim.run()
    for p in procs:
        if not p.ok:  # pragma: no cover
            _ = p.value
    return MultiPairResult(
        n_pairs=n_pairs, size=size,
        per_pair_latencies=[np.asarray(l) for l in latencies])


@experiment(name="multipair",
            title="Multiple communicating thread pairs per node",
            tags=("extension", "network"),
            fast=dict(pair_counts=[1, 2, 4], sizes=[4, 16 << 20], reps=4))
def multipair_experiment(pair_counts: Optional[Sequence[int]] = None,
                         sizes: Optional[Sequence[int]] = None,
                         reps: int = 8,
                         spec: MachineSpec | str = "henri"
                         ) -> ExperimentResult:
    """Per-pair and aggregate performance vs the number of pairs."""
    if pair_counts is None:
        pair_counts = [1, 2, 4, 8]
    if sizes is None:
        sizes = [4, 1 << 20, 16 << 20]
    result = ExperimentResult(
        name="multipair",
        title="Multiple communicating threads per node (Gropp et al.)")
    for size in sizes:
        per_pair = result.new_series(f"per_pair_bw_{size}",
                                     xlabel="pairs", ylabel="bytes/s")
        agg = result.new_series(f"aggregate_bw_{size}",
                                xlabel="pairs", ylabel="bytes/s")
        lat = result.new_series(f"latency_{size}",
                                xlabel="pairs", ylabel="s")
        for k in pair_counts:
            res = run_multipair(k, size, reps=reps, spec=spec)
            per_pair.add_value(k, res.per_pair_bandwidth)
            agg.add_value(k, res.aggregate_bandwidth)
            lat.add_value(k, res.median_latency)
    big = max(sizes)
    agg = result[f"aggregate_bw_{big}"]
    result.observe("aggregate_bw_retained",
                   min(agg.median) / max(agg.median))
    return result
